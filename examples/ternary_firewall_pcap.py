#!/usr/bin/env python3
"""Ternary (prefix) firewall + pcap export: the Appendix-B extension.

Runs the switch in ternary match mode (the Xilinx CAM IP's other
personality), installs a prefix-based default-allow ACL with
address-ordered priorities using typed ``Ternary`` match specs, pushes
a traffic mix through, and exports the forwarded packets to a standard
pcap file you can open in wireshark.

Run:  python examples/ternary_firewall_pcap.py
"""

import tempfile

from repro.api import Match, Switch, Ternary
from repro.modules import firewall
from repro.net import Ipv4Address, parse_layers
from repro.traffic import load_pcap, save_pcap


def main() -> None:
    switch = Switch.build().ternary().create()
    tenant = switch.admit("prefix-fw", firewall.P4_SOURCE_TERNARY, vid=2)

    # Priority order (lower address wins, Appendix B):
    #   1. allow the bastion host 10.66.0.10 exactly,
    #   2. block the whole 10.66.0.0/16,
    #   3. allow everything else (match-all).
    tenant.table("acl").insert(
        match=Match({"hdr.ipv4.srcAddr": int(Ipv4Address("10.66.0.10")),
                     "hdr.udp.dstPort": Ternary(0, 0)}),
        action="allow", params={"port": 5})
    firewall.install_prefix(tenant, blocked_prefixes=[("10.66.0.0", 16)],
                            default_port=1)

    flows = [
        ("10.66.0.10", "bastion host (exempt)"),
        ("10.66.4.20", "inside blocked /16"),
        ("10.66.255.1", "inside blocked /16"),
        ("10.70.1.1", "outside"),
        ("192.168.0.9", "outside"),
    ]
    forwarded = []
    print("prefix ACL verdicts:")
    for src, label in flows:
        result = switch.process(firewall.make_packet(2, src, 443))
        verdict = ("DROP" if result.dropped
                   else f"port {result.egress_port}")
        print(f"  {src:14s} ({label:22s}) -> {verdict}")
        if result.forwarded:
            forwarded.append(result.packet)

    with tempfile.NamedTemporaryFile(suffix=".pcap", delete=False) as f:
        path = f.name
    save_pcap(path, forwarded)
    print(f"\nexported {len(forwarded)} forwarded packets to {path}")
    restored = load_pcap(path)
    first_src = parse_layers(restored[0])["ipv4"].src
    print(f"read back {len(restored)} packets; first source: {first_src}")
    assert str(first_src) == "10.66.0.10"

    assert len(forwarded) == 3  # bastion + the two outsiders


if __name__ == "__main__":
    main()
