#!/usr/bin/env python3
"""NetCache scenario: an in-network key-value cache absorbing hot keys.

Reproduces the NetCache idea (SOSP'17) on the Menshen pipeline: a
skewed (Zipf-like) GET workload hits the switch; hot keys are cached in
pipeline stateful memory and answered at line rate, cold keys fall
through to the (simulated) storage servers. The demo measures the cache
hit ratio and the resulting load reduction on the servers, then updates
the cache contents from the control plane — without reloading the
module.

Run:  python examples/netcache_kv_store.py
"""

import random
from collections import Counter

from repro.api import Switch
from repro.modules import netcache


def zipf_like_keys(n_keys: int, n_requests: int, skew: float = 1.2,
                   seed: int = 7):
    """A deterministic skewed key sequence (hot keys dominate)."""
    rng = random.Random(seed)
    weights = [1.0 / (rank ** skew) for rank in range(1, n_keys + 1)]
    total = sum(weights)
    probabilities = [w / total for w in weights]
    keys = list(range(0x1000, 0x1000 + n_keys))
    return rng.choices(keys, probabilities, k=n_requests)


def main() -> None:
    switch = Switch.build().create()
    tenant = switch.admit("netcache", netcache.P4_SOURCE, vid=6)

    # Backing store: every key has a value; the switch caches the top 4
    # (the prototype's cache table holds 4 entries).
    store = {key: key * 11 for key in range(0x1000, 0x1040)}
    workload = zipf_like_keys(n_keys=64, n_requests=500)
    hot_keys = [key for key, _count in Counter(workload).most_common(4)]
    netcache.install(
        tenant,
        cached=[(key, slot, store[key]) for slot, key in
                enumerate(hot_keys)])
    print(f"cached hot keys: {[hex(k) for k in hot_keys]}")

    hits = misses = 0
    server_load = Counter()
    for key in workload:
        result = switch.process(netcache.make_get(6, key))
        value = netcache.read_value(result.packet)
        if value != 0:
            assert value == store[key], "cache returned a wrong value!"
            hits += 1
        else:
            # Cache miss: the storage server answers.
            server_load[key] += 1
            misses += 1

    total = hits + misses
    print(f"requests: {total}, cache hits: {hits} "
          f"({hits / total:.0%}), server requests: {misses}")
    print(f"switch-side op counter: "
          f"{tenant.register('op_stats').read(0)}")
    print(f"hottest residual server keys: "
          f"{[hex(k) for k, _ in server_load.most_common(3)]}")

    # Control-plane value update (e.g. the store wrote a new version):
    # no reload, no disruption — just a register write.
    new_value = 999_999
    tenant.register("values").write(0, new_value)
    result = switch.process(netcache.make_get(6, hot_keys[0]))
    print(f"after control-plane update, GET {hex(hot_keys[0])} -> "
          f"{netcache.read_value(result.packet)}")

    assert hits / total > 0.5, "hot keys should dominate a skewed workload"


if __name__ == "__main__":
    main()
