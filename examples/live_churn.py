#!/usr/bin/env python3
"""Live fabric churn: tenants update, migrate, and depart mid-run.

The Fig. 10 story at fabric scale. Three tenants stream across a
3-leaf/1-spine Clos while a churn schedule fires inside the running
event-driven timeline: tenant 2's program is replaced in place (the
§4.1 update fanned out across its route), tenant 3 is migrated from
leaf1 to leaf2 (admit on the new leaf, re-steer the shared spine,
evict the old leaf), and then tenant 3 departs entirely. Tenant 1 is
never touched — and never loses a packet or a share.

Run:  python examples/live_churn.py
"""

from repro.fabric import leaf_spine
from repro.modules import calc
from repro.sim import FabricTimelineExperiment
from repro.traffic import ChurnSchedule, TrafficMatrix

HOSTS = 4
PACKET_SIZE = 500
PPS = 5e4
DURATION_S = 10e-3
BIN_S = 1e-3


def main() -> None:
    fabric = leaf_spine(leaves=3, spines=1, hosts_per_leaf=HOSTS)
    tenants = {}
    matrix = TrafficMatrix()
    for vid in (1, 2, 3):
        tenant = fabric.tenant(
            f"tenant{vid}", calc.P4_SOURCE, vid=vid,
            installer=lambda t, port: calc.install(t, port=port))
        tenant.place(("leaf0", vid - 1), ("leaf1", vid - 1))
        tenants[vid] = tenant
        matrix.add(vid, ("leaf0", vid - 1), ("leaf1", vid - 1),
                   offered_bps=PPS * (PACKET_SIZE + 24) * 8,
                   packet_size=PACKET_SIZE,
                   make_packet=lambda vid=vid: calc.make_packet(
                       vid, calc.OP_ADD, vid, vid, pad_to=PACKET_SIZE))

    schedule = ChurnSchedule()
    schedule.update(2, at_s=3e-3, duration_s=0.5e-3)
    schedule.migrate(3, at_s=5e-3, duration_s=0.5e-3)
    schedule.depart(3, at_s=8e-3)
    print(f"churn schedule: {schedule}")

    def apply(event):
        print(f"  t={event.time_s * 1e3:.1f} ms: tenant {event.vid} "
              f"{event.kind}s")
        if event.kind == "update":
            tenants[event.vid].update(calc.P4_SOURCE)
        elif event.kind == "migrate":
            path = tenants[event.vid].migrate(
                dst=("leaf2", event.vid - 1))
            print(f"           new route: {' -> '.join(path)}")
        elif event.kind == "depart":
            tenants[event.vid].unload()

    experiment = FabricTimelineExperiment(fabric, matrix,
                                          duration_s=DURATION_S,
                                          bin_s=BIN_S)
    experiment.schedule_churn(schedule, apply)
    result = experiment.run()

    print("\nper-tenant delivered throughput (Gbps per 1 ms bin):")
    for vid in (1, 2, 3):
        series = " ".join(f"{t:4.2f}"
                          for t in result.throughput_gbps[vid])
        print(f"  tenant {vid}: {series}")
        print(f"           delivered={result.delivered.get(vid, 0)} "
              f"drops={result.drops.get(vid, 0)} "
              f"mean latency={result.mean_latency_s(vid) * 1e6:.1f} us")

    # The untouched tenant never dropped a packet through all of it.
    assert result.drops.get(1, 0) == 0
    assert result.lost_records() == []
    print("\ntenant 1 (untouched): zero drops through an update, a "
          "migration, and a departure next door")
    print(f"tenant 3 now placed on: "
          f"{tenants[3].switches() or 'nowhere (departed)'}")


if __name__ == "__main__":
    main()
