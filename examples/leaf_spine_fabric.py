#!/usr/bin/env python3
"""Leaf–spine fabric tour: tenants spanning switches, contending links.

Builds a 2-leaf / 1-spine fabric of Menshen switches (each a full RMT
pipeline with batched engine and weighted-fair egress), places two
tenants whose cross-rack flows share the leaf0→spine0 uplink, and runs
both fabric entry points:

1. **batched multi-hop forwarding** — one batch driven to exit,
   wave by wave, packet results checked end to end;
2. **the timed fabric timeline** — a per-tenant traffic matrix
   replayed on the event kernel, yielding end-to-end latency,
   delivered throughput, and link utilization under contention.

Run:  python examples/leaf_spine_fabric.py
"""

from repro.fabric import leaf_spine
from repro.modules import calc
from repro.sim import FabricTimelineExperiment
from repro.traffic import TrafficMatrix


def main() -> None:
    # 1. The fabric: leaves with 4 host ports each, one spine,
    #    10 Gbit/s links, 1 us propagation delay per link.
    fabric = leaf_spine(leaves=2, spines=1, hosts_per_leaf=4,
                        link_capacity_bps=10e9, link_delay_s=1e-6)
    print("fabric:", ", ".join(str(m) for m in fabric.switches()))

    # 2. Two tenants, both leaf0 -> leaf1 (so they contend on the
    #    spine uplink). Placement admits each tenant's P4 program on
    #    every switch along its route and installs entries steering to
    #    that switch's next hop — same VID end to end (VLAN-based
    #    inter-switch forwarding).
    victim = fabric.tenant(
        "victim", calc.P4_SOURCE, vid=1,
        installer=lambda t, port: calc.install(t, port=port))
    aggressor = fabric.tenant(
        "aggressor", calc.P4_SOURCE, vid=2,
        installer=lambda t, port: calc.install(t, port=port))
    print("victim route:   ", victim.place(("leaf0", 0), ("leaf1", 0)))
    print("aggressor route:", aggressor.place(("leaf0", 1), ("leaf1", 1)))
    victim.set_weight(3.0)       # 3x fair share on every contended port
    aggressor.set_weight(1.0)

    # 3. Batched multi-hop forwarding: packets enter at leaf0 host
    #    ports, cross the spine, and exit at leaf1 host ports.
    batch = [("leaf0", calc.make_packet(1, calc.OP_ADD, 40, 2)),
             ("leaf0", calc.make_packet(2, calc.OP_SUB, 50, 8))]
    result = fabric.process_batch(batch)
    for d in result.delivered:
        print(f"  delivered at {d.switch}:{d.port} (vid {d.vid}): "
              f"result={calc.read_result(d.packet)}")
    print(f"  waves: {result.waves}, "
          f"victim fabric-wide counters: {victim.counters()}")

    # 4. The timed experiment: the aggressor offers 8x the victim's
    #    rate into the shared 10G uplink; the weighted-fair scheduler
    #    holds the victim's share.
    matrix = TrafficMatrix()
    matrix.add(1, ("leaf0", 0), ("leaf1", 0), offered_bps=8e9,
               packet_size=1000,
               make_packet=lambda: calc.make_packet(
                   1, calc.OP_ADD, 1, 2, pad_to=1000))
    matrix.add(2, ("leaf0", 1), ("leaf1", 1), offered_bps=64e9,
               packet_size=1000,
               make_packet=lambda: calc.make_packet(
                   2, calc.OP_SUB, 9, 4, pad_to=1000))
    run = FabricTimelineExperiment(fabric, matrix,
                                   duration_s=0.0004).run()
    for vid, name in ((1, "victim"), (2, "aggressor")):
        print(f"  {name}: offered {run.offered_gbps[vid]:.1f} Gbps, "
              f"delivered {run.delivered_gbps(vid):.2f} Gbps, "
              f"mean e2e latency "
              f"{run.mean_latency_s(vid) * 1e6:.1f} us")
    for link, (nbytes, util) in sorted(run.link_utilization.items()):
        print(f"  link {link}: {nbytes} B carried, "
              f"{util:.0%} utilized")


if __name__ == "__main__":
    main()
