#!/usr/bin/env python3
"""Multi-tenant cloud scenario: the paper's §2 motivation end-to-end.

A cloud provider runs the system-level module (virtual IPs, routing,
per-tenant statistics) and hosts three mutually-distrustful tenants on
one pipeline:

* tenant 1 — a firewall protecting its service,
* tenant 2 — NetCache, an in-network key-value cache,
* tenant 3 — NetChain, an in-network sequencer.

The demo shows behavior isolation (each tenant sees only its own rules
and state), resource isolation (disjoint CAM partitions and stateful
segments), and the system module translating virtual IPs and counting
per-tenant packets.

Run:  python examples/multi_tenant_cloud.py
"""

from repro.core import MenshenPipeline
from repro.modules import firewall, netcache, netchain
from repro.modules.base import common_packet
from repro.net import parse_layers
from repro.runtime import MenshenController
from repro.sysmod import install_system_entries, setup_system_module


def main() -> None:
    pipeline = MenshenPipeline()
    controller = MenshenController(pipeline)

    # --- provider: system-level module in the first and last stages ----
    setup_system_module(controller, routes={"10.0.0.2": 1, "10.0.0.3": 2})
    install_system_entries(
        controller,
        vip_map={"10.99.0.5": "10.0.0.2"},   # tenant-visible virtual IP
        routes={},
        counter_index={"10.99.0.5": 2})
    print("system module loaded (stages "
          f"{sorted(pipeline.system_stages)}); tenants get stages "
          f"{controller.compile_target().stage_map}")

    # --- tenants --------------------------------------------------------------
    controller.load_module(1, firewall.P4_SOURCE, "tenant1-firewall")
    firewall.install_entries(controller, 1,
                             blocked=[("10.0.0.66", 53)],
                             allowed=[("10.0.0.1", 80, 2)])

    controller.load_module(2, netcache.P4_SOURCE, "tenant2-netcache")
    netcache.install_entries(controller, 2,
                             cached=[(0xFEED, 0, 12345)])

    controller.load_module(3, netchain.P4_SOURCE, "tenant3-netchain")
    netchain.install_entries(controller, 3, port=1)

    for vid, loaded in sorted(controller.modules.items()):
        stages = loaded.compiled.stages_used()
        parts = {s: (a.match_start, a.match_end)
                 for s, a in loaded.allocation.stages.items()
                 if a.match_count}
        print(f"  tenant {vid} ({loaded.name}): stages {stages}, "
              f"CAM rows {parts}")

    # --- traffic ----------------------------------------------------------------
    print("\n-- tenant 1: firewall --")
    blocked = pipeline.process(firewall.make_packet(1, "10.0.0.66", 53))
    allowed = pipeline.process(firewall.make_packet(1, "10.0.0.1", 80))
    print(f"  attack from 10.0.0.66:53 dropped: {blocked.dropped}")
    print(f"  legit 10.0.0.1:80 forwarded to port {allowed.egress_port}")

    print("-- tenant 2: netcache --")
    hit = pipeline.process(netcache.make_get(2, 0xFEED))
    miss = pipeline.process(netcache.make_get(2, 0xDEAD))
    print(f"  GET 0xFEED -> {netcache.read_value(hit.packet)} "
          f"(stat {netcache.read_stat(hit.packet)})")
    print(f"  GET 0xDEAD -> miss, value {netcache.read_value(miss.packet)}")

    print("-- tenant 3: netchain sequencer --")
    seqs = [netchain.read_seq(
        pipeline.process(netchain.make_packet(3)).packet)
        for _ in range(3)]
    print(f"  sequence numbers: {seqs}")

    # --- system services: virtual IP + per-tenant counters -------------------
    print("-- system module services --")
    vip_packet = common_packet(3, netchain.OP_SEQ.to_bytes(2, "big")
                               + bytes(8), dst="10.99.0.5")
    result = pipeline.process(vip_packet)
    rewritten = str(parse_layers(result.packet)["ipv4"].dst)
    print(f"  tenant 3 packet to virtual IP 10.99.0.5 "
          f"rewritten to {rewritten}, routed to port {result.egress_port}")
    print(f"  provider counter for that vIP: "
          f"{controller.register_read(0, 'tenant_counters', 2)} packets")

    # --- isolation proof points --------------------------------------------------
    print("\n-- isolation proof points --")
    # Tenant 2's packets are processed only by tenant 2's rules: a GET
    # from the address tenant 1 blocks still flows (no cross-tenant
    # match — tenant 1's block rule is invisible to tenant 2).
    probe = netcache.make_get(2, 0xFEED)
    probe.write_bytes(30, bytes([10, 0, 0, 66]))  # src = tenant 1's blocked IP
    result = pipeline.process(probe)
    print(f"  tenant 2 packet from tenant 1's blocked address: "
          f"forwarded={result.forwarded} (tenant 1's ACL is invisible)")
    # Stateful memory is physically partitioned:
    seq_stage = controller.modules[3].compiled.registers["sequencer"].stage
    seq_alloc = controller.modules[3].allocation.stage(seq_stage)
    print(f"  tenant 3's sequencer lives at physical words "
          f"[{seq_alloc.stateful_base}, {seq_alloc.stateful_end}) of "
          f"stage {seq_stage}; tenant 2's segment cannot reach it")


if __name__ == "__main__":
    main()
