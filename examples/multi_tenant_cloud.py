#!/usr/bin/env python3
"""Multi-tenant cloud scenario: the paper's §2 motivation end-to-end.

A cloud provider runs the system-level module (virtual IPs, routing,
per-tenant statistics) and hosts three mutually-distrustful tenants on
one pipeline:

* tenant 1 — a firewall protecting its service,
* tenant 2 — NetCache, an in-network key-value cache,
* tenant 3 — NetChain, an in-network sequencer.

The demo shows behavior isolation (each tenant handle sees only its own
rules and state — crossing the boundary raises), resource isolation
(disjoint CAM partitions and stateful segments), and the system module
translating virtual IPs and counting per-tenant packets.

Run:  python examples/multi_tenant_cloud.py
"""

from repro.api import Switch, TenantIsolationError
from repro.modules import firewall, netcache, netchain
from repro.modules.base import common_packet
from repro.net import parse_layers


def main() -> None:
    switch = Switch.build().create()

    # --- provider: system-level module in the first and last stages ----
    system = switch.install_system(
        vip_map={"10.99.0.5": "10.0.0.2"},   # tenant-visible virtual IP
        routes={"10.0.0.2": 1, "10.0.0.3": 2},
        counter_index={"10.99.0.5": 2})
    print("system module loaded (stages "
          f"{sorted(switch.pipeline.system_stages)}); tenants get stages "
          f"{switch.controller.compile_target().stage_map}")

    # --- tenants --------------------------------------------------------------
    fw = switch.admit("tenant1-firewall", firewall.P4_SOURCE, vid=1)
    firewall.install(fw, blocked=[("10.0.0.66", 53)],
                     allowed=[("10.0.0.1", 80, 2)])

    nc = switch.admit("tenant2-netcache", netcache.P4_SOURCE, vid=2)
    netcache.install(nc, cached=[(0xFEED, 0, 12345)])

    chain = switch.admit("tenant3-netchain", netchain.P4_SOURCE, vid=3)
    netchain.install(chain, port=1)

    for tenant in switch.tenants():
        stats = tenant.stats()
        parts = {s: p["cam_rows"] for s, p in stats["partitions"].items()
                 if p["cam_rows"][1] > p["cam_rows"][0]}
        print(f"  tenant {tenant.vid} ({tenant.name}): stages "
              f"{stats['stages']}, CAM rows {parts}")

    # --- traffic ----------------------------------------------------------------
    print("\n-- tenant 1: firewall --")
    blocked = switch.process(firewall.make_packet(1, "10.0.0.66", 53))
    allowed = switch.process(firewall.make_packet(1, "10.0.0.1", 80))
    print(f"  attack from 10.0.0.66:53 dropped: {blocked.dropped}")
    print(f"  legit 10.0.0.1:80 forwarded to port {allowed.egress_port}")

    print("-- tenant 2: netcache --")
    hit = switch.process(netcache.make_get(2, 0xFEED))
    miss = switch.process(netcache.make_get(2, 0xDEAD))
    print(f"  GET 0xFEED -> {netcache.read_value(hit.packet)} "
          f"(stat {netcache.read_stat(hit.packet)})")
    print(f"  GET 0xDEAD -> miss, value {netcache.read_value(miss.packet)}")

    print("-- tenant 3: netchain sequencer --")
    seqs = [netchain.read_seq(
        switch.process(netchain.make_packet(3)).packet)
        for _ in range(3)]
    print(f"  sequence numbers: {seqs}")

    # --- system services: virtual IP + per-tenant counters -------------------
    print("-- system module services --")
    vip_packet = common_packet(3, netchain.OP_SEQ.to_bytes(2, "big")
                               + bytes(8), dst="10.99.0.5")
    result = switch.process(vip_packet)
    rewritten = str(parse_layers(result.packet)["ipv4"].dst)
    print(f"  tenant 3 packet to virtual IP 10.99.0.5 "
          f"rewritten to {rewritten}, routed to port {result.egress_port}")
    print(f"  provider counter for that vIP: "
          f"{system.register('tenant_counters').read(2)} packets")

    # --- isolation proof points --------------------------------------------------
    print("\n-- isolation proof points --")
    # Behavior isolation is an API property: tenant 1's handle cannot
    # even name tenant 2's table.
    try:
        fw.table("cache")
    except TenantIsolationError as exc:
        print(f"  fw.table('cache') -> TenantIsolationError: {exc}")
    # Tenant 2's packets are processed only by tenant 2's rules: a GET
    # from the address tenant 1 blocks still flows (no cross-tenant
    # match — tenant 1's block rule is invisible to tenant 2).
    probe = netcache.make_get(2, 0xFEED)
    probe.write_bytes(30, bytes([10, 0, 0, 66]))  # src = tenant 1's blocked IP
    result = switch.process(probe)
    print(f"  tenant 2 packet from tenant 1's blocked address: "
          f"forwarded={result.forwarded} (tenant 1's ACL is invisible)")
    # Stateful memory is physically partitioned:
    chain_stats = chain.stats()
    seq_stage, words = next(
        (s, p["stateful_words"])
        for s, p in chain_stats["partitions"].items()
        if p["stateful_words"][1] > p["stateful_words"][0])
    print(f"  tenant 3's sequencer lives at physical words "
          f"[{words[0]}, {words[1]}) of stage {seq_stage}; tenant 2's "
          f"segment cannot reach it")


if __name__ == "__main__":
    main()
