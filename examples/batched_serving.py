#!/usr/bin/env python3
"""Batched serving: the engine + workload subsystem end-to-end.

Serves zipf-distributed flow traffic from two tenants through the
batched execution engine (`repro.engine`), showing:

* per-VID sharded dispatch and per-tenant engine counters,
* the flow cache turning skewed traffic into mostly cache hits,
* transactional invalidation — a `tenant.transaction()` commit flushes
  the tenant's cached flows, so the very next packet observes the new
  rules (never a stale cached verdict).

Run:  python examples/batched_serving.py
"""

import random
import time

from repro.api import Switch
from repro.traffic import TraceReplayer, ZipfFlows, flow_stream, workload


def main() -> None:
    switch = Switch.build().create()
    fw_spec, qos_spec = workload("firewall"), workload("qos")
    fw = fw_spec.admit(switch, vid=1)
    qos_spec.admit(switch, vid=2)
    engine = switch.engine(cache_capacity=1024)

    # -- skewed flow traffic, interleaved across the two tenants ---------
    rng = random.Random(42)
    pkts = []
    for fw_pkt, qos_pkt in zip(
            flow_stream(fw_spec, 1, rng, 2000, ZipfFlows(256, skew=0.99)),
            flow_stream(qos_spec, 2, rng, 2000, ZipfFlows(64, skew=0.9))):
        pkts.extend((fw_pkt, qos_pkt))

    start = time.perf_counter()
    results = TraceReplayer(pkts).replay(engine, batch_size=256)
    elapsed = time.perf_counter() - start

    forwarded = sum(r.forwarded for r in results)
    print(f"served {len(results)} packets in {elapsed * 1e3:.1f} ms "
          f"({len(results) / elapsed:,.0f} pps), {forwarded} forwarded")
    print(f"flow cache: {engine.counters.cache_hits} hits / "
          f"{engine.counters.cache_misses} misses "
          f"(hit rate {engine.counters.hit_rate:.1%})")
    for vid, c in sorted(engine.counters.per_tenant.items()):
        print(f"  tenant {vid}: {c.packets} pkts, {c.cache_hits} hits, "
              f"{c.drops} drops, {c.bytes_out} bytes out")

    # -- transactional invalidation --------------------------------------
    probe = fw_spec.flow_packet(1, 1)          # flow 1 is allowed -> port 2
    before = engine.process(probe.copy())
    assert before.cache_hit and before.egress_port == 2
    acl = fw.table("acl")
    with fw.transaction() as txn:
        for handle in acl.handles():
            txn.table("acl").delete(handle)    # drop every ACL rule
    after = engine.process(probe.copy())
    print(f"\nafter transactional rule wipe: cache_hit={after.cache_hit}, "
          f"egress {before.egress_port} -> {after.egress_port} (default)")
    assert not after.cache_hit and after.egress_port == 0


if __name__ == "__main__":
    main()
