#!/usr/bin/env python3
"""NetChain scenario: in-network sequencing for distributed coordination.

Reproduces the NetChain idea (NSDI'18) on the Menshen pipeline: clients
racing to acquire a lease send coordination packets through the switch,
which assigns each a globally-ordered sequence number from stateful
memory in a single pipeline pass — no server round trip. The demo shows
(a) strict monotonic ordering under interleaved clients, (b) a second
tenant's sequencer being completely independent (segment-table
isolation), and (c) control-plane reset of the sequencer.

Run:  python examples/netchain_sequencer.py
"""

from repro.core import MenshenPipeline
from repro.modules import netchain
from repro.runtime import MenshenController


def main() -> None:
    pipeline = MenshenPipeline()
    controller = MenshenController(pipeline)

    # Two tenants, each running their own NetChain sequencer.
    controller.load_module(1, netchain.P4_SOURCE, "tenantA-chain")
    netchain.install_entries(controller, 1, port=1)
    controller.load_module(2, netchain.P4_SOURCE, "tenantB-chain")
    netchain.install_entries(controller, 2, port=2)

    # Interleaved clients of tenant A race for sequence numbers.
    print("tenant A: three clients racing (interleaved packets)")
    assignments = {"client1": [], "client2": [], "client3": []}
    order = ["client1", "client2", "client1", "client3", "client2",
             "client3", "client1", "client2", "client3"]
    for client in order:
        result = pipeline.process(netchain.make_packet(1))
        assignments[client].append(netchain.read_seq(result.packet))
    for client, seqs in assignments.items():
        print(f"  {client}: {seqs}")
    all_seqs = sorted(s for seqs in assignments.values() for s in seqs)
    assert all_seqs == list(range(1, len(order) + 1)), \
        "sequence numbers must be gapless and unique"
    print(f"  global order is gapless: 1..{len(order)}")

    # Tenant B's sequencer is unaffected by tenant A's traffic.
    result = pipeline.process(netchain.make_packet(2))
    seq_b = netchain.read_seq(result.packet)
    print(f"tenant B's first sequence number: {seq_b} "
          f"(independent of tenant A's {len(order)} requests)")
    assert seq_b == 1

    # The two sequencers live in disjoint physical stateful memory.
    for vid, name in [(1, "A"), (2, "B")]:
        loaded = controller.modules[vid]
        stage = loaded.compiled.registers["sequencer"].stage
        alloc = loaded.allocation.stage(stage)
        value = controller.register_read(vid, "sequencer")
        print(f"  tenant {name} sequencer: stage {stage} words "
              f"[{alloc.stateful_base}, {alloc.stateful_end}), "
              f"value {value}")

    # Control-plane epoch reset (e.g. after failover).
    controller.register_write(1, "sequencer", 0, 0)
    result = pipeline.process(netchain.make_packet(1))
    print(f"after epoch reset, tenant A restarts at "
          f"{netchain.read_seq(result.packet)}")


if __name__ == "__main__":
    main()
