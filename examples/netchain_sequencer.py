#!/usr/bin/env python3
"""NetChain scenario: in-network sequencing for distributed coordination.

Reproduces the NetChain idea (NSDI'18) on the Menshen pipeline: clients
racing to acquire a lease send coordination packets through the switch,
which assigns each a globally-ordered sequence number from stateful
memory in a single pipeline pass — no server round trip. The demo shows
(a) strict monotonic ordering under interleaved clients, (b) a second
tenant's sequencer being completely independent (segment-table
isolation), and (c) control-plane reset of the sequencer.

Run:  python examples/netchain_sequencer.py
"""

from repro.api import Switch
from repro.modules import netchain


def main() -> None:
    switch = Switch.build().create()

    # Two tenants, each running their own NetChain sequencer.
    tenant_a = switch.admit("tenantA-chain", netchain.P4_SOURCE, vid=1)
    netchain.install(tenant_a, port=1)
    tenant_b = switch.admit("tenantB-chain", netchain.P4_SOURCE, vid=2)
    netchain.install(tenant_b, port=2)

    # Interleaved clients of tenant A race for sequence numbers.
    print("tenant A: three clients racing (interleaved packets)")
    assignments = {"client1": [], "client2": [], "client3": []}
    order = ["client1", "client2", "client1", "client3", "client2",
             "client3", "client1", "client2", "client3"]
    for client in order:
        result = switch.process(netchain.make_packet(1))
        assignments[client].append(netchain.read_seq(result.packet))
    for client, seqs in assignments.items():
        print(f"  {client}: {seqs}")
    all_seqs = sorted(s for seqs in assignments.values() for s in seqs)
    assert all_seqs == list(range(1, len(order) + 1)), \
        "sequence numbers must be gapless and unique"
    print(f"  global order is gapless: 1..{len(order)}")

    # Tenant B's sequencer is unaffected by tenant A's traffic.
    result = switch.process(netchain.make_packet(2))
    seq_b = netchain.read_seq(result.packet)
    print(f"tenant B's first sequence number: {seq_b} "
          f"(independent of tenant A's {len(order)} requests)")
    assert seq_b == 1

    # The two sequencers live in disjoint physical stateful memory.
    for tenant, label in [(tenant_a, "A"), (tenant_b, "B")]:
        stage, words = next(
            (s, p["stateful_words"])
            for s, p in tenant.stats()["partitions"].items()
            if p["stateful_words"][1] > p["stateful_words"][0])
        value = tenant.register("sequencer").read()
        print(f"  tenant {label} sequencer: stage {stage} words "
              f"[{words[0]}, {words[1]}), value {value}")

    # Control-plane epoch reset (e.g. after failover).
    tenant_a.register("sequencer").write(0, 0)
    result = switch.process(netchain.make_packet(1))
    print(f"after epoch reset, tenant A restarts at "
          f"{netchain.read_seq(result.packet)}")


if __name__ == "__main__":
    main()
