#!/usr/bin/env python3
"""Chaos & recovery: a spine crash, stranded tenants, a post-mortem.

Two tenants stream across a 2-leaf/2-spine Clos, one pinned through
each spine. A :class:`~repro.chaos.ChaosSchedule` crashes ``spine0``
mid-run — tenant 2's packets in flight on the dead uplink are lost and
counted on the unified :class:`~repro.exec.LostRecord` path. A
:class:`~repro.chaos.RecoveryController` detects the stranded tenant
after its detection delay and re-places it onto ``spine1`` via the
live migration machinery, draining the stale queues and re-arming its
weight; the schedule later restores the spine. The run ends with a
typed :class:`~repro.chaos.PostMortemReport` that attributes every
lost packet to the fault that caused it.

Run:  python examples/chaos_recovery.py
"""

from repro.chaos import ChaosController, ChaosSchedule, \
    RecoveryController
from repro.fabric import leaf_spine
from repro.modules import calc
from repro.sim import FabricTimelineExperiment
from repro.traffic import TrafficMatrix

HOSTS = 4
PACKET_SIZE = 500
PPS = 5e4
DURATION_S = 16e-3
BIN_S = 1e-3
CRASH_AT = 5e-3
DETECTION_S = 2e-3
RESTORE_AT = 12e-3


def main() -> None:
    fabric = leaf_spine(leaves=2, spines=2, hosts_per_leaf=HOSTS)
    tenants = {}
    matrix = TrafficMatrix()
    for vid, spine in ((1, "spine1"), (2, "spine0")):
        tenant = fabric.tenant(
            f"tenant{vid}", calc.P4_SOURCE, vid=vid,
            installer=lambda t, port: calc.install(t, port=port))
        tenant.place(("leaf0", vid - 1), ("leaf1", vid - 1),
                     via=(spine,))
        tenants[vid] = tenant
        matrix.add(vid, ("leaf0", vid - 1), ("leaf1", vid - 1),
                   offered_bps=PPS * (PACKET_SIZE + 24) * 8,
                   packet_size=PACKET_SIZE,
                   make_packet=lambda vid=vid: calc.make_packet(
                       vid, calc.OP_ADD, vid, vid, pad_to=PACKET_SIZE))

    schedule = ChaosSchedule()
    schedule.crash_switch("spine0", CRASH_AT)
    schedule.restore_switch("spine0", RESTORE_AT)
    print(f"chaos schedule: {schedule}")

    controller = ChaosController(
        fabric, recovery=RecoveryController(
            fabric, detection_delay_s=DETECTION_S))
    experiment = FabricTimelineExperiment(fabric, matrix,
                                          duration_s=DURATION_S,
                                          bin_s=BIN_S)
    controller.arm(experiment, schedule)
    result = experiment.run()

    print("\nper-tenant delivered throughput (Gbps per 1 ms bin):")
    for vid in (1, 2):
        series = " ".join(f"{t:4.2f}"
                          for t in result.throughput_gbps[vid])
        print(f"  tenant {vid}: {series}")
        print(f"           delivered={result.delivered.get(vid, 0)} "
              f"lost={result.lost.get(vid, 0)}")

    post_mortem = controller.post_mortem(result)
    print("\npost-mortem:")
    for event_report in post_mortem.events:
        event = event_report.event
        print(f"  t={event.time_s * 1e3:.1f} ms: {event.kind} "
              f"{'/'.join(event.target)} — "
              f"{event_report.packets_lost} packets lost, "
              f"victims {list(event_report.victims) or 'none'}")
        for rep in event_report.replaced:
            print(f"           tenant {rep.vid} re-placed "
                  f"{' -> '.join(rep.old_route)}  ==>  "
                  f"{' -> '.join(rep.new_route)} "
                  f"(latency {rep.recovery_latency_s * 1e3:.1f} ms, "
                  f"drained {rep.drained}, "
                  f"state lost on {list(rep.state_lost) or 'nothing'})")

    # The bystander never lost a packet; the victim was re-placed onto
    # the surviving spine and every loss is attributed to the crash.
    assert result.lost.get(1, 0) == 0
    replaced, = post_mortem.replaced()
    assert replaced.vid == 2 and replaced.recovered
    assert tenants[2].routes == [["leaf0", "spine1", "leaf1"]]
    assert post_mortem.unattributed == ()
    assert post_mortem.total_lost() == result.lost.get(2, 0)
    assert fabric.switch("spine0").up
    print("\ntenant 1 (untouched): zero losses through a spine crash, "
          "a recovery migration, and a restore next door")
    print(f"tenant 2 now routed via: "
          f"{' -> '.join(tenants[2].routes[0])}")


if __name__ == "__main__":
    main()
