#!/usr/bin/env python3
"""Live reconfiguration: update one tenant without disturbing the rest.

The Fig. 10 story as a narrative demo. Three tenants forward traffic;
mid-run, tenant 1's program is *replaced* (CALC -> QoS) through the full
§4.1 procedure — bitmap bit set, configuration rewritten through the
daisy chain (with an injected packet loss to exercise the counter-based
retry), bitmap cleared — and its new rules land in one transaction.
Tenants 2 and 3 never lose a packet. The same scenario on a
Tofino-style device would reset the whole pipeline and stall everyone
for ~50 ms.

Run:  python examples/live_reconfiguration.py
"""

from repro.api import Switch
from repro.modules import calc, qos
from repro.runtime import TofinoModel


def traffic_round(switch, stats, tag):
    """One round of all three tenants' traffic; records outcomes."""
    for vid in (1, 2, 3):
        packet = calc.make_packet(vid, calc.OP_ADD, vid * 10, 1)
        result = switch.process(packet)
        stats.setdefault(vid, []).append(
            (tag, "ok" if result.forwarded else result.drop_reason))


def main() -> None:
    switch = Switch.build().create()
    tenants = {}
    for vid in (1, 2, 3):
        tenants[vid] = switch.admit(f"tenant{vid}-calc", calc.P4_SOURCE,
                                    vid=vid)
        calc.install(tenants[vid], port=vid)

    stats = {}
    print("phase 1: all three tenants running CALC")
    for _ in range(3):
        traffic_round(switch, stats, "before")

    print("phase 2: updating tenant 1 to the QoS program "
          "(with one reconfiguration packet lost on purpose)")
    switch.pipeline.daisy_chain.drop_next(1)  # exercise detect-and-retry
    mark = switch.pipeline.parser_table.log_position

    # While tenant 1 is being updated, its packets drop; others flow.
    with tenants[1].updating():
        mid = calc.make_packet(1, calc.OP_ADD, 1, 1)
        result = switch.process(mid)
        print(f"  tenant 1 packet during update: dropped "
              f"({result.drop_reason})")
        check = switch.process(calc.make_packet(2, calc.OP_ADD, 7, 7))
        print(f"  tenant 2 packet during update: "
              f"forwarded={check.forwarded}")

    tenants[1].update(qos.P4_SOURCE)
    # New rules land as one batch under the §4.1 drop window: either
    # every class installs, or none do.
    with tenants[1].transaction() as txn:
        for table, entry in qos.entries():
            txn.table(table).insert(entry=entry)

    touched = switch.pipeline.parser_table.modules_written_since(mark)
    print(f"  overlay rows written during the update: modules {touched} "
          f"(no other tenant's row touched)")
    print(f"  reconfiguration packets lost and retried: "
          f"{switch.pipeline.daisy_chain.lost}")

    print("phase 3: tenant 1 now runs QoS; tenants 2-3 uninterrupted")
    voice = switch.process(qos.make_packet(1, 5060))
    print(f"  tenant 1 voice packet DSCP: {qos.read_dscp(voice.packet)} "
          f"(EF={qos.DSCP_EF})")
    for _ in range(3):
        for vid in (2, 3):
            result = switch.process(
                calc.make_packet(vid, calc.OP_SUB, 9, 4))
            assert result.forwarded
    print("  tenants 2-3: all packets forwarded, results intact")

    tofino = TofinoModel()
    print("\ncomparison: on Tofino, updating tenant 1 would disrupt "
          f"modules {sorted(tofino.update_disruption([1, 2, 3], 1))} "
          f"for {tofino.disruption_window_s() * 1e3:.0f} ms (Fast Refresh)")


if __name__ == "__main__":
    main()
