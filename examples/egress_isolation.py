#!/usr/bin/env python3
"""Egress isolation: weighted-fair scheduling + rate limiting (§3.5).

One bursty "elephant" tenant floods the switch while three mice send
steadily. On the old per-port FIFO path the elephant's backlog drains
first and the mice starve; the batched serving path now routes egress
through a PIFO/STFQ scheduler (`switch.engine()` installs it by
default), so each tenant's share of the output link follows its
configured weight — and a token-bucket rate limit can cap the elephant
outright.

Run:  python examples/egress_isolation.py
"""

from repro.api import Switch
from repro.modules import calc

WEIGHTS = {1: 1.0, 2: 1.0, 3: 2.0, 4: 4.0}
PORT = 1


def offered(rounds):
    """8 elephant packets + one per mouse, per round."""
    pkts = []
    for i in range(rounds):
        pkts += [calc.make_packet(1, calc.OP_ADD, i, j, pad_to=1000)
                 for j in range(8)]
        pkts += [calc.make_packet(vid, calc.OP_ADD, i, i, pad_to=1000)
                 for vid in (2, 3, 4)]
    return pkts


def main() -> None:
    switch = Switch.build().create()
    for vid, weight in WEIGHTS.items():
        tenant = switch.admit(f"tenant{vid}", calc.P4_SOURCE, vid=vid)
        calc.install(tenant, port=PORT)
        tenant.set_weight(weight)

    engine = switch.engine()          # installs the egress scheduler
    engine.process_batch(offered(rounds=200))

    scheduler = switch.egress_scheduler
    print("queued per tenant:",
          {vid: scheduler.queue_depth(vid) for vid in WEIGHTS})

    # Serve a contended slice of the link and compare achieved shares
    # with the configured weights.
    served = scheduler.drain_bytes(PORT, budget_bytes=200 * 1000)
    total = sum(served.values())
    total_weight = sum(WEIGHTS.values())
    print("\nweighted-fair shares under an 8x elephant (tenant 1):")
    for vid in sorted(WEIGHTS):
        print(f"  tenant {vid}: weight {WEIGHTS[vid]:.0f} -> "
              f"share {served.get(vid, 0) / total:5.1%} "
              f"(target {WEIGHTS[vid] / total_weight:5.1%})")

    # Rate-limit the elephant to 10% of a 1 Gbit/s link and watch the
    # token bucket cap it while the mice absorb the slack.
    scheduler.line_rate_bps = 1e9
    switch.tenant(1).set_rate_limit(12_500_000, burst_bytes=3000)
    engine.process_batch(offered(rounds=200))
    horizon, start = 0.02, scheduler.clock
    by_vid = {}
    for dep in scheduler.advance_to(start + horizon):
        by_vid[dep.module_id] = by_vid.get(dep.module_id, 0) + len(dep.packet)
    print("\nwith tenant 1 rate-limited to 100 Mbit/s:")
    for vid in sorted(WEIGHTS):
        mbps = by_vid.get(vid, 0) * 8 / horizon / 1e6
        print(f"  tenant {vid}: {mbps:6.1f} Mbit/s")

    stats = switch.tenant(1).counters()
    print(f"\ntenant 1 counters: egress_bytes_tx={stats.egress_bytes_tx}, "
          f"egress_queue_depth={stats.egress_queue_depth}")


if __name__ == "__main__":
    main()
