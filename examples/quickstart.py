#!/usr/bin/env python3
"""Quickstart: load one P4 module onto a Menshen switch and push packets.

This is the 5-minute tour of the ``repro.api`` facade: build a switch,
admit the CALC module (the P4-tutorial calculator) as a tenant, install
match-action entries through the tenant handle, and watch packets come
back with results — all through the same reconfiguration-packet path
the hardware uses.

Run:  python examples/quickstart.py
"""

from repro.api import Switch
from repro.modules import calc


def main() -> None:
    # 1. A Menshen switch: RMT + isolation primitives (5 stages,
    #    32-module overlays, segment tables, packet filter, daisy chain),
    #    wrapped in the unified tenant-session API.
    switch = Switch.build().stages(5).create()

    # 2. Compile and admit the CALC module as tenant VID 7. Under the
    #    hood this runs the P4-16 compiler, partitions CAM/stateful
    #    memory, and streams every configuration row through the daisy
    #    chain with the bitmap/counter protocol of §4.1.
    tenant = switch.admit("calc", calc.P4_SOURCE, vid=7)
    print(f"admitted tenant {tenant.name!r} as VID {tenant.vid}")
    print("  stages used:", tenant.stats()["stages"])
    print("  reconfiguration packets sent:",
          switch.interface.stats.packets_sent)

    # 3. Install match-action entries through the tenant handle
    #    (typed entries; the handle can only ever touch this VID).
    calc.install(tenant, port=2)
    print("installed ADD/SUB/ECHO entries "
          f"({tenant.table('calc_table').occupancy()} rows)")

    # 4. Send calculator packets: op | operand_a | operand_b | result.
    for op, a, b in [(calc.OP_ADD, 100, 23), (calc.OP_SUB, 50, 8),
                     (calc.OP_ECHO, 42, 0)]:
        packet = calc.make_packet(7, op, a, b)
        result = switch.process(packet)
        name = {calc.OP_ADD: "ADD", calc.OP_SUB: "SUB",
                calc.OP_ECHO: "ECHO"}[op]
        print(f"  {name}({a}, {b}) -> {calc.read_result(result.packet)} "
              f"(egress port {result.egress_port})")

    # 5. Packets from unknown tenants are dropped by the packet filter.
    stranger = calc.make_packet(9, calc.OP_ADD, 1, 1)
    result = switch.process(stranger)
    print(f"unknown VID 9 packet: dropped={result.dropped} "
          f"({result.drop_reason})")

    print("\ntenant counters:", tenant.counters())
    print("switch stats:", switch.stats())


if __name__ == "__main__":
    main()
