#!/usr/bin/env python3
"""Quickstart: load one P4 module onto a Menshen pipeline and push packets.

This is the 5-minute tour: build a pipeline, compile and load the CALC
module (the P4-tutorial calculator), install match-action entries, and
watch packets come back with results — all through the same
reconfiguration-packet path the hardware uses.

Run:  python examples/quickstart.py
"""

from repro.core import MenshenPipeline
from repro.modules import calc
from repro.runtime import MenshenController


def main() -> None:
    # 1. A Menshen pipeline: RMT + isolation primitives (5 stages,
    #    32-module overlays, segment tables, packet filter, daisy chain).
    pipeline = MenshenPipeline()
    controller = MenshenController(pipeline)

    # 2. Compile and load the CALC module as tenant VID 7. Under the
    #    hood this runs the P4-16 compiler, partitions CAM/stateful
    #    memory, and streams every configuration row through the daisy
    #    chain with the bitmap/counter protocol of §4.1.
    controller.load_module(7, calc.P4_SOURCE, "calc")
    print("loaded module 'calc' as VID 7")
    print("  stages used:",
          controller.modules[7].compiled.stages_used())
    print("  reconfiguration packets sent:",
          controller.interface.stats.packets_sent)

    # 3. Install match-action entries (P4Runtime-style).
    calc.install_entries(controller, 7, port=2)
    print("installed ADD/SUB/ECHO entries")

    # 4. Send calculator packets: op | operand_a | operand_b | result.
    for op, a, b in [(calc.OP_ADD, 100, 23), (calc.OP_SUB, 50, 8),
                     (calc.OP_ECHO, 42, 0)]:
        packet = calc.make_packet(7, op, a, b)
        result = pipeline.process(packet)
        name = {calc.OP_ADD: "ADD", calc.OP_SUB: "SUB",
                calc.OP_ECHO: "ECHO"}[op]
        print(f"  {name}({a}, {b}) -> {calc.read_result(result.packet)} "
              f"(egress port {result.egress_port})")

    # 5. Packets from unknown tenants are dropped by the packet filter.
    stranger = calc.make_packet(9, calc.OP_ADD, 1, 1)
    result = pipeline.process(stranger)
    print(f"unknown VID 9 packet: dropped={result.dropped} "
          f"({result.drop_reason})")

    print("\npipeline stats:", pipeline.stats.summary())


if __name__ == "__main__":
    main()
