"""Setuptools shim for environments without PEP 517 wheel support.

Project metadata lives in pyproject.toml; this file only enables legacy
``pip install -e . --no-use-pep517`` in offline environments.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Menshen reproduction: isolation mechanisms for high-speed "
        "packet-processing (RMT) pipelines (NSDI 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
