"""Fabric-scale reconfiguration disruption: Fig. 10 across a Clos.

The paper's headline isolation property — reconfiguring one tenant
does not disturb the others — demonstrated on a 3-leaf/1-spine fabric
under *live churn*: mid-run, one tenant's program is replaced in place
(:meth:`~repro.fabric.tenant.FabricTenant.update`, the §4.1 procedure
fanned out across its route) and another tenant is *migrated* to a
different leaf (:meth:`~repro.fabric.tenant.FabricTenant.migrate`:
admit on the new leaf, re-steer the shared spine, evict the abandoned
leaf), both firing inside the running event-driven timeline via
:class:`repro.sim.FabricReconfigEvent`.

Gates:

* **isolation gate** — every *untouched* tenant's per-bin delivered
  throughput stays within ``TOLERANCE`` (5%) of its steady-state share
  in every bin overlapping the churn windows;
* **disruption gate** — the churned tenants *do* drop packets during
  their own §4.1 windows (the experiment is not vacuous) and recover
  to their steady share afterwards;
* **migration gate** — the migrated tenant's traffic exits on the new
  leaf after the move, and the abandoned leaf's module slot is
  released.

(The engine-throughput gate guarding the serving path itself lives in
``benchmarks/bench_engine_throughput.py`` and must stay within its
existing bound after the execution-core refactor.)
"""

from __future__ import annotations

from conftest import report
from repro.fabric import leaf_spine
from repro.modules import calc
from repro.sim import FabricTimelineExperiment
from repro.traffic import ChurnSchedule, TrafficMatrix

HOSTS = 4
PACKET_SIZE = 500
PPS = 5e4                  #: per tenant — 50 packets per bin
DURATION_S = 20e-3
BIN_S = 1e-3
TOLERANCE = 0.05

UPDATED_VID = 3            #: live program update at UPDATE_AT
MIGRATED_VID = 4           #: leaf1 -> leaf2 migration at MIGRATE_AT
UPDATE_AT = 8e-3
MIGRATE_AT = 12e-3
WINDOW_S = 1e-3            #: §4.1 window held per churn action
UNTOUCHED = (1, 2)


def _build():
    fabric = leaf_spine(leaves=3, spines=1, hosts_per_leaf=HOSTS)
    tenants = {}
    for vid in (1, 2, UPDATED_VID, MIGRATED_VID):
        tenant = fabric.tenant(
            f"calc{vid}", calc.P4_SOURCE, vid=vid,
            installer=lambda t, port: calc.install(t, port=port))
        tenant.place(("leaf0", vid - 1), ("leaf1", vid - 1))
        tenant.set_weight(1.0)
        tenants[vid] = tenant
    return fabric, tenants


def _matrix(vids):
    matrix = TrafficMatrix()
    for vid in vids:
        matrix.add(vid, ("leaf0", vid - 1), ("leaf1", vid - 1),
                   offered_bps=PPS * (PACKET_SIZE + 24) * 8,
                   packet_size=PACKET_SIZE,
                   make_packet=lambda vid=vid: calc.make_packet(
                       vid, calc.OP_ADD, vid, vid + 1,
                       pad_to=PACKET_SIZE))
    return matrix


def _steady_reference(result, vid, spans):
    """Mean per-bin throughput outside every churn span and away from
    the run's edge bins (arrival phase / drain tail)."""
    bins = []
    for b, t in zip(result.bins, result.throughput_gbps[vid]):
        if b <= result.bins[0] or b + result.bin_s > DURATION_S:
            continue
        if any(lo <= b + result.bin_s and b <= hi for lo, hi in spans):
            continue
        bins.append(t)
    assert bins, f"no steady bins for tenant {vid}"
    return sum(bins) / len(bins)


def test_fabric_churn_isolation():
    fabric, tenants = _build()
    schedule = ChurnSchedule()
    schedule.update(UPDATED_VID, at_s=UPDATE_AT, duration_s=WINDOW_S)
    schedule.migrate(MIGRATED_VID, at_s=MIGRATE_AT, duration_s=WINDOW_S)

    def apply(event):
        if event.kind == "update":
            tenants[event.vid].update(calc.P4_SOURCE)
        elif event.kind == "migrate":
            tenants[event.vid].migrate(dst=("leaf2", event.vid - 1))

    experiment = FabricTimelineExperiment(
        fabric, _matrix([1, 2, UPDATED_VID, MIGRATED_VID]),
        duration_s=DURATION_S, bin_s=BIN_S)
    experiment.schedule_churn(schedule, apply)
    result = experiment.run()

    spans = [(UPDATE_AT, UPDATE_AT + WINDOW_S),
             (MIGRATE_AT, MIGRATE_AT + WINDOW_S)]
    rows = []
    ok = True

    # Isolation gate: untouched tenants hold their share in every bin
    # overlapping a neighbor's churn.
    for vid in UNTOUCHED:
        steady = _steady_reference(result, vid, spans)
        churn_bins = [
            t for b, t in zip(result.bins, result.throughput_gbps[vid])
            if any(lo <= b + BIN_S and b <= hi for lo, hi in spans)]
        worst = max(abs(t - steady) / steady for t in churn_bins)
        within = worst <= TOLERANCE
        ok = ok and within
        rows.append({"tenant": vid, "role": "untouched",
                     "steady_gbps": round(steady, 4),
                     "worst_bin_dev": round(worst, 4),
                     "drops": result.drops.get(vid, 0),
                     "within_5pct": within})

    # Disruption gate: the churned tenants take their own §4.1 hit and
    # recover afterwards.
    for vid, (lo, hi) in ((UPDATED_VID, spans[0]),
                          (MIGRATED_VID, spans[1])):
        steady = _steady_reference(result, vid, spans)
        inside = result.throughput_inside(vid, (lo, hi))
        after = result.throughput_inside(
            vid, (hi + BIN_S, DURATION_S - BIN_S))
        dipped = min(inside) < steady * 0.9 if inside else False
        recovered = after and abs(after[-1] - steady) / steady \
            <= TOLERANCE
        ok = ok and dipped and recovered \
            and result.drops.get(vid, 0) > 0
        rows.append({"tenant": vid,
                     "role": ("updated" if vid == UPDATED_VID
                              else "migrated"),
                     "steady_gbps": round(steady, 4),
                     "worst_bin_dev": round(
                         max(abs(t - steady) / steady
                             for t in inside), 4) if inside else "-",
                     "drops": result.drops.get(vid, 0),
                     "within_5pct": "(disrupted by design)"})

    report("fabric_churn",
           "Fabric churn: per-bin shares under live update + migration",
           rows)
    assert ok, rows

    # Migration gate: traffic landed on the new leaf, slot released.
    assert tenants[MIGRATED_VID].switches() == \
        ["leaf0", "spine0", "leaf2"]
    follow_up = fabric.process_batch(
        [("leaf0", calc.make_packet(MIGRATED_VID, calc.OP_ADD, 1, 2,
                                    pad_to=PACKET_SIZE))])
    deliveries = [d for d in follow_up.delivered
                  if d.vid == MIGRATED_VID]
    assert [(d.switch, d.port) for d in deliveries] == \
        [("leaf2", MIGRATED_VID - 1)]
    assert result.lost_records() == []  # churn, not link failure


def test_churn_free_baseline_is_steady_everywhere():
    """Control: without churn, every tenant holds its share in every
    interior bin — the gate's tolerance is not hiding noise."""
    fabric, _tenants = _build()
    result = FabricTimelineExperiment(
        fabric, _matrix([1, 2, 3, 4]),
        duration_s=DURATION_S, bin_s=BIN_S).run()
    for vid in (1, 2, 3, 4):
        steady = _steady_reference(result, vid, spans=[])
        interior = [
            t for b, t in zip(result.bins, result.throughput_gbps[vid])
            if result.bins[0] < b and b + BIN_S <= DURATION_S]
        assert max(abs(t - steady) / steady for t in interior) \
            <= TOLERANCE, (vid, steady, interior)
        assert result.drops.get(vid, 0) == 0