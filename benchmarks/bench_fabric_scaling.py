"""Near-linear core scaling of the sharded parallel backend.

The tentpole gate for :mod:`repro.exec.parallel`: a leaf-spine fabric
under a full-length timeline run, executed once on the serial oracle
and once sharded across worker processes, must produce **identical
results** (per-tenant deliveries, drops, loss records, per-switch
pipeline counters) while the wall clock drops near-linearly with
cores.

Two configurations, picked by core count (or forced with
``REPRO_BENCH_SCALING_FULL=1``):

* **full** (>= 4 cores) — the paper-scale claim: 32 switches
  (24 leaves / 8 spines, enlarged CAM/VLIW/overlay depths), 1000
  tenants spread over every leaf pair and pinned round-robin across
  the spines, >= 1e6 packets over a 1-second timeline, serial vs.
  4+ workers. Gate: **speedup >= 3x** with bit-identical results.
* **smoke** (fewer cores, and the CI gate) — 6 switches, 24 tenants,
  ~24k packets, 2 workers. The parity gate is identical; the speedup
  is recorded (and only gated above 1x when a second core exists —
  on one core the extra processes just take turns).

Every knob is env-overridable (``REPRO_BENCH_SCALING_LEAVES`` /
``_SPINES`` / ``_TENANTS`` / ``_PACKETS`` / ``_WORKERS``) so bigger
machines can probe the scaling curve without editing the bench.

Round economics: lookahead = the 1 ms link propagation delay, so the
1-second full run costs ~1000 conservative-sync rounds — the barrier
overhead the speedup gate absorbs.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import replace

from conftest import report
from repro.api import Switch
from repro.fabric import Fabric, leaf_spine
from repro.modules import calc
from repro.rmt.params import DEFAULT_PARAMS
from repro.sim import FabricTimelineExperiment
from repro.traffic import TrafficMatrix

CORES = os.cpu_count() or 1
FULL = os.environ.get("REPRO_BENCH_SCALING_FULL", "") == "1" \
    or CORES >= 4


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(f"REPRO_BENCH_SCALING_{name}", default))


if FULL:
    LEAVES = _env_int("LEAVES", 24)
    SPINES = _env_int("SPINES", 8)
    TENANTS = _env_int("TENANTS", 1000)
    PACKETS = _env_int("PACKETS", 1_000_000)
    WORKERS = _env_int("WORKERS", max(4, min(CORES, 8)))
    SPEEDUP_GATE = 3.0
else:
    LEAVES = _env_int("LEAVES", 4)
    SPINES = _env_int("SPINES", 2)
    TENANTS = _env_int("TENANTS", 24)
    PACKETS = _env_int("PACKETS", 24_000)
    WORKERS = _env_int("WORKERS", 2)
    SPEEDUP_GATE = 1.0 if CORES >= 2 else None

HOSTS_PER_LEAF = 4
PACKET_SIZE = 300
DURATION_S = 1.0
LINK_DELAY_S = 1e-3        #: the conservative-sync lookahead
LINK_RATE_BPS = 100e9


def _make_packet(vid: int):
    return calc.make_packet(vid, calc.OP_ADD, vid, 1,
                            pad_to=PACKET_SIZE)


def _next_pow2(n: int) -> int:
    depth = 1
    while depth < n:
        depth *= 2
    return depth


def _builder():
    """Member switches sized for TENANTS concurrent modules.

    The overlay depth must cover the VID *namespace* (module tables
    are VID-indexed), while CAM/VLIW depths scale with the busiest
    switch's *hosted* module count — ~``2 * TENANTS / LEAVES`` on a
    leaf, ``TENANTS / SPINES`` on a spine, at 3 entries per calc
    module — instead of the Table-5 defaults (32 modules / 16
    entries)."""
    overlay = _next_pow2(TENANTS + 1)
    hosted = max(2 * TENANTS // LEAVES, TENANTS // SPINES) + 4
    entries = _next_pow2(3 * hosted)
    params = replace(DEFAULT_PARAMS,
                     match_entries_per_stage=entries,
                     vliw_entries_per_stage=entries)
    return Switch.build().params(params).max_modules(overlay)


def _build() -> tuple:
    fabric = leaf_spine(leaves=LEAVES, spines=SPINES,
                        hosts_per_leaf=HOSTS_PER_LEAF,
                        link_capacity_bps=LINK_RATE_BPS,
                        link_delay_s=LINK_DELAY_S,
                        make_builder=_builder)
    matrix = TrafficMatrix()
    pps = PACKETS / TENANTS / DURATION_S
    offered_bps = pps * (PACKET_SIZE + 24) * 8
    for i in range(TENANTS):
        vid = i + 1
        src_leaf = i % LEAVES
        dst_leaf = (i + 1 + i // LEAVES) % LEAVES
        if dst_leaf == src_leaf:
            dst_leaf = (dst_leaf + 1) % LEAVES
        spine = i % SPINES
        tenant = fabric.tenant(f"t{vid}", calc.P4_SOURCE, vid=vid,
                               installer=calc.install)
        tenant.place((f"leaf{src_leaf}", i % HOSTS_PER_LEAF),
                     (f"leaf{dst_leaf}", i % HOSTS_PER_LEAF),
                     via=[f"spine{spine}"])
        matrix.add(vid, (f"leaf{src_leaf}", i % HOSTS_PER_LEAF),
                   (f"leaf{dst_leaf}", i % HOSTS_PER_LEAF),
                   offered_bps=offered_bps, packet_size=PACKET_SIZE,
                   make_packet=functools.partial(_make_packet, vid))
    return fabric, matrix


def _run(backend: str, workers=None):
    fabric, matrix = _build()
    experiment = FabricTimelineExperiment(
        fabric, matrix, duration_s=DURATION_S, backend=backend,
        workers=workers)
    start = time.perf_counter()
    result = experiment.run()
    wall_s = time.perf_counter() - start
    return result, fabric, wall_s


def test_parallel_backend_scales_and_stays_bit_identical():
    serial, fabric_s, serial_s = _run("serial")
    packets = sum(serial.delivered.values()) \
        + sum(serial.drops.values()) + sum(serial.lost.values())

    rows = [{"backend": "serial", "workers": 1, "switches":
             LEAVES + SPINES, "tenants": TENANTS, "packets": packets,
             "wall_s": round(serial_s, 3), "speedup": 1.0,
             "identical": "(oracle)"}]

    parallel, fabric_p, parallel_s = _run("process", workers=WORKERS)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")

    identical = (
        parallel.delivered == serial.delivered
        and parallel.drops == serial.drops
        and parallel.lost == serial.lost
        and parallel.lost_records() == serial.lost_records()
        and parallel.throughput_gbps == serial.throughput_gbps
        and fabric_p.stats() == fabric_s.stats()
        and all(fabric_p.tenant_counters(v + 1)
                == fabric_s.tenant_counters(v + 1)
                for v in range(TENANTS)))
    rows.append({"backend": "process", "workers": WORKERS,
                 "switches": LEAVES + SPINES, "tenants": TENANTS,
                 "packets": packets,
                 "wall_s": round(parallel_s, 3),
                 "speedup": round(speedup, 2),
                 "identical": identical})

    report("fabric_scaling",
           f"Sharded parallel backend: {LEAVES + SPINES}-switch "
           f"leaf-spine, {TENANTS} tenants "
           f"({'full' if FULL else 'smoke'}, {CORES} cores)",
           rows,
           headline={"mode": "full" if FULL else "smoke",
                     "workers": WORKERS, "packets": packets,
                     "serial_s": round(serial_s, 3),
                     "parallel_s": round(parallel_s, 3),
                     "speedup": round(speedup, 2),
                     "identical": identical})

    assert packets >= PACKETS * 0.9, \
        f"offered schedule too small: {packets} < {PACKETS}"
    assert identical, "parallel run diverged from the serial oracle"
    if SPEEDUP_GATE is not None:
        assert speedup >= SPEEDUP_GATE, \
            f"speedup {speedup:.2f}x below the {SPEEDUP_GATE}x gate " \
            f"({WORKERS} workers on {CORES} cores)"


def test_worker_count_clamps_to_fabric_size():
    """More workers than switches degrades to one switch per worker —
    no idle shards, still identical."""
    fabric = leaf_spine(leaves=2, spines=1, link_delay_s=LINK_DELAY_S)
    tenant = fabric.tenant("t1", calc.P4_SOURCE, vid=1,
                           installer=calc.install)
    tenant.place(("leaf0", 0), ("leaf1", 0))
    matrix = TrafficMatrix()
    matrix.add(1, ("leaf0", 0), ("leaf1", 0), offered_bps=1e8,
               packet_size=PACKET_SIZE,
               make_packet=functools.partial(_make_packet, 1))
    serial = FabricTimelineExperiment(
        fabric, matrix, duration_s=5e-3).run()

    fabric2 = leaf_spine(leaves=2, spines=1, link_delay_s=LINK_DELAY_S)
    tenant = fabric2.tenant("t1", calc.P4_SOURCE, vid=1,
                            installer=calc.install)
    tenant.place(("leaf0", 0), ("leaf1", 0))
    parallel = FabricTimelineExperiment(
        fabric2, matrix, duration_s=5e-3, backend="process",
        workers=64).run()
    assert parallel.delivered == serial.delivered
    assert parallel.drops == serial.drops
