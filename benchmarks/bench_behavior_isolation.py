"""§5.1 behavior isolation: the paper's two concurrent-module trios.

{CALC, Firewall, NetCache} and {Load Balancing, Source Routing,
NetChain} run simultaneously with interleaved traffic; each module must
behave exactly as it would alone. Also benchmarks the multi-module
forwarding rate of the behavioral pipeline.
"""

from __future__ import annotations

import pathlib
import sys

from conftest import report
from repro.api import Switch, Tenant
from repro.core import MenshenPipeline
from repro.engine import BatchEngine
from repro.modules import (
    calc,
    firewall,
    load_balancer,
    netcache,
    netchain,
    source_routing,
)
from repro.runtime import MenshenController
from repro.traffic import ZipfFlows, flow_stream, workload

# Randomized traffic derives from the repository-wide test seed.
sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tests"))
from seeds import rng as make_rng  # noqa: E402


def _trio_a():
    pipe = MenshenPipeline()
    ctl = MenshenController(pipe)
    ctl.load_module(1, calc.P4_SOURCE, "calc")
    calc.install(Tenant.attach(ctl, 1), port=1)
    ctl.load_module(2, firewall.P4_SOURCE, "firewall")
    firewall.install(Tenant.attach(ctl, 2), blocked=[("10.0.0.66", 53)],
                             allowed=[("10.0.0.1", 80, 4)])
    ctl.load_module(3, netcache.P4_SOURCE, "netcache")
    netcache.install(Tenant.attach(ctl, 3), cached=[(0xAAAA, 0, 42)])
    return pipe, ctl


def _trio_b():
    pipe = MenshenPipeline()
    ctl = MenshenController(pipe)
    ctl.load_module(1, load_balancer.P4_SOURCE, "lb")
    load_balancer.install(Tenant.attach(ctl, 1),
                                  flows=[("10.0.0.1", 1111, 2, 8001)])
    ctl.load_module(2, source_routing.P4_SOURCE, "srcroute")
    source_routing.install(Tenant.attach(ctl, 2))
    ctl.load_module(3, netchain.P4_SOURCE, "netchain")
    netchain.install(Tenant.attach(ctl, 3), port=6)
    return pipe, ctl


def test_behavior_isolation_trio_a(benchmark):
    pipe, _ctl = _trio_a()
    rounds = 50
    checks = {"calc_correct": 0, "firewall_block": 0, "firewall_allow": 0,
              "netcache_hit": 0}
    for i in range(rounds):
        r = pipe.process(calc.make_packet(1, calc.OP_ADD, i, i + 1))
        if calc.read_result(r.packet) == (2 * i + 1) % (1 << 32):
            checks["calc_correct"] += 1
        r = pipe.process(firewall.make_packet(2, "10.0.0.66", 53))
        if r.dropped:
            checks["firewall_block"] += 1
        r = pipe.process(firewall.make_packet(2, "10.0.0.1", 80))
        if r.forwarded and r.egress_port == 4:
            checks["firewall_allow"] += 1
        r = pipe.process(netcache.make_get(3, 0xAAAA))
        if netcache.read_value(r.packet) == 42:
            checks["netcache_hit"] += 1
    rows = [{"check": k, "passed": v, "of": rounds}
            for k, v in checks.items()]
    report("behavior_isolation_trio_a",
           "§5.1 behavior isolation: CALC + Firewall + NetCache", rows)
    assert all(v == rounds for v in checks.values())

    packet = calc.make_packet(1, calc.OP_ADD, 1, 2)
    benchmark(lambda: pipe.process(packet.copy()))


def test_behavior_isolation_trio_b(benchmark):
    pipe, _ctl = _trio_b()
    rounds = 50
    checks = {"lb_steered": 0, "srcroute_port": 0, "netchain_monotonic": 0}
    last_seq = 0
    for i in range(rounds):
        r = pipe.process(load_balancer.make_packet(1, "10.0.0.1", 1111))
        if r.egress_port == 2 and load_balancer.read_dport(r.packet) == 8001:
            checks["lb_steered"] += 1
        r = pipe.process(source_routing.make_packet(2, (i % 7) + 1))
        if r.egress_port == (i % 7) + 1:
            checks["srcroute_port"] += 1
        r = pipe.process(netchain.make_packet(3))
        seq = netchain.read_seq(r.packet)
        if seq == last_seq + 1:
            checks["netchain_monotonic"] += 1
        last_seq = seq
    rows = [{"check": k, "passed": v, "of": rounds}
            for k, v in checks.items()]
    report("behavior_isolation_trio_b",
           "§5.1 behavior isolation: LB + SourceRouting + NetChain", rows)
    assert all(v == rounds for v in checks.values())

    packet = netchain.make_packet(3)
    benchmark(lambda: pipe.process(packet.copy()))


def test_multi_module_forwarding_rate(benchmark):
    """Forwarding rate with three concurrent tenants, scalar vs engine.

    Traffic comes from the typed workload subsystem (zipf flow structure
    per tenant) instead of hand-rolled packet loops; the batched engine
    must agree with the scalar pipeline on every packet while serving
    the skewed share of it from its flow cache.
    """
    specs = [workload("calc"), workload("firewall"), workload("qos")]
    rng = make_rng(400)
    streams = [flow_stream(spec, vid, rng, 300,
                           ZipfFlows(spec.n_flows, skew=0.9))
               for vid, spec in enumerate(specs, start=1)]
    pkts = [p for trio in zip(*streams) for p in trio]

    def build():
        switch = Switch.build().create()
        for vid, spec in enumerate(specs, start=1):
            spec.admit(switch, vid=vid)
        return switch

    scalar = build()
    scalar_results = [scalar.process(p.copy()) for p in pkts]
    batched = build()
    engine = batched.engine()
    engine_results = engine.process_batch([p.copy() for p in pkts])

    agree = sum(
        a.dropped == b.dropped and a.egress_port == b.egress_port
        and (a.packet is None or a.packet.tobytes() == b.packet.tobytes())
        for a, b in zip(scalar_results, engine_results))
    rows = [{"path": "scalar", "packets": len(pkts), "agree": "-",
             "cache_hits": 0},
            {"path": "engine", "packets": len(pkts), "agree": agree,
             "cache_hits": engine.counters.cache_hits}]
    report("multi_module_forwarding_rate",
           "Multi-tenant forwarding: scalar vs batched engine", rows)
    assert agree == len(pkts)
    assert engine.counters.cache_hits > 0

    benchmark(lambda: engine.process_batch([p.copy() for p in pkts[:90]]))
