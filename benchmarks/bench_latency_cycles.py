"""§5.2 latency: pipeline cycles and nanoseconds vs. the paper's numbers,
plus a throughput benchmark of the behavioral simulator itself.

Paper calibration points: 64 B -> 79 cycles / 505.6 ns (NetFPGA) and
106 cycles / 424 ns (Corundum); 1500 B -> 146 cycles / ~934-960 ns and
112 cycles / ~448-516 ns.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.api import Tenant
from repro.core import MenshenPipeline
from repro.modules import calc
from repro.runtime import MenshenController
from repro.sim import CORUNDUM_LATENCY, NETFPGA_LATENCY

PAPER_POINTS = [
    # (platform, size, cycles, ns)
    ("netfpga", 64, 79, 505.6),
    ("netfpga", 1500, 146, 934.4),
    ("corundum", 64, 106, 424.0),
    ("corundum", 1500, 112, 448.0),
]


def test_latency_cycles_table(benchmark):
    rows = []
    for platform, size, paper_cycles, paper_ns in PAPER_POINTS:
        model = NETFPGA_LATENCY if platform == "netfpga" \
            else CORUNDUM_LATENCY
        rows.append({
            "platform": platform,
            "size_B": size,
            "paper_cycles": paper_cycles,
            "model_cycles": round(model.cycles(size), 1),
            "paper_ns": paper_ns,
            "model_ns": round(model.latency_ns(size), 1),
        })
    report("latency_cycles", "§5.2 latency: paper vs model", rows)
    for row in rows:
        assert row["model_cycles"] == pytest.approx(row["paper_cycles"],
                                                    abs=0.5)
    benchmark(lambda: [NETFPGA_LATENCY.cycles(s)
                       for s in range(64, 1501, 64)])


def test_behavioral_pipeline_packet_rate(benchmark):
    """How fast the *behavioral* simulator forwards packets — a sanity
    benchmark of the reproduction itself, not a paper figure."""
    pipe = MenshenPipeline()
    ctl = MenshenController(pipe)
    ctl.load_module(1, calc.P4_SOURCE, "calc")
    calc.install(Tenant.attach(ctl, 1))
    packet = calc.make_packet(1, calc.OP_ADD, 3, 4)

    def forward():
        return pipe.process(packet.copy())

    result = benchmark(forward)
    assert result.forwarded
