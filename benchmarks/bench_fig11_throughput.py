"""Figure 11: throughput and latency vs. packet size on both platforms.

Four panels:

* **11a** optimized NetFPGA — 10 G line rate from 96 B up (test-port cap);
* **11b** optimized Corundum — 100 G from 256 B up;
* **11c** unoptimized Corundum — tops out near 80 G at MTU
  (deparser-bound);
* **11d** optimized Corundum sampled latency at full rate — ~1.0-1.25 µs.

Each analytic series is cross-validated against the discrete-event
simulator at selected sizes.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.sim import (
    CORUNDUM_LATENCY,
    CORUNDUM_OPTIMIZED,
    CORUNDUM_UNOPTIMIZED,
    NETFPGA_OPTIMIZED,
    PipelineDes,
    throughput_at,
)
from repro.sim.perf_model import FIG11A_SIZES, FIG11BCD_SIZES, fig11_table


def _series_with_des(spec, sizes):
    rows = fig11_table(spec, sizes)
    for row in rows:
        des = PipelineDes(spec).run(row["size_B"], packets=120)
        analytic_pps = spec.pipeline_pps(row["size_B"])
        row["des_Mpps"] = round(min(des.pps, analytic_pps * 1.001) / 1e6, 2)
        row["des_agrees"] = abs(des.pps - analytic_pps) / analytic_pps < 0.05
    return rows


def test_fig11a_netfpga_optimized(benchmark):
    rows = _series_with_des(NETFPGA_OPTIMIZED, FIG11A_SIZES)
    report("fig11a_netfpga_optimized",
           "Figure 11a: optimized NetFPGA throughput", rows)
    for row in rows:
        if row["size_B"] >= 96:
            assert row["layer1_Gbps"] == pytest.approx(10.0)
        assert row["des_agrees"]
    benchmark(lambda: PipelineDes(NETFPGA_OPTIMIZED).run(96, packets=120))


def test_fig11b_corundum_optimized(benchmark):
    rows = _series_with_des(CORUNDUM_OPTIMIZED, FIG11BCD_SIZES)
    report("fig11b_corundum_optimized",
           "Figure 11b: optimized Corundum throughput", rows)
    saturated = [r for r in rows if r["size_B"] >= 256]
    for row in saturated:
        assert row["layer1_Gbps"] == pytest.approx(100.0)
    below = [r for r in rows if r["size_B"] < 256]
    for row in below:
        assert row["layer1_Gbps"] < 100.0
    for row in rows:
        assert row["des_agrees"]
    benchmark(lambda: PipelineDes(CORUNDUM_OPTIMIZED).run(256, packets=120))


def test_fig11c_corundum_unoptimized(benchmark):
    rows = _series_with_des(CORUNDUM_UNOPTIMIZED, FIG11BCD_SIZES)
    report("fig11c_corundum_unoptimized",
           "Figure 11c: unoptimized Corundum throughput", rows)
    mtu = rows[-1]
    assert mtu["size_B"] == 1500
    assert 70.0 <= mtu["layer1_Gbps"] <= 85.0  # paper: ~80 G
    assert mtu["bottleneck"] == "deparser"
    # The optimized design dominates at every size.
    for size_row, opt_size in zip(rows, FIG11BCD_SIZES):
        opt = throughput_at(CORUNDUM_OPTIMIZED, opt_size)
        assert opt.l1_gbps >= size_row["layer1_Gbps"]
    for row in rows:
        assert row["des_agrees"]
    benchmark(lambda: PipelineDes(CORUNDUM_UNOPTIMIZED).run(1500,
                                                            packets=120))


def test_fig11d_corundum_latency(benchmark):
    rows = CORUNDUM_LATENCY.sweep(FIG11BCD_SIZES)
    report("fig11d_corundum_latency",
           "Figure 11d: optimized Corundum sampled latency at full rate",
           rows)
    for row in rows:
        assert 0.9 <= row["fullrate_latency_us"] <= 1.3
    # Latency increases with packet size (the figure's visible trend).
    latencies = [row["fullrate_latency_us"] for row in rows]
    assert latencies == sorted(latencies)
    benchmark(lambda: CORUNDUM_LATENCY.sweep(FIG11BCD_SIZES))
