"""Figure 10: per-module throughput while module 1 is reconfigured.

Three CALC modules share a 10 G link with offered loads split 5:3:2 of
9.3 Gbit/s. At t = 0.5 s module 1 is reconfigured (its bitmap bit set,
configuration rewritten, bitmap cleared). The paper's claims, asserted
here: modules 2 and 3 see **no** throughput impact; module 1 drops only
during its own window and fully recovers. The Tofino Fast-Refresh
baseline stalls everyone (~50 ms) instead.
"""

from __future__ import annotations

from conftest import report
from repro.api import Tenant
from repro.core import MenshenPipeline
from repro.modules import calc
from repro.runtime import MenshenController
from repro.sim import ReconfigTimelineExperiment
from repro.traffic.workloads import fig10_workload

RECONFIG_START_S = 0.5
RECONFIG_DURATION_S = 1.5  # compile + configuration, Fig. 10's window


def _build(tofino: bool = False):
    pipe = MenshenPipeline()
    ctl = MenshenController(pipe)
    for vid in (1, 2, 3):
        ctl.load_module(vid, calc.P4_SOURCE, f"calc{vid}")
        calc.install(Tenant.attach(ctl, vid), port=vid)
    exp = ReconfigTimelineExperiment(pipe, duration_s=3.0, bin_s=0.1,
                                     scale=1000.0,
                                     tofino_fast_refresh=tofino)
    for vid, bps in fig10_workload(link_gbps=9.3, size=1500):
        exp.add_module(vid, bps, 1500,
                       lambda vid=vid: calc.make_packet(
                           vid, calc.OP_ADD, 1, 2, pad_to=1500))
    exp.schedule_reconfig(1, RECONFIG_START_S, RECONFIG_DURATION_S)
    return exp


def _run_menshen():
    return _build(tofino=False).run()


def test_fig10_timeline(benchmark):
    result = _run_menshen()
    rows = []
    for t, g1 in result.series(1):
        idx = result.bins.index(t)
        rows.append({
            "time_s": round(t, 1),
            "module1_Gbps": round(g1, 2),
            "module2_Gbps": round(result.throughput_gbps[2][idx], 2),
            "module3_Gbps": round(result.throughput_gbps[3][idx], 2),
        })
    report("fig10_reconfig_disruption",
           "Figure 10: throughput during module 1's reconfiguration "
           f"(window {RECONFIG_START_S}-"
           f"{RECONFIG_START_S + RECONFIG_DURATION_S}s)",
           rows)

    # Claims: modules 2/3 unaffected; module 1 zero inside its window.
    window = (RECONFIG_START_S + 0.1,
              RECONFIG_START_S + RECONFIG_DURATION_S - 0.1)
    for vid in (2, 3):
        interior = result.throughput_gbps[vid][1:-1]
        assert min(interior) >= 0.85 * result.offered_gbps[vid]
    assert result.mean_throughput_inside(1, window) == 0.0
    assert result.throughput_gbps[1][-2] >= 0.85 * result.offered_gbps[1]

    benchmark.pedantic(_run_menshen, rounds=2, iterations=1)


def test_fig10_tofino_baseline(benchmark):
    result = _build(tofino=True).run()
    rows = [{
        "module": vid,
        "offered_Gbps": round(result.offered_gbps[vid], 2),
        "packets_dropped": result.drops[vid],
    } for vid in (1, 2, 3)]
    report("fig10_tofino_baseline",
           "Figure 10 baseline: Tofino Fast Refresh drops (50 ms, ALL "
           "modules)", rows)
    assert all(result.drops[vid] > 0 for vid in (1, 2, 3))
    benchmark.pedantic(lambda: _build(tofino=True).run(),
                       rounds=2, iterations=1)
