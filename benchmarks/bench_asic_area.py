"""§5.2 ASIC feasibility: area overheads at 1 GHz, plus the ablations the
paper argues verbally.

Published targets: parser +18.5 %, deparser +7 %, stage +20.9 %;
pipeline 10.81 vs 9.71 mm² (+11.4 % -> ~5.7 % chip-level). Ablations:
(a) growing the match tables shrinks the relative overhead toward
negligible; (b) supporting more simultaneous modules grows it.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.area import AsicAreaModel, PAPER_TARGETS


def test_asic_area_report(benchmark):
    model = AsicAreaModel()
    rep = model.report()
    rows = [
        {"metric": "parser overhead %", "paper": 18.5,
         "model": rep["parser_overhead_pct"]},
        {"metric": "deparser overhead %", "paper": 7.0,
         "model": rep["deparser_overhead_pct"]},
        {"metric": "stage overhead %", "paper": 20.9,
         "model": rep["stage_overhead_pct"]},
        {"metric": "pipeline overhead %", "paper": 11.4,
         "model": rep["pipeline_overhead_pct"]},
        {"metric": "chip-level overhead %", "paper": 5.7,
         "model": rep["chip_level_overhead_pct"]},
        {"metric": "RMT total mm^2", "paper": PAPER_TARGETS["rmt_total_mm2"],
         "model": rep["rmt_total_mm2"]},
        {"metric": "Menshen total mm^2",
         "paper": PAPER_TARGETS["menshen_total_mm2"],
         "model": rep["menshen_total_mm2"]},
    ]
    report("asic_area", "§5.2 ASIC area: paper vs model", rows)
    for row in rows:
        assert row["model"] == pytest.approx(row["paper"], rel=0.05)
    benchmark(AsicAreaModel)


def test_asic_area_ablation_table_depth(benchmark):
    """Overhead vs match-table depth: the 'negligible at scale' claim."""
    base = AsicAreaModel()
    rows = []
    for depth in [16, 64, 256, 1024, 4096]:
        model = base.with_params(match_entries_per_stage=depth,
                                 vliw_entries_per_stage=depth)
        rows.append({
            "match_entries_per_stage": depth,
            "stage_overhead_pct": round(
                model.overheads()["stage"] * 100, 2),
            "pipeline_overhead_pct": round(
                model.overheads()["pipeline"] * 100, 2),
        })
    report("asic_area_ablation_depth",
           "Ablation: Menshen overhead vs match-table depth", rows)
    overheads = [r["pipeline_overhead_pct"] for r in rows]
    assert overheads == sorted(overheads, reverse=True)
    # At Tofino-like table sizes the fixed overlay tables are amortized
    # away; what remains is the 12-bit module-ID widening of the CAM
    # (12/193 of CAM area) — under a third of the prototype's overhead.
    assert overheads[-1] < overheads[0] / 2.5
    assert overheads[-1] < 4.0
    benchmark(lambda: base.with_params(
        match_entries_per_stage=1024).overheads())


def test_asic_area_ablation_module_count(benchmark):
    """Overhead vs supported module count (overlay depth)."""
    base = AsicAreaModel()
    rows = []
    for modules in [8, 16, 32, 64, 128]:
        model = base.with_params(parser_table_depth=modules,
                                 key_extractor_depth=modules,
                                 key_mask_depth=modules,
                                 segment_table_depth=modules)
        rows.append({
            "max_modules": modules,
            "pipeline_overhead_pct": round(
                model.overheads()["pipeline"] * 100, 2),
        })
    report("asic_area_ablation_modules",
           "Ablation: Menshen overhead vs supported module count", rows)
    overheads = [r["pipeline_overhead_pct"] for r in rows]
    assert overheads == sorted(overheads)
    benchmark(lambda: base.with_params(parser_table_depth=64).overheads())
