"""Isolation under failure: a spine crash with controller recovery.

ROADMAP item 4's gate, the failure-mode sibling of
``bench_fabric_churn.py``: on a 2-leaf/2-spine Clos, two tenants are
pinned through ``spine1`` (untouched) and two through ``spine0``
(victims). Mid-run a :class:`repro.chaos.ChaosSchedule` crashes
``spine0``; a :class:`repro.chaos.RecoveryController` detects the
stranded victims after its detection delay and re-places them onto
``spine1`` via the live :meth:`~repro.fabric.tenant.FabricTenant.
migrate` machinery; later the schedule restores ``spine0``.

Gates:

* **loss gate** — victims lose *only* packets in flight on the dead
  capacity (every loss lands on a link the crash took down, inside the
  outage window), and the loss count reconciles exactly against the
  offered count and the per-tenant delivered/dropped counters;
* **recovery gate** — victims dip during the outage, are re-placed
  onto a surviving route (the post-mortem records the re-placements
  with the detection delay as recovery latency), and hold their steady
  share within ``TOLERANCE`` in every full bin after recovery;
* **isolation gate** — untouched tenants stay within ``TOLERANCE``
  (5%) of their steady share in *every* interior bin, crash or no
  crash;
* **restore gate** — after the run the restored spine is immediately
  usable: a fresh tenant placed through it forwards end to end.
"""

from __future__ import annotations

from conftest import report
from repro.chaos import ChaosController, ChaosSchedule, \
    RecoveryController
from repro.fabric import leaf_spine
from repro.modules import calc
from repro.sim import FabricTimelineExperiment
from repro.traffic import TrafficMatrix

HOSTS = 4
PACKET_SIZE = 500
PPS = 5e4                  #: per tenant — 50 packets per bin
DURATION_S = 24e-3
BIN_S = 1e-3
TOLERANCE = 0.05

UNTOUCHED = (1, 2)         #: pinned via spine1, must never deviate
VICTIMS = (3, 4)           #: pinned via spine0, crashed out from under
CRASH_AT = 8e-3
DETECTION_S = 2e-3         #: recovery sweep fires at CRASH_AT + this
RESTORE_AT = 16e-3


def _build():
    fabric = leaf_spine(leaves=2, spines=2, hosts_per_leaf=HOSTS)
    tenants = {}
    for vid in UNTOUCHED + VICTIMS:
        spine = "spine0" if vid in VICTIMS else "spine1"
        tenant = fabric.tenant(
            f"calc{vid}", calc.P4_SOURCE, vid=vid,
            installer=lambda t, port: calc.install(t, port=port))
        tenant.place(("leaf0", vid - 1), ("leaf1", vid - 1),
                     via=(spine,))
        tenant.set_weight(1.0)
        tenants[vid] = tenant
    return fabric, tenants


def _matrix():
    matrix = TrafficMatrix()
    for vid in UNTOUCHED + VICTIMS:
        matrix.add(vid, ("leaf0", vid - 1), ("leaf1", vid - 1),
                   offered_bps=PPS * (PACKET_SIZE + 24) * 8,
                   packet_size=PACKET_SIZE,
                   make_packet=lambda vid=vid: calc.make_packet(
                       vid, calc.OP_ADD, vid, vid + 1,
                       pad_to=PACKET_SIZE))
    return matrix


def _offered():
    counts = {}
    for _t, demand in _matrix().arrivals(DURATION_S):
        counts[demand.vid] = counts.get(demand.vid, 0) + 1
    return counts


def _steady_reference(result, vid, spans):
    """Mean per-bin throughput outside every disturbed span and away
    from the run's edge bins (arrival phase / drain tail)."""
    bins = []
    for b, t in zip(result.bins, result.throughput_gbps[vid]):
        if b <= result.bins[0] or b + result.bin_s > DURATION_S:
            continue
        if any(lo <= b + result.bin_s and b <= hi for lo, hi in spans):
            continue
        bins.append(t)
    assert bins, f"no steady bins for tenant {vid}"
    return sum(bins) / len(bins)


def test_fabric_chaos_crash_recovery():
    fabric, tenants = _build()
    schedule = ChaosSchedule()
    schedule.crash_switch("spine0", CRASH_AT)
    schedule.restore_switch("spine0", RESTORE_AT)
    controller = ChaosController(
        fabric, recovery=RecoveryController(
            fabric, detection_delay_s=DETECTION_S))

    experiment = FabricTimelineExperiment(
        fabric, _matrix(), duration_s=DURATION_S, bin_s=BIN_S)
    controller.arm(experiment, schedule)
    result = experiment.run()
    post_mortem = controller.post_mortem(result)

    recover_at = CRASH_AT + DETECTION_S
    outage = (CRASH_AT, recover_at)
    # The capacity the crash took down: spine0's links, plus the
    # pseudo-link packets in flight toward the dead switch charge.
    crash_event = schedule.faults()[0]
    dead_links = set(controller.affected_links(crash_event))
    offered = _offered()
    rows = []
    ok = True

    # Loss gate: victims lose only in-flight packets on dead capacity,
    # inside the outage, and the books balance exactly.
    for vid in VICTIMS:
        victim_links = {link for (v, link) in result.lost_by_link
                        if v == vid}
        on_dead = victim_links <= dead_links
        in_window = all(
            CRASH_AT <= t <= recover_at + BIN_S
            for t, v, _link in result.loss_log if v == vid)
        reconciled = offered[vid] == (
            result.delivered.get(vid, 0) + result.drops.get(vid, 0)
            + result.lost.get(vid, 0))
        ok = ok and on_dead and in_window and reconciled \
            and result.lost.get(vid, 0) > 0
    for vid in UNTOUCHED:
        ok = ok and result.lost.get(vid, 0) == 0

    # Recovery gate: victims dip during the outage, then hold steady
    # share in every full bin after the re-placement settles.
    for vid in VICTIMS:
        steady = _steady_reference(result, vid,
                                   spans=[(CRASH_AT, recover_at + BIN_S)])
        inside = result.throughput_inside(vid, outage)
        after = result.throughput_inside(
            vid, (recover_at + BIN_S, DURATION_S))
        dipped = bool(inside) and min(inside) < steady * 0.5
        recovered = bool(after) and max(
            abs(t - steady) / steady for t in after) <= TOLERANCE
        ok = ok and dipped and recovered
        rows.append({"tenant": vid, "role": "victim",
                     "steady_gbps": round(steady, 4),
                     "lost": result.lost.get(vid, 0),
                     "worst_bin_dev": "(outage by design)",
                     "recovered_within_5pct": recovered})

    # Isolation gate: untouched tenants never deviate, in any interior
    # bin — crash, recovery migration, and restore included.
    for vid in UNTOUCHED:
        steady = _steady_reference(result, vid, spans=[])
        interior = [
            t for b, t in zip(result.bins, result.throughput_gbps[vid])
            if result.bins[0] < b and b + BIN_S <= DURATION_S]
        worst = max(abs(t - steady) / steady for t in interior)
        within = worst <= TOLERANCE
        ok = ok and within
        rows.append({"tenant": vid, "role": "untouched",
                     "steady_gbps": round(steady, 4),
                     "lost": result.lost.get(vid, 0),
                     "worst_bin_dev": round(worst, 4),
                     "recovered_within_5pct": "(never disturbed)"})

    report("fabric_chaos",
           "Fabric chaos: spine crash, stranded-tenant recovery",
           rows)
    assert ok, rows

    # Post-mortem gate: the typed report tells the same story.
    assert post_mortem.victims() == list(VICTIMS)
    assert post_mortem.unattributed == ()
    assert post_mortem.total_lost() == sum(
        result.lost.get(vid, 0) for vid in VICTIMS)
    replaced = {rep.vid: rep for rep in post_mortem.replaced()}
    assert sorted(replaced) == list(VICTIMS)
    for rep in replaced.values():
        assert rep.recovered
        assert rep.new_route == ("leaf0", "spine1", "leaf1")
        assert abs(rep.recovery_latency_s - DETECTION_S) < 1e-12
        assert rep.state_lost == ("spine0",)  # registers died with it
    for vid in VICTIMS:
        assert tenants[vid].routes == [["leaf0", "spine1", "leaf1"]]

    # Restore gate: the rebooted spine is immediately usable by a
    # fresh placement — no stale route or link state survives.
    assert fabric.switch("spine0").up
    probe = fabric.tenant(
        "probe", calc.P4_SOURCE, vid=9,
        installer=lambda t, port: calc.install(t, port=port))
    assert probe.place(("leaf0", 0), ("leaf1", 0),
                       via=("spine0",)) == ["leaf0", "spine0", "leaf1"]
    follow_up = fabric.process_batch(
        [("leaf0", calc.make_packet(9, calc.OP_ADD, 1, 2,
                                    pad_to=PACKET_SIZE))])
    assert [(d.switch, d.port) for d in follow_up.delivered
            if d.vid == 9] == [("leaf1", 0)]


def test_chaos_free_baseline_is_steady_everywhere():
    """Control: without chaos, every tenant holds its share in every
    interior bin — the gate's tolerance is not hiding noise."""
    fabric, _tenants = _build()
    result = FabricTimelineExperiment(
        fabric, _matrix(), duration_s=DURATION_S, bin_s=BIN_S).run()
    for vid in UNTOUCHED + VICTIMS:
        steady = _steady_reference(result, vid, spans=[])
        interior = [
            t for b, t in zip(result.bins, result.throughput_gbps[vid])
            if result.bins[0] < b and b + BIN_S <= DURATION_S]
        assert max(abs(t - steady) / steady for t in interior) \
            <= TOLERANCE, (vid, steady, interior)
        assert result.lost.get(vid, 0) == 0
        assert result.drops.get(vid, 0) == 0
