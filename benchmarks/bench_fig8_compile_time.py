"""Figure 8: compilation time per program vs. number of match entries.

The paper compiles each of the 8 evaluated programs (plus the system
module) and, because loading a module must overwrite any previous
tenant's match entries, the compiler also *generates* a full set of
distinct match-action entries — so compile time grows with the entry
count {16, 64, 256, 1024}. Shape to reproduce: roughly flat base cost
per program plus a linear entry-generation term; absolute times are
"a few seconds" in the paper (their machine, C++ p4c) and milliseconds
here (Python, small frontend) — the *trend* is the claim.
"""

from __future__ import annotations

import time

import pytest

from conftest import report
from repro.compiler import CompilerOptions, compile_module
from repro.modules import ALL_MODULES
from repro.compiler.target import system_target
from repro.sysmod import SYSTEM_P4_SOURCE

ENTRY_COUNTS = [16, 64, 256, 1024]


def _generate_entries(compiled, count: int) -> int:
    """Generate ``count`` distinct match entries (overwriting, like the
    paper does when the hardware table is smaller than the count)."""
    generated = 0
    table = compiled.tables[compiled.table_order[0]]
    action_name = next(iter(table.actions))
    action = table.actions[action_name]
    params = {name: 1 for name, _w in action.params}
    key_fields = [dotted for _s, dotted, _r in table.key_layout]
    for i in range(count):
        values = {f: (i + j) % 4096 for j, f in enumerate(key_fields)}
        key = table.make_key(values)
        vliw = action.make_vliw(params, register_bases={
            r: 0 for r in compiled.registers})
        assert key >= 0 and vliw is not None
        generated += 1
    return generated


def _compile_and_generate(source: str, name: str, entries: int) -> float:
    start = time.perf_counter()
    compiled = compile_module(source, name)
    _generate_entries(compiled, entries)
    return time.perf_counter() - start


def test_fig8_compile_time_table(benchmark):
    """Regenerates the Figure 8 series (all programs x entry counts)."""
    rows = []
    programs = [(m.NAME, m.P4_SOURCE, None) for m in ALL_MODULES]
    programs.append(("system-level", SYSTEM_P4_SOURCE,
                     CompilerOptions(target=system_target(),
                                     run_static_checks=False)))
    for name, source, options in programs:
        row = {"program": name}
        for count in ENTRY_COUNTS:
            start = time.perf_counter()
            compiled = compile_module(source, name, options)
            _generate_entries(compiled, count)
            row[f"{count}_entries_ms"] = round(
                (time.perf_counter() - start) * 1e3, 2)
        rows.append(row)
    report("fig8_compile_time", "Figure 8: compilation time (ms)", rows)

    # Shape assertions: time grows with the entry count for every program.
    for row in rows:
        assert row["1024_entries_ms"] > row["16_entries_ms"]

    benchmark(_compile_and_generate, ALL_MODULES[0].P4_SOURCE, "calc", 64)


@pytest.mark.parametrize("entries", ENTRY_COUNTS)
def test_fig8_calc_scaling(benchmark, entries):
    """Per-entry-count benchmark of the CALC program (Fig. 8 x-axis)."""
    from repro.modules import calc
    result = benchmark(_compile_and_generate, calc.P4_SOURCE, "calc",
                       entries)
    assert result > 0
