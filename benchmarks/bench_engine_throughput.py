"""Engine throughput: scalar vs batched vs batched+cache.

Zipf-distributed firewall flow traffic (skews 0.9 and 0.99 — the YCSB
workload shapes) through three data paths over identically configured
switches:

* ``scalar``        — ``switch.process`` per packet (the baseline),
* ``batched``       — ``BatchEngine`` with the flow cache disabled
  (measures pure batching overhead/benefit),
* ``batched+cache`` — the full engine.

Acceptance gate: at zipf 0.99 the cached engine must clear >= 3x the
scalar packet rate — the flow-cache speedup NuevoMatchUp demonstrated
for OVS megaflows, reproduced on the behavioral pipeline. Results are
emitted as a table and JSON via ``conftest.report``.
"""

from __future__ import annotations

import pathlib
import sys
import time

from conftest import report
from repro.api import Switch
from repro.traffic import ZipfFlows, flow_stream, workload

# All randomized traffic derives from the repository-wide test seed.
sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tests"))
from seeds import rng as make_rng  # noqa: E402

PACKETS = 6000
FLOWS = 256
SPEEDUP_GATE = 3.0


def _build():
    switch = Switch.build().create()
    workload("firewall").admit(switch, vid=1)
    return switch


def _packets(skew: float, offset: int):
    spec = workload("firewall")
    return flow_stream(spec, 1, make_rng(offset), PACKETS,
                       ZipfFlows(FLOWS, skew=skew))


def _pps(run) -> float:
    start = time.perf_counter()
    run()
    return PACKETS / (time.perf_counter() - start)


def _measure(skew: float, offset: int):
    packets = _packets(skew, offset)

    scalar = _build()
    scalar_pps = _pps(lambda: [scalar.process(p.copy()) for p in packets])

    plain = _build().engine(enable_cache=False)
    plain_pps = _pps(
        lambda: plain.process_batch([p.copy() for p in packets]))

    cached_engine = _build().engine()
    cached_pps = _pps(
        lambda: cached_engine.process_batch([p.copy() for p in packets]))

    return [
        {"skew": skew, "path": "scalar", "pps": round(scalar_pps),
         "speedup": 1.0, "hit_rate": "-"},
        {"skew": skew, "path": "batched", "pps": round(plain_pps),
         "speedup": round(plain_pps / scalar_pps, 2), "hit_rate": "-"},
        {"skew": skew, "path": "batched+cache", "pps": round(cached_pps),
         "speedup": round(cached_pps / scalar_pps, 2),
         "hit_rate": round(cached_engine.counters.hit_rate, 3)},
    ]


def test_engine_throughput_zipf():
    rows = _measure(0.9, offset=300) + _measure(0.99, offset=301)
    report("engine_throughput",
           "Engine throughput: firewall zipf flows, packets/sec", rows)

    by_skew = {row["skew"]: {} for row in rows}
    for row in rows:
        by_skew[row["skew"]][row["path"]] = row

    for skew in (0.9, 0.99):
        cached = by_skew[skew]["batched+cache"]
        assert cached["hit_rate"] != "-" and cached["hit_rate"] > 0.8, (
            f"zipf-{skew} traffic should run hot in the flow cache")

    # The acceptance gate from ISSUE 2: >= 3x at zipf 0.99.
    gate = by_skew[0.99]["batched+cache"]["speedup"]
    assert gate >= SPEEDUP_GATE, (
        f"batched+cache is only {gate}x scalar at zipf 0.99 "
        f"(gate: {SPEEDUP_GATE}x)")
