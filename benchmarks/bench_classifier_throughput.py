"""Compiled-classifier throughput: flow cache v2 vs the PR 2 cached path.

Uniform, cache-hostile firewall traffic (flows drawn uniformly from a
2^16-flow space — ``repro.traffic.cache_hostile_stream``) through three
data paths over identically configured switches:

* ``scalar``         — ``switch.process`` per packet (the baseline),
* ``cached``         — ``BatchEngine`` with the exact-match flow cache
  only (the PR 2 hot path; on uniform traffic nearly every packet
  misses and degrades to the scalar walk),
* ``cached+compiled`` — the full three-level engine, where misses are
  served by the tenant's :class:`~repro.engine.classifier.
  CompiledClassifier` instead of the interpreted pipeline.

Acceptance gate (ISSUE 7): on uniform traffic the compiled engine must
clear >= 3x the cached-only packet rate — the NuevoMatchUp result
(computational cache rescuing the megaflow-cache miss path), reproduced
on the behavioral pipeline. A zipf 0.99 row rides along to show the
compiled level does not regress cache-friendly traffic. Results are
emitted as a table and JSON via ``conftest.report``.
"""

from __future__ import annotations

import pathlib
import sys
import time

from conftest import report
from repro.api import Switch
from repro.traffic import ZipfFlows, cache_hostile_stream, flow_stream, workload

# All randomized traffic derives from the repository-wide test seed.
sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tests"))
from seeds import rng as make_rng  # noqa: E402

PACKETS = 6000
ZIPF_FLOWS = 256
SPEEDUP_GATE = 3.0


def _build():
    switch = Switch.build().create()
    workload("firewall").admit(switch, vid=1)
    return switch


def _pps(run) -> float:
    start = time.perf_counter()
    run()
    return PACKETS / (time.perf_counter() - start)


def _measure(traffic: str, packets):
    scalar = _build()
    scalar_pps = _pps(lambda: [scalar.process(p.copy()) for p in packets])

    cached = _build().engine(enable_classifier=False)
    cached_pps = _pps(
        lambda: cached.process_batch([p.copy() for p in packets]))

    compiled = _build().engine(enable_classifier=True)
    compiled_pps = _pps(
        lambda: compiled.process_batch([p.copy() for p in packets]))

    counters = compiled.counters
    share = counters.compiled_hits / max(counters.packets, 1)
    return [
        {"traffic": traffic, "path": "scalar", "pps": round(scalar_pps),
         "vs_scalar": 1.0, "vs_cached": "-", "compiled_share": "-"},
        {"traffic": traffic, "path": "cached", "pps": round(cached_pps),
         "vs_scalar": round(cached_pps / scalar_pps, 2),
         "vs_cached": 1.0, "compiled_share": "-"},
        {"traffic": traffic, "path": "cached+compiled",
         "pps": round(compiled_pps),
         "vs_scalar": round(compiled_pps / scalar_pps, 2),
         "vs_cached": round(compiled_pps / cached_pps, 2),
         "compiled_share": round(share, 3)},
    ]


def test_classifier_throughput():
    spec = workload("firewall")
    uniform = cache_hostile_stream(spec, 1, make_rng(700), PACKETS)
    zipf = flow_stream(spec, 1, make_rng(701), PACKETS,
                       ZipfFlows(ZIPF_FLOWS, skew=0.99))

    rows = _measure("uniform-2^16", uniform) + _measure("zipf-0.99", zipf)
    report("classifier_throughput",
           "Compiled classifier: firewall, packets/sec", rows)

    by_path = {(r["traffic"], r["path"]): r for r in rows}

    compiled = by_path[("uniform-2^16", "cached+compiled")]
    assert compiled["compiled_share"] != "-" and \
        compiled["compiled_share"] > 0.9, (
            "uniform traffic should be served by the compiled level, got "
            f"share {compiled['compiled_share']}")

    # The acceptance gate from ISSUE 7: >= 3x over the PR 2 cached path
    # on uniform (cache-hostile) traffic.
    gate = compiled["vs_cached"]
    assert gate >= SPEEDUP_GATE, (
        f"cached+compiled is only {gate}x the cached path on uniform "
        f"traffic (gate: {SPEEDUP_GATE}x)")

    # The compiled level must not regress cache-friendly traffic.
    zipf_ratio = by_path[("zipf-0.99", "cached+compiled")]["pps"] / \
        max(by_path[("zipf-0.99", "cached")]["pps"], 1)
    assert zipf_ratio >= 0.8, (
        f"compiled level regressed zipf throughput to {zipf_ratio:.2f}x "
        f"of the cached path")
