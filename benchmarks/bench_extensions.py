"""Ablations for the paper's named extensions.

* **§3.5 / PIFO**: inter-module output-bandwidth sharing. The paper
  scopes this out of Menshen and points at PIFO; this bench shows the
  problem (FIFO: a flooding module starves the others) and the fix
  (PIFO+STFQ: weighted shares hold regardless of arrival pattern).
* **§4.3 / cuckoo hashing**: the CAM is 16 entries deep on the FPGA;
  a cuckoo hash table reaches hundreds of entries at high load factors
  with constant-probe lookups.
* **Appendix B / ternary**: lookup-rate comparison of exact vs ternary
  matching in the behavioral model.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.net import PacketBuilder
from repro.rmt import (
    CuckooExactTable,
    CuckooInsertError,
    PifoTrafficManager,
    TrafficManager,
)


def _packet(size=200, vid=1):
    return (PacketBuilder().ethernet().vlan(vid=vid).ipv4().udp()
            .payload(b"\x00" * (size - 46)).build())


def test_pifo_bandwidth_isolation(benchmark):
    """Per-module output shares when module 9 floods 10:1."""
    def run(tm_kind):
        if tm_kind == "pifo":
            tm = PifoTrafficManager(num_ports=1,
                                    weights={1: 1.0, 2: 1.0, 9: 1.0})
            enq = lambda vid: tm.enqueue(_packet(200, vid), 0, module_id=vid)
        else:
            tm = TrafficManager(num_ports=1)
            enq = lambda vid: tm.enqueue(_packet(200, vid), 0)
        for _ in range(400):
            enq(9)
        for _ in range(40):
            enq(1)
            enq(2)
        served = {}
        budget = 200 * 120
        if tm_kind == "pifo":
            served = tm.drain_bytes(0, budget)
        else:
            while budget > 0:
                pkt = tm.dequeue(0)
                if pkt is None:
                    break
                vid = pkt.read_int(14, 2) & 0xFFF
                served[vid] = served.get(vid, 0) + len(pkt)
                budget -= len(pkt)
        total = sum(served.values())
        return {vid: round(b / total, 2) for vid, b in served.items()}

    fifo = run("fifo")
    pifo = run("pifo")
    rows = [
        {"scheduler": "FIFO (baseline)", "module1": fifo.get(1, 0.0),
         "module2": fifo.get(2, 0.0), "module9(flood)": fifo.get(9, 0.0)},
        {"scheduler": "PIFO+STFQ (§3.5)", "module1": pifo.get(1, 0.0),
         "module2": pifo.get(2, 0.0), "module9(flood)": pifo.get(9, 0.0)},
    ]
    report("pifo_bandwidth_isolation",
           "§3.5 ablation: output bandwidth share under a flooding module",
           rows)
    # FIFO: the flood owns the first 120 packets served.
    assert fifo.get(9, 0) >= 0.99
    # PIFO: backlogged modules split the link evenly (equal weights).
    assert pifo.get(1, 0) >= 0.25 and pifo.get(2, 0) >= 0.25

    benchmark(lambda: run("pifo"))


def test_cuckoo_depth_scaling(benchmark):
    """Achievable exact-match entries: 16-deep CAM vs cuckoo tables."""
    rows = [{"backend": "CAM (prototype)", "depth": 16,
             "entries_installed": 16, "load_factor": 1.0,
             "note": "priority logic, expensive per bit"}]
    min_load = {2: 0.4, 4: 0.8}  # theory: ~50% for 2-ary, ~97% for 4-ary
    for hashes in (2, 4):
        for depth in (64, 256, 1024):
            table = CuckooExactTable(depth=depth, hash_count=hashes,
                                     max_kicks=500)
            installed = 0
            try:
                for key in range(depth):
                    table.insert(key, module_id=(key % 4) + 1)
                    installed += 1
            except CuckooInsertError:
                pass
            rows.append({"backend": f"cuckoo ({hashes} hashes)",
                         "depth": depth,
                         "entries_installed": installed,
                         "load_factor": round(table.load_factor(), 2),
                         "note": f"{table.relocations} relocations"})
            assert installed > 16
            assert table.load_factor() >= min_load[hashes], (hashes, depth)
    report("cuckoo_depth_scaling",
           "§4.3 ablation: exact-match capacity, CAM vs cuckoo hashing",
           rows)

    def insert_64():
        table = CuckooExactTable(depth=128, max_kicks=500)
        for key in range(64):
            table.insert(key, 1)
        return table
    benchmark(insert_64)


def test_exact_vs_ternary_lookup_rate(benchmark):
    """Behavioral lookup cost of the two match modes (Appendix B)."""
    from repro.rmt import ExactMatchTable, TernaryMatchTable
    exact = ExactMatchTable()
    tern = TernaryMatchTable()
    for i in range(16):
        exact.write(i, key=i, module_id=1)
        tern.write(i, key=i, mask=(1 << 193) - 1, module_id=1)

    def both():
        hits = 0
        for i in range(16):
            hits += exact.lookup(i, 1) is not None
            hits += tern.lookup(i, 1) is not None
        return hits

    assert both() == 32
    benchmark(both)
