"""Shared helpers for the benchmark harness.

Each bench regenerates one table or figure from the paper's evaluation
(§5) and prints its rows; printed output is also appended to
``benchmarks/results/<name>.txt`` so ``--benchmark-only`` runs leave
artifacts regardless of capture settings. Rows are additionally
persisted as machine-readable ``benchmarks/results/<name>.json``
(``{"title": ..., "rows": [...]}``) so downstream tooling — regression
dashboards, the engine-throughput gate — can consume results without
screen-scraping the table.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, title: str, rows: List[Dict],
           columns: Sequence[str] = None) -> None:
    """Print a labeled table; persist .txt and .json artifacts."""
    if not rows:
        lines = [f"== {title} ==", "(no rows)"]
    else:
        columns = list(columns or rows[0].keys())
        widths = {c: max(len(str(c)),
                         *(len(str(r.get(c, ""))) for r in rows))
                  for c in columns}
        header = "  ".join(str(c).ljust(widths[c]) for c in columns)
        sep = "-" * len(header)
        lines = [f"== {title} ==", header, sep]
        for row in rows:
            lines.append("  ".join(
                str(row.get(c, "")).ljust(widths[c]) for c in columns))
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps({"title": title, "rows": rows}, indent=2, default=str)
        + "\n")
