"""Shared helpers for the benchmark harness.

Each bench regenerates one table or figure from the paper's evaluation
(§5) and prints its rows; printed output is also appended to
``benchmarks/results/<name>.txt`` so ``--benchmark-only`` runs leave
artifacts regardless of capture settings. Rows are additionally
persisted as machine-readable ``benchmarks/results/<name>.json``
(``{"title": ..., "rows": [...]}``) so downstream tooling — regression
dashboards, the engine-throughput gate — can consume results without
screen-scraping the table.

Every gate also lands one line in ``benchmarks/results/
BENCH_SUMMARY.json``: its title, row count, and — when the bench
passes ``headline={...}`` — the handful of numbers that summarize it
(a speedup, a throughput, a compile time). The summary is
read-modify-write, so running any subset of benches updates only
those entries and a full run converges to the complete dashboard.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SUMMARY = RESULTS_DIR / "BENCH_SUMMARY.json"


def _record_summary(name: str, title: str, rows: List[Dict],
                    headline: Optional[Dict]) -> None:
    try:
        summary = json.loads(SUMMARY.read_text())
    except (OSError, ValueError):
        summary = {}
    summary[name] = {"title": title, "rows": len(rows),
                     "headline": headline or {}}
    SUMMARY.write_text(
        json.dumps(summary, indent=2, sort_keys=True, default=str)
        + "\n")


def report(name: str, title: str, rows: List[Dict],
           columns: Sequence[str] = None,
           headline: Optional[Dict] = None) -> None:
    """Print a labeled table; persist .txt and .json artifacts, and
    fold ``headline`` (this gate's key metrics) into the cross-bench
    ``BENCH_SUMMARY.json``."""
    if not rows:
        lines = [f"== {title} ==", "(no rows)"]
    else:
        columns = list(columns or rows[0].keys())
        widths = {c: max(len(str(c)),
                         *(len(str(r.get(c, ""))) for r in rows))
                  for c in columns}
        header = "  ".join(str(c).ljust(widths[c]) for c in columns)
        sep = "-" * len(header)
        lines = [f"== {title} ==", header, sep]
        for row in rows:
            lines.append("  ".join(
                str(row.get(c, "")).ljust(widths[c]) for c in columns))
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps({"title": title, "rows": rows,
                    "headline": headline or {}},
                   indent=2, default=str)
        + "\n")
    _record_summary(name, title, rows, headline)
