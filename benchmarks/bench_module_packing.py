"""§5.2 "How many modules can be packed?"

The overlay depth bounds concurrent modules at 32; the real binding
constraint is usually the bottleneck space-partitioned resource — with
16 CAM rows per stage, "if each module wants a match-action entry in
every pipeline stage, the maximum number of modules is at most 16".
This bench reproduces both numbers and sweeps the hardware knobs, plus
compares admission policies.
"""

from __future__ import annotations

from conftest import report
from repro.compiler.resource_checker import ResourceRequest
from repro.core import MenshenPipeline
from repro.modules import calc
from repro.policy import DrfPolicy, FirstFitPolicy
from repro.rmt.params import DEFAULT_PARAMS
from repro.runtime import MenshenController


def _request(match_per_stage: int, stages: int) -> ResourceRequest:
    return ResourceRequest(match_entries=match_per_stage * stages,
                           stateful_words=0, num_tables=stages,
                           parse_actions=4, containers=2)


def test_module_packing_limits(benchmark):
    params = DEFAULT_PARAMS
    rows = []
    # Overlay-bound: a module wanting 1 entry in 1 stage.
    policy = FirstFitPolicy(params)
    n = 0
    while n < 64 and policy.admit(n + 1, _request(1, 1)):
        n += 1
    rows.append({"workload": "1 entry, 1 stage",
                 "limit": min(n, params.max_modules),
                 "binding_constraint": "overlay depth (32)"})
    # CAM-bound: a module wanting an entry in EVERY stage (paper: 16).
    policy = FirstFitPolicy(params)
    n = 0
    while n < 64 and policy.admit(100 + n, _request(1, params.num_stages)):
        n += 1
    rows.append({"workload": "1 entry per ALL stages",
                 "limit": n, "binding_constraint": "16 CAM rows/stage"})
    report("module_packing", "§5.2 module packing limits", rows)
    assert rows[0]["limit"] == 32
    assert rows[1]["limit"] == 16
    benchmark(lambda: FirstFitPolicy(params).admit(1, _request(1, 1)))


def test_module_packing_hardware_sweep(benchmark):
    """More hardware -> more modules (the paper's 'entirely a function
    of how much hardware one is willing to pay' argument)."""
    rows = []
    for cam_depth in [16, 32, 64, 128]:
        params = DEFAULT_PARAMS.with_overrides(
            match_entries_per_stage=cam_depth)
        policy = FirstFitPolicy(params)
        n = 0
        while n < 256 and policy.admit(n + 1,
                                       _request(1, params.num_stages)):
            n += 1
        rows.append({"cam_rows_per_stage": cam_depth,
                     "modules_with_entry_in_every_stage": n})
    report("module_packing_sweep",
           "Module packing vs CAM depth", rows)
    limits = [r["modules_with_entry_in_every_stage"] for r in rows]
    assert limits == sorted(limits)
    benchmark(lambda: FirstFitPolicy(DEFAULT_PARAMS))


def test_packing_on_real_pipeline(benchmark):
    """Actually load as many CALC instances as the pipeline admits.

    With the stage-balanced placer, 4 four-entry tables fit per stage
    across all 5 stages: 20 instances, bounded by total CAM rows
    (80 / 4) rather than one stage's 16.
    """
    pipe = MenshenPipeline()
    ctl = MenshenController(pipe)
    loaded = 0
    for vid in range(1, 32):
        try:
            ctl.load_module(vid, calc.P4_SOURCE, f"calc{vid}")
            loaded += 1
        except Exception:
            break
    rows = [{"program": "calc (4-entry table, 1 stage)",
             "instances_loaded": loaded,
             "binding_constraint": "80 CAM rows pipeline-wide "
                                   "(stage-balanced placement)"}]
    report("module_packing_real", "Real-pipeline packing", rows)
    assert loaded == 20
    stages_used = {next(iter(m.compiled.stages_used()))
                   for m in ctl.modules.values()}
    assert stages_used == {0, 1, 2, 3, 4}  # balancer used every stage
    benchmark(lambda: len(pipe.loaded_modules))


def test_drf_vs_firstfit_heterogeneous(benchmark):
    """Policy comparison on a heterogeneous arrival mix: DRF refuses the
    resource hog, keeping room for more small tenants."""
    hog = _request(16, 5)        # wants the whole CAM everywhere
    small = _request(1, 1)

    ff = FirstFitPolicy()
    ff_admitted = sum([ff.admit(1, hog)]
                      + [ff.admit(10 + i, small) for i in range(20)])
    drf = DrfPolicy(expected_tenants=8, fairness_slack=2.0)
    drf_admitted = sum([drf.admit(1, hog)]
                       + [drf.admit(10 + i, small) for i in range(20)])
    rows = [
        {"policy": "first-fit", "hog_admitted": ff.admit.__self__ is ff
         and bool(ff.state.usage.get(1)), "total_admitted": ff_admitted},
        {"policy": "DRF", "hog_admitted": bool(drf.state.usage.get(1)),
         "total_admitted": drf_admitted},
    ]
    report("policy_comparison", "Admission policies: DRF vs first-fit",
           rows)
    assert bool(ff.state.usage.get(1)) is True
    assert bool(drf.state.usage.get(1)) is False
    assert drf_admitted >= ff_admitted
    benchmark(lambda: DrfPolicy().admit(99, small))
