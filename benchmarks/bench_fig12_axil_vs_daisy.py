"""Figure 12 (Appendix A): daisy-chain vs AXI-Lite configuration time.

One reconfiguration packet configures one entry of any width; AXI-Lite
needs ceil(width/32) writes — 20 for a 625-bit VLIW entry, 7 for a
205-bit CAM entry. Per stage and resource, the daisy chain must win,
and by more for the wider VLIW entries.
"""

from __future__ import annotations

from conftest import report
from repro.runtime.axi_lite import AxiLiteModel, fig12_series


def test_fig12_axil_vs_daisy(benchmark):
    rows = []
    for record in fig12_series():
        rows.append({
            "stage": record["stage"],
            "resource": record["resource"],
            "axi_writes/entry": record["axi_writes_per_entry"],
            "axi_lite_ms": round(record["axi_lite_s"] * 1e3, 3),
            "daisy_chain_ms": round(record["daisy_chain_s"] * 1e3, 3),
            "speedup": round(record["axi_lite_s"]
                             / record["daisy_chain_s"], 1),
        })
    report("fig12_axil_vs_daisy",
           "Figure 12: AXI-Lite vs daisy-chain configuration time", rows)

    vliw = [r for r in rows if r["resource"] == "vliw_action_table"]
    cam = [r for r in rows if r["resource"] == "cam"]
    for row in rows:
        assert row["daisy_chain_ms"] < row["axi_lite_ms"]
    # Wider entries benefit more (20 writes vs 7).
    assert vliw[0]["speedup"] > cam[0]["speedup"]
    assert vliw[0]["axi_writes/entry"] == 20
    assert cam[0]["axi_writes/entry"] == 7

    benchmark(fig12_series)


def test_axi_model_write_counts(benchmark):
    model = AxiLiteModel()
    assert model.writes_per_entry(model.params.vliw_entry_bits) == 20
    assert model.writes_per_entry(model.params.cam_entry_bits) == 7
    benchmark(lambda: model.per_stage_breakdown())
