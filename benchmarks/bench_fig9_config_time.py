"""Figure 9: hardware configuration time per program vs. entry count,
with the Tofino runtime-API baseline.

Configuration = writing the module's overlay rows plus N match-action
entries through the software-to-hardware interface. The paper measures
100s-of-ms for 1024 entries, dominated by per-entry software overhead,
and finds Menshen ≈ Tofino's runtime APIs. We report (a) the *modeled*
time using the calibrated per-entry cost, which reproduces the figure's
scale, and (b) the actual number of reconfiguration packets, which is
the hardware-side cost.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core import MenshenPipeline
from repro.modules import ALL_MODULES
from repro.runtime import MenshenController, TofinoModel

ENTRY_COUNTS = [16, 64, 256, 1024]


def _configure(module, entries: int):
    """Load the module and write ``entries`` match entries (overwriting
    in-place when the table is smaller, like the paper's measurement)."""
    pipe = MenshenPipeline()
    ctl = MenshenController(pipe)
    loaded = ctl.load_module(1, module.P4_SOURCE, module.NAME)
    table_name = loaded.compiled.table_order[0]
    table = loaded.compiled.tables[table_name]
    action_name = next(iter(table.actions))
    action = table.actions[action_name]
    params = {name: 1 for name, _w in action.params}
    key_fields = [dotted for _s, dotted, _r in table.key_layout]
    state = loaded.table(table_name)
    stage = state.stage
    for i in range(entries):
        values = {f: (i + j) % 4096 for j, f in enumerate(key_fields)}
        key = table.make_key(values)
        from repro.rmt.encodings import encode_cam_entry
        cam_word = encode_cam_entry(key, 1)
        vliw = action.make_vliw(params, loaded.register_bases)
        cam_index = state.cam_start + (i % state.cam_count)
        if i >= state.cam_count:
            ctl.interface.delete_match_entry(stage, cam_index)
        ctl.interface.add_match_entry(stage, cam_index, cam_word,
                                      vliw.encode())
    return ctl.interface.stats


def test_fig9_config_time_table(benchmark):
    """Regenerates the Figure 9 series: per program, modeled config time
    for each entry count, plus the Tofino runtime baseline row."""
    tofino = TofinoModel()
    rows = []
    for module in ALL_MODULES:
        row = {"program": module.NAME}
        for count in ENTRY_COUNTS:
            stats = _configure(module, count)
            row[f"{count}_entries_ms"] = round(stats.modeled_time_s * 1e3, 1)
        row["reconfig_pkts_1024"] = stats.packets_sent
        rows.append(row)
    tofino_row = {"program": "tofino-runtime(baseline)"}
    for count in ENTRY_COUNTS:
        tofino_row[f"{count}_entries_ms"] = round(
            tofino.entry_insert_time(count) * 1e3, 1)
    tofino_row["reconfig_pkts_1024"] = "-"
    rows.append(tofino_row)
    report("fig9_config_time", "Figure 9: configuration time (modeled ms)",
           rows)

    # Shape assertions: linear growth, and Menshen within ~2x of Tofino
    # (the paper: "similar to Tofino's run-time APIs").
    for row in rows[:-1]:
        assert row["1024_entries_ms"] > row["256_entries_ms"]
        ratio = row["1024_entries_ms"] / tofino_row["1024_entries_ms"]
        assert 0.3 <= ratio <= 3.0, (row["program"], ratio)

    benchmark(_configure, ALL_MODULES[0], 64)


@pytest.mark.parametrize("entries", [16, 256])
def test_fig9_entry_scaling(benchmark, entries):
    from repro.modules import calc
    stats = benchmark(_configure, calc, entries)
    assert stats.packets_sent > entries  # CAM + VLIW per entry + load
