"""Table 4: FPGA resource usage (LUTs / BRAMs) — Menshen vs RMT vs base.

The claims: Menshen costs only a few hundred LUTs over RMT (+0.65 % /
+0.15 % of the platform base) and **no** additional Block RAM. The model
is calibrated to the published RMT rows and must land the Menshen rows
within tight tolerances.
"""

from __future__ import annotations

from conftest import report
from repro.area import FpgaResourceModel, TABLE4_REFERENCE


def test_table4_fpga_resources(benchmark):
    rows = []
    for platform, model, ref_rmt, ref_menshen in [
        ("netfpga", FpgaResourceModel.netfpga(),
         TABLE4_REFERENCE["rmt_on_netfpga"],
         TABLE4_REFERENCE["menshen_on_netfpga"]),
        ("corundum", FpgaResourceModel.corundum(),
         TABLE4_REFERENCE["rmt_on_corundum"],
         TABLE4_REFERENCE["menshen_on_corundum"]),
    ]:
        rep = model.report()
        rows.append({
            "platform": platform,
            "paper_rmt_LUTs": ref_rmt[0],
            "model_rmt_LUTs": rep["rmt_luts"],
            "paper_menshen_LUTs": ref_menshen[0],
            "model_menshen_LUTs": rep["menshen_luts"],
            "paper_LUT_delta": ref_menshen[0] - ref_rmt[0],
            "model_LUT_delta": rep["menshen_luts"] - rep["rmt_luts"],
            "paper_BRAM_delta": ref_menshen[1] - ref_rmt[1],
            "model_BRAM_delta": rep["bram_delta"],
        })
    report("table4_fpga_resources", "Table 4: FPGA resources", rows)

    for row in rows:
        # RMT rows are calibration targets: exact.
        assert row["model_rmt_LUTs"] == row["paper_rmt_LUTs"]
        # Menshen delta: same few-hundred-LUT magnitude as the paper.
        assert 100 <= row["model_LUT_delta"] <= 300
        # BRAM: paper reports zero delta; model rounds up at most once.
        assert row["model_BRAM_delta"] <= 1.0

    benchmark(lambda: FpgaResourceModel.netfpga().report())
