"""Fabric-level bandwidth isolation: spine-link aggressor vs victim.

The multi-switch version of the §3.5 starvation scenario: two tenants
share the leaf0→spine0 uplink of a 2-leaf/1-spine fabric on their way
to hosts on leaf1. The aggressor offers 8x the victim's packet count;
the weighted-fair egress scheduler on the shared uplink must hold the
victim's spine-link share within 10% of its configured weight share —
cross-rack flows must not be starved by a co-located elephant.

Gates:

* **share gate** — victim bytes on the contended uplink, measured
  while both tenants stay backlogged (``drain_bytes`` with a budget),
  within ``SHARE_TOLERANCE`` of ``weight / total_weight``;
* **delivery gate** — after full multi-hop forwarding, every offered
  packet of both tenants exits on its leaf1 host port (weighted
  fairness schedules, it never drops).
"""

from __future__ import annotations

from conftest import report
from repro.fabric import leaf_spine
from repro.modules import calc

WEIGHTS = {1: 3.0, 2: 1.0}   #: vid 1 = victim, vid 2 = aggressor
AGGRESSOR_FACTOR = 8         #: aggressor offers 8x the victim's packets
SHARE_TOLERANCE = 0.10
PACKET_SIZE = 1000
HOSTS = 4
UPLINK = HOSTS               #: leaf0's port toward the single spine


def _build():
    fabric = leaf_spine(leaves=2, spines=1, hosts_per_leaf=HOSTS,
                        link_capacity_bps=10e9, link_delay_s=1e-6)
    tenants = {}
    for vid, weight in WEIGHTS.items():
        tenant = fabric.tenant(
            f"calc{vid}", calc.P4_SOURCE, vid=vid,
            installer=lambda t, port: calc.install(t, port=port))
        tenant.place(("leaf0", vid - 1), ("leaf1", vid - 1))
        tenant.set_weight(weight)
        tenants[vid] = tenant
    return fabric, tenants


def _packet(vid: int, i: int):
    return calc.make_packet(vid, calc.OP_ADD, i, i + 1,
                            pad_to=PACKET_SIZE)


def _offered(rounds: int):
    """Interleaved: each round = 1 victim + AGGRESSOR_FACTOR packets."""
    pkts = []
    for i in range(rounds):
        pkts.append(_packet(1, i))
        for j in range(AGGRESSOR_FACTOR):
            pkts.append(_packet(2, i * AGGRESSOR_FACTOR + j))
    return pkts


def test_victim_spine_share_holds(benchmark):
    fabric, tenants = _build()
    rounds = 300
    pkts = _offered(rounds)

    # Fill the contended uplink: process the whole offered load at
    # leaf0, then serve the spine link while both tenants stay
    # backlogged (victim holds `rounds` packets; its weighted share of
    # the budget is weight/total of it, so a budget of rounds*size
    # keeps everyone backlogged throughout the measurement).
    leaf0 = fabric.switch("leaf0")
    results = leaf0.engine.process_batch(pkts)
    assert all(r.forwarded for r in results)
    served = leaf0.scheduler.drain_bytes(UPLINK, rounds * PACKET_SIZE)

    total = sum(served.values())
    total_weight = sum(WEIGHTS.values())
    rows = []
    ok = True
    for vid in sorted(WEIGHTS):
        expected = WEIGHTS[vid] / total_weight
        achieved = served.get(vid, 0) / total
        within = abs(achieved - expected) <= SHARE_TOLERANCE
        ok = ok and within
        rows.append({"tenant": "victim" if vid == 1 else "aggressor",
                     "weight": WEIGHTS[vid],
                     "offered_pkts": rounds * (1 if vid == 1
                                               else AGGRESSOR_FACTOR),
                     "expected_share": round(expected, 3),
                     "achieved_share": round(achieved, 3),
                     "within_10pct": within})
    report("fabric_isolation",
           "Fabric isolation: spine-link shares under an 8x aggressor",
           rows)
    assert ok, rows

    # Timed fabric wave as the benchmark body: a fresh fabric serving
    # one interleaved round end-to-end (leaf0 -> spine0 -> leaf1).
    bench_fabric, _ = _build()
    batch = _offered(rounds=8)

    def serve_round():
        bench_fabric.process_batch(
            [("leaf0", p.copy()) for p in batch])

    benchmark(serve_round)


def test_all_cross_rack_flows_delivered():
    fabric, tenants = _build()
    rounds = 50
    result = fabric.process_batch(
        [("leaf0", p) for p in _offered(rounds)])
    assert result.dropped == {}
    assert len(result.delivered_for(1)) == rounds
    assert len(result.delivered_for(2)) == rounds * AGGRESSOR_FACTOR
    # every packet crossed the one spine, on the victim's weights
    spine_link = fabric.link_between("leaf0", "spine0")
    assert spine_link.bytes_by_tenant[1] == rounds * PACKET_SIZE
    assert spine_link.bytes_by_tenant[2] == \
        rounds * AGGRESSOR_FACTOR * PACKET_SIZE
