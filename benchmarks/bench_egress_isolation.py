"""Egress bandwidth isolation: one elephant tenant vs N mice (§3.5).

The serving path's weighted-fair scheduler must hold every tenant's
achieved egress share within tolerance of its configured weight while
an elephant floods the shared output link — the starvation scenario the
per-port FIFO path failed (see the FIFO-contrast test in
tests/test_pifo_cuckoo.py). Also gates the token-bucket rate limiter: a
capped tenant's achieved throughput must stay at (not above) its
configured rate, with the slack going to the uncapped tenants.
"""

from __future__ import annotations

from conftest import report
from repro.api import Switch
from repro.modules import calc

#: VID 1 is the elephant; three mice share the remainder by weight.
WEIGHTS = {1: 1.0, 2: 1.0, 3: 2.0, 4: 4.0}
ELEPHANT_FACTOR = 8    #: elephant offers 8x each mouse's packet count
SHARE_TOLERANCE = 0.10
PACKET_SIZE = 1000
EGRESS_PORT = 1        #: calc.install(port=1) -> every tenant, one link


def _build():
    switch = Switch.build().create()
    tenants = {}
    for vid, weight in WEIGHTS.items():
        tenant = switch.admit(f"calc{vid}", calc.P4_SOURCE, vid=vid)
        calc.install(tenant, port=EGRESS_PORT)
        tenant.set_weight(weight)
        tenants[vid] = tenant
    engine = switch.engine()
    return switch, tenants, engine


def _packet(vid: int, i: int):
    return calc.make_packet(vid, calc.OP_ADD, i, i + 1, pad_to=PACKET_SIZE)


def _offered(rounds: int):
    """Interleaved offered load: each round carries ELEPHANT_FACTOR
    elephant packets and one packet per mouse."""
    pkts = []
    for i in range(rounds):
        for j in range(ELEPHANT_FACTOR):
            pkts.append(_packet(1, i * ELEPHANT_FACTOR + j))
        for vid in (2, 3, 4):
            pkts.append(_packet(vid, i))
    return pkts


def test_weighted_shares_hold_under_elephant(benchmark):
    switch, tenants, engine = _build()
    pkts = _offered(rounds=300)
    results = engine.process_batch(pkts)
    assert all(r.forwarded for r in results)

    scheduler = switch.egress_scheduler
    # Serve while every tenant stays backlogged: the weighted-share
    # guarantee is about contention, so stop before the mice run dry.
    budget = 300 * PACKET_SIZE  # mice hold 300 packets each
    served = scheduler.drain_bytes(EGRESS_PORT, budget)

    total = sum(served.values())
    total_weight = sum(WEIGHTS.values())
    rows = []
    ok = True
    for vid in sorted(WEIGHTS):
        expected = WEIGHTS[vid] / total_weight
        achieved = served.get(vid, 0) / total
        within = abs(achieved - expected) <= SHARE_TOLERANCE
        ok = ok and within
        rows.append({"tenant": vid,
                     "weight": WEIGHTS[vid],
                     "offered_pkts": sum(
                         1 for p in pkts
                         if p.read_int(14, 2) & 0xFFF == vid),
                     "expected_share": round(expected, 3),
                     "achieved_share": round(achieved, 3),
                     "within_10pct": within})
    report("egress_isolation",
           "Egress isolation: elephant vs mice, weighted-fair shares",
           rows)
    assert ok, rows

    batch = pkts[:64]
    def serve_round():
        engine.process_batch([p.copy() for p in batch])
        scheduler.drain_bytes(EGRESS_PORT, 64 * PACKET_SIZE)

    benchmark(serve_round)


def test_rate_limiter_caps_throughput():
    switch, tenants, engine = _build()
    # 1 Gbit/s transmission clock; cap the elephant at 12.5 MB/s
    # (100 Mbit/s, 10% of the link).
    scheduler = switch.egress_scheduler
    scheduler.line_rate_bps = 1e9
    rate = 12_500_000.0
    burst = 3000.0
    tenants[1].set_rate_limit(rate, burst_bytes=burst)

    engine.process_batch(_offered(rounds=300))

    horizon = 0.02  # seconds of link time
    departures = scheduler.advance_to(horizon)
    by_vid = {}
    for dep in departures:
        by_vid[dep.module_id] = by_vid.get(dep.module_id, 0) + len(dep.packet)
    cap = burst + rate * horizon + PACKET_SIZE  # + one in-flight packet
    achieved_bps = by_vid.get(1, 0) * 8 / horizon
    rows = [{"tenant": 1, "rate_cap_Mbps": rate * 8 / 1e6,
             "achieved_Mbps": round(achieved_bps / 1e6, 1),
             "capped": by_vid.get(1, 0) <= cap}]
    for vid in (2, 3, 4):
        rows.append({"tenant": vid, "rate_cap_Mbps": "-",
                     "achieved_Mbps": round(
                         by_vid.get(vid, 0) * 8 / horizon / 1e6, 1),
                     "capped": "-"})
    report("egress_rate_limit",
           "Egress rate limiting: capped elephant, uncapped mice", rows)
    assert by_vid.get(1, 0) <= cap, by_vid
    # The uncapped tenants absorb the slack: the link stays busy.
    uncapped = sum(by_vid.get(v, 0) for v in (2, 3, 4))
    assert uncapped > by_vid.get(1, 0)
