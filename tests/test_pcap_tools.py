"""Tests for the pcap reader/writer and the CLI tools."""

import io

import pytest

from repro.api import Tenant
from repro.errors import PacketError
from repro.net import PacketBuilder, parse_layers
from repro.traffic.pcap import load_pcap, read_pcap, save_pcap, write_pcap


def sample_packets(count=3):
    out = []
    for i in range(count):
        pkt = (PacketBuilder().ethernet().vlan(vid=i + 1).ipv4()
               .udp(sport=1000 + i).payload(bytes([i]) * 10).build())
        pkt.arrival_time = 0.5 * i
        out.append(pkt)
    return out


class TestPcap:
    def test_roundtrip_in_memory(self):
        packets = sample_packets()
        buffer = io.BytesIO()
        assert write_pcap(buffer, packets) == 3
        buffer.seek(0)
        back = list(read_pcap(buffer))
        assert len(back) == 3
        for original, restored in zip(packets, back):
            assert restored.tobytes() == original.tobytes()
            assert restored.arrival_time == pytest.approx(
                original.arrival_time, abs=1e-6)

    def test_roundtrip_on_disk(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        packets = sample_packets(5)
        save_pcap(path, packets)
        back = load_pcap(path)
        assert [p.tobytes() for p in back] == \
            [p.tobytes() for p in packets]

    def test_layers_survive(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        save_pcap(path, sample_packets(1))
        layers = parse_layers(load_pcap(path)[0])
        assert layers["vlan"].vid == 1
        assert layers["udp"].sport == 1000

    def test_bad_magic_rejected(self):
        with pytest.raises(PacketError, match="magic"):
            list(read_pcap(io.BytesIO(b"\x00" * 24)))

    def test_truncated_header_rejected(self):
        with pytest.raises(PacketError):
            list(read_pcap(io.BytesIO(b"\x01\x02")))

    def test_truncated_record_rejected(self):
        buffer = io.BytesIO()
        write_pcap(buffer, sample_packets(1))
        data = buffer.getvalue()[:-4]  # chop the last packet's tail
        with pytest.raises(PacketError):
            list(read_pcap(io.BytesIO(data)))

    def test_snaplen_truncates(self):
        buffer = io.BytesIO()
        write_pcap(buffer, sample_packets(1), snaplen=20)
        buffer.seek(0)
        (pkt,) = list(read_pcap(buffer))
        assert len(pkt) == 20

    def test_pipeline_output_to_pcap(self, tmp_path):
        """End-to-end: forwarded packets can be exported for wireshark."""
        from repro.core import MenshenPipeline
        from repro.modules import calc
        from repro.runtime import MenshenController
        pipe = MenshenPipeline()
        ctl = MenshenController(pipe)
        ctl.load_module(1, calc.P4_SOURCE, "calc")
        calc.install(Tenant.attach(ctl, 1))
        outputs = [pipe.process(calc.make_packet(1, calc.OP_ADD, i, 1)
                                ).packet for i in range(4)]
        path = str(tmp_path / "out.pcap")
        save_pcap(path, outputs)
        back = load_pcap(path)
        assert calc.read_result(back[2]) == 3


class TestCliTools:
    def test_compile_builtin(self, capsys):
        from repro.tools.compile import main
        assert main(["--builtin", "calc"]) == 0
        out = capsys.readouterr().out
        assert "calc_table" in out
        assert "resource usage" in out

    def test_compile_file(self, tmp_path, capsys):
        from repro.modules import qos
        from repro.tools.compile import main
        path = tmp_path / "qos.p4"
        path.write_text(qos.P4_SOURCE)
        assert main([str(path)]) == 0
        assert "classify" in capsys.readouterr().out

    def test_compile_unknown_builtin(self, capsys):
        from repro.tools.compile import main
        assert main(["--builtin", "nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_bad_source(self, tmp_path, capsys):
        from repro.tools.compile import main
        path = tmp_path / "bad.p4"
        path.write_text("header broken {")
        assert main([str(path)]) == 1

    def test_info_runs(self, capsys):
        from repro.tools.info import main
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "205 bits" in out
