"""Tests for the repro-verify and repro-lint command-line tools."""

import json
from pathlib import Path

import pytest

from repro.tools import lint as lint_cli
from repro.tools import verify as verify_cli

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = str(REPO_ROOT / "src" / "repro")
BASELINE = str(REPO_ROOT / "lint-baseline.json")


class TestVerifyCli:
    def test_all_builtins_clean(self, capsys):
        assert verify_cli.main(["--all-builtins"]) == 0
        out = capsys.readouterr().out
        assert "calc: ok" in out and "netchain: ok" in out

    def test_switch_demo_verifies_loaded_config(self, capsys):
        assert verify_cli.main(
            ["--builtin", "calc", "--builtin", "firewall",
             "--switch-demo"]) == 0
        assert "switch: ok" in capsys.readouterr().out

    def test_over_quota_program_rejected(self, capsys):
        rc = verify_cli.main(["--builtin", "calc", "--grant-match", "1",
                              "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        codes = [f["code"] for f in payload["reports"]["calc"]]
        assert codes == ["quota-grant-match"]
        finding = payload["reports"]["calc"][0]
        assert finding["severity"] == "error"
        assert finding["pass_name"] == "resource-quota"

    def test_source_file_with_warnings_ok_unless_strict(
            self, tmp_path, capsys):
        src = tmp_path / "dead.p4"
        src.write_text("""
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header vlan_t { bit<16> tci; bit<16> etherType; }
header data_t { bit<32> a; bit<32> b; }
struct headers_t { ethernet_t ethernet; vlan_t vlan; data_t data; }
parser P(packet_in packet, out headers_t hdr) {
    state start {
        packet.extract(hdr.ethernet);
        packet.extract(hdr.vlan);
        packet.extract(hdr.data);
        transition accept;
    }
}
control C(inout headers_t hdr) {
    action set_a() { hdr.data.a = 1; }
    table t { key = { hdr.data.a: exact; } actions = { set_a; } size = 2; }
    table unused { key = { hdr.data.b: exact; } actions = { set_a; } size = 2; }
    apply { t.apply(); }
}
""", encoding="utf-8")
        assert verify_cli.main([str(src)]) == 0
        assert "dead-table" in capsys.readouterr().out
        assert verify_cli.main([str(src), "--strict"]) == 1

    def test_missing_file_is_usage_error(self, capsys):
        assert verify_cli.main(["/nonexistent/x.p4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_inputs_is_usage_error(self):
        with pytest.raises(SystemExit):
            verify_cli.main([])

    def test_broken_source_fails_with_finding(self, tmp_path, capsys):
        src = tmp_path / "broken.p4"
        src.write_text("control C {", encoding="utf-8")
        assert verify_cli.main([str(src), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False


class TestLintCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert lint_cli.main([SRC_REPRO]) == 0
        assert "clean" in capsys.readouterr().out

    def test_hazard_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
        assert lint_cli.main([str(bad)]) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_json_output_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n",
                       encoding="utf-8")
        assert lint_cli.main([str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "unseeded-random"

    def test_baseline_roundtrip(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert lint_cli.main([str(bad), "--write-baseline",
                              str(baseline)]) == 0
        capsys.readouterr()
        # Accepted in the baseline: clean.
        assert lint_cli.main([str(bad), "--baseline", str(baseline)]) == 0
        # Hazard fixed but baseline kept: stale entry flagged.
        bad.write_text("t = 0\n", encoding="utf-8")
        assert lint_cli.main([str(bad), "--baseline", str(baseline)]) == 1
        assert "stale" in capsys.readouterr().out

    def test_committed_baseline_accepted(self, capsys):
        assert lint_cli.main([SRC_REPRO, "--baseline", BASELINE]) == 0

    def test_rule_subset(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n"
            "def f(s):\n"
            "    for x in set(s):\n"
            "        pass\n"
            "    return time.time()\n", encoding="utf-8")
        assert lint_cli.main([str(bad), "--rules", "wall-clock"]) == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out and "set-iteration" not in out

    def test_unknown_rule_usage_error(self, capsys):
        assert lint_cli.main([SRC_REPRO, "--rules", "bogus"]) == 2

    def test_missing_path_usage_error(self, capsys):
        assert lint_cli.main(["/nonexistent/dir"]) == 2
