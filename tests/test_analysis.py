"""Tests for the static verifier: findings model, every pass, and the
admission gates (controller and fabric)."""

import json
from types import SimpleNamespace

import pytest

from repro.analysis import (
    AnalysisReport,
    AnalysisWarning,
    ConfigContext,
    DeadCodePass,
    Finding,
    IdentityWritePass,
    ModuleContext,
    ResourceQuotaPass,
    Severity,
    TenantConfig,
    WriteSetDisjointnessPass,
    analyze_source,
    analyze_switch,
    check_mode,
    find_loop,
    loop_findings,
)
from repro.api import Switch
from repro.compiler import compile_module
from repro.compiler.static_checker import check_loop_free
from repro.core import MenshenPipeline
from repro.core.resources import ModuleAllocation, StageAllocation
from repro.errors import (
    AdmissionError,
    AnalysisError,
    PlacementError,
    StaticCheckError,
)
from repro.modules.registry import ALL_MODULES
from repro.rmt.params import DEFAULT_PARAMS
from repro.runtime import MenshenController
from repro.sysmod import SYSTEM_P4_SOURCE

DEADCODE_SRC = """
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header vlan_t { bit<16> tci; bit<16> etherType; }
header data_t { bit<32> a; bit<32> b; }
struct headers_t { ethernet_t ethernet; vlan_t vlan; data_t data; }
parser P(packet_in packet, out headers_t hdr) {
    state start {
        packet.extract(hdr.ethernet);
        packet.extract(hdr.vlan);
        packet.extract(hdr.data);
        transition accept;
    }
}
control C(inout headers_t hdr) {
    register<bit<32>>(4) ghost;
    action used_act() { hdr.data.a = 1; }
    action dead_act() { hdr.data.b = 2; }
    table used_tbl { key = { hdr.data.a: exact; } actions = { used_act; } size = 2; }
    table dead_tbl { key = { hdr.data.b: exact; } actions = { dead_act; } size = 2; }
    table never_tbl { key = { hdr.data.a: exact; } actions = { used_act; } size = 2; }
    apply {
        used_tbl.apply();
        if (1 == 2) { never_tbl.apply(); }
    }
}
"""


class TestFindingsModel:
    def test_severity_ordering_and_parse(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.parse("error") is Severity.ERROR
        assert str(Severity.WARNING) == "warning"
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_finding_str_carries_location(self):
        f = Finding(code="overlap-match", severity=Severity.ERROR,
                    message="boom", subject="vid 3", stage=2)
        assert "error:overlap-match" in str(f)
        assert "vid 3" in str(f) and "stage 2" in str(f)

    def test_report_json_roundtrip(self):
        report = AnalysisReport([
            Finding(code="a", severity=Severity.ERROR, message="x"),
            Finding(code="b", severity=Severity.WARNING, message="y",
                    line=7),
        ])
        back = AnalysisReport.from_json(report.to_json())
        assert back.findings == report.findings
        assert json.loads(report.to_json())[0]["severity"] == "error"

    def test_report_views_and_enforcement(self):
        report = AnalysisReport()
        assert report.ok and len(report) == 0 and bool(report)
        report.add(Finding(code="w", severity=Severity.WARNING, message="m"))
        assert report.ok and len(report.warnings) == 1
        report.add(Finding(code="e", severity=Severity.ERROR, message="m"))
        assert not report.ok
        assert [f.code for f in report.by_code("e")] == ["e"]
        with pytest.raises(AnalysisError) as excinfo:
            report.raise_if_errors("nope")
        assert len(excinfo.value.findings) == 2

    def test_check_mode_rejects_unknown(self):
        assert check_mode("warn") == "warn"
        with pytest.raises(ValueError, match="unknown verify mode"):
            check_mode("loose")


class TestModulePasses:
    def test_all_stock_modules_verify_clean(self):
        for mod in ALL_MODULES:
            report = analyze_source(mod.P4_SOURCE, mod.NAME)
            assert report.ok and len(report) == 0, report.render(mod.NAME)

    def test_over_grant_program_rejected_with_typed_finding(self):
        report = analyze_source(ALL_MODULES[0].P4_SOURCE, "calc",
                                granted_match_entries=1)
        assert not report.ok
        codes = {f.code for f in report.errors}
        assert "quota-grant-match" in codes

    def test_over_stateful_grant(self):
        netchain = [m for m in ALL_MODULES if m.NAME == "netchain"][0]
        report = analyze_source(netchain.P4_SOURCE, "netchain",
                                granted_stateful_words=0)
        assert {f.code for f in report.errors} == {"quota-grant-stateful"}

    def test_quota_pass_flags_nonexistent_stage(self):
        from dataclasses import replace
        netcache = [m for m in ALL_MODULES if m.NAME == "netcache"][0]
        compiled = compile_module(netcache.P4_SOURCE, "netcache")
        assert max(compiled.stages_used()) >= 1
        tiny = replace(DEFAULT_PARAMS, num_stages=1)
        ctx = ModuleContext(name="netcache", params=tiny, module=compiled)
        codes = {f.code for f in ResourceQuotaPass().run(ctx)}
        assert "quota-stage" in codes

    def test_dead_code_findings(self):
        report = analyze_source(DEADCODE_SRC, "deadcode")
        assert report.ok  # warnings only
        codes = {f.code for f in report.warnings}
        assert codes == {"dead-table", "dead-action", "dead-register",
                         "dead-branch"}
        dead_table = report.by_code("dead-table")[0]
        assert "dead_tbl" in dead_table.message and dead_table.line > 0

    def test_compile_failure_becomes_finding(self):
        report = analyze_source("control C {", "broken")
        assert not report.ok
        assert report.errors[0].code in ("syntax-error", "type-error")

    def test_dead_code_pass_skips_without_ir(self):
        compiled = compile_module(ALL_MODULES[0].P4_SOURCE, "calc")
        ctx = ModuleContext(name="calc", module=compiled)
        assert list(DeadCodePass().run(ctx)) == []


def _alloc(module_id, stage, match=(0, 4), stateful=(0, 0)):
    return ModuleAllocation(module_id, {
        stage: StageAllocation(match_start=match[0], match_count=match[1],
                               stateful_base=stateful[0],
                               stateful_words=stateful[1])})


def _tenant(vid, alloc, module=None, entry_rows=None):
    module = module or SimpleNamespace(deparse_actions=[], field_alloc={})
    return TenantConfig(vid=vid, name=f"t{vid}", module=module,
                        allocation=alloc, entry_rows=entry_rows or {})


class TestWriteSetDisjointness:
    def _run(self, tenants):
        ctx = ConfigContext(params=DEFAULT_PARAMS, tenants=tenants)
        return list(WriteSetDisjointnessPass().run(ctx))

    def test_disjoint_partitions_are_clean(self):
        findings = self._run([
            _tenant(1, _alloc(1, 1, match=(0, 4), stateful=(0, 8))),
            _tenant(2, _alloc(2, 1, match=(4, 4), stateful=(8, 8))),
        ])
        assert findings == []

    def test_overlapping_cam_rows_detected(self):
        findings = self._run([
            _tenant(1, _alloc(1, 1, match=(0, 4))),
            _tenant(2, _alloc(2, 1, match=(2, 4))),
        ])
        assert [f.code for f in findings] == ["overlap-match"]
        assert findings[0].severity is Severity.ERROR
        assert findings[0].stage == 1

    def test_overlapping_stateful_words_detected(self):
        findings = self._run([
            _tenant(1, _alloc(1, 2, match=(0, 2), stateful=(0, 16))),
            _tenant(2, _alloc(2, 2, match=(2, 2), stateful=(8, 16))),
        ])
        assert [f.code for f in findings] == ["overlap-stateful"]

    def test_partition_out_of_hardware_bounds(self):
        depth = DEFAULT_PARAMS.match_entries_per_stage
        findings = self._run([
            _tenant(1, _alloc(1, 1, match=(depth - 1, 4))),
        ])
        assert [f.code for f in findings] == ["partition-bounds"]

    def test_installed_entry_escaping_partition(self):
        tenant = _tenant(1, _alloc(1, 1, match=(0, 4)),
                         entry_rows={1: [0, 1, 9]})
        findings = self._run([tenant])
        assert [f.code for f in findings] == ["entry-escape"]
        assert "row 9" in findings[0].message

    def test_same_vid_not_compared_against_itself(self):
        a = _tenant(1, _alloc(1, 1, match=(0, 4)))
        b = _tenant(1, _alloc(1, 1, match=(0, 4)))
        assert self._run([a, b]) == []


class TestIdentityWrite:
    def _deparse(self, offset, size=2):
        return SimpleNamespace(
            bytes_from_head=offset,
            container=SimpleNamespace(size_bytes=size))

    def test_tci_write_flagged(self):
        module = SimpleNamespace(deparse_actions=[self._deparse(14)],
                                 field_alloc={})
        findings = list(IdentityWritePass().run(ConfigContext(
            params=DEFAULT_PARAMS,
            tenants=[_tenant(3, _alloc(3, 1), module=module)])))
        assert [f.code for f in findings] == ["identity-write"]

    def test_straddling_write_flagged_but_adjacent_ok(self):
        straddle = SimpleNamespace(deparse_actions=[self._deparse(13, 2)],
                                   field_alloc={})
        clear = SimpleNamespace(deparse_actions=[self._deparse(16, 2),
                                                 self._deparse(10, 4)],
                                field_alloc={})
        ctx = ConfigContext(params=DEFAULT_PARAMS, tenants=[
            _tenant(1, _alloc(1, 1), module=straddle),
            _tenant(2, _alloc(2, 2), module=clear)])
        findings = list(IdentityWritePass().run(ctx))
        assert [(f.code, f.subject) for f in findings] == \
            [("identity-write", "vid 1")]

    def test_system_module_exempt(self):
        module = SimpleNamespace(deparse_actions=[self._deparse(14)],
                                 field_alloc={})
        findings = list(IdentityWritePass().run(ConfigContext(
            params=DEFAULT_PARAMS,
            tenants=[_tenant(0, _alloc(0, 0), module=module)])))
        assert findings == []


class TestLoopFreedom:
    def test_find_loop_returns_walk(self):
        walk = find_loop({1: 2, 2: 3, 3: 1})
        assert walk is not None and walk[-1] in walk[:-1]

    def test_acyclic_chain_is_clean(self):
        assert find_loop({1: 2, 2: 3, 3: 4}) is None
        assert list(loop_findings({1: 2})) == []

    def test_loop_findings_code(self):
        findings = list(loop_findings({"a": "b", "b": "a"}, subject="t"))
        assert [f.code for f in findings] == ["forwarding-loop"]

    def test_static_checker_shim_is_deterministic(self):
        messages = set()
        for _ in range(20):
            with pytest.raises(StaticCheckError) as excinfo:
                check_loop_free({1: 2, 2: 3, 3: 1})
            messages.add(str(excinfo.value))
        assert len(messages) == 1
        assert "routing loop detected" in messages.pop()


def _corrupt_onto(controller, victim_id, attacker_id):
    """Shift attacker's allocation onto victim's partition (simulating a
    controller/ledger bug the verifier must catch independently)."""
    victim = controller.modules[victim_id]
    attacker = controller.modules[attacker_id]
    stage = sorted(victim.allocation.stages)[0]
    src = victim.allocation.stages[stage]
    attacker.allocation.stages[stage] = StageAllocation(
        match_start=src.match_start, match_count=max(1, src.match_count),
        stateful_base=src.stateful_base,
        stateful_words=src.stateful_words)


class TestControllerGate:
    def _controller(self, **kw):
        pipe = MenshenPipeline()
        ctl = MenshenController(pipe, **kw)
        ctl.load_system_module(SYSTEM_P4_SOURCE)
        return ctl

    def test_clean_loads_pass_the_enforce_gate(self):
        ctl = self._controller()
        assert ctl.verify == "enforce"
        ctl.load_module(1, ALL_MODULES[0].P4_SOURCE, "calc")
        ctl.load_module(2, ALL_MODULES[1].P4_SOURCE, "firewall")
        assert analyze_switch(ctl).ok

    def test_enforce_gate_rejects_corrupted_config(self):
        ctl = self._controller()
        ctl.load_module(1, ALL_MODULES[0].P4_SOURCE, "calc")
        ctl.load_module(2, ALL_MODULES[1].P4_SOURCE, "firewall")
        _corrupt_onto(ctl, 1, 2)
        with pytest.raises(AdmissionError, match="overlap-match"):
            ctl.load_module(3, ALL_MODULES[2].P4_SOURCE, "lb")
        # The rejected module's grant must not leak.
        assert 3 not in ctl.modules
        ctl.verify = "off"
        ctl.load_module(3, ALL_MODULES[2].P4_SOURCE, "lb")

    def test_warn_gate_admits_with_warning(self):
        ctl = self._controller(verify="warn")
        ctl.load_module(1, ALL_MODULES[0].P4_SOURCE, "calc")
        ctl.load_module(2, ALL_MODULES[1].P4_SOURCE, "firewall")
        _corrupt_onto(ctl, 1, 2)
        with pytest.warns(AnalysisWarning, match="overlap-match"):
            ctl.load_module(3, ALL_MODULES[2].P4_SOURCE, "lb")
        assert 3 in ctl.modules

    def test_off_gate_skips_analysis(self):
        ctl = self._controller(verify="off")
        ctl.load_module(1, ALL_MODULES[0].P4_SOURCE, "calc")
        assert 1 in ctl.modules

    def test_bogus_mode_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown verify mode"):
            MenshenController(MenshenPipeline(), verify="maybe")


class TestApiIntegration:
    def test_compile_result_carries_findings(self):
        from repro.api import compile as api_compile
        result = api_compile(DEADCODE_SRC, "deadcode")
        assert result.ok
        codes = {f.code for f in result.findings}
        assert "dead-table" in codes
        assert "dead-table" in result.report()

    def test_builder_verify_knob_and_switch_analyze(self):
        switch = Switch.build().verify("warn").create()
        assert switch.controller.verify == "warn"
        switch.install_system()
        switch.admit("calc", ALL_MODULES[0].P4_SOURCE, vid=1)
        report = switch.analyze()
        assert report.ok
        with pytest.raises(ValueError, match="unknown verify mode"):
            Switch.build().verify("sometimes")


class TestFabricGate:
    def test_crafted_loop_steering_rejected(self):
        from repro.fabric import leaf_spine
        from repro.modules import calc

        fabric = leaf_spine(leaves=2, spines=1)
        tenant = fabric.tenant(
            "calc", calc.P4_SOURCE, vid=1,
            installer=lambda t, port: calc.install(t, port=port))
        # A leaf0 <-> spine0 ping-pong: each steers back at the other.
        l0 = fabric.switch("leaf0")
        s0 = fabric.switch("spine0")
        to_spine = [p for p, link in l0.links.items()
                    if link.other_end("leaf0").switch == "spine0"][0]
        to_leaf = [p for p, link in s0.links.items()
                   if link.other_end("spine0").switch == "leaf0"][0]
        with pytest.raises(PlacementError, match="routing loop"):
            tenant._prove_loop_free({"leaf0": to_spine, "spine0": to_leaf})

    def test_normal_placement_proves_loop_free(self):
        from repro.fabric import leaf_spine
        from repro.modules import calc

        fabric = leaf_spine(leaves=2, spines=1)
        tenant = fabric.tenant(
            "calc", calc.P4_SOURCE, vid=1,
            installer=lambda t, port: calc.install(t, port=port))
        path = tenant.place(("leaf0", 0), ("leaf1", 0))
        assert path[0] == "leaf0" and path[-1] == "leaf1"
