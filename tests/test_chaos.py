"""The chaos & recovery subsystem (``repro.chaos``).

Covers the ISSUE-9 satellites end to end:

* Hypothesis determinism — identical seeds yield identical
  :class:`~repro.chaos.ChaosSchedule` event streams and identical
  post-mortem reports from full timeline runs; crash→restore→crash is
  idempotent on fabric state.
* Mid-run link flap regression — victims lose exactly the in-flight
  packets on the dead link (``lost_by_link`` reconciles with the
  per-tenant counters), untouched tenants hold the churn bench's 5%
  per-bin bound.
* :meth:`~repro.engine.scheduler.EgressScheduler.drop_queued` /
  :meth:`~repro.engine.scheduler.EgressScheduler.purge` and
  ``Fabric._release_tenant`` under crash-drain — queued packets, STFQ
  tags, and throttle marks scrubbed; no ghost departures after
  restore.
* Route recomputation after ``set_link_state`` — a restored link is
  immediately usable by placements and migrations (routing holds no
  cache), and raising a crashed switch's link is refused.
* Recovery — stranded detection, re-placement onto surviving routes,
  scheduler drain accounting, register carry-over (NetChain), state
  lost with a crashed switch, and the unrecoverable case.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos import (
    CHAOS_KINDS,
    ChaosController,
    ChaosEvent,
    ChaosSchedule,
    PostMortemReport,
    RecoveryController,
    build_post_mortem,
)
from repro.engine import EgressScheduler
from repro.errors import (
    ConfigError,
    LinkDownError,
    PlacementError,
    TopologyError,
)
from repro.fabric import leaf_spine
from repro.modules import calc, netcache, netchain
from repro.net.packet import Packet
from repro.sim import FabricTimelineExperiment
from repro.traffic import TrafficMatrix
from seeds import SEED

HOSTS = 4
SIZE = 500
PPS = 5e4


def _fabric(leaves=2, spines=2):
    return leaf_spine(leaves=leaves, spines=spines, hosts_per_leaf=HOSTS)


def _calc_tenant(fabric, vid, via=None, weight=None):
    tenant = fabric.tenant(
        f"calc{vid}", calc.P4_SOURCE, vid=vid,
        installer=lambda t, port: calc.install(t, port=port))
    tenant.place(("leaf0", vid - 1), ("leaf1", vid - 1), via=via)
    if weight is not None:
        tenant.set_weight(weight)
    return tenant


def _matrix(vids):
    matrix = TrafficMatrix()
    for vid in vids:
        matrix.add(vid, ("leaf0", vid - 1), ("leaf1", vid - 1),
                   offered_bps=PPS * (SIZE + 24) * 8, packet_size=SIZE,
                   make_packet=lambda vid=vid: calc.make_packet(
                       vid, calc.OP_ADD, vid, vid + 1, pad_to=SIZE))
    return matrix


def _offered(matrix, duration_s):
    counts = {}
    for _t, demand in matrix.arrivals(duration_s):
        counts[demand.vid] = counts.get(demand.vid, 0) + 1
    return counts


def _fabric_state(fabric):
    """The observable fault state: member up flags, link up flags, and
    queue backlogs — what crash→restore→crash must leave unchanged."""
    return (
        {m.name: m.up for m in fabric.switches()},
        {link.name: link.up for link in fabric.links()},
        {m.name: m.scheduler.total_queued() for m in fabric.switches()},
    )


class TestChaosSchedule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown chaos kind"):
            ChaosSchedule().add("meteor-strike", 0.0, switch="spine0")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError, match="must be >= 0"):
            ChaosSchedule().crash_switch("spine0", -1.0)

    def test_link_kinds_need_a_link_target(self):
        schedule = ChaosSchedule()
        with pytest.raises(ConfigError, match="target a link"):
            schedule.add("link-down", 0.0, switch="spine0")
        with pytest.raises(ConfigError, match="target a switch"):
            schedule.add("switch-crash", 0.0, link=("a", "b"))
        with pytest.raises(ConfigError, match="distinct"):
            schedule.add("link-down", 0.0, link=("a", "a"))

    def test_flap_must_come_back_up_after_down(self):
        with pytest.raises(ConfigError, match="back up after"):
            ChaosSchedule().flap_link("a", "b", 2e-3, 2e-3)

    def test_link_target_is_normalized(self):
        """("b", "a") and ("a", "b") name the same link."""
        schedule = ChaosSchedule()
        assert schedule.fail_link("b", "a", 1e-3) == \
            schedule.fail_link("a", "b", 1e-3)
        assert schedule.events[0].target == ("a", "b")
        assert schedule.events[0].link == ("a", "b")
        assert schedule.events[0].switch is None

    def test_sorted_events_faults_targets_window(self):
        schedule = ChaosSchedule()
        schedule.restore_switch("s", 4e-3)
        schedule.crash_switch("s", 1e-3)
        schedule.flap_link("a", "b", 2e-3, 3e-3)
        events = schedule.sorted_events()
        assert [e.kind for e in events] == \
            ["switch-crash", "link-down", "link-up", "switch-restore"]
        assert all(e.kind in CHAOS_KINDS for e in events)
        assert [e.kind for e in schedule.faults()] == \
            ["switch-crash", "link-down"]
        assert schedule.targets() == [("a", "b"), ("s",)]
        assert schedule.window(("s",)) == (1e-3, 4e-3)
        with pytest.raises(ConfigError, match="no chaos events"):
            schedule.window(("nope",))
        assert len(schedule) == 4
        assert "link-down=1" in repr(schedule)

    def test_random_flaps_validation(self):
        with pytest.raises(ConfigError, match="at least one link"):
            ChaosSchedule.random_flaps([], 1, 1.0, 0.01, 0.1, seed=1)
        with pytest.raises(ConfigError, match="min_down_s"):
            ChaosSchedule.random_flaps([("a", "b")], 1, 1.0, 0.2, 0.1,
                                       seed=1)
        with pytest.raises(ConfigError, match="no room"):
            ChaosSchedule.random_flaps([("a", "b")], 1, 0.1, 0.01, 0.2,
                                       seed=1)


class TestScheduleDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_identical_seeds_identical_streams(self, seed):
        links = [("leaf0", "spine0"), ("leaf0", "spine1"),
                 ("leaf1", "spine0")]
        one = ChaosSchedule.random_flaps(links, 5, 1.0, 0.01, 0.05,
                                         seed=seed)
        two = ChaosSchedule.random_flaps(links, 5, 1.0, 0.01, 0.05,
                                         seed=seed)
        assert one.sorted_events() == two.sorted_events()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_generated_flaps_are_well_formed(self, seed):
        links = [("leaf0", "spine0"), ("leaf1", "spine1")]
        schedule = ChaosSchedule.random_flaps(links, 4, 1.0, 0.01, 0.05,
                                              seed=seed)
        downs = [e for e in schedule.sorted_events()
                 if e.kind == "link-down"]
        ups = {e.target: e.time_s for e in schedule.sorted_events()
               if e.kind == "link-up"}
        assert len(downs) == 4 and len(schedule) == 8
        for down in downs:
            assert down.target in {tuple(sorted(l)) for l in links}
            assert 0.0 <= down.time_s <= 1.0 - 0.05


class TestCrashRestore:
    def test_crash_downs_member_and_links_and_scrubs_queues(self):
        fabric = _fabric()
        member = fabric.switch("spine0")
        member.scheduler.enqueue(
            calc.make_packet(1, calc.OP_ADD, 1, 2, pad_to=SIZE), 0,
            module_id=1)
        dropped = fabric.crash_switch("spine0")
        assert [(port, vid) for port, vid, _pkt in dropped] == [(0, 1)]
        assert not member.up
        assert all(not link.up for link in member.links.values())
        assert member.scheduler.total_queued() == 0
        # Idempotent: crashing a crashed switch is a no-op.
        assert fabric.crash_switch("spine0") == []

    def test_restore_skips_links_to_still_crashed_neighbors(self):
        fabric = _fabric()
        fabric.crash_switch("spine0")
        fabric.crash_switch("leaf0")
        fabric.restore_switch("spine0")
        assert fabric.switch("spine0").up
        assert not fabric.link_between("leaf0", "spine0").up
        assert fabric.link_between("leaf1", "spine0").up
        fabric.restore_switch("leaf0")
        assert fabric.link_between("leaf0", "spine0").up

    def test_raising_a_crashed_switchs_link_is_refused(self):
        fabric = _fabric()
        fabric.crash_switch("spine0")
        with pytest.raises(TopologyError, match="restore_switch"):
            fabric.set_link_state("leaf0", "spine0", up=True)
        # Failing it further is fine (already down, stays down).
        assert not fabric.set_link_state("leaf0", "spine0", up=False).up

    def test_crash_restore_crash_is_idempotent(self):
        fabric = _fabric()
        _calc_tenant(fabric, 1, via=("spine0",))
        fabric.crash_switch("spine0")
        first = _fabric_state(fabric)
        fabric.restore_switch("spine0")
        assert fabric.crash_switch("spine0") == []  # queues were scrubbed
        assert _fabric_state(fabric) == first

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.sampled_from(["leaf0", "leaf1", "spine0",
                                     "spine1"]),
                    min_size=0, max_size=8))
    def test_any_crash_sequence_fully_restores(self, crashes):
        """However switches crash (repeats included), restoring every
        one of them returns the fabric to its fully-up state."""
        fabric = _fabric()
        healthy = _fabric_state(fabric)
        for name in crashes:
            fabric.crash_switch(name)
        for name in sorted(set(crashes)):
            fabric.restore_switch(name)
        assert _fabric_state(fabric) == healthy


class TestRouteRecomputationAfterSetLinkState:
    """Satellite 4: routing recomputes from live link state on every
    call — no stale-route cache survives a ``set_link_state``."""

    def test_restored_link_usable_by_next_placement(self):
        fabric = _fabric()
        fabric.set_link_state("leaf0", "spine0", up=False)
        # Pinning through spine0 now forces a revisiting detour.
        with pytest.raises(PlacementError):
            _calc_tenant(fabric, 1, via=("spine0",))
        fabric._release_tenant(1)
        assert _calc_tenant(fabric, 2).routes == \
            [["leaf0", "spine1", "leaf1"]]
        fabric.set_link_state("leaf0", "spine0", up=True)
        assert _calc_tenant(fabric, 3, via=("spine0",)).routes == \
            [["leaf0", "spine0", "leaf1"]]

    def test_restored_link_usable_by_migration(self):
        fabric = _fabric()
        tenant = _calc_tenant(fabric, 1, via=("spine0",))
        fabric.set_link_state("leaf0", "spine0", up=False)
        assert tenant.migrate(("leaf1", 0)) == \
            ["leaf0", "spine1", "leaf1"]
        fabric.set_link_state("leaf0", "spine0", up=True)
        assert tenant.migrate(("leaf1", 0), via=("spine0",)) == \
            ["leaf0", "spine0", "leaf1"]

    def test_shortest_paths_and_next_hop_follow_link_state(self):
        fabric = _fabric()
        fabric.set_link_state("leaf0", "spine0", up=False)
        assert fabric.shortest_paths("leaf0", "leaf1") == \
            [["leaf0", "spine1", "leaf1"]]
        with pytest.raises(LinkDownError):
            fabric.next_hop_port("leaf0", "spine0")
        fabric.set_link_state("leaf0", "spine0", up=True)
        assert ["leaf0", "spine0", "leaf1"] in \
            fabric.shortest_paths("leaf0", "leaf1")
        assert fabric.next_hop_port("leaf0", "spine0") == HOSTS

    def test_restored_link_carries_traffic_again(self):
        fabric = _fabric(spines=1)
        tenant = _calc_tenant(fabric, 1)
        fabric.set_link_state("leaf0", "spine0", up=False)
        lost = fabric.process_batch(
            [("leaf0", calc.make_packet(1, calc.OP_ADD, 1, 2))])
        assert [r.link for r in lost.lost_records()] == \
            [fabric.link_between("leaf0", "spine0").name]
        fabric.set_link_state("leaf0", "spine0", up=True)
        redo = fabric.process_batch(
            [("leaf0", calc.make_packet(1, calc.OP_ADD, 1, 2))])
        assert [(d.switch, d.port) for d in redo.delivered] == \
            [("leaf1", 0)]
        assert tenant.is_stranded() is False


def _pkt(vid):
    return calc.make_packet(vid, calc.OP_ADD, 1, 2, pad_to=SIZE)


class TestDropQueuedAndPurgeUnderCrash:
    """Satellite 3: scheduler scrubbing under crash-drain."""

    def _loaded_scheduler(self):
        scheduler = EgressScheduler(num_ports=2, line_rate_bps=10e9)
        scheduler.set_weight(1, 2.0)
        scheduler.set_weight(2, 1.0)
        scheduler.set_rate_limit(1, 1e6)
        scheduler.set_mcast_group(7, [0, 1])
        scheduler.set_port_rate(1, 1e9)
        for vid in (1, 2):
            scheduler.enqueue(_pkt(vid), 0, module_id=vid)
            scheduler.enqueue(_pkt(vid), 1, module_id=vid)
        return scheduler

    def test_drop_queued_returns_everything_in_port_arrival_order(self):
        scheduler = self._loaded_scheduler()
        dropped = scheduler.drop_queued()
        assert [(port, vid) for port, vid, _p in dropped] == \
            [(0, 1), (0, 2), (1, 1), (1, 2)]
        assert scheduler.total_queued() == 0
        assert scheduler.drop_queued() == []

    def test_drop_queued_keeps_config_but_scrubs_data_plane(self):
        scheduler = self._loaded_scheduler()
        scheduler.dequeue(0)  # give vid 1 a live STFQ finish tag
        scheduler.drop_queued()
        # Control-plane state survives the reboot...
        assert scheduler.weight_of(1) == 2.0
        assert scheduler.rate_limit_of(1) == 1e6
        assert scheduler.mcast_ports(7) == [0, 1]
        assert scheduler.port_rate_of(1) == 1e9
        # ...data-plane state does not.
        for state in scheduler._ports:
            assert state.fifos == {}
            assert state.ranker._last_finish == {}
            assert state.seq == 0
        assert scheduler._throttle_marks == {}

    def test_no_ghost_departures_after_crash_restore(self):
        fabric = _fabric()
        _calc_tenant(fabric, 1, via=("spine0",))
        member = fabric.switch("spine0")
        member.scheduler.enqueue(_pkt(1), 0, module_id=1)
        fabric.crash_switch("spine0")
        fabric.restore_switch("spine0")
        assert member.scheduler.advance_to(1.0) == []
        # A fresh enqueue departs normally — the port is not wedged.
        member.scheduler.enqueue(_pkt(1), 0, module_id=1)
        assert len(member.scheduler.advance_to(2.0)) == 1

    def test_purge_under_crash_drain_scrubs_one_tenant_only(self):
        scheduler = self._loaded_scheduler()
        purged = scheduler.purge(1)
        assert len(purged) == 2
        assert scheduler.queue_depth(1) == 0
        assert scheduler.queue_depth(2) == 2
        # Weight, bucket, finish tags, throttle marks: all gone for 1.
        assert scheduler.weight_of(1) == 1.0  # back to default
        assert scheduler.rate_limit_of(1) is None
        for port, state in enumerate(scheduler._ports):
            assert 1 not in state.ranker.weights
            assert 1 not in state.ranker._last_finish
            assert (port, 1) not in scheduler._throttle_marks
        # The neighbor still drains normally afterwards.
        assert len(scheduler.advance_to(1.0)) == 2

    def test_release_tenant_under_crash_drain(self):
        """Unloading a tenant whose route crossed a crashed switch
        still evicts every handle and frees the VID fabric-wide."""
        fabric = _fabric()
        tenant = _calc_tenant(fabric, 1, via=("spine0",), weight=2.0)
        fabric.switch("leaf0").scheduler.enqueue(
            _pkt(1), HOSTS, module_id=1)
        fabric.crash_switch("spine0")
        tenant.unload()
        assert tenant.switches() == []
        for name in ("leaf0", "spine0", "leaf1"):
            member = fabric.switch(name)
            assert 1 not in member.switch.controller.modules
            assert member.scheduler.queue_depth(1) == 0
            assert member.scheduler.weight_of(1) == 1.0
        # The VID is free again — a new tenant can claim it.
        fabric.restore_switch("spine0")
        assert _calc_tenant(fabric, 1, via=("spine0",)).routes == \
            [["leaf0", "spine0", "leaf1"]]


class TestRecovery:
    def test_detection_delay_must_be_nonnegative(self):
        with pytest.raises(ConfigError, match=">= 0"):
            RecoveryController(_fabric(), detection_delay_s=-1.0)

    def test_stranded_detection(self):
        fabric = _fabric()
        victim = _calc_tenant(fabric, 1, via=("spine0",))
        bystander = _calc_tenant(fabric, 2, via=("spine1",))
        recovery = RecoveryController(fabric)
        assert recovery.stranded() == []
        fabric.set_link_state("leaf0", "spine0", up=False)
        assert recovery.stranded() == [victim]
        assert victim.is_stranded() and not bystander.is_stranded()
        fabric.set_link_state("leaf0", "spine0", up=True)
        fabric.crash_switch("spine0")
        assert recovery.stranded() == [victim]

    def test_replacement_drains_carries_and_rearms(self):
        """The full recovery sequence over a link failure: stale queue
        drained, registers carried across the move, weight re-armed,
        and the NetChain sequence numbers continue unbroken."""
        fabric = _fabric()
        tenant = fabric.tenant(
            "chain", netchain.P4_SOURCE, vid=5,
            installer=lambda t, port: netchain.install(t, port=port))
        tenant.place(("leaf0", 0), ("leaf1", 1), via=("spine0",))
        tenant.set_weight(2.0)
        for _ in range(3):
            result = fabric.process_batch(
                [("leaf0", netchain.make_packet(5))])
        assert netchain.read_seq(result.delivered[0].packet) == 3
        # Strand it with a stale backlog pointed at the dead wire.
        uplink = tenant.egress_ports()["leaf0"]
        for _ in range(4):
            fabric.switch("leaf0").scheduler.enqueue(
                netchain.make_packet(5), uplink, module_id=5)
        fabric.set_link_state("leaf0", "spine0", up=False)

        recovery = RecoveryController(fabric, detection_delay_s=1e-3)
        action, = recovery.recover(now=2e-3, fault_at_s=1e-3)
        assert action.recovered and action.reason == ""
        assert action.old_route == ("leaf0", "spine0", "leaf1")
        assert action.new_route == ("leaf0", "spine1", "leaf1")
        assert action.drained == 4
        assert action.carried == (("spine0", "spine1"),)
        assert action.state_lost == ()
        assert action.recovery_latency_s == pytest.approx(1e-3)
        # Queues drained, weight re-armed on old and new switches.
        assert fabric.switch("leaf0").scheduler.queue_depth(5) == 0
        assert fabric.switch("leaf0").scheduler.weight_of(5) == 2.0
        assert fabric.switch("spine1").scheduler.weight_of(5) == 2.0
        # Register state carried: every hop still reads 3, and the
        # next packet sequences as 4 — no reset, no replay.
        for name in ("leaf0", "spine1", "leaf1"):
            assert tenant.handle(name).register("sequencer").read(0) == 3
        result = fabric.process_batch(
            [("leaf0", netchain.make_packet(5))])
        assert netchain.read_seq(result.delivered[0].packet) == 4

    def test_crashed_switch_state_is_reported_lost(self):
        fabric = _fabric()
        tenant = fabric.tenant(
            "chain", netchain.P4_SOURCE, vid=5,
            installer=lambda t, port: netchain.install(t, port=port))
        tenant.place(("leaf0", 0), ("leaf1", 1), via=("spine0",))
        for _ in range(3):
            fabric.process_batch([("leaf0", netchain.make_packet(5))])
        fabric.crash_switch("spine0")
        action, = RecoveryController(fabric).recover(now=1e-3)
        assert action.recovered
        assert action.state_lost == ("spine0",)
        assert action.carried == ()  # nothing readable to carry
        # The heir starts from zero; surviving hops keep their state.
        assert tenant.handle("spine1").register("sequencer").read(0) == 0
        assert tenant.handle("leaf1").register("sequencer").read(0) == 3

    def test_unrecoverable_tenant_is_reported_not_silently_dropped(self):
        fabric = _fabric(spines=1)
        tenant = _calc_tenant(fabric, 1, weight=2.0)
        fabric.crash_switch("spine0")
        action, = RecoveryController(fabric).recover(now=1e-3)
        assert not action.recovered
        assert action.new_route == ()
        assert "no up path" in action.reason
        # The fabric is left no worse: still placed, still stranded,
        # and a later sweep can try again.
        assert tenant.routes == [["leaf0", "spine0", "leaf1"]]
        assert tenant.is_stranded()

    def test_register_handle_size(self):
        """The snapshot surface: ``RegisterHandle.size`` reports the
        compiled word count."""
        from repro.api import Switch
        switch = Switch.build().create()
        cache = switch.admit("kv", netcache.P4_SOURCE, vid=2)
        netcache.install(cache, cached=[(1, 0, 42)])
        assert cache.register("values").size == 8
        assert cache.register("op_stats").size == 4
        chain = switch.admit("chain", netchain.P4_SOURCE, vid=3)
        assert chain.register("sequencer").size == 1


class TestMidRunLinkFlap:
    """Satellite 2: the flap regression, with exact loss accounting."""

    DURATION = 16e-3
    BIN = 1e-3
    DOWN_AT, UP_AT = 6e-3, 10e-3

    def _run(self):
        fabric = _fabric()
        _calc_tenant(fabric, 1, via=("spine1",), weight=1.0)
        _calc_tenant(fabric, 2, via=("spine0",), weight=1.0)
        schedule = ChaosSchedule()
        schedule.flap_link("leaf0", "spine0", self.DOWN_AT, self.UP_AT)
        controller = ChaosController(fabric)
        matrix = _matrix([1, 2])
        experiment = FabricTimelineExperiment(
            fabric, matrix, duration_s=self.DURATION, bin_s=self.BIN)
        controller.arm(experiment, schedule)
        return matrix, experiment.run(), controller

    def test_victim_loses_exactly_the_inflight_packets(self):
        matrix, result, controller = self._run()
        dead = controller.fabric.link_between("leaf0", "spine0").name
        # Every loss is the victim's, on the dead link, inside the
        # outage — and the books balance exactly per tenant.
        assert set(result.lost_by_link) == {(2, dead)}
        assert all(v == 2 and link == dead
                   and self.DOWN_AT <= t <= self.UP_AT + self.BIN
                   for t, v, link in result.loss_log)
        offered = _offered(matrix, self.DURATION)
        for vid in (1, 2):
            assert offered[vid] == (
                result.delivered.get(vid, 0) + result.drops.get(vid, 0)
                + result.lost.get(vid, 0)), vid
        assert result.lost == {2: result.lost_by_link[(2, dead)]}
        assert result.lost[2] > 0
        # lost_records() reconciles with the sink's per-link counts.
        records = result.lost_records()
        assert [(r.vid, r.link) for r in records] == [(2, dead)]
        assert sum(r.count for r in records) == result.lost[2]

    def test_untouched_tenant_holds_churn_bench_bound(self):
        _matrix_, result, _controller = self._run()
        series = result.throughput_gbps[1]
        interior = [t for b, t in zip(result.bins, series)
                    if result.bins[0] < b and b + self.BIN <= self.DURATION]
        steady = sum(interior) / len(interior)
        assert max(abs(t - steady) / steady for t in interior) <= 0.05
        assert result.lost.get(1, 0) == 0

    def test_victim_resumes_after_the_flap(self):
        _matrix_, result, _controller = self._run()
        outage = result.throughput_inside(2, (self.DOWN_AT, self.UP_AT))
        after = result.throughput_inside(
            2, (self.UP_AT + self.BIN, self.DURATION))
        healthy = result.throughput_inside(2, (self.BIN, self.DOWN_AT))
        steady = sum(healthy) / len(healthy)
        assert min(outage) < steady * 0.5
        assert max(abs(t - steady) / steady for t in after) <= 0.05

    def test_post_mortem_attributes_the_flap(self):
        _matrix_, result, controller = self._run()
        post_mortem = controller.post_mortem(result)
        down, up = (r for r in post_mortem.events)
        assert down.event.kind == "link-down"
        assert down.victims == (2,)
        assert down.packets_lost == result.lost[2]
        assert up.event.kind == "link-up"
        assert up.victims == () and up.lost == ()
        assert post_mortem.unattributed == ()
        assert post_mortem.total_lost() == result.lost[2]
        assert post_mortem.lost_by_link() == \
            {link: n for (_v, link), n in result.lost_by_link.items()}


class TestEndToEndDeterminism:
    """Satellite 1: identical seeds, identical post-mortems."""

    DURATION = 6e-3
    BIN = 1e-3

    def _run_crash_scenario(self):
        fabric = _fabric()
        _calc_tenant(fabric, 1, via=("spine1",), weight=1.0)
        _calc_tenant(fabric, 2, via=("spine0",), weight=1.0)
        schedule = ChaosSchedule()
        schedule.crash_switch("spine0", 2e-3)
        schedule.restore_switch("spine0", 5e-3)
        controller = ChaosController(
            fabric, recovery=RecoveryController(
                fabric, detection_delay_s=1e-3))
        experiment = FabricTimelineExperiment(
            fabric, _matrix([1, 2]), duration_s=self.DURATION,
            bin_s=self.BIN)
        controller.arm(experiment, schedule)
        result = experiment.run()
        return controller.post_mortem(result)

    def test_crash_recovery_post_mortems_are_identical(self):
        one, two = self._run_crash_scenario(), self._run_crash_scenario()
        assert one == two
        assert one.to_json() == two.to_json()
        replaced, = one.replaced()
        assert replaced.vid == 2 and replaced.recovered

    def _run_flap_scenario(self, seed):
        fabric = _fabric()
        _calc_tenant(fabric, 1, via=("spine1",), weight=1.0)
        _calc_tenant(fabric, 2, via=("spine0",), weight=1.0)
        schedule = ChaosSchedule.random_flaps(
            [("leaf0", "spine0"), ("leaf1", "spine0")], 2,
            self.DURATION, 0.5e-3, 1.5e-3, seed=seed)
        controller = ChaosController(fabric)
        experiment = FabricTimelineExperiment(
            fabric, _matrix([1, 2]), duration_s=self.DURATION,
            bin_s=self.BIN)
        controller.arm(experiment, schedule)
        result = experiment.run()
        return schedule, controller.post_mortem(result)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 2 ** 20))
    def test_seeded_flaps_replay_end_to_end(self, seed):
        schedule_one, report_one = self._run_flap_scenario(SEED + seed)
        schedule_two, report_two = self._run_flap_scenario(SEED + seed)
        assert schedule_one.sorted_events() == \
            schedule_two.sorted_events()
        assert report_one == report_two
        assert report_one.to_json() == report_two.to_json()


class TestPostMortemReport:
    def _report(self):
        down_one = ChaosEvent(1e-3, "link-down", ("a", "b"))
        up_one = ChaosEvent(2e-3, "link-up", ("a", "b"))
        down_two = ChaosEvent(3e-3, "link-down", ("a", "b"))
        fired = [(down_one, ("a:1—b:0",)), (up_one, ("a:1—b:0",)),
                 (down_two, ("a:1—b:0",))]
        losses = [(1.5e-3, 7, "a:1—b:0"),   # first outage
                  (3.5e-3, 7, "a:1—b:0"),   # second outage
                  (3.6e-3, 8, "a:1—b:0"),
                  (0.5e-3, 9, "x:0—y:0")]   # nobody downed this link
        return build_post_mortem(fired, {}, losses, elapsed_s=5e-3)

    def test_losses_attribute_to_the_latest_covering_fault(self):
        report = self._report()
        first, up, second = report.events
        assert [r.vid for r in first.lost] == [7]
        assert first.packets_lost == 1
        assert up.lost == ()  # repairs never claim losses
        assert [(r.vid, r.count) for r in second.lost] == [(7, 1), (8, 1)]
        assert second.victims == (7, 8)
        assert [(r.vid, r.link) for r in report.unattributed] == \
            [(9, "x:0—y:0")]
        assert report.total_lost() == 4
        assert report.victims() == [7, 8]
        assert report.lost_by_link() == {"a:1—b:0": 3, "x:0—y:0": 1}

    def test_json_round_trip_is_exact(self):
        report = self._report()
        wire = json.dumps(report.to_json())
        assert PostMortemReport.from_json(json.loads(wire)) == report


class TestScheduleChaosBinding:
    def test_events_fire_in_order_without_drop_windows(self):
        fabric = _fabric()
        _calc_tenant(fabric, 1, via=("spine1",))
        schedule = ChaosSchedule()
        schedule.restore_switch("spine0", 3e-3)
        schedule.crash_switch("spine0", 1e-3)
        fired = []
        experiment = FabricTimelineExperiment(
            fabric, _matrix([1]), duration_s=4e-3, bin_s=1e-3)
        experiment.schedule_chaos(schedule, fired.append)
        result = experiment.run()
        assert fired == schedule.sorted_events()
        # Chaos rides VID 0 (the system's): no §4.1 window, so the
        # bystander never dropped a packet.
        assert result.drops == {}
        assert experiment.core is not None

    def test_controller_fires_standalone_without_an_experiment(self):
        """The same fire() path works untimed: fabric mutates, crash
        losses are logged locally, and post_mortem still accounts."""
        fabric = _fabric()
        _calc_tenant(fabric, 1, via=("spine0",))
        member = fabric.switch("spine0")
        member.scheduler.enqueue(_pkt(1), 0, module_id=1)
        controller = ChaosController(fabric)
        schedule = ChaosSchedule()
        crash = schedule.crash_switch("spine0", 1e-3)
        controller.fire(crash)
        assert not member.up
        report = controller.post_mortem(elapsed_s=2e-3)
        event_report, = report.events
        assert event_report.event == crash
        assert event_report.packets_lost == 1
        assert f"switch:spine0" in event_report.affected
