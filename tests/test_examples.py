"""Smoke tests: every shipped example must run to completion.

Examples are part of the public API surface; breaking one is a
regression even when the unit tests stay green."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_example_inventory():
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "multi_tenant_cloud.py",
        "live_reconfiguration.py",
        "netcache_kv_store.py",
        "netchain_sequencer.py",
        "ternary_firewall_pcap.py",
        "batched_serving.py",
        "egress_isolation.py",
        "leaf_spine_fabric.py",
        "live_churn.py",
    }


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, (
        f"{example} failed:\n{result.stdout[-2000:]}\n"
        f"{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{example} produced no output"
