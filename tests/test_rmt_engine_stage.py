"""Tests for the action engine (VLIW semantics) and full stages."""

import pytest

from repro.errors import ConfigError
from repro.rmt import (
    ActionEngine,
    AluAction,
    AluOp,
    ExactMatchTable,
    KeyExtractEntry,
    StatefulAccess,
    StatefulMemory,
    VliwInstruction,
)
from repro.rmt.key_extractor import build_mask
from repro.rmt.encodings import encode_key
from repro.rmt.phv import PHV, ContainerRef, ContainerType
from repro.rmt.stage import Stage

B2 = lambda i: ContainerRef(ContainerType.B2, i)
B4 = lambda i: ContainerRef(ContainerType.B4, i)
B6 = lambda i: ContainerRef(ContainerType.B6, i)


def engine_with_memory(words=16):
    mem = StatefulMemory(words=words)
    return ActionEngine(StatefulAccess(mem)), mem


class TestActionEngineArithmetic:
    def test_add(self):
        engine, _ = engine_with_memory()
        phv = PHV()
        phv.set(B2(1), 10)
        phv.set(B2(2), 32)
        instr = VliwInstruction.from_sparse({
            0: AluAction(AluOp.ADD, c1=B2(1), c2=B2(2)),
        })
        out = engine.execute(instr, phv, 0)
        assert out.get(B2(0)) == 42
        assert phv.get(B2(0)) == 0  # input not mutated

    def test_sub_wraps(self):
        engine, _ = engine_with_memory()
        phv = PHV()
        phv.set(B2(1), 1)
        phv.set(B2(2), 2)
        instr = VliwInstruction.from_sparse({
            0: AluAction(AluOp.SUB, c1=B2(1), c2=B2(2)),
        })
        assert engine.execute(instr, phv, 0).get(B2(0)) == 0xFFFF

    def test_addi_subi_set(self):
        engine, _ = engine_with_memory()
        phv = PHV()
        phv.set(B4(0), 100)
        instr = VliwInstruction.from_sparse({
            8: AluAction(AluOp.ADDI, c1=B4(0), immediate=5),
            9: AluAction(AluOp.SUBI, c1=B4(0), immediate=1),
            10: AluAction(AluOp.SET, immediate=77),
        })
        out = engine.execute(instr, phv, 0)
        assert out.get(B4(0)) == 105
        assert out.get(B4(1)) == 99
        assert out.get(B4(2)) == 77

    def test_add_wraps_at_output_width(self):
        engine, _ = engine_with_memory()
        phv = PHV()
        phv.set(B4(1), 0xFFFFFFFF)  # wide source
        instr = VliwInstruction.from_sparse({
            0: AluAction(AluOp.ADD, c1=B4(1), c2=B4(1)),  # into 2-byte slot
        })
        assert engine.execute(instr, phv, 0).get(B2(0)) == 0xFFFE

    def test_parallel_vliw_semantics(self):
        # Both ALUs must read the PRE-instruction PHV: classic swap test.
        engine, _ = engine_with_memory()
        phv = PHV()
        phv.set(B2(0), 1)
        phv.set(B2(1), 2)
        instr = VliwInstruction.from_sparse({
            0: AluAction(AluOp.ADD, c1=B2(1), c2=B2(7)),  # c0 <- c1 + 0
            1: AluAction(AluOp.ADD, c1=B2(0), c2=B2(7)),  # c1 <- c0 + 0
        })
        out = engine.execute(instr, phv, 0)
        assert out.get(B2(0)) == 2
        assert out.get(B2(1)) == 1  # swapped, not 2 (sequential would give 2)


class TestActionEngineStateful:
    def test_store_then_load(self):
        engine, mem = engine_with_memory()
        phv = PHV()
        phv.set(B2(0), 0xAB)  # ALU 0's own value gets stored
        store = VliwInstruction.from_sparse({
            0: AluAction(AluOp.STORE, c1=B2(7), immediate=3),
        })
        engine.execute(store, phv, 0)
        assert mem.read(3) == 0xAB
        load = VliwInstruction.from_sparse({
            1: AluAction(AluOp.LOAD, c1=B2(7), immediate=3),
        })
        out = engine.execute(load, PHV(), 0)
        assert out.get(B2(1)) == 0xAB

    def test_container_indexed_address(self):
        engine, mem = engine_with_memory()
        mem.write(9, 1234)
        phv = PHV()
        phv.set(B2(5), 4)  # addr = phv[c1] + imm = 4 + 5 = 9
        instr = VliwInstruction.from_sparse({
            0: AluAction(AluOp.LOAD, c1=B2(5), immediate=5),
        })
        assert engine.execute(instr, phv, 0).get(B2(0)) == 1234

    def test_loadd_sequencer(self):
        engine, mem = engine_with_memory()
        instr = VliwInstruction.from_sparse({
            0: AluAction(AluOp.LOADD, c1=B2(7), immediate=0),
        })
        seqs = [engine.execute(instr, PHV(), 0).get(B2(0)) for _ in range(3)]
        assert seqs == [1, 2, 3]
        assert mem.read(0) == 3

    def test_stateful_without_memory_raises(self):
        engine = ActionEngine(stateful=None)
        instr = VliwInstruction.from_sparse({
            0: AluAction(AluOp.LOAD, c1=B2(0), immediate=0),
        })
        with pytest.raises(ConfigError):
            engine.execute(instr, PHV(), 0)


class TestActionEngineMetadata:
    def test_port_immediate(self):
        engine, _ = engine_with_memory()
        instr = VliwInstruction.from_sparse({
            24: AluAction(AluOp.PORT, c1=B2(7), immediate=6),
        })
        out = engine.execute(instr, PHV(), 0)
        assert out.metadata.dst_port == 6

    def test_port_from_container(self):
        engine, _ = engine_with_memory()
        phv = PHV()
        phv.set(B2(3), 11)
        instr = VliwInstruction.from_sparse({
            24: AluAction(AluOp.PORT, c1=B2(3), immediate=0),
        })
        assert engine.execute(instr, phv, 0).metadata.dst_port == 11

    def test_discard(self):
        engine, _ = engine_with_memory()
        instr = VliwInstruction.from_sparse({24: AluAction(AluOp.DISCARD)})
        assert engine.execute(instr, PHV(), 0).metadata.discard

    def test_writes_to_metadata_slot_rejected_for_arith(self):
        engine, _ = engine_with_memory()
        instr = VliwInstruction.from_sparse({
            24: AluAction(AluOp.SET, immediate=1),
        })
        with pytest.raises(ConfigError):
            engine.execute(instr, PHV(), 0)


class TestStage:
    def stage(self):
        return Stage(0, config_depth=32)

    def install_match(self, stage, module_id, key_value, vliw, index=0):
        """Install a minimal match path: key = B2[0], entry at `index`."""
        stage.key_extractor.install(
            module_id, KeyExtractEntry(idx_2b_1=0),
            mask=build_mask(use_2b=(True, False)))
        key = encode_key([0, 0, 0, 0, key_value, 0], 0)
        stage.match_table.write(index, key=key, module_id=module_id)
        stage.install_vliw(index, vliw)

    def test_hit_executes_action(self):
        stage = self.stage()
        vliw = VliwInstruction.from_sparse({
            1: AluAction(AluOp.SET, immediate=99),
        })
        self.install_match(stage, 4, 0x1234, vliw)
        phv = PHV()
        phv.set(B2(0), 0x1234)
        out = stage.process(phv, 4)
        assert out.get(B2(1)) == 99

    def test_miss_is_identity(self):
        stage = self.stage()
        self.install_match(stage, 4, 0x1234, VliwInstruction())
        phv = PHV()
        phv.set(B2(0), 0x9999)  # no matching entry
        out = stage.process(phv, 4)
        assert out == phv
        assert stage.misses == 1

    def test_cross_module_no_hit(self):
        stage = self.stage()
        vliw = VliwInstruction.from_sparse({
            1: AluAction(AluOp.SET, immediate=1),
        })
        self.install_match(stage, 4, 0x42, vliw)
        # Module 5 uses the same key layout and key value...
        stage.key_extractor.install(
            5, KeyExtractEntry(idx_2b_1=0),
            mask=build_mask(use_2b=(True, False)))
        phv = PHV()
        phv.set(B2(0), 0x42)
        out = stage.process(phv, 5)
        # ...but cannot hit module 4's entry.
        assert out.get(B2(1)) == 0

    def test_vliw_cache_invalidation(self):
        stage = self.stage()
        vliw1 = VliwInstruction.from_sparse({
            1: AluAction(AluOp.SET, immediate=1),
        })
        self.install_match(stage, 4, 0x42, vliw1)
        phv = PHV()
        phv.set(B2(0), 0x42)
        assert stage.process(phv, 4).get(B2(1)) == 1
        vliw2 = VliwInstruction.from_sparse({
            1: AluAction(AluOp.SET, immediate=2),
        })
        stage.install_vliw(0, vliw2)
        assert stage.process(phv, 4).get(B2(1)) == 2

    def test_predicate_differentiates_entries(self):
        # Same container key, two entries distinguished by the flag bit:
        # the hardware realization of if/else.
        stage = self.stage()
        module = 6
        stage.key_extractor.install(
            module,
            KeyExtractEntry(idx_2b_1=0, cmp_op=CmpOpGT(), cmp_a=B2(1),
                            cmp_b=50),
            mask=build_mask(use_2b=(True, False), use_flag=True))
        key_true = encode_key([0, 0, 0, 0, 7, 0], 1)
        key_false = encode_key([0, 0, 0, 0, 7, 0], 0)
        stage.match_table.write(0, key=key_true, module_id=module)
        stage.match_table.write(1, key=key_false, module_id=module)
        stage.install_vliw(0, VliwInstruction.from_sparse({
            2: AluAction(AluOp.SET, immediate=111)}))
        stage.install_vliw(1, VliwInstruction.from_sparse({
            2: AluAction(AluOp.SET, immediate=222)}))

        hot = PHV()
        hot.set(B2(0), 7)
        hot.set(B2(1), 99)
        cold = PHV()
        cold.set(B2(0), 7)
        cold.set(B2(1), 3)
        assert stage.process(hot, module).get(B2(2)) == 111
        assert stage.process(cold, module).get(B2(2)) == 222


def CmpOpGT():
    from repro.rmt import CmpOp
    return CmpOp.GT
