"""Fabric differential gates.

Two equivalence contracts anchor the fabric layer to the layers below:

1. **Degeneracy** — a one-switch fabric produces exactly the results a
   plain :class:`repro.api.Switch` + :class:`repro.engine.BatchEngine`
   produce for the same program, entries, and packets. The fabric adds
   topology, not semantics.
2. **Chaining** — a 2-leaf/1-spine fabric carrying two tenants is
   packet-for-packet identical to manually chaining the three
   switches' engines by hand (process a batch, drain the uplink in
   scheduler service order, re-ingress at the next switch). The
   fabric's wave forwarder is bookkeeping over the same engine and
   scheduler calls, nothing more.

Both contracts hold for every execution backend — the whole file is
parametrized over :data:`repro.exec.EXEC_BACKENDS`, so the sharded
process backend (:mod:`repro.exec.parallel`, two workers here) must
reproduce the hand-chained results bit-for-bit too.
"""

import pytest

from repro.api import EXEC_BACKENDS, Switch
from repro.fabric import Fabric, leaf_spine
from repro.modules import calc

pytestmark = pytest.mark.parametrize("backend", EXEC_BACKENDS)

#: two workers on the 3-switch fabric: shards [leaf0, leaf1] | [spine0]
WORKERS = {"serial": None, "process": 2}

WEIGHTS = {1: 1.0, 2: 3.0}
HOSTS = 4          # host ports per leaf
UPLINK = HOSTS     # leaf uplink port (single spine)


def calc_installer(tenant, port):
    calc.install(tenant, port=port)


def mixed_batch(rounds=40):
    """Interleaved two-tenant traffic, deterministic."""
    pkts = []
    for i in range(rounds):
        pkts.append(calc.make_packet(1, calc.OP_ADD, i, i + 1,
                                     pad_to=200))
        if i % 2 == 0:
            pkts.append(calc.make_packet(2, calc.OP_SUB, 1000 + i, i,
                                         pad_to=300))
    return pkts


class TestSingleSwitchDegeneracy:
    def test_fabric_of_one_equals_plain_switch(self, backend):
        # fabric side: one switch, tenant "routed" host port -> host port
        fabric = Fabric()
        fabric.add_switch("sw0")
        tenant = fabric.tenant("calc", calc.P4_SOURCE, vid=1,
                               installer=calc_installer)
        assert tenant.place(("sw0", 0), ("sw0", 2)) == ["sw0"]

        # plain side: same program, entries, engine
        plain = Switch.build().create()
        handle = plain.admit("calc", calc.P4_SOURCE, vid=1)
        calc.install(handle, port=2)
        engine = plain.engine(line_rate_bps=fabric.host_rate_bps)

        batch = [calc.make_packet(1, calc.OP_ADD, i, 2 * i)
                 for i in range(32)]
        fabric_result = fabric.process_batch(
            [("sw0", p.copy()) for p in batch],
            backend=backend, workers=WORKERS[backend])
        plain_results = engine.process_batch([p.copy() for p in batch])
        plain_out = plain.pipeline.traffic_manager.drain(2)

        assert fabric_result.waves == 1
        fabric_out = fabric_result.delivered_for(1)
        assert [p.tobytes() for p in fabric_out] == \
            [p.tobytes() for p in plain_out]
        assert [r.egress_port for r in fabric_result.results["sw0"]] \
            == [r.egress_port for r in plain_results]
        assert [r.dropped for r in fabric_result.results["sw0"]] \
            == [r.dropped for r in plain_results]
        # per-tenant pipeline counters agree too
        assert tenant.counters() == handle.counters()


class TestManualChainingEquivalence:
    def _fabric_outputs(self, batch, backend):
        fabric = leaf_spine(leaves=2, spines=1, hosts_per_leaf=HOSTS)
        tenants = {}
        for vid, weight in WEIGHTS.items():
            tenant = fabric.tenant(f"calc{vid}", calc.P4_SOURCE,
                                   vid=vid, installer=calc_installer)
            tenant.place(("leaf0", vid - 1), ("leaf1", vid - 1))
            tenant.set_weight(weight)
            tenants[vid] = tenant
        result = fabric.process_batch(
            [("leaf0", p.copy()) for p in batch],
            backend=backend, workers=WORKERS[backend])
        return {vid: [p.tobytes() for p in result.delivered_for(vid)]
                for vid in WEIGHTS}, result

    def _chained_outputs(self, batch):
        """The same three switches, chained entirely by hand."""
        def build(num_ports):
            return Switch.build().ports(num_ports).create()

        leaf0, spine, leaf1 = build(HOSTS + 1), build(2), build(HOSTS + 1)
        engines = {}
        for sw, key in ((leaf0, "leaf0"), (spine, "spine"),
                        (leaf1, "leaf1")):
            for vid, weight in WEIGHTS.items():
                handle = sw.admit(f"calc{vid}", calc.P4_SOURCE, vid=vid)
                # leaf0 -> uplink; spine -> port 1 (faces leaf1);
                # leaf1 -> the tenant's destination host port
                port = {"leaf0": UPLINK, "spine": 1,
                        "leaf1": vid - 1}[key]
                calc.install(handle, port=port)
                handle.set_weight(weight)
            engines[key] = sw.engine(line_rate_bps=10e9)

        engines["leaf0"].process_batch([p.copy() for p in batch])
        hop1 = leaf0.pipeline.traffic_manager.drain(UPLINK)
        for p in hop1:
            p.ingress_port = 0        # spine port 0 faces leaf0
        engines["spine"].process_batch(hop1)
        hop2 = spine.pipeline.traffic_manager.drain(1)
        for p in hop2:
            p.ingress_port = UPLINK   # leaf1's uplink port
        engines["leaf1"].process_batch(hop2)
        return {vid: [p.tobytes() for p in
                      leaf1.pipeline.traffic_manager.drain(vid - 1)]
                for vid in WEIGHTS}

    def test_two_tenant_fabric_equals_hand_chained_engines(self, backend):
        batch = mixed_batch()
        fabric_out, result = self._fabric_outputs(batch, backend)
        chained_out = self._chained_outputs(batch)
        assert result.waves == 3
        for vid in WEIGHTS:
            assert fabric_out[vid], f"tenant {vid} delivered nothing"
            assert fabric_out[vid] == chained_out[vid]

    def test_results_carry_correct_computation_end_to_end(self, backend):
        batch = mixed_batch(rounds=10)
        fabric_out, _ = self._fabric_outputs(batch, backend)
        from repro.net.packet import Packet
        adds = [calc.read_result(Packet(raw)) for raw in fabric_out[1]]
        assert adds == [i + (i + 1) for i in range(10)]
        subs = [calc.read_result(Packet(raw)) for raw in fabric_out[2]]
        assert subs == [1000 + i - i for i in range(0, 10, 2)]
