"""Differential testing: the behavioral pipeline vs per-module golden
models over randomized (seeded) traffic.

Each module gets a few hundred randomized packets; a pure-Python golden
model predicts the expected transformation, and the pipeline must agree
on every packet. This catches integration bugs none of the unit layers
see (encoding/decoding through reconfiguration packets, PHV allocation,
key slotting, deparser writeback)."""

import pytest

from repro.api import Tenant
from repro.core import MenshenPipeline
from repro.modules import calc, firewall, load_balancer, netcache, qos, source_routing
from repro.net import Ipv4Address
from repro.runtime import MenshenController

from seeds import SEED, rng as make_rng  # noqa: F401

ROUNDS = 200


def fresh(module, vid=3, **pipeline_kw):
    pipe = MenshenPipeline(**pipeline_kw)
    ctl = MenshenController(pipe)
    ctl.load_module(vid, module.P4_SOURCE, module.NAME)
    return pipe, ctl


class TestCalcDifferential:
    def test_randomized_opcodes_and_operands(self):
        pipe, ctl = fresh(calc)
        calc.install(Tenant.attach(ctl, 3), port=1)
        rng = make_rng(0)
        for _ in range(ROUNDS):
            op = rng.choice([calc.OP_ADD, calc.OP_SUB, calc.OP_ECHO, 99])
            a = rng.randrange(1 << 32)
            b = rng.randrange(1 << 32)
            result = pipe.process(calc.make_packet(3, op, a, b))
            assert calc.read_result(result.packet) == \
                calc.reference_result(op, a, b), (op, a, b)


class TestFirewallDifferential:
    def test_randomized_acl(self):
        pipe, ctl = fresh(firewall)
        rng = make_rng(1)
        blocked = [(f"10.0.{rng.randrange(256)}.{rng.randrange(256)}",
                    rng.randrange(1, 65536)) for _ in range(2)]
        allowed = [(f"10.1.{rng.randrange(256)}.{rng.randrange(256)}",
                    rng.randrange(1, 65536), rng.randrange(1, 8))
                   for _ in range(2)]
        firewall.install(Tenant.attach(ctl, 3), blocked=blocked, allowed=allowed)

        def golden(src, dport):
            if (src, dport) in blocked:
                return "drop"
            for a_src, a_dport, a_port in allowed:
                if (src, dport) == (a_src, a_dport):
                    return a_port
            return 0  # pass-through, default egress

        candidates = ([b for b in blocked]
                      + [(s, d) for s, d, _p in allowed]
                      + [(f"10.2.0.{i}", 1000 + i) for i in range(4)])
        for _ in range(ROUNDS):
            src, dport = rng.choice(candidates)
            result = pipe.process(firewall.make_packet(3, src, dport))
            expected = golden(src, dport)
            if expected == "drop":
                assert result.dropped, (src, dport)
            else:
                assert result.forwarded and result.egress_port == expected


class TestQosDifferential:
    def test_randomized_classes(self):
        pipe, ctl = fresh(qos)
        classes = [(5060, qos.DSCP_EF), (8801, qos.DSCP_AF41),
                   (4789, 18), (6081, 10)]
        qos.install(Tenant.attach(ctl, 3), classes=classes)
        table = dict(classes)
        rng = make_rng(2)
        ports = [c[0] for c in classes] + [80, 443, 53]
        for _ in range(ROUNDS):
            dport = rng.choice(ports)
            result = pipe.process(qos.make_packet(3, dport))
            assert qos.read_dscp(result.packet) == table.get(dport, 0)


class TestLoadBalancerDifferential:
    def test_randomized_flows(self):
        pipe, ctl = fresh(load_balancer)
        rng = make_rng(3)
        flows = [(f"10.0.0.{i}", 1000 + i, (i % 7) + 1, 8000 + i)
                 for i in range(4)]
        load_balancer.install(Tenant.attach(ctl, 3), flows=flows)
        table = {(Ipv4Address(src).value, sport): (port, dport)
                 for src, sport, port, dport in flows}
        for _ in range(ROUNDS):
            if rng.random() < 0.7:
                src, sport, _p, _d = rng.choice(flows)
            else:
                src, sport = f"10.9.0.{rng.randrange(8)}", 555
            result = pipe.process(load_balancer.make_packet(3, src, sport))
            key = (Ipv4Address(src).value, sport)
            if key in table:
                port, dport = table[key]
                assert result.egress_port == port
                assert load_balancer.read_dport(result.packet) == dport
            else:
                assert result.egress_port == 0
                assert load_balancer.read_dport(result.packet) == 20000


class TestSourceRoutingDifferential:
    def test_randomized_ports_and_tags(self):
        pipe, ctl = fresh(source_routing)
        source_routing.install(Tenant.attach(ctl, 3))
        rng = make_rng(4)
        for _ in range(ROUNDS):
            port = rng.randrange(8)
            good_tag = rng.random() < 0.6
            tag = source_routing.VALID_TAG if good_tag \
                else rng.randrange(1 << 16)
            result = pipe.process(
                source_routing.make_packet(3, port, tag=tag))
            if tag == source_routing.VALID_TAG:
                assert result.egress_port == port
            else:
                assert result.egress_port == 0


class TestNetcacheDifferential:
    def test_randomized_gets_with_shadow_store(self):
        pipe, ctl = fresh(netcache)
        cached = [(0x100 + i, i, 1000 + i) for i in range(4)]
        netcache.install(Tenant.attach(ctl, 3), cached=cached)
        store = {key: value for key, _slot, value in cached}
        rng = make_rng(5)
        expected_ops = 0
        for _ in range(ROUNDS):
            if rng.random() < 0.6:
                key = rng.choice(list(store))
            else:
                key = 0x900 + rng.randrange(16)
            result = pipe.process(netcache.make_get(3, key))
            expected_ops += 1
            assert netcache.read_value(result.packet) == store.get(key, 0)
            assert netcache.read_stat(result.packet) == expected_ops
