"""Failure injection: reconfiguration-packet loss, malformed inputs, and
recovery behavior of the control protocols."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Tenant
from repro.core import (
    MenshenPipeline,
    ResourceId,
    ResourceType,
    build_reconfig_packet,
)
from repro.errors import (
    PacketError,
    ReconfigurationError,
    TruncatedPacketError,
)
from repro.modules import calc, netchain
from repro.net.packet import Packet
from repro.runtime import MenshenController


class TestReconfigLossRecovery:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 3))
    def test_load_correct_under_random_loss(self, losses):
        """Whatever packets the chain loses, a completed load leaves the
        exact same configuration state as a loss-free load."""
        clean = MenshenPipeline()
        MenshenController(clean).load_module(3, calc.P4_SOURCE, "calc")

        lossy = MenshenPipeline()
        lossy.daisy_chain.drop_next(losses)
        MenshenController(lossy).load_module(3, calc.P4_SOURCE, "calc")

        assert lossy.parser_table.snapshot() == clean.parser_table.snapshot()
        for s_lossy, s_clean in zip(lossy.stages, clean.stages):
            assert s_lossy.key_extract_table.snapshot() == \
                s_clean.key_extract_table.snapshot()
            assert s_lossy.key_mask_table.snapshot() == \
                s_clean.key_mask_table.snapshot()

    def test_load_fails_cleanly_under_total_loss(self):
        pipe = MenshenPipeline()
        pipe.daisy_chain.drop_next(10 ** 6)
        ctl = MenshenController(pipe, max_load_retries=2)
        with pytest.raises(ReconfigurationError):
            ctl.load_module(3, calc.P4_SOURCE, "calc")
        # The bitmap must not be left blocking the module's traffic.
        assert pipe.packet_filter.read_bitmap() == 0

    def test_entry_add_retries_under_loss(self):
        pipe = MenshenPipeline()
        ctl = MenshenController(pipe)
        ctl.load_module(3, calc.P4_SOURCE, "calc")
        pipe.daisy_chain.drop_next(1)
        ctl.table_add(3, "calc_table", {"hdr.calc.op": calc.OP_ADD},
                      "op_add", {"port": 1})
        result = pipe.process(calc.make_packet(3, calc.OP_ADD, 2, 2))
        assert calc.read_result(result.packet) == 4

    def test_state_zeroed_between_tenants(self):
        """A new tenant must never observe the previous tenant's state
        (the paper's motivation for generating fresh entries on load)."""
        pipe = MenshenPipeline()
        ctl = MenshenController(pipe)
        ctl.load_module(3, netchain.P4_SOURCE, "chain-a")
        netchain.install(Tenant.attach(ctl, 3))
        for _ in range(5):
            pipe.process(netchain.make_packet(3))
        assert ctl.register_read(3, "sequencer") == 5
        ctl.unload_module(3)
        # A different tenant takes the same module id and resources.
        ctl.load_module(3, netchain.P4_SOURCE, "chain-b")
        netchain.install(Tenant.attach(ctl, 3))
        result = pipe.process(netchain.make_packet(3))
        assert netchain.read_seq(result.packet) == 1  # fresh state


class TestMalformedInputs:
    def test_truncated_packets_never_crash_the_filter(self):
        pipe = MenshenPipeline()
        for size in range(0, 48, 7):
            result = pipe.process(Packet(b"\x00" * size))
            assert result.dropped

    @given(st.binary(min_size=0, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_random_bytes_never_reconfigure(self, blob):
        """Fuzz: arbitrary data-path bytes can never write configuration."""
        pipe = MenshenPipeline()
        before_parser = pipe.parser_table.snapshot()
        before_ke = pipe.stages[0].key_extract_table.snapshot()
        try:
            pipe.process(Packet(bytes(blob)))
        except (PacketError, TruncatedPacketError):
            pass  # malformed inputs may be rejected, never applied
        assert pipe.parser_table.snapshot() == before_parser
        assert pipe.stages[0].key_extract_table.snapshot() == before_ke

    def test_reconfig_shaped_data_packet_is_inert_in_switch_mode(self):
        pipe = MenshenPipeline(reconfig_from_dataplane=False)
        evil = build_reconfig_packet(
            ResourceId(ResourceType.KEY_MASK, 0), index=2,
            entry=(1 << 193) - 1)
        before = pipe.stages[0].key_mask_table.snapshot()
        result = pipe.process(evil)
        assert result.dropped
        assert pipe.stages[0].key_mask_table.snapshot() == before

    def test_short_reconfig_packet_rejected(self):
        pipe = MenshenPipeline()
        good = build_reconfig_packet(
            ResourceId(ResourceType.SEGMENT, 0), index=1, entry=0x0101)
        truncated = Packet(good.read_bytes(0, 50))
        with pytest.raises(ReconfigurationError):
            pipe.inject_reconfig(truncated)

    def test_unknown_resource_type_rejected(self):
        pipe = MenshenPipeline()
        good = build_reconfig_packet(
            ResourceId(ResourceType.SEGMENT, 0), index=1, entry=0x0101)
        # Corrupt the resource-type nibble to an undefined value (15).
        word = good.read_int(46, 2)
        good.write_int(46, 2, (word & 0x0FFF) | (15 << 12))
        with pytest.raises(ReconfigurationError):
            pipe.inject_reconfig(good)

    def test_module_packet_too_short_for_its_parser(self):
        """A tenant sending packets shorter than its own declared headers
        only hurts itself: the parse faults and the packet is the
        tenant's problem; the pipeline survives."""
        pipe = MenshenPipeline()
        ctl = MenshenController(pipe)
        ctl.load_module(3, calc.P4_SOURCE, "calc")
        calc.install(Tenant.attach(ctl, 3))
        short = calc.make_packet(3, calc.OP_ADD, 1, 1)
        short.truncate(50)  # cuts into the calc header
        with pytest.raises(PacketError):
            pipe.process(short)
        # Well-formed traffic still flows afterwards.
        ok = pipe.process(calc.make_packet(3, calc.OP_ADD, 1, 1))
        assert ok.forwarded
