"""Sharded parallel execution backend (:mod:`repro.exec.parallel`).

Four contracts lock the backend to the serial oracle:

1. **Counter algebra** — the introspected merge/diff/assign helpers
   cover *every* dataclass field: a newly added counter merges
   automatically, and a field type the algebra cannot merge raises
   ``TypeError`` instead of being silently skipped.
2. **Picklability** — everything that crosses a worker boundary
   (packets, entries, loss records, whole switch specs) round-trips
   through ``pickle`` unchanged.
3. **Shard drivers** — ``run_waves_shard`` / ``run_timeline_shard``
   are plain callables drivable in-process (no subprocess), and a
   single shard reproduces the serial result exactly.
4. **Backend parity** — the process backend is bit-identical to
   serial for waves and timeline runs, including a mid-run tenant
   update whose hosting switches span a worker boundary and a link
   flap that blackholes traffic on a cross-worker link.
"""

import dataclasses
import pickle
from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.core.stats import (
    PipelineStats,
    diff_counters,
    merge_counters,
)
from repro.engine.batch import EngineCounters
from repro.errors import ParallelExecError
from repro.exec import LostRecord
from repro.exec.parallel import (
    LinkStateOp,
    TenantUpdateOp,
    WorkerShard,
    _WavesPlan,
    build_timeline_plans,
    default_backend,
    default_workers,
    partition_names,
    resolve_backend,
    run_timeline_shard,
    run_waves_shard,
)
from repro.fabric import Fabric, leaf_spine
from repro.modules import calc
from repro.net.packet import Packet
from repro.rmt.entry_types import TableEntry
from repro.rmt.phv import PHV
from repro.sim.fabric_timeline import FabricTimelineExperiment
from repro.traffic import TrafficMatrix

SWITCHES = ("leaf0", "leaf1", "spine0")


def calc_installer(tenant, port):
    calc.install(tenant, port=port)


def make_pkt_1():
    return calc.make_packet(1, calc.OP_ADD, 7, 1, pad_to=300)


def make_pkt_2():
    return calc.make_packet(2, calc.OP_SUB, 9, 1, pad_to=300)


def build_fabric(link_delay_s=2e-5):
    """2-leaf/1-spine, two tenants routed leaf0 -> leaf1 via spine0.

    With 2 workers the shards are ``[leaf0, leaf1]`` and ``[spine0]``,
    so every tenant's route — and its §4.1 drop window — crosses the
    worker boundary."""
    fabric = leaf_spine(leaves=2, spines=1, hosts_per_leaf=4,
                        link_delay_s=link_delay_s)
    for vid, weight in ((1, 1.0), (2, 3.0)):
        tenant = fabric.tenant(f"calc{vid}", calc.P4_SOURCE, vid=vid,
                               installer=calc_installer)
        tenant.place(("leaf0", vid - 1), ("leaf1", vid - 1))
        tenant.set_weight(weight)
    return fabric


def mixed_batch(rounds=40):
    pkts = []
    for i in range(rounds):
        pkts.append(calc.make_packet(1, calc.OP_ADD, i, i + 1,
                                     pad_to=200))
        if i % 2 == 0:
            pkts.append(calc.make_packet(2, calc.OP_SUB, 1000 + i, i,
                                         pad_to=300))
    return pkts


def build_matrix():
    matrix = TrafficMatrix()
    matrix.add(1, ("leaf0", 0), ("leaf1", 0), offered_bps=0.4e9,
               packet_size=300, make_packet=make_pkt_1)
    matrix.add(2, ("leaf0", 1), ("leaf1", 1), offered_bps=0.2e9,
               packet_size=300, make_packet=make_pkt_2)
    return matrix


def assert_timeline_equal(rs, rp):
    """Field-by-field equality of two FabricTimelineResults."""
    for f in dataclasses.fields(rs):
        assert getattr(rs, f.name) == getattr(rp, f.name), f.name
    assert rs.lost_records() == rp.lost_records()


# -- 1. counter algebra -------------------------------------------------------


@dataclass
class _ExtendedStats(PipelineStats):
    """PipelineStats plus a counter the merge code has never seen."""

    brand_new_counter: int = 0
    brand_new_map: Dict[str, int] = field(default_factory=dict)


@dataclass
class _BadStats(PipelineStats):
    """A field type the introspected algebra must refuse to merge."""

    history: List[int] = field(default_factory=list)


class TestCounterAlgebra:
    def test_merge_covers_every_field_without_enumeration(self):
        """A counter added to the dataclass merges with zero changes to
        the merge code — the introspection satellite's contract."""
        src = _ExtendedStats()
        src.record_in(7)
        src.record_out(7, 128)
        src.record_drop(7, "window")
        src.record_egress_tx(7, 64)
        src.brand_new_counter = 5
        src.brand_new_map["x"] = 3
        dst = _ExtendedStats()
        dst.merge_from(src)
        dst.merge_from(src)
        assert dst.packets_in == 2
        assert dst.per_module_bytes_out[7] == 256
        assert dst.drop_reasons["window"] == 2
        assert dst.brand_new_counter == 10
        assert dst.brand_new_map == {"x": 6}

    def test_unmergeable_field_raises_instead_of_skipping(self):
        with pytest.raises(TypeError, match="history"):
            merge_counters(_BadStats(), _BadStats())
        with pytest.raises(TypeError, match="history"):
            diff_counters(_BadStats(), _BadStats())

    def test_delta_since_keeps_zero_delta_keys(self):
        """Worker frames keep keys at delta 0, so the merged parent's
        key set matches a serial run's exactly."""
        stats = PipelineStats()
        stats.record_in(3)
        baseline = stats.snapshot()
        stats.record_in(5)
        delta = stats.delta_since(baseline)
        assert delta.per_module_in == {3: 0, 5: 1}

    def test_assign_from_restores_in_place(self):
        stats = PipelineStats()
        stats.record_in(1)
        snap = stats.snapshot()
        per_module = stats.per_module_in
        stats.record_in(2)
        stats.assign_from(snap)
        assert stats.per_module_in is per_module  # identity preserved
        assert dict(stats.per_module_in) == {1: 1}
        # The restored dicts are copies, not aliases of the snapshot.
        stats.record_in(1)
        assert snap.per_module_in[1] == 1

    def test_engine_counters_share_the_algebra(self):
        """EngineCounters' nested per-tenant dataclasses merge and diff
        through the same introspected helpers."""
        src = EngineCounters()
        src.cache_hits += 1
        src.tenant(1).cache_hits += 1
        src.classifier_fallbacks["stateful"] = 2
        baseline = src.snapshot()
        src.cache_hits += 1
        src.tenant(2).cache_hits += 1
        delta = src.delta_since(baseline)
        assert delta.cache_hits == 1
        assert delta.per_tenant[1].cache_hits == 0
        assert delta.per_tenant[2].cache_hits == 1
        assert delta.classifier_fallbacks == {"stateful": 0}
        dst = EngineCounters()
        dst.merge_from(delta)
        assert dst.per_tenant[2].cache_hits == 1
        assert dst.per_tenant[1].cache_hits == 0


# -- 2. picklability ----------------------------------------------------------


class TestPicklability:
    def roundtrip(self, obj):
        return pickle.loads(
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))

    def test_packet_roundtrip(self):
        pkt = Packet(b"hello", ingress_port=3, arrival_time=1.5)
        out = self.roundtrip(pkt)
        assert out.tobytes() == b"hello"
        assert out.ingress_port == 3
        assert out.arrival_time == 1.5
        out.buf[0] = 0  # still a mutable, independent buffer
        assert pkt.tobytes() == b"hello"

    def test_phv_roundtrip(self):
        phv = PHV.from_container_values(list(range(24)))
        out = self.roundtrip(phv)
        assert out._values == phv._values

    def test_table_entry_roundtrip(self):
        entry = TableEntry.of({"hdr.udp.dstPort": 53}, "block")
        assert self.roundtrip(entry) == entry

    def test_lost_record_roundtrip(self):
        record = LostRecord(vid=2, link="leaf0:4-spine0:0", count=7)
        assert self.roundtrip(record) == record

    def test_switch_spec_roundtrip_replays_identically(self):
        """A pickled FabricSwitch — program, entries, scheduler, flow
        cache — serves the same packets to the same results."""
        original = build_fabric().switch("leaf0")
        revived = self.roundtrip(original)
        assert revived.name == "leaf0"
        assert revived.num_ports == original.num_ports
        batch = mixed_batch(rounds=6)
        res_o = original.engine.process_batch([p.copy() for p in batch])
        res_r = revived.engine.process_batch([p.copy() for p in batch])
        assert [r.egress_port for r in res_o] == \
            [r.egress_port for r in res_r]
        assert original.switch.pipeline.stats.snapshot() == \
            revived.switch.pipeline.stats.snapshot()

    def test_unpicklable_reconfig_is_a_typed_error(self):
        """An opaque ``apply=lambda`` cannot cross a process boundary;
        the backend says so up front instead of a pickle traceback."""
        fabric = build_fabric()
        experiment = FabricTimelineExperiment(
            fabric, build_matrix(), duration_s=1e-4,
            backend="process", workers=2)
        experiment.schedule_reconfig(1, 5e-5, apply=lambda: None)
        with pytest.raises(ParallelExecError, match="declarative"):
            experiment.run()


# -- backend selection --------------------------------------------------------


class TestBackendSelection:
    def test_defaults_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_EXEC_WORKERS", raising=False)
        assert default_backend() == "serial"
        assert default_workers() is None
        assert resolve_backend(None) == "serial"
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
        assert default_backend() == "process"
        assert default_workers() == 2
        assert resolve_backend(None) == "process"
        # An explicit argument beats the environment.
        assert resolve_backend("serial") == "serial"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="thread"):
            resolve_backend("thread")
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "gpu")
        with pytest.raises(ValueError, match="gpu"):
            default_backend()

    def test_partition_is_contiguous_and_balanced(self):
        names = [f"sw{i}" for i in range(7)]
        blocks = partition_names(names, 3)
        assert blocks == [["sw0", "sw1", "sw2"],
                          ["sw3", "sw4"], ["sw5", "sw6"]]
        assert partition_names(names, 99) == [[n] for n in names]
        assert partition_names(names, 1) == [names]

    def test_zero_delay_cross_worker_link_rejected(self):
        """No propagation delay means no lookahead — conservative sync
        cannot make progress, so the split is refused up front."""
        fabric = Fabric()
        fabric.add_switch("a")
        fabric.add_switch("b")
        fabric.connect("a", 3, "b", 3, delay_s=0.0)
        experiment = FabricTimelineExperiment(
            fabric, TrafficMatrix(), duration_s=1e-4)
        with pytest.raises(ParallelExecError, match="lookahead"):
            build_timeline_plans(experiment, 2)


# -- 3. in-process shard drivers ----------------------------------------------


class TestShardDrivers:
    def test_waves_shard_single_worker_matches_serial(self):
        serial = build_fabric().process_batch(
            [("leaf0", p.copy()) for p in mixed_batch()])

        fabric = build_fabric()
        members = fabric.switches()
        index = {m.name: i for i, m in enumerate(members)}
        plan = _WavesPlan(worker_id=0, spec=b"", member_index=index)
        sent = []
        # A mini-parent: each wave_done's emissions, sorted into
        # serial order, become the next wave until the batch drains.
        state = {"wave": 0,
                 "items": [("leaf0", p.copy()) for p in mixed_batch()]}

        def recv():
            if state["items"]:
                msg = ("wave", state["wave"], state["items"])
                state["wave"] += 1
                state["items"] = []
                return msg
            return ("finish",)

        def send(msg):
            sent.append(msg)
            if msg[0] == "wave_done":
                emissions = sorted(msg[2], key=lambda e: e[:3])
                state["items"] = [(name, packet) for _, _, _, name,
                                  packet in emissions]

        run_waves_shard(plan, WorkerShard(members), recv, send)
        assert state["wave"] == serial.waves
        frame = pickle.loads(sent[-1][2])
        delivered = sorted(frame.delivered, key=lambda d: d[:3])
        assert [d[6].tobytes() for d in delivered] == \
            [d.packet.tobytes() for d in serial.delivered]

    def test_timeline_shard_single_worker_matches_serial(self):
        serial = FabricTimelineExperiment(
            build_fabric(), build_matrix(), duration_s=2e-4).run()

        experiment = FabricTimelineExperiment(
            build_fabric(), build_matrix(), duration_s=2e-4)
        plan = build_timeline_plans(experiment, 1)[0]
        assert plan.in_peers == {} and plan.out_peers == ()
        shard = WorkerShard(pickle.loads(plan.spec))
        sent = []
        run_timeline_shard(plan, shard, iter([("stop",)]).__next__,
                           None, sent.append)
        statuses = [m for m in sent if m[0] == "status"]
        assert statuses and statuses[0][4] == 0  # quiescent after round 0
        frame = pickle.loads(sent[-1][2])
        assert frame.backlog == 0
        delivered: Dict[int, int] = {}
        for vid, _, _, _ in frame.deliveries:
            delivered[vid] = delivered.get(vid, 0) + 1
        assert delivered == serial.delivered
        assert frame.drops == serial.drops
        assert frame.lvt == pytest.approx(serial.elapsed_s)


# -- 4. backend parity --------------------------------------------------------


class TestWavesParity:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_process_backend_bit_identical(self, workers):
        batch = mixed_batch()
        fs = build_fabric()
        rs = fs.process_batch([("leaf0", p.copy()) for p in batch],
                              backend="serial")
        fp = build_fabric()
        rp = fp.process_batch([("leaf0", p.copy()) for p in batch],
                              backend="process", workers=workers)
        assert rp.waves == rs.waves
        assert rp.dropped == rs.dropped
        assert rp.lost_records() == rs.lost_records()
        for vid in (1, 2):
            assert [p.tobytes() for p in rp.delivered_for(vid)] == \
                [p.tobytes() for p in rs.delivered_for(vid)]
        assert [(d.switch, d.port, d.vid) for d in rp.delivered] == \
            [(d.switch, d.port, d.vid) for d in rs.delivered]
        for name in SWITCHES:
            assert [r.egress_port for r in rp.results[name]] == \
                [r.egress_port for r in rs.results[name]]
            assert fp.switch(name).switch.pipeline.stats.snapshot() \
                == fs.switch(name).switch.pipeline.stats.snapshot()
            assert fp.switch(name).engine.counters.snapshot() \
                == fs.switch(name).engine.counters.snapshot()
        for vid in (1, 2):
            assert fp.tenant_counters(vid) == fs.tenant_counters(vid)

    def test_arrival_packets_not_mutated(self):
        """The serial path rewrites ingress ports in place; the process
        path works on pickled copies and leaves the caller's packets
        alone — documented, and locked in here."""
        batch = [calc.make_packet(1, calc.OP_ADD, i, 1) for i in range(4)]
        before = [(p.tobytes(), p.ingress_port) for p in batch]
        build_fabric().process_batch([("leaf0", p) for p in batch],
                                     backend="process", workers=2)
        assert [(p.tobytes(), p.ingress_port) for p in batch] == before

    def test_env_selects_process_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
        batch = mixed_batch(rounds=4)
        result = build_fabric().process_batch(
            [("leaf0", p.copy()) for p in batch])
        assert result.waves == 3

    def test_forwarding_cycle_still_a_typed_error(self):
        fabric = build_fabric()
        with pytest.raises(Exception) as exc_info:
            fabric.process_batch(
                [("leaf0", p.copy()) for p in mixed_batch(rounds=2)],
                max_hops=1, backend="process", workers=2)
        assert "in flight after 1 hops" in str(exc_info.value)


class TestTimelineParity:
    def run_pair(self, configure=None, duration_s=1e-3):
        results = []
        for backend, workers in (("serial", None), ("process", 2)):
            experiment = FabricTimelineExperiment(
                build_fabric(), build_matrix(), duration_s=duration_s,
                backend=backend, workers=workers)
            if configure is not None:
                configure(experiment)
            results.append(experiment.run())
        return results

    def test_plain_run_bit_identical(self):
        rs, rp = self.run_pair()
        assert rp.delivered and rp.delivered == rs.delivered
        assert_timeline_equal(rs, rp)

    def test_tenant_update_across_worker_boundary(self):
        """A §4.1 reconfig window opened mid-run: tenant 1's hosting
        switches (leaf0, leaf1 on worker 0; spine0 on worker 1) span
        the shard boundary, so the op must fire on both workers — and
        drop in-window packets identically to serial."""
        def configure(experiment):
            tenant = experiment.fabric.tenant_by_vid(1)
            experiment.schedule_reconfig(
                1, start_s=3e-4, duration_s=2e-4,
                op=TenantUpdateOp.for_tenant(tenant, calc.P4_SOURCE))

        rs, rp = self.run_pair(configure)
        assert rs.drops.get(1, 0) > 0  # the window actually dropped
        assert rp.delivered == rs.delivered
        assert_timeline_equal(rs, rp)

    def test_link_flap_across_worker_boundary(self):
        """The leaf0-spine0 link (a cross-worker edge at 2 workers)
        goes down mid-run and comes back: blackholed packets, the loss
        log, and per-link loss attribution all match serial."""
        def configure(experiment):
            experiment.schedule_reconfig(
                1, start_s=3e-4, op=LinkStateOp(
                    a="leaf0", b="spine0", up=False))
            experiment.schedule_reconfig(
                1, start_s=6e-4, op=LinkStateOp(
                    a="leaf0", b="spine0", up=True))

        rs, rp = self.run_pair(configure)
        assert sum(rs.lost.values()) > 0  # the flap actually lost traffic
        assert rp.lost == rs.lost
        assert rp.loss_log == rs.loss_log
        assert_timeline_equal(rs, rp)

    def test_per_switch_counters_match_after_parallel_run(self):
        fabrics, results = [], []
        for backend, workers in (("serial", None), ("process", 2)):
            fabric = build_fabric()
            experiment = FabricTimelineExperiment(
                fabric, build_matrix(), duration_s=5e-4,
                backend=backend, workers=workers)
            results.append(experiment.run())
            fabrics.append(fabric)
        fs, fp = fabrics
        for name in SWITCHES:
            assert fp.switch(name).switch.pipeline.stats.snapshot() \
                == fs.switch(name).switch.pipeline.stats.snapshot()
            assert fp.switch(name).engine.counters.snapshot() \
                == fs.switch(name).engine.counters.snapshot()
        assert fp.stats() == fs.stats()
        for vid in (1, 2):
            assert fp.tenant_counters(vid) == fs.tenant_counters(vid)

    def test_tenant_update_keeps_parent_fabric_in_sync(self):
        """After a process-backend run the parent's FabricTenant must
        reflect the replayed update (same committed source), so later
        serial operations see the post-op fabric."""
        def run(backend, workers=None):
            fabric = build_fabric()
            experiment = FabricTimelineExperiment(
                fabric, build_matrix(), duration_s=5e-4,
                backend=backend, workers=workers)
            tenant = fabric.tenant_by_vid(1)
            experiment.schedule_reconfig(
                1, start_s=2e-4, duration_s=1e-4,
                op=TenantUpdateOp.for_tenant(tenant, calc.P4_SOURCE))
            experiment.run()
            return fabric

        fs = run("serial")
        fp = run("process", workers=2)
        assert fp.tenant_by_vid(1).source == fs.tenant_by_vid(1).source
        # The fabric is still fully operational serially post-run.
        batch = mixed_batch(rounds=3)
        out_s = fs.process_batch([("leaf0", p.copy()) for p in batch])
        out_p = fp.process_batch([("leaf0", p.copy()) for p in batch])
        assert [p.tobytes() for p in out_p.delivered_for(1)] == \
            [p.tobytes() for p in out_s.delivered_for(1)]
