"""`repro-info` console tool: human table and ``--json`` output."""

import json

import pytest

from repro.rmt.params import DEFAULT_PARAMS
from repro.tools.info import info_dict, main


def test_json_flag_emits_parseable_inventory(capsys):
    assert main(["--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    p = DEFAULT_PARAMS
    assert data["params"]["num_stages"] == p.num_stages
    assert data["params"]["max_modules"] == p.max_modules
    assert data["params"]["cam_entry_bits"] == p.cam_entry_bits
    assert data["params"]["alu_action_bits"] == p.alu_action_bits
    assert data["params"]["container_sizes"] == list(p.container_sizes)
    assert set(data["platforms"]) == {"netfpga_sume", "corundum"}
    for plat in data["platforms"].values():
        assert plat["bus_bytes"] == plat["bus_width_bits"] // 8
    # The table inventory round-trips shape and content.
    assert data["table_inventory"] == p.table_inventory()


def test_json_engine_section(capsys):
    """The engine section documents the three-level hot path and its
    counter schema, and can never drift from the dataclasses."""
    import dataclasses

    from repro.engine.batch import EngineCounters, EngineTenantCounters

    assert main(["--json"]) == 0
    engine = json.loads(capsys.readouterr().out)["engine"]

    levels = engine["hot_path_levels"]
    assert [lvl["level"] for lvl in levels] == [1, 2, 3]
    assert [lvl["name"] for lvl in levels] == \
        ["flow_cache", "compiled_classifier", "scalar_pipeline"]

    counter_fields = {f.name for f in dataclasses.fields(EngineCounters)}
    assert set(engine["counters"]) <= counter_fields
    assert {"cache_hits", "compiled_hits", "invalidations",
            "invalidation_calls", "compile_rebuilds"} <= \
        set(engine["counters"])
    assert set(engine["tenant_counters"]) == \
        {f.name for f in dataclasses.fields(EngineTenantCounters)}

    assert set(engine["fallback_reasons"]) == \
        {"stateful", "unsupported-action", "uncompilable", "parse-window",
         "uncertified"}
    # The satellite-1 unit fix is part of the documented schema.
    assert engine["counter_units"]["invalidations"] == \
        "flushed cache entries"
    assert engine["counter_units"]["invalidation_calls"] == \
        "invalidate() calls"


def test_json_analysis_section(capsys):
    """The analysis section mirrors the live pass/rule/obligation
    registries, so downstream tooling can discover them without
    importing the library."""
    from repro.analysis import CONFIG_PASSES, MODULE_PASSES
    from repro.analysis.equiv import CERTIFICATE_SCHEMA_VERSION, OBLIGATIONS
    from repro.analysis.lint import RULES
    from repro.engine.batch import CERTIFY_MODES

    assert main(["--json"]) == 0
    analysis = json.loads(capsys.readouterr().out)["analysis"]

    assert analysis["module_passes"] == [p.name for p in MODULE_PASSES]
    assert analysis["config_passes"] == [p.name for p in CONFIG_PASSES]
    assert analysis["lint_rules"] == list(RULES)
    assert "bare-assert" in analysis["lint_rules"]

    certifier = analysis["certifier"]
    assert certifier["obligations"] == list(OBLIGATIONS)
    assert certifier["certificate_schema_version"] == \
        CERTIFICATE_SCHEMA_VERSION
    assert certifier["modes"] == list(CERTIFY_MODES)
    assert certifier["env_var"] == "REPRO_ENGINE_CERTIFY"


def test_json_exec_section(capsys):
    """The exec section mirrors the live backend registry, so
    downstream tooling can discover the parallel backend's knobs
    without importing the library."""
    from repro.exec.parallel import EXEC_BACKENDS, PARALLEL_INFO

    assert main(["--json"]) == 0
    exec_info = json.loads(capsys.readouterr().out)["exec"]

    assert exec_info["backends"] == list(EXEC_BACKENDS)
    assert exec_info["env"] == {"backend": "REPRO_EXEC_BACKEND",
                                "workers": "REPRO_EXEC_WORKERS"}
    assert "one worker per switch" in exec_info["worker_policy"]
    assert "Chandy-Misra-Bryant" in exec_info["sync_algorithm"]
    assert "propagation delay" in exec_info["lookahead_source"]
    assert exec_info == PARALLEL_INFO


def test_json_matches_info_dict(capsys):
    main(["--json"])
    assert json.loads(capsys.readouterr().out) == \
        json.loads(json.dumps(info_dict()))


def test_human_output_unchanged_by_default(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "Menshen prototype hardware parameters" in out
    assert "table inventory" in out
    with pytest.raises(json.JSONDecodeError):
        json.loads(out)