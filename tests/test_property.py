"""Property-based tests (hypothesis) on core data structures and the
isolation invariants."""

from hypothesis import given, settings, strategies as st

from repro.api import Tenant
from repro import bits
from repro.core import OverlayTable, SegmentTable, SegmentedAccess
from repro.core.reconfig import (
    ResourceId,
    ResourceType,
    build_reconfig_packet,
    entry_payload_bytes,
    parse_reconfig_packet,
)
from repro.errors import SegmentFaultError
from repro.net.checksum import internet_checksum
from repro.rmt import (
    AluAction,
    AluOp,
    ExactMatchTable,
    StatefulMemory,
    VliwInstruction,
)
from repro.rmt.action_engine import ActionEngine, StatefulAccess
from repro.rmt.encodings import (
    decode_cam_entry,
    decode_key,
    decode_parse_action,
    decode_parser_entry,
    encode_cam_entry,
    encode_key,
    encode_parse_action,
    encode_parser_entry,
)
from repro.rmt.phv import PHV, ContainerRef, ContainerType

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

container_refs = st.builds(
    ContainerRef,
    st.sampled_from([ContainerType.B2, ContainerType.B4, ContainerType.B6]),
    st.integers(0, 7))

key_parts = st.tuples(
    st.integers(0, (1 << 48) - 1), st.integers(0, (1 << 48) - 1),
    st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 32) - 1),
    st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))


# ---------------------------------------------------------------------------
# bit packing
# ---------------------------------------------------------------------------

class TestBitsProperties:
    @given(st.integers(0, (1 << 193) - 1), st.integers(1, 205))
    def test_bytes_roundtrip(self, value, width):
        if value < (1 << width):
            assert bits.from_bytes(bits.to_bytes(value, width),
                                   width) == value

    @given(st.lists(st.tuples(st.integers(0, 255), st.just(8)),
                    min_size=1, max_size=20))
    def test_concat_split_inverse(self, fields):
        word = bits.concat_fields(fields)
        assert bits.split_fields(word, [w for _v, w in fields]) \
            == [v for v, _w in fields]

    @given(st.integers(0, (1 << 16) - 1), st.integers(0, 15),
           st.integers(1, 8))
    def test_set_get_bits(self, word, offset, width):
        value = word & bits.mask(width)
        updated = bits.set_bits(word, offset, width, value)
        assert bits.get_bits(updated, offset, width) == value


# ---------------------------------------------------------------------------
# encodings
# ---------------------------------------------------------------------------

class TestEncodingProperties:
    @given(st.integers(0, 127), st.integers(0, 2), st.integers(0, 7),
           st.integers(0, 1))
    def test_parse_action_roundtrip(self, offset, ctype, cindex, valid):
        word = encode_parse_action(offset, ctype, cindex, valid)
        fields = decode_parse_action(word)
        assert (fields["bytes_from_head"], fields["container_type"],
                fields["container_index"], fields["valid"]) == \
            (offset, ctype, cindex, valid)

    @given(st.lists(st.integers(0, (1 << 16) - 1), min_size=0, max_size=10))
    def test_parser_entry_roundtrip(self, actions):
        entry = encode_parser_entry(actions)
        decoded = decode_parser_entry(entry)
        assert decoded[:len(actions)] == actions
        assert all(w == 0 for w in decoded[len(actions):])

    @given(key_parts, st.integers(0, 1))
    def test_key_roundtrip(self, parts, flag):
        key = encode_key(list(parts), flag)
        back, back_flag = decode_key(key)
        assert tuple(back) == parts and back_flag == flag

    @given(key_parts, st.integers(0, 1), st.integers(0, 0xFFF))
    def test_cam_entry_roundtrip(self, parts, flag, module_id):
        key = encode_key(list(parts), flag)
        entry = encode_cam_entry(key, module_id)
        assert decode_cam_entry(entry) == (key, module_id)

    @given(container_refs, container_refs)
    def test_two_operand_alu_roundtrip(self, c1, c2):
        for op in (AluOp.ADD, AluOp.SUB):
            action = AluAction(op, c1=c1, c2=c2)
            assert AluAction.decode(action.encode()) == action

    @given(container_refs, st.integers(0, (1 << 16) - 1),
           st.sampled_from([AluOp.ADDI, AluOp.SUBI, AluOp.LOAD,
                            AluOp.STORE, AluOp.LOADD, AluOp.PORT,
                            AluOp.MCAST]))
    def test_immediate_alu_roundtrip(self, c1, imm, op):
        action = AluAction(op, c1=c1, immediate=imm)
        assert AluAction.decode(action.encode()) == action

    @given(st.dictionaries(st.integers(0, 23),
                           st.builds(lambda i: AluAction(AluOp.SET,
                                                         immediate=i),
                                     st.integers(0, 0xFFFF)),
                           max_size=10))
    def test_vliw_roundtrip(self, sparse):
        instr = VliwInstruction.from_sparse(sparse)
        assert VliwInstruction.decode(instr.encode()) == instr


# ---------------------------------------------------------------------------
# checksum
# ---------------------------------------------------------------------------

class TestChecksumProperties:
    @given(st.binary(min_size=0, max_size=256).filter(
        lambda d: len(d) % 2 == 0))
    def test_data_plus_checksum_verifies(self, data):
        # The verification identity holds when the checksum slot is
        # 16-bit aligned, which is how every real header lays it out.
        checksum = internet_checksum(data)
        assert internet_checksum(data + checksum.to_bytes(2, "big")) == 0

    @given(st.binary(min_size=2, max_size=64))
    def test_checksum_detects_single_bit_flips(self, data):
        checksum = internet_checksum(data)
        flipped = bytearray(data)
        flipped[0] ^= 0x01
        if bytes(flipped) != data:
            assert internet_checksum(bytes(flipped)) != checksum


# ---------------------------------------------------------------------------
# isolation invariants
# ---------------------------------------------------------------------------

class TestIsolationProperties:
    @given(st.lists(st.tuples(st.integers(0, 31),
                              st.integers(0, (1 << 16) - 1)),
                    min_size=1, max_size=50))
    def test_overlay_rows_independent(self, writes):
        """Writing any sequence of rows never changes other rows."""
        table = OverlayTable("t", 16, 32)
        shadow = {}
        for module_id, value in writes:
            table.write(module_id, value)
            shadow[module_id] = value
            for m in range(32):
                assert table.lookup(m) == shadow.get(m, 0)

    @given(st.integers(0, 255), st.integers(1, 255), st.integers(0, 300))
    def test_segment_translation_bounds(self, offset, range_, addr):
        seg = SegmentTable("seg", 32)
        seg.set_segment(5, offset=offset, range_=range_)
        if 0 <= addr < range_:
            phys = seg.translate(5, addr)
            assert offset <= phys < offset + range_
        else:
            try:
                seg.translate(5, addr)
                assert False, "expected a segment fault"
            except SegmentFaultError:
                pass

    @given(st.lists(st.tuples(st.integers(1, 4), st.integers(0, 15),
                              st.integers(0, (1 << 32) - 1)),
                    min_size=1, max_size=40))
    def test_segmented_memory_never_crosses(self, ops):
        """Random per-module writes only land in the owner's segment."""
        mem = StatefulMemory(words=64)
        seg = SegmentTable("seg", 32)
        bases = {1: 0, 2: 16, 3: 32, 4: 48}
        for module_id, base in bases.items():
            seg.set_segment(module_id, offset=base, range_=16)
        access = SegmentedAccess(mem, seg)
        shadow = {m: [0] * 16 for m in bases}
        for module_id, addr, value in ops:
            access.write(module_id, addr, value)
            shadow[module_id][addr] = value
        for module_id, base in bases.items():
            assert mem.region(base, 16) == shadow[module_id]

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 0xFF),
                              st.integers(1, 4)),
                    min_size=1, max_size=16,
                    unique_by=lambda t: t[0]))
    def test_cam_module_id_is_hard_boundary(self, entries):
        """A module's lookups only ever hit its own entries."""
        cam = ExactMatchTable()
        seen = set()
        installed = []
        for index, key, module_id in entries:
            if (key, module_id) in seen:
                continue
            seen.add((key, module_id))
            cam.write(index, key=key, module_id=module_id)
            installed.append((index, key, module_id))
        for index, key, module_id in installed:
            for other in range(1, 5):
                hit = cam.lookup(key, other)
                if hit is not None:
                    entry = cam.read(hit)
                    assert entry.module_id == other


# ---------------------------------------------------------------------------
# action engine
# ---------------------------------------------------------------------------

class TestEngineProperties:
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_add_matches_wrapping_arithmetic(self, a, b):
        engine = ActionEngine(StatefulAccess(StatefulMemory(4)))
        phv = PHV()
        phv.set(ContainerRef(ContainerType.B2, 1), a)
        phv.set(ContainerRef(ContainerType.B2, 2), b)
        instr = VliwInstruction.from_sparse({
            0: AluAction(AluOp.ADD, c1=ContainerRef(ContainerType.B2, 1),
                         c2=ContainerRef(ContainerType.B2, 2)),
        })
        out = engine.execute(instr, phv, 0)
        assert out.get(ContainerRef(ContainerType.B2, 0)) \
            == (a + b) % (1 << 16)

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_execution_is_deterministic(self, a, imm):
        engine = ActionEngine(StatefulAccess(StatefulMemory(4)))
        phv = PHV()
        phv.set(ContainerRef(ContainerType.B2, 0), a)
        instr = VliwInstruction.from_sparse({
            1: AluAction(AluOp.ADDI, c1=ContainerRef(ContainerType.B2, 0),
                         immediate=imm),
        })
        out1 = engine.execute(instr, phv, 0)
        out2 = engine.execute(instr, phv, 0)
        assert out1 == out2

    @given(st.integers(0, 0xFFFF))
    def test_all_nop_is_identity(self, value):
        engine = ActionEngine(StatefulAccess(StatefulMemory(4)))
        phv = PHV()
        phv.set(ContainerRef(ContainerType.B2, 3), value)
        out = engine.execute(VliwInstruction(), phv, 0)
        assert out == phv


# ---------------------------------------------------------------------------
# reconfiguration packets
# ---------------------------------------------------------------------------

class TestReconfigProperties:
    @given(st.sampled_from(list(ResourceType)), st.integers(0, 4),
           st.integers(0, 255), st.data())
    @settings(max_examples=60)
    def test_reconfig_packet_roundtrip(self, rtype, stage, index, data):
        nbytes = entry_payload_bytes(rtype)
        entry = data.draw(st.integers(0, (1 << (8 * nbytes)) - 1)) \
            if nbytes else 0
        resource = ResourceId(rtype, stage)
        packet = build_reconfig_packet(resource, index, entry)
        payload = parse_reconfig_packet(packet)
        assert payload.resource == resource
        assert payload.index == index
        assert payload.entry == entry


# ---------------------------------------------------------------------------
# end-to-end: CALC vs its golden model
# ---------------------------------------------------------------------------

class TestEndToEndProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from([1, 2, 3]), st.integers(0, (1 << 32) - 1),
           st.integers(0, (1 << 32) - 1))
    def test_calc_matches_reference(self, op, a, b):
        from repro.core import MenshenPipeline
        from repro.modules import calc
        from repro.runtime import MenshenController

        pipe = MenshenPipeline()
        ctl = MenshenController(pipe)
        ctl.load_module(1, calc.P4_SOURCE, "calc")
        calc.install(Tenant.attach(ctl, 1))
        result = pipe.process(calc.make_packet(1, op, a, b))
        assert calc.read_result(result.packet) == \
            calc.reference_result(op, a, b)
