"""Compiled flow classification (flow cache v2) and the PR 7 accounting
fixes.

Covers the compiler's structure (exact hash, ternary intervals, linear
residual, stateful/uncompilable bails), the engine's three-level hot
path and its counters, epoch-driven rebuild/purge, the invalidation
counter-unit fix, flow-cache replace accounting, the mid-batch layout
staleness regression, and flow-cache edge cases.
"""

import pytest

from repro.api import Switch, Tenant
from repro.core import MenshenPipeline
from repro.core.reconfig import ResourceId, ResourceType, build_reconfig_packet
from repro.engine import BatchEngine, FlowCache, FlowEntry, compile_classifier
from repro.errors import ConfigError, PacketError
from repro.modules import firewall
from repro.rmt.encodings import encode_parser_entry
from repro.rmt.key_extractor import CmpOp, KeyExtractEntry
from repro.rmt.phv import PHV, ContainerRef, ContainerType
from repro.runtime import MenshenController
from repro.traffic import cache_hostile_stream, workload
from seeds import rng as make_rng


def _firewall_switch(vid=3, **engine_kw):
    switch = Switch.build().create()
    workload("firewall").admit(switch, vid=vid)
    engine = switch.engine(scheduled=False, **engine_kw)
    return switch, engine


def _ternary_pair(install):
    """Two identically configured ternary pipelines + an engine."""

    def build():
        pipe = MenshenPipeline(match_mode="ternary")
        ctl = MenshenController(pipe)
        ctl.load_module(2, firewall.P4_SOURCE_TERNARY, "fw-ternary")
        install(ctl)
        return pipe, ctl

    scalar, _ = build()
    batched, ctl = build()
    return scalar, batched, ctl, BatchEngine(batched, enable_classifier=True)


def _random_fw_packets(rng, count, vid=2):
    packets = []
    for _ in range(count):
        src = ".".join(str(rng.randrange(256)) for _ in range(4))
        packets.append(firewall.make_packet(vid, src, rng.randrange(65536)))
    return packets


def _assert_differential(scalar, engine, packets, context=""):
    scalar_results = [scalar.process(p.copy()) for p in packets]
    engine_results = engine.process_batch([p.copy() for p in packets])
    for i, (a, b) in enumerate(zip(scalar_results, engine_results)):
        where = f"{context} packet {i}"
        assert a.dropped == b.dropped, where
        assert a.drop_reason == b.drop_reason, where
        assert a.egress_port == b.egress_port, where
        assert a.mcast_group == b.mcast_group, where
        assert (a.packet is None) == (b.packet is None), where
        if a.packet is not None:
            assert a.packet.tobytes() == b.packet.tobytes(), where
        if a.phv is not None:
            assert a.phv == b.phv, f"{where}: PHV diverged"


# ---------------------------------------------------------------------------
# compiler structure
# ---------------------------------------------------------------------------

class TestCompilerStructure:
    def test_exact_module_compiles_to_hash(self):
        switch, _ = _firewall_switch()
        clf = compile_classifier(switch.pipeline, 3,
                                 switch.pipeline.config_epoch)
        stats = clf.stats()
        assert stats.ok and stats.reason == ""
        assert stats.stages >= 1
        assert stats.exact_keys >= 4       # blocked + 3 allowed rules
        assert stats.intervals == 0
        assert stats.residual_entries == 0
        assert stats.stateful_leaves == 0

    def test_ternary_prefixes_compile_to_intervals(self):
        def install(ctl):
            firewall.install_prefix(
                Tenant.attach(ctl, 2),
                blocked_prefixes=[("10.66.0.0", 16)], default_port=3)

        _scalar, batched, _ctl, engine = _ternary_pair(install)
        clf = compile_classifier(batched, 2, batched.config_epoch)
        stats = clf.stats()
        assert stats.ok
        assert stats.intervals >= 2        # blocked range + default pieces
        assert stats.residual_entries == 0
        del engine

    def test_non_contiguous_mask_falls_back_to_residual(self):
        from repro.net import Ipv4Address

        def install(ctl):
            # Wildcard bits interleaved with match bits: no contiguous
            # range in the compacted key space, so the stage compiles to
            # the linear value/mask residual instead.
            ctl.table_add(2, "acl",
                          {"hdr.ipv4.srcAddr": int(Ipv4Address("10.0.10.0")),
                           "hdr.udp.dstPort": 0},
                          "block",
                          key_masks={"hdr.ipv4.srcAddr": 0xFF00FF00,
                                     "hdr.udp.dstPort": 0})
            firewall.install_prefix(Tenant.attach(ctl, 2), default_port=5)

        scalar, batched, _ctl, engine = _ternary_pair(install)
        clf = compile_classifier(batched, 2, batched.config_epoch)
        stats = clf.stats()
        assert stats.ok
        assert stats.residual_entries >= 2
        assert stats.intervals == 0
        _assert_differential(scalar, engine,
                             _random_fw_packets(make_rng(710), 300),
                             "residual")
        assert engine.counters.compiled_hits > 0

    def test_ternary_priority_matches_scalar_on_overlaps(self):
        def install(ctl):
            firewall.install_prefix(
                Tenant.attach(ctl, 2),
                blocked_prefixes=[("10.66.0.0", 16), ("10.0.0.0", 8)],
                default_port=3)

        scalar, _batched, _ctl, engine = _ternary_pair(install)
        packets = _random_fw_packets(make_rng(711), 400)
        # Force traffic into the overlapping region too.
        rng = make_rng(712)
        for _ in range(200):
            packets.append(firewall.make_packet(
                2, f"10.66.{rng.randrange(256)}.{rng.randrange(256)}",
                rng.randrange(65536)))
        _assert_differential(scalar, engine, packets, "overlap-priority")
        assert engine.counters.compiled_hits == len(packets)

    def test_stateful_leaves_are_counted_and_bail(self):
        switch = Switch.build().create()
        workload("netcache").admit(switch, vid=4)
        clf = compile_classifier(switch.pipeline, 4,
                                 switch.pipeline.config_epoch)
        assert clf.ok
        assert clf.stats().stateful_leaves >= 1

    def test_metadata_predicate_is_uncompilable(self):
        switch, _ = _firewall_switch()
        pipeline = switch.pipeline
        stage = switch.controller._loaded(3).compiled.stages_used()[0]
        entry = KeyExtractEntry(
            cmp_op=CmpOp.EQ,
            cmp_a=ContainerRef(ContainerType.META, 0), cmp_b=0)
        pipeline.stages[stage].key_extract_table.write(3, entry.encode())
        clf = compile_classifier(pipeline, 3, pipeline.config_epoch)
        assert not clf.ok
        assert "metadata" in clf.reason


# ---------------------------------------------------------------------------
# the three-level hot path
# ---------------------------------------------------------------------------

class TestThreeLevelHotPath:
    def test_compiled_hit_seeds_the_exact_match_cache(self):
        _switch, engine = _firewall_switch(enable_cache=True,
                                           enable_classifier=True)
        packet = workload("firewall").flow_packet(3, 1)
        first = engine.process(packet.copy())
        second = engine.process(packet.copy())
        counters = engine.counters
        assert not first.cache_hit and second.cache_hit
        assert counters.compiled_hits == 1
        assert counters.cache_hits == 1
        assert counters.cache_misses == 1     # the seeding insert
        assert engine.shard(3).stats.insertions == 1

    def test_uniform_traffic_is_served_compiled(self):
        _switch, engine = _firewall_switch(enable_cache=True,
                                           enable_classifier=True)
        packets = cache_hostile_stream(workload("firewall"), 3,
                                       make_rng(713), 500)
        engine.process_batch(packets)
        counters = engine.counters
        assert counters.compiled_hits + counters.cache_hits == 500
        assert counters.compiled_hits > 400   # uniform => mostly misses
        assert not counters.classifier_fallbacks

    def test_stateful_flows_fall_back_with_reason(self):
        switch = Switch.build().create()
        workload("netcache").admit(switch, vid=4)
        engine = switch.engine(scheduled=False, enable_classifier=True)
        packets = [workload("netcache").flow_packet(4, i) for i in range(20)]
        engine.process_batch(packets)
        counters = engine.counters
        assert counters.compiled_hits == 0
        assert counters.classifier_fallbacks.get("stateful") == 20
        assert counters.uncacheable == 20

    def test_uncompilable_module_falls_back_and_oracle_faults(self):
        switch, engine = _firewall_switch(enable_classifier=True)
        pipeline = switch.pipeline
        stage = switch.controller._loaded(3).compiled.stages_used()[0]
        entry = KeyExtractEntry(
            cmp_op=CmpOp.EQ,
            cmp_a=ContainerRef(ContainerType.META, 0), cmp_b=0)
        pipeline.inject_reconfig(build_reconfig_packet(
            ResourceId(ResourceType.KEY_EXTRACTOR, stage), index=3,
            entry=entry.encode(), params=switch.params))
        # The classifier refuses the config; the scalar oracle then
        # reproduces the per-packet fault the config always caused.
        with pytest.raises(ConfigError, match="metadata"):
            engine.process(workload("firewall").flow_packet(3, 1))
        assert engine.counters.classifier_fallbacks.get("uncompilable") == 1

    def test_short_packet_falls_back_parse_window(self):
        _switch, engine = _firewall_switch(enable_classifier=True)
        packet = workload("firewall").flow_packet(3, 1)
        packet.truncate(18)   # keeps the VLAN tag, loses the parsed bytes
        with pytest.raises(PacketError):
            engine.process(packet)
        assert engine.counters.classifier_fallbacks.get("parse-window") == 1

    def test_classifier_disabled_takes_scalar_path(self):
        _switch, engine = _firewall_switch(enable_cache=False,
                                           enable_classifier=False)
        packets = [workload("firewall").flow_packet(3, i) for i in range(10)]
        engine.process_batch(packets)
        assert engine.counters.compiled_hits == 0
        assert engine.counters.compile_rebuilds == 0


# ---------------------------------------------------------------------------
# epoch rebuild and purge
# ---------------------------------------------------------------------------

class TestRebuildAndPurge:
    def test_epoch_bump_rebuilds_lazily(self):
        switch, engine = _firewall_switch(enable_classifier=True)
        spec = workload("firewall")
        engine.process(spec.flow_packet(3, 1))
        assert engine.counters.compile_rebuilds == 1
        engine.process(spec.flow_packet(3, 2))
        assert engine.counters.compile_rebuilds == 1   # same epoch: reused

        switch.tenant(3).update(spec.source)           # epoch moves
        engine.process(spec.flow_packet(3, 1))
        assert engine.counters.compile_rebuilds == 2
        (stats,) = engine.classifier_stats().values()
        assert stats.epoch == switch.pipeline.config_epoch

    def test_invalidate_purges_classifiers(self):
        _switch, engine = _firewall_switch(enable_classifier=True)
        engine.process(workload("firewall").flow_packet(3, 1))
        assert engine.classifier_stats()
        engine.invalidate(3)
        assert not engine.classifier_stats()
        engine.process(workload("firewall").flow_packet(3, 1))
        assert engine.counters.compile_rebuilds == 2

    def test_invalidate_all_purges_everything(self):
        _switch, engine = _firewall_switch(enable_classifier=True)
        engine.process(workload("firewall").flow_packet(3, 1))
        engine.invalidate()
        assert not engine.classifier_stats()


# ---------------------------------------------------------------------------
# satellite 1: invalidation counter units
# ---------------------------------------------------------------------------

class TestInvalidationAccounting:
    def test_invalidations_count_flushed_entries(self):
        _switch, engine = _firewall_switch(enable_cache=True)
        spec = workload("firewall")
        engine.process_batch([spec.flow_packet(3, i) for i in range(5)])
        cached = len(engine.shard(3))
        assert cached == 5
        flushed = engine.invalidate(3)
        assert flushed == 5
        assert engine.counters.invalidations == 5
        assert engine.counters.invalidation_calls == 1
        # Same unit as the shard's own stats.
        assert engine.shard(3).stats.invalidations == 5

    def test_noop_invalidate_counts_the_call_only(self):
        _switch, engine = _firewall_switch()
        assert engine.invalidate(999) == 0
        assert engine.counters.invalidations == 0
        assert engine.counters.invalidation_calls == 1

    def test_invalidate_vid_with_layout_but_no_shard(self):
        # A VID whose layout (and classifier) exist but whose shard
        # does not: invalidate must not trip over the missing shard and
        # must still purge the layout and classifier. (The engine only
        # grows shards alongside layouts, so the state is constructed.)
        _switch, engine = _firewall_switch(enable_cache=False,
                                           enable_classifier=True)
        engine.process(workload("firewall").flow_packet(3, 1))
        assert 3 in engine._layouts
        del engine._shards[3]
        assert engine.invalidate(3) == 0
        assert engine.counters.invalidations == 0
        assert engine.counters.invalidation_calls == 1
        assert 3 not in engine._layouts
        assert not engine.classifier_stats()


# ---------------------------------------------------------------------------
# satellite 2: flow-cache replace accounting; satellite 4: edge cases
# ---------------------------------------------------------------------------

def _entry(epoch):
    return FlowEntry(epoch=epoch, phv=PHV(), writes=(), dropped=False)


def _occupancy_holds(cache):
    stats = cache.stats
    return len(cache) == (stats.insertions - stats.evictions
                          - stats.replacements - stats.invalidations)


class TestFlowCacheEdges:
    def test_replace_is_counted_and_occupancy_tracks(self):
        cache = FlowCache(4)
        cache.insert(("k",), _entry(1))
        cache.insert(("k",), _entry(2))     # same key: replacement
        assert cache.stats.insertions == 2
        assert cache.stats.replacements == 1
        assert cache.stats.evictions == 0
        assert len(cache) == 1 and _occupancy_holds(cache)

    def test_capacity_one_lru_churn(self):
        cache = FlowCache(1)
        cache.insert(("a",), _entry(0))
        cache.insert(("b",), _entry(0))     # evicts a
        assert cache.lookup(("a",), 0) is None
        assert cache.lookup(("b",), 0) is not None
        cache.insert(("a",), _entry(0))     # evicts b
        assert cache.lookup(("b",), 0) is None
        assert len(cache) == 1
        assert cache.stats.evictions == 2
        assert cache.stats.replacements == 0
        assert _occupancy_holds(cache)

    def test_stale_entry_overwritten_before_lookup(self):
        # A stale-epoch entry replaced by insert() before any lookup
        # purges it: counted as a replacement, not an invalidation.
        cache = FlowCache(4)
        cache.insert(("k",), _entry(1))
        cache.insert(("k",), _entry(2))     # re-learned under new epoch
        hit = cache.lookup(("k",), 2)
        assert hit is not None and hit.epoch == 2
        assert cache.stats.invalidations == 0
        assert cache.stats.replacements == 1
        assert _occupancy_holds(cache)

    def test_stale_entry_purged_by_lookup(self):
        cache = FlowCache(4)
        cache.insert(("k",), _entry(1))
        assert cache.lookup(("k",), 2) is None
        assert cache.stats.invalidations == 1
        assert len(cache) == 0 and _occupancy_holds(cache)

    def test_hit_rate_with_zero_traffic(self):
        cache = FlowCache(4)
        assert cache.stats.hit_rate == 0.0


# ---------------------------------------------------------------------------
# satellite 3: no stale layout across a mid-batch reconfiguration
# ---------------------------------------------------------------------------

class TestMidBatchLayoutStaleness:
    def test_parser_rewrite_inside_batch_refreshes_layout(self):
        """A dataplane write that changes the parse program mid-batch
        must not let packets behind the barrier use the old layout."""

        def build():
            switch = Switch.build().reconfig_from_dataplane().create()
            workload("firewall").admit(switch, vid=3)
            return switch

        scalar = build()
        batched = build()
        engine = batched.engine(scheduled=False, enable_cache=True,
                                enable_classifier=True)

        # Truncate the firewall's parse program to its first action:
        # later fields stay zero, so match behavior visibly changes,
        # and the engine's cached layout regions become stale.
        actions = scalar.pipeline.parser.read_program(3)
        assert len(actions) > 1
        truncated = encode_parser_entry([actions[0].encode()])
        rewrite = build_reconfig_packet(
            ResourceId(ResourceType.PARSER_TABLE, 0), index=3,
            entry=truncated, params=scalar.params)

        spec = workload("firewall")
        rng = make_rng(714)
        flows = [spec.flow_packet(3, rng.randrange(256)) for _ in range(80)]
        batch = flows[:40] + [rewrite] + flows[40:]

        scalar_results = [scalar.process(p.copy()) for p in batch]
        engine_results = engine.process_batch([p.copy() for p in batch])

        for i, (a, b) in enumerate(zip(scalar_results, engine_results)):
            assert a.dropped == b.dropped, f"packet {i}"
            assert a.egress_port == b.egress_port, f"packet {i}"
            if a.packet is not None:
                assert a.packet.tobytes() == b.packet.tobytes(), f"packet {i}"

        # The layout served after the barrier is the rewritten one, not
        # the one cached when the batch started.
        layout = engine._layouts[3]
        assert layout.epoch == batched.pipeline.config_epoch
        assert len(layout.regions) == 1
        # And the rewrite is observable: some flow that appears on both
        # sides of the barrier changed its scalar verdict, so the
        # equivalence above really did exercise a stale-layout hazard.
        pre = {batch[i].tobytes(): (r.dropped, r.egress_port)
               for i, r in enumerate(scalar_results[:40])}
        flipped = any(
            batch[i].tobytes() in pre
            and pre[batch[i].tobytes()] != (r.dropped, r.egress_port)
            for i, r in enumerate(scalar_results) if i > 40)
        assert flipped, "parser rewrite produced no observable change"
