"""End-to-end tests for the ``repro.api`` tenant-session facade.

Covers the acceptance surface of the API redesign: builder
construction, multi-tenant admission, behavior isolation as an API
property (cross-VID access raises), typed entries, structured compile
diagnostics, transactional reconfiguration with rollback, deprecation
shims on the old entry points, and interface-timing overrides.
"""

import pytest

from repro.api import (
    ActionCall,
    CompilationFailed,
    Match,
    Switch,
    TableEntry,
    TenantIsolationError,
    Ternary,
    TransactionError,
    compile,
)
from repro.core import MenshenPipeline
from repro.errors import AdmissionError, RuntimeInterfaceError
from repro.modules import calc, firewall, netcache, netchain, qos
from repro.runtime import MenshenController
from repro.sysmod import SYSTEM_P4_SOURCE


def two_tenant_switch():
    switch = Switch.build().create()
    fw = switch.admit("fw", firewall.P4_SOURCE, vid=1)
    nc = switch.admit("nc", netcache.P4_SOURCE, vid=2)
    return switch, fw, nc


class TestBuilder:
    def test_geometry_knobs(self):
        switch = (Switch.build().stages(7).max_modules(8).ports(4)
                  .create())
        assert switch.params.num_stages == 7
        assert switch.params.max_modules == 8
        assert switch.pipeline.traffic_manager.num_ports == 4

    def test_ternary_personality(self):
        switch = Switch.build().ternary().create()
        assert switch.pipeline.match_mode == "ternary"

    def test_timing_overrides_reach_interface(self):
        switch = (Switch.build()
                  .timing(t_sw_per_entry=2e-3, t_daisy_per_packet=1e-6)
                  .create())
        assert switch.interface.t_sw_per_entry == 2e-3
        assert switch.interface.t_daisy_per_packet == 1e-6
        # The cost model actually uses the overrides.
        tenant = switch.admit("calc", calc.P4_SOURCE)
        before = switch.interface.stats.modeled_time_s
        tenant.table("calc_table").insert(
            match={"hdr.calc.op": calc.OP_ECHO}, action="op_echo")
        assert switch.interface.stats.modeled_time_s >= before + 2e-3

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            Switch.build().stages(0)
        with pytest.raises(ValueError):
            Switch.build().match_mode("lpm")

    def test_wrap_existing_controller(self):
        pipeline = MenshenPipeline()
        controller = MenshenController(pipeline)
        controller.load_module(3, calc.P4_SOURCE, "legacy")
        switch = Switch(controller=controller)
        tenant = switch.tenant(3)
        assert tenant.name == "legacy"
        assert "calc_table" in tenant.tables()


class TestTenantSessions:
    def test_two_tenants_isolated_tables(self):
        switch, fw, nc = two_tenant_switch()
        firewall.install(fw, blocked=[("10.0.0.66", 53)])
        netcache.install(nc, cached=[(0xFEED, 0, 77)])

        # Cross-VID access raises an isolation error (the acceptance
        # criterion): fw's handle cannot name nc's table and vice versa.
        with pytest.raises(TenantIsolationError):
            fw.table("cache")
        with pytest.raises(TenantIsolationError):
            nc.table("acl")
        # Registers too.
        with pytest.raises(TenantIsolationError):
            fw.register("values")
        # Unknown names are a plain error, not an isolation error.
        with pytest.raises(RuntimeInterfaceError):
            fw.table("nonexistent")

    def test_traffic_is_scoped(self):
        switch, fw, nc = two_tenant_switch()
        firewall.install(fw, blocked=[("10.0.0.66", 53)])
        netcache.install(nc, cached=[(0xFEED, 0, 77)])
        dropped = switch.process(firewall.make_packet(1, "10.0.0.66", 53))
        assert dropped.dropped
        hit = switch.process(netcache.make_get(2, 0xFEED))
        assert netcache.read_value(hit.packet) == 77
        assert fw.counters().packets_in == 1
        assert nc.counters().packets_out == 1

    def test_auto_vid_assignment(self):
        switch = Switch.build().create()
        t1 = switch.admit("a", calc.P4_SOURCE)
        t2 = switch.admit("b", calc.P4_SOURCE)
        assert (t1.vid, t2.vid) == (1, 2)
        t1.evict()
        t3 = switch.admit("c", calc.P4_SOURCE)
        assert t3.vid == 1  # lowest free VID is recycled

    def test_tenant_lookup_by_name(self):
        switch, fw, _nc = two_tenant_switch()
        assert switch.tenant("fw") is fw
        with pytest.raises(RuntimeInterfaceError):
            switch.tenant("stranger")

    def test_evict_releases_and_invalidates(self):
        switch, fw, nc = two_tenant_switch()
        handle = fw.table("acl")
        fw.evict()
        assert switch.controller.loaded_ids() == [2]
        with pytest.raises(RuntimeInterfaceError):
            handle.insert(match={"hdr.ipv4.srcAddr": 1,
                                 "hdr.udp.dstPort": 2}, action="block")
        # The other tenant is untouched.
        netcache.install(nc, cached=[(1, 0, 5)])

    def test_update_swaps_program(self):
        switch = Switch.build().create()
        tenant = switch.admit("t1", calc.P4_SOURCE, vid=1)
        calc.install(tenant)
        tenant.update(qos.P4_SOURCE)
        qos.install(tenant)
        result = switch.process(qos.make_packet(1, 5060))
        assert qos.read_dscp(result.packet) == qos.DSCP_EF

    def test_system_module_and_counters(self):
        switch = Switch.build().create()
        system = switch.install_system(
            vip_map={"10.99.0.5": "10.0.0.2"},
            routes={"10.0.0.2": 1},
            counter_index={"10.99.0.5": 3})
        tenant = switch.admit("chain", netchain.P4_SOURCE, vid=3)
        netchain.install(tenant, port=1)
        from repro.modules.base import common_packet
        packet = common_packet(3, netchain.OP_SEQ.to_bytes(2, "big")
                               + bytes(8), dst="10.99.0.5")
        result = switch.process(packet)
        assert result.forwarded
        assert system.register("tenant_counters").read(3) == 1
        assert switch.tenant("system") is system
        with pytest.raises(RuntimeInterfaceError):
            system.evict()


class TestTypedEntries:
    def test_insert_accepts_typed_entry(self):
        switch = Switch.build().create()
        tenant = switch.admit("calc", calc.P4_SOURCE, vid=4)
        entry = TableEntry(Match({"hdr.calc.op": calc.OP_ADD}),
                           ActionCall("op_add", {"port": 2}))
        tenant.table("calc_table").insert(entry=entry)
        result = switch.process(calc.make_packet(4, calc.OP_ADD, 20, 22))
        assert calc.read_result(result.packet) == 42
        assert result.egress_port == 2

    def test_ternary_specs_need_ternary_pipeline(self):
        switch = Switch.build().create()  # exact mode
        tenant = switch.admit("fw", firewall.P4_SOURCE, vid=1)
        with pytest.raises(RuntimeInterfaceError):
            tenant.table("acl").insert(
                match=Match({"hdr.ipv4.srcAddr": Ternary(0, 0),
                             "hdr.udp.dstPort": Ternary(0, 0)}),
                action="block")

    def test_ternary_priority_order(self):
        switch = Switch.build().ternary().create()
        tenant = switch.admit("fw", firewall.P4_SOURCE_TERNARY, vid=2)
        firewall.install_prefix(tenant,
                                blocked_prefixes=[("10.66.0.0", 16)],
                                default_port=1)
        blocked = switch.process(firewall.make_packet(2, "10.66.4.20", 443))
        allowed = switch.process(firewall.make_packet(2, "10.70.1.1", 443))
        assert blocked.dropped and allowed.forwarded

    def test_handle_bookkeeping(self):
        switch = Switch.build().create()
        tenant = switch.admit("calc", calc.P4_SOURCE, vid=1)
        table = tenant.table("calc_table")
        h = table.insert(match={"hdr.calc.op": calc.OP_ECHO},
                         action="op_echo")
        assert table.handles() == [h]
        assert table.occupancy() == 1
        assert table.capacity == 4
        table.delete(h)
        assert table.occupancy() == 0


class TestCompileDiagnostics:
    def test_success_carries_usage(self):
        result = compile(netcache.P4_SOURCE, "netcache")
        assert result.ok
        assert result.module is not None
        usage = result.stage_usage
        assert sum(u.match_entries for u in usage.values()) == 6
        assert sum(u.stateful_words for u in usage.values()) == 12
        assert result.unwrap() is result.module

    def test_static_check_finding_is_structured(self):
        bad = firewall.P4_SOURCE.replace(
            "action block() { mark_to_drop(); }",
            "action block() { recirculate(); }")
        result = compile(bad, "bad-fw")
        assert not result.ok
        assert result.module is None
        assert any(d.code == "static-check" for d in result.errors)
        with pytest.raises(CompilationFailed) as excinfo:
            result.unwrap()
        assert excinfo.value.diagnostics == result.diagnostics

    def test_parse_error_is_structured(self):
        result = compile("this is not P4 at all", "garbage")
        assert not result.ok
        assert result.errors
        assert result.errors[0].severity == "error"

    def test_capacity_warning(self):
        big = calc.P4_SOURCE.replace("size = 4;", "size = 16;")
        result = compile(big, "big-calc")
        assert result.ok
        assert any(d.code == "capacity" for d in result.warnings)

    def test_switch_compile_uses_current_target(self):
        switch = Switch.build().create()
        switch.install_system(SYSTEM_P4_SOURCE)
        # After the system module loads, user stages exclude first/last.
        result = switch.compile(calc.P4_SOURCE, "calc")
        assert result.ok
        assert 0 not in result.module.stages_used()


class TestTransactions:
    def test_commit_applies_batch(self):
        switch = Switch.build().create()
        tenant = switch.admit("calc", calc.P4_SOURCE, vid=5)
        with tenant.transaction() as txn:
            pending = [txn.table(t).insert(entry=e)
                       for t, e in calc.entries(port=3)]
            assert all(p.handle is None for p in pending)  # queued only
        assert all(p.handle is not None for p in pending)
        result = switch.process(calc.make_packet(5, calc.OP_ADD, 1, 2))
        assert calc.read_result(result.packet) == 3

    def test_rollback_leaves_pipeline_untouched(self):
        switch, fw, nc = two_tenant_switch()
        firewall.install(fw, allowed=[("10.0.0.1", 80, 2)])
        stage = fw.table("acl")._tenant._loaded().table("acl").stage
        cam = switch.pipeline.stages[stage].match_table
        occupancy_before = cam.occupancy()
        nc.register("values").write(1, 111)
        with pytest.raises(TransactionError):
            with nc.transaction() as txn:
                txn.table("cache").insert(
                    match={"hdr.kv.kkey": 7},
                    action="cache_read", params={"idx": 1})
                txn.register("values").write(1, 222)
                # This one fails: no such action.
                txn.table("cache").insert(match={"hdr.kv.kkey": 8},
                                          action="no_such_action")
        # Everything rolled back: CAM occupancy, register value, and
        # the other tenant's rules all as before.
        assert cam.occupancy() == occupancy_before
        assert nc.table("cache").occupancy() == 0
        assert nc.register("values").read(1) == 111
        allowed = switch.process(firewall.make_packet(1, "10.0.0.1", 80))
        assert allowed.egress_port == 2

    def test_exception_in_block_discards_queue(self):
        switch = Switch.build().create()
        tenant = switch.admit("calc", calc.P4_SOURCE, vid=1)
        with pytest.raises(KeyboardInterrupt):
            with tenant.transaction() as txn:
                txn.table("calc_table").insert(
                    match={"hdr.calc.op": 1}, action="op_echo")
                raise KeyboardInterrupt()
        assert tenant.table("calc_table").occupancy() == 0

    def test_transactional_delete_restores_on_rollback(self):
        switch = Switch.build().create()
        tenant = switch.admit("calc", calc.P4_SOURCE, vid=1)
        table = tenant.table("calc_table")
        h = table.insert(match={"hdr.calc.op": calc.OP_ADD},
                         action="op_add", params={"port": 2})
        with pytest.raises(TransactionError):
            with tenant.transaction() as txn:
                txn.table("calc_table").delete(h)
                txn.table("calc_table").insert(match={"hdr.calc.op": 9},
                                               action="bogus")
        # The deleted entry is back (same content, maybe new handle).
        assert table.occupancy() == 1
        result = switch.process(calc.make_packet(1, calc.OP_ADD, 2, 3))
        assert calc.read_result(result.packet) == 5

    def test_foreign_table_rejected_at_queue_time(self):
        switch, fw, nc = two_tenant_switch()
        with pytest.raises(TenantIsolationError):
            with fw.transaction() as txn:
                txn.table("cache")

    def test_commit_preserves_enclosing_updating_window(self):
        switch = Switch.build().create()
        tenant = switch.admit("calc", calc.P4_SOURCE, vid=1)
        with tenant.updating():
            with tenant.transaction() as txn:
                txn.table("calc_table").insert(
                    match={"hdr.calc.op": calc.OP_ECHO}, action="op_echo")
            # Still inside the declared drop window: packets must drop.
            result = switch.process(calc.make_packet(1, calc.OP_ECHO, 1, 0))
            assert result.dropped
            assert result.drop_reason == "module_updating"
        result = switch.process(calc.make_packet(1, calc.OP_ECHO, 7, 0))
        assert result.forwarded

    def test_positional_entry_with_action_rejected(self):
        switch = Switch.build().create()
        tenant = switch.admit("calc", calc.P4_SOURCE, vid=1)
        entry = TableEntry(Match({"hdr.calc.op": 1}), ActionCall("op_echo"))
        with pytest.raises(ValueError):
            tenant.table("calc_table").insert(entry, action="op_add",
                                              params={"port": 1})
        tenant.table("calc_table").insert(entry)  # bare positional is fine

    def test_other_tenants_flow_during_commit(self):
        switch, fw, nc = two_tenant_switch()
        netcache.install(nc, cached=[(0xFEED, 0, 9)])
        # Commit a transaction on fw and verify its bitmap window never
        # touched nc: nc traffic flows after, and fw's drop counter
        # shows nothing from nc's VID.
        with fw.transaction() as txn:
            txn.table("acl").insert(match={"hdr.ipv4.srcAddr": 1,
                                           "hdr.udp.dstPort": 1},
                                    action="block")
        hit = switch.process(netcache.make_get(2, 0xFEED))
        assert hit.forwarded


class TestDeprecationShims:
    def test_module_installers_warn_but_work(self):
        pipeline = MenshenPipeline()
        controller = MenshenController(pipeline)
        controller.load_module(3, calc.P4_SOURCE, "calc")
        with pytest.deprecated_call():
            calc.install_entries(controller, 3, port=2)
        result = pipeline.process(calc.make_packet(3, calc.OP_ADD, 1, 1))
        assert calc.read_result(result.packet) == 2

    def test_sysmod_installers_warn_but_work(self):
        pipeline = MenshenPipeline()
        controller = MenshenController(pipeline)
        with pytest.deprecated_call():
            from repro.sysmod import setup_system_module
            setup_system_module(controller, routes={"10.0.0.2": 1})
        assert controller.system_module is not None

    def test_admission_error_when_full(self):
        switch = Switch.build().max_modules(2).create()
        switch.admit("only", calc.P4_SOURCE)  # VID 1 of [1]
        with pytest.raises(AdmissionError):
            switch.admit("overflow", calc.P4_SOURCE)
