"""Egress scheduling: weighted-fair bandwidth isolation on the serving
path (§3.5), rate limiting, and the facade/timeline wiring.

Covers the :class:`repro.engine.scheduler.EgressScheduler` subsystem
end-to-end — PIFO/STFQ fairness, token-bucket rate caps, per-tenant
order preservation, the real-time statistics feed, `Tenant.set_weight`
/ `Tenant.set_rate_limit`, and departure latencies through
`sim/timeline.py` — plus the PIFO-layer edges the scheduler depends on.
"""

import random

import pytest

from repro.api import Switch, Tenant
from repro.core import MenshenPipeline, PipelineStats
from repro.engine import EgressScheduler, TokenBucket
from repro.errors import ConfigError
from repro.modules import calc
from repro.net import PacketBuilder
from repro.rmt import TrafficManager
from repro.runtime import MenshenController
from repro.sim import ReconfigTimelineExperiment
from repro.traffic import workload
from seeds import rng as make_rng


def pkt(size=200, vid=1):
    return (PacketBuilder().ethernet().vlan(vid=vid).ipv4().udp()
            .payload(b"\x00" * (size - 46)).build())


def vid_of(packet):
    return packet.read_int(14, 2) & 0xFFF


class TestTokenBucket:
    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(1000.0, burst_bytes=500.0)
        bucket.consume(500, 0.0)
        bucket.refill(10.0)  # 10 s x 1000 B/s >> burst
        assert bucket.tokens == 500.0

    def test_eligible_at_future_deficit(self):
        bucket = TokenBucket(100.0, burst_bytes=100.0)
        bucket.consume(100, 0.0)
        # 50 bytes short -> eligible 0.5 s later at 100 B/s.
        assert bucket.eligible_at(50, 0.0) == pytest.approx(0.5)
        assert bucket.eligible_at(50, 1.0) == pytest.approx(1.0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigError):
            TokenBucket(0.0)
        with pytest.raises(ConfigError):
            TokenBucket(100.0, burst_bytes=-1.0)


class TestEgressSchedulerFairness:
    def test_weighted_fair_sharing_under_backlog(self):
        sched = EgressScheduler(num_ports=1,
                                weights={1: 5.0, 2: 3.0, 3: 2.0})
        for _ in range(300):
            for vid in (1, 2, 3):
                sched.enqueue(pkt(200, vid), 0, module_id=vid)
        served = sched.drain_bytes(0, budget_bytes=200 * 100)
        total = sum(served.values())
        assert served[1] / total == pytest.approx(0.5, abs=0.05)
        assert served[2] / total == pytest.approx(0.3, abs=0.05)
        assert served[3] / total == pytest.approx(0.2, abs=0.05)

    def test_bursty_elephant_cannot_starve_mouse(self):
        # The bug this subsystem fixes: an elephant's backlog used to
        # drain first out of the per-port FIFO (see the FIFO-contrast
        # test in test_pifo_cuckoo.py).
        sched = EgressScheduler(num_ports=1)
        for _ in range(500):
            sched.enqueue(pkt(200, 9), 0, module_id=9)
        for _ in range(50):
            sched.enqueue(pkt(200, 1), 0, module_id=1)
        served = sched.drain_bytes(0, budget_bytes=200 * 80)
        assert served.get(1, 0) >= 200 * 35

    def test_per_tenant_order_never_disturbed(self):
        # Random interleave, random sizes: across tenants the scheduler
        # may reorder, within one tenant never.
        rng = make_rng(7)
        sched = EgressScheduler(num_ports=1, weights={1: 4.0, 2: 1.0})
        sent = {1: [], 2: []}
        for _ in range(400):
            vid = rng.choice((1, 1, 1, 2))
            p = pkt(rng.choice((100, 200, 400, 1500)), vid)
            sent[vid].append(p.tobytes())
            sched.enqueue(p, 0, module_id=vid)
        drained = sched.drain(0)
        got = {1: [], 2: []}
        for p in drained:
            got[vid_of(p)].append(p.tobytes())
        assert got == sent

    def test_weight_change_applies_to_new_packets(self):
        sched = EgressScheduler(num_ports=1)
        sched.set_weight(1, 9.0)
        sched.set_weight(2, 1.0)
        for _ in range(200):
            sched.enqueue(pkt(200, 1), 0, module_id=1)
            sched.enqueue(pkt(200, 2), 0, module_id=2)
        served = sched.drain_bytes(0, budget_bytes=200 * 100)
        assert served[1] / (served[1] + served[2]) \
            == pytest.approx(0.9, abs=0.05)

    def test_bad_weight_rejected(self):
        sched = EgressScheduler()
        with pytest.raises(ConfigError):
            sched.set_weight(1, 0.0)

    def test_port_bounds(self):
        sched = EgressScheduler(num_ports=1)
        with pytest.raises(ConfigError):
            sched.enqueue(pkt(), 1, module_id=1)
        with pytest.raises(ConfigError):
            sched.dequeue(5)


class TestEgressSchedulerTelemetry:
    def test_bytes_out_counts_at_dequeue(self):
        sched = EgressScheduler(num_ports=2)
        sched.enqueue(pkt(100, 1), 0, module_id=1)
        sched.enqueue(pkt(300, 2), 1, module_id=2)
        assert sched.bytes_out == [0, 0]
        sched.drain_all()
        assert sched.bytes_out == [100, 300]

    def test_capacity_drops_per_tenant(self):
        sched = EgressScheduler(num_ports=1, queue_capacity=2)
        assert sched.enqueue(pkt(100, 1), 0, module_id=1) == 1
        assert sched.enqueue(pkt(100, 2), 0, module_id=2) == 1
        assert sched.enqueue(pkt(100, 2), 0, module_id=2) == 0
        assert sched.dropped == 1
        assert sched.tenant(2).dropped == 1
        assert sched.tenant(1).dropped == 0

    def test_queue_depth_and_transmitted_bytes(self):
        sched = EgressScheduler(num_ports=2)
        for _ in range(3):
            sched.enqueue(pkt(100, 7), 0, module_id=7)
        sched.enqueue(pkt(100, 7), 1, module_id=7)
        assert sched.queue_depth(7) == 4
        sched.dequeue(0)
        assert sched.queue_depth(7) == 3
        assert sched.transmitted_bytes(7) == 100

    def test_feeds_pipeline_stats(self):
        stats = PipelineStats()
        sched = EgressScheduler(num_ports=1, stats=stats)
        sched.enqueue(pkt(150, 3), 0, module_id=3)
        sched.enqueue(pkt(150, 3), 0, module_id=3)
        assert stats.egress_queue_depth[3] == 2
        assert stats.egress_bytes_tx.get(3, 0) == 0
        sched.dequeue(0)
        assert stats.egress_queue_depth[3] == 1
        assert stats.egress_bytes_tx[3] == 150

    def test_mcast_replication_and_unknown_group(self):
        sched = EgressScheduler(num_ports=4)
        sched.set_mcast_group(5, [0, 2])
        assert sched.enqueue(pkt(100, 1), 0, mcast_group=5,
                             module_id=1) == 2
        assert sched.queue_len(0) == 1 and sched.queue_len(2) == 1
        assert sched.enqueue(pkt(100, 1), 0, mcast_group=9,
                             module_id=1) == 0
        assert sched.dropped == 1
        assert sched.mcast_ports(5) == [0, 2]
        assert sched.mcast_groups() == {5: [0, 2]}


class TestRateLimiting:
    def test_rate_cap_holds_over_time(self):
        # 10 Mbit/s link; tenant 1 capped at 125 kB/s (1 Mbit/s).
        sched = EgressScheduler(num_ports=1, line_rate_bps=10e6)
        sched.set_rate_limit(1, 125_000.0, burst_bytes=1500.0)
        for _ in range(2000):
            sched.enqueue(pkt(1000, 1), 0, module_id=1)
        horizon = 4.0
        departures = sched.advance_to(horizon)
        served = sum(len(d.packet) for d in departures)
        # burst + rate x horizon, within one packet of slack
        assert served <= 1500 + 125_000 * horizon + 1000
        assert served >= 125_000 * horizon * 0.9

    def test_throttled_tenant_is_overtaken_not_blocking(self):
        sched = EgressScheduler(num_ports=1, line_rate_bps=10e6)
        sched.set_rate_limit(1, 1000.0, burst_bytes=1000.0)
        for _ in range(10):
            sched.enqueue(pkt(1000, 1), 0, module_id=1)
            sched.enqueue(pkt(1000, 2), 0, module_id=2)
        # Tenant 1 can emit exactly one packet (its burst); tenant 2 is
        # unlimited and must not wait behind tenant 1's backlog.
        departures = sched.advance_to(0.01)
        by_vid = {}
        for d in departures:
            by_vid[d.module_id] = by_vid.get(d.module_id, 0) + 1
        assert by_vid[2] == 10
        assert by_vid.get(1, 0) == 1
        # throttled_waits counts *packets* delayed by the rate limiter,
        # not scheduler scans: exactly one head packet waited here.
        assert sched.tenant(1).throttled_waits == 1

    def test_unlimited_share_goes_to_uncapped_tenant(self):
        # Elephant capped at 10% of the link; mouse takes the rest.
        line = 8e6  # 1 MB/s
        sched = EgressScheduler(num_ports=1, line_rate_bps=line)
        sched.set_rate_limit(1, 100_000.0, burst_bytes=1500.0)
        for _ in range(3000):
            sched.enqueue(pkt(1000, 1), 0, module_id=1)
            sched.enqueue(pkt(1000, 2), 0, module_id=2)
        sched.advance_to(2.0)
        tx1 = sched.transmitted_bytes(1)
        tx2 = sched.transmitted_bytes(2)
        assert tx1 <= 1500 + 100_000 * 2.0 + 1000
        assert tx2 >= 0.8 * (2.0 * line / 8 - tx1)

    def test_drain_idles_clock_when_everyone_throttled(self):
        sched = EgressScheduler(num_ports=1)
        sched.set_rate_limit(1, 1000.0, burst_bytes=1000.0)
        for _ in range(3):
            sched.enqueue(pkt(1000, 1), 0, module_id=1)
        drained = sched.drain(0)
        assert len(drained) == 3  # rate caps delay, never drop
        # Two extra packets had to wait one refill-second each.
        assert sched.clock == pytest.approx(2.0)

    def test_clear_rate_limit(self):
        sched = EgressScheduler(num_ports=1)
        sched.set_rate_limit(1, 1000.0)
        assert sched.rate_limit_of(1) == 1000.0
        sched.clear_rate_limit(1)
        assert sched.rate_limit_of(1) is None

    def test_invalid_line_rate_rejected(self):
        with pytest.raises(ConfigError):
            EgressScheduler(line_rate_bps=0.0)

    def test_ports_transmit_in_parallel(self):
        # Output links are independent: a backlog on port 0 must not
        # delay (or rate-share with) departures on port 1.
        sched = EgressScheduler(num_ports=2, line_rate_bps=8e6)  # 1 MB/s
        for _ in range(10):
            sched.enqueue(pkt(1000, 1), 0, module_id=1)
            sched.enqueue(pkt(1000, 2), 1, module_id=2)
        departures = sched.advance_to(0.0105)  # 10 packet-times + slack
        by_port = {}
        for d in departures:
            by_port[d.port] = by_port.get(d.port, 0) + 1
        assert by_port == {0: 10, 1: 10}
        assert sched.port_clock[0] == pytest.approx(0.0105)
        assert sched.port_clock[1] == pytest.approx(0.0105)
        # Per-port completion times interleave, not serialize.
        first = departures[0]
        assert first.time == pytest.approx(0.001)
        times_p0 = sorted(d.time for d in departures if d.port == 0)
        times_p1 = sorted(d.time for d in departures if d.port == 1)
        assert times_p0 == pytest.approx(times_p1)


class TestFacadeWiring:
    def build(self):
        switch = Switch.build().create()
        spec = workload("firewall")
        t1 = spec.admit(switch, vid=1)
        t2 = spec.admit(switch, vid=2)
        return switch, spec, t1, t2

    def test_engine_installs_scheduler_by_default(self):
        switch, spec, t1, t2 = self.build()
        assert switch.egress_scheduler is None
        switch.engine()
        assert switch.egress_scheduler is not None
        assert switch.pipeline.traffic_manager is switch.egress_scheduler

    def test_scheduled_false_keeps_fifo(self):
        switch, *_ = self.build()
        switch.engine(scheduled=False)
        assert switch.egress_scheduler is None
        assert isinstance(switch.pipeline.traffic_manager, TrafficManager)

    def test_weights_set_before_engine_apply_at_install(self):
        switch, spec, t1, t2 = self.build()
        t1.set_weight(3.0).set_rate_limit(50_000.0, burst_bytes=2000.0)
        engine = switch.engine()
        sched = switch.egress_scheduler
        assert sched.weight_of(1) == 3.0
        assert sched.rate_limit_of(1) == 50_000.0
        assert sched.weight_of(2) == 1.0

    def test_live_weight_and_rate_updates(self):
        switch, spec, t1, t2 = self.build()
        switch.engine()
        t2.set_weight(7.0)
        t2.set_rate_limit(10_000.0)
        assert switch.egress_scheduler.weight_of(2) == 7.0
        assert switch.egress_scheduler.rate_limit_of(2) == 10_000.0
        t2.clear_rate_limit()
        assert switch.egress_scheduler.rate_limit_of(2) is None

    def test_invalid_weight_and_rate_raise(self):
        switch, spec, t1, t2 = self.build()
        with pytest.raises(ValueError):
            t1.set_weight(-1.0)
        with pytest.raises(ValueError):
            t1.set_rate_limit(0.0)

    def test_mcast_groups_survive_scheduler_install(self):
        switch, *_ = self.build()
        switch.pipeline.traffic_manager.set_mcast_group(4, [0, 3])
        switch.engine()
        assert switch.egress_scheduler.mcast_ports(4) == [0, 3]

    def test_queued_packets_survive_scheduler_install(self):
        switch, spec, t1, t2 = self.build()
        switch.process(spec.flow_packet(1, 1))  # flow 1 is allowed
        switch.process(spec.flow_packet(2, 2))  # flow 2 -> tenant 2
        assert switch.pipeline.traffic_manager.total_queued() == 2
        switch.engine()
        scheduler = switch.egress_scheduler
        assert scheduler.total_queued() == 2
        # Carried-over packets keep their owner's attribution (weight,
        # rate limit, queue-depth accounting), read from the VLAN tag.
        assert scheduler.queue_depth(1) == 1
        assert scheduler.queue_depth(2) == 1
        assert scheduler.queue_depth(0) == 0

    def test_engine_twice_reuses_scheduler(self):
        switch, *_ = self.build()
        switch.engine()
        first = switch.egress_scheduler
        switch.engine(line_rate_bps=1e9)
        assert switch.egress_scheduler is first
        assert first.line_rate_bps == 1e9  # upgraded in place

    def test_tenant_counters_carry_egress_stats(self):
        switch, spec, t1, t2 = self.build()
        engine = switch.engine()
        engine.process_batch([spec.flow_packet(1, 1) for _ in range(4)])
        counters = t1.counters()
        assert counters.egress_queue_depth == 4
        assert counters.egress_bytes_tx == 0
        switch.egress_scheduler.drain_all()
        counters = t1.counters()
        assert counters.egress_queue_depth == 0
        assert counters.egress_bytes_tx > 0
        assert t1.scheduler_counters().transmitted == 4

    def test_tenant_stats_report_egress_section(self):
        switch, spec, t1, t2 = self.build()
        switch.engine()
        t1.set_weight(2.5)
        report = t1.stats()
        assert report["egress"]["weight"] == 2.5
        assert report["egress"]["rate_limit_bytes_per_s"] is None


class TestTimelineLatency:
    def build(self, weights):
        pipe = MenshenPipeline()
        ctl = MenshenController(pipe)
        switch = Switch(controller=ctl)
        for vid in (1, 2):
            ctl.load_module(vid, calc.P4_SOURCE, f"calc{vid}")
            calc.install(Tenant.attach(ctl, vid), port=1)
        for vid, w in weights.items():
            switch.tenant(vid).set_weight(w)
        engine = switch.engine(line_rate_bps=5e9)
        exp = ReconfigTimelineExperiment(pipe, duration_s=1.0, bin_s=0.1,
                                         scale=2000.0, engine=engine)
        # Two tenants offering 4 Gbit/s each into a 5 Gbit/s link:
        # sustained contention on the shared egress.
        for vid in (1, 2):
            exp.add_module(
                vid, 4e9, 1500,
                lambda vid=vid: calc.make_packet(vid, calc.OP_ADD, 1, 2,
                                                 pad_to=1500))
        return exp

    def test_latencies_measured_under_contention(self):
        exp = self.build({1: 1.0, 2: 1.0})
        result = exp.run()
        assert result.latencies_s[1] and result.latencies_s[2]
        assert result.mean_latency_s(1) > 0.0
        assert result.max_latency_s(1) >= result.mean_latency_s(1)

    def test_heavier_weight_means_lower_latency(self):
        exp = self.build({1: 8.0, 2: 1.0})
        result = exp.run()
        assert result.mean_latency_s(1) < result.mean_latency_s(2)

    def test_fifo_timeline_has_no_latencies(self):
        pipe = MenshenPipeline()
        ctl = MenshenController(pipe)
        ctl.load_module(1, calc.P4_SOURCE, "calc1")
        calc.install(Tenant.attach(ctl, 1), port=1)
        exp = ReconfigTimelineExperiment(pipe, duration_s=0.2, bin_s=0.1)
        exp.add_module(1, 1e9, 1500,
                       lambda: calc.make_packet(1, calc.OP_ADD, 1, 2,
                                                pad_to=1500))
        result = exp.run()
        assert result.latencies_s == {}


class TestEventDrivenClockSemantics:
    """The advance_to / next_departure_at contract the fabric timeline
    (and the timeline drain loop) depend on."""

    def test_committed_transmission_is_not_redelayed(self):
        # A busy port polled by frequent small advances must not slip:
        # the next transmission's start is committed, so many
        # advance_to calls during it leave the finish time unchanged.
        sched = EgressScheduler(num_ports=1, line_rate_bps=1e3)
        sched.enqueue(pkt(size=1000), 0, module_id=1)  # tx = 8 s
        finish = sched.next_departure_at(0)
        assert finish == pytest.approx(8.0)
        for i in range(100):
            assert sched.advance_to(0.01 * (i + 1)) == []
        deps = sched.advance_to(8.0)
        assert [d.time for d in deps] == [pytest.approx(8.0)]

    def test_next_departure_guarantees_drain_progress(self):
        # Regression: tx time >> step size. Stepping the clock by a
        # fixed bin can serve nothing forever; stepping to
        # next_departure_at always completes the head packet.
        sched = EgressScheduler(num_ports=2, line_rate_bps=1e3)
        sched.enqueue(pkt(size=1000, vid=1), 0, module_id=1)
        sched.enqueue(pkt(size=1000, vid=2), 1, module_id=2)
        bin_s = 1.0  # < 8 s transmission time
        rounds = 0
        while sched.total_queued():
            rounds += 1
            assert rounds < 10, "drain loop made no progress"
            horizon = sched.clock + bin_s
            nexts = [sched.next_departure_at(p) for p in range(2)]
            nexts = [t for t in nexts if t is not None]
            if nexts:
                horizon = max(horizon, min(nexts))
            sched.advance_to(horizon)

    def test_idle_port_clock_still_reaches_now(self):
        sched = EgressScheduler(num_ports=1, line_rate_bps=1e9)
        sched.advance_to(5.0)
        assert sched.port_clock[0] == 5.0
        sched.enqueue(pkt(size=1000), 0, module_id=1)
        # the packet arrived while the port idled at t=5: it cannot
        # depart earlier than that
        assert sched.next_departure_at(0) > 5.0

    def test_per_port_rates_pace_independently(self):
        sched = EgressScheduler(num_ports=2, line_rate_bps=1e9)
        sched.set_port_rate(1, 1e6)  # a slow link on port 1
        sched.enqueue(pkt(size=1000, vid=1), 0, module_id=1)
        sched.enqueue(pkt(size=1000, vid=2), 1, module_id=2)
        assert sched.next_departure_at(0) == pytest.approx(8e-6)
        assert sched.next_departure_at(1) == pytest.approx(8e-3)
        assert sched.port_rate_of(0) == 1e9
        assert sched.port_rate_of(1) == 1e6
        with pytest.raises(ConfigError):
            sched.set_port_rate(0, -1.0)
