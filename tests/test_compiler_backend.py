"""Tests for static checks, allocation, and backend emission."""

import pytest

from repro.compiler import CompilerOptions, compile_module
from repro.compiler.static_checker import check_loop_free
from repro.compiler.target import TargetDescription, system_target
from repro.errors import (
    AllocationError,
    CompilerError,
    ResourceError,
    StaticCheckError,
)
from repro.rmt.action import AluOp
from repro.rmt.key_extractor import CmpOp
from repro.rmt.phv import ContainerRef, ContainerType

from tests.test_compiler_frontend import SIMPLE_CONTROL, minimal_module


def compile_control(control: str, extra_headers: str = "",
                    extra_struct: str = "", options=None):
    src = minimal_module(control, extra_headers, extra_struct)
    return compile_module(src, "test", options)


class TestStaticChecker:
    def test_vid_write_rejected(self):
        control = """
    action evil() { hdr.vlan.tci = 99; }
    table t { key = { hdr.udp.dstPort: exact; } actions = { evil; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(StaticCheckError, match="VID"):
            compile_control(control)

    def test_stats_write_rejected(self):
        control = """
    action evil() { standard_metadata.link_utilization = 0; }
    table t { key = { hdr.udp.dstPort: exact; } actions = { evil; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(StaticCheckError, match="read-only"):
            compile_control(control)

    def test_recirculate_rejected(self):
        control = """
    action evil() { recirculate(); }
    table t { key = { hdr.udp.dstPort: exact; } actions = { evil; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(StaticCheckError, match="recirculate"):
            compile_control(control)

    def test_resubmit_rejected(self):
        control = """
    action evil() { resubmit(); }
    table t { key = { hdr.udp.dstPort: exact; } actions = { evil; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(StaticCheckError):
            compile_control(control)

    def test_legit_module_passes(self):
        module = compile_control(SIMPLE_CONTROL)
        assert module.table_order == ["t"]

    def test_loop_free_accepts_dag(self):
        check_loop_free({"a": "b", "b": "c"})

    def test_loop_free_detects_cycle(self):
        with pytest.raises(StaticCheckError, match="loop"):
            check_loop_free({"a": "b", "b": "a"})

    def test_loop_free_self_loop(self):
        with pytest.raises(StaticCheckError):
            check_loop_free({"a": "a"})


class TestAllocator:
    def test_container_classes(self):
        module = compile_control(SIMPLE_CONTROL)
        ref = module.field_alloc["hdr.ipv4.dstAddr"]
        assert ref.ctype == ContainerType.B4

    def test_zero_container_never_allocated(self):
        module = compile_control(SIMPLE_CONTROL)
        zero = module.target.zero_container
        assert zero not in module.field_alloc.values()

    def test_container_exhaustion(self):
        # 8 B4 containers exist, 1 is allocatable-free? no: zero container
        # is B2; so 8 4-byte fields fit, 9 do not.
        fields = "".join(f"bit<32> f{i};" for i in range(9))
        extra = f"header big_t {{ {fields} }}"
        control = """
    action touch() { hdr.big.f0 = hdr.big.f1 + hdr.big.f2; }
    table t { key = { hdr.big.f3: exact; hdr.big.f4: exact; }
              actions = { touch; } size = 2; }
    apply { t.apply(); }
"""
        # Use 9 fields across key+actions to exhaust B4.
        control = control.replace(
            "action touch() { hdr.big.f0 = hdr.big.f1 + hdr.big.f2; }",
            "action touch() { hdr.big.f0 = hdr.big.f1 + hdr.big.f2;"
            " hdr.big.f5 = hdr.big.f6 + hdr.big.f7;"
            " hdr.big.f8 = hdr.big.f8 + hdr.big.f8; }")
        src = minimal_module(control, extra_headers=extra,
                             extra_struct="big_t big;")
        src = src.replace("transition accept;", "transition parse_big;")
        src = src.replace(
            "control C(inout headers_t hdr) {",
            """state parse_big { packet.extract(hdr.big); transition accept; }
}
control C(inout headers_t hdr) {""")
        # The above produces an extra closing brace; rebuild cleanly:
        src = minimal_module(control, extra_headers=extra,
                             extra_struct="big_t big;").replace(
            "transition accept;\n    }",
            "transition parse_big;\n    }\n    state parse_big {"
            " packet.extract(hdr.big); transition accept; }")
        with pytest.raises(AllocationError, match="containers"):
            compile_module(src, "big")

    def test_too_many_tables_for_target(self):
        control = """
    action a() { hdr.ipv4.identification = 1; }
    table t1 { key = { hdr.ipv4.srcAddr: exact; } actions = { a; } size = 2; }
    table t2 { key = { hdr.ipv4.dstAddr: exact; } actions = { a; } size = 2; }
    table t3 { key = { hdr.udp.srcPort: exact; } actions = { a; } size = 2; }
    apply { t1.apply(); t2.apply(); t3.apply(); }
"""
        options = CompilerOptions(target=TargetDescription(stage_map=[1, 2]))
        with pytest.raises(AllocationError, match="stages"):
            compile_control(control, options=options)

    def test_stage_assignment_follows_apply_order(self):
        control = """
    action a() { hdr.ipv4.identification = 1; }
    table t1 { key = { hdr.ipv4.srcAddr: exact; } actions = { a; } size = 2; }
    table t2 { key = { hdr.ipv4.dstAddr: exact; } actions = { a; } size = 2; }
    apply { t1.apply(); t2.apply(); }
"""
        options = CompilerOptions(target=TargetDescription(stage_map=[1, 2, 3]))
        module = compile_control(control, options=options)
        assert module.tables["t1"].stage == 1
        assert module.tables["t2"].stage == 2

    def test_dependency_recorded(self):
        control = """
    action rewrite() { hdr.ipv4.dstAddr = hdr.ipv4.srcAddr; }
    action a() { hdr.ipv4.identification = 1; }
    table t1 { key = { hdr.udp.srcPort: exact; } actions = { rewrite; } size = 2; }
    table t2 { key = { hdr.ipv4.dstAddr: exact; } actions = { a; } size = 2; }
    apply { t1.apply(); t2.apply(); }
"""
        module = compile_control(control)
        assert module.dependencies["t2"] == {"t1"}

    def test_same_table_applied_twice_rejected(self):
        control = """
    action a() { hdr.ipv4.identification = 1; }
    table t { key = { hdr.udp.srcPort: exact; } actions = { a; } size = 2; }
    apply { t.apply(); t.apply(); }
"""
        with pytest.raises(AllocationError):
            compile_control(control)


class TestBackendEmission:
    def test_parse_actions_sorted_and_deduped(self):
        module = compile_control(SIMPLE_CONTROL)
        offsets = [a.bytes_from_head for a in module.parse_actions]
        assert offsets == sorted(offsets)

    def test_key_extractor_entry(self):
        module = compile_control(SIMPLE_CONTROL)
        table = module.tables["t"]
        ref = module.field_alloc["hdr.ipv4.dstAddr"]
        assert table.key_entry.idx_4b_1 == ref.index
        assert table.key_entry.cmp_op == CmpOp.DISABLED
        # mask covers only the 4b_1 slot
        assert table.key_mask == ((1 << 32) - 1) << 65

    def test_make_key_places_value(self):
        module = compile_control(SIMPLE_CONTROL)
        table = module.tables["t"]
        key = table.make_key({"hdr.ipv4.dstAddr": 0x0A000001})
        assert key == 0x0A000001 << 65

    def test_make_key_validates_fields(self):
        module = compile_control(SIMPLE_CONTROL)
        table = module.tables["t"]
        with pytest.raises(CompilerError):
            table.make_key({})
        with pytest.raises(CompilerError):
            table.make_key({"hdr.ipv4.dstAddr": 1, "hdr.udp.srcPort": 2})

    def test_action_parameter_to_immediate(self):
        module = compile_control(SIMPLE_CONTROL)
        action = module.tables["t"].actions["set_port"]
        vliw = action.make_vliw({"port": 6})
        ops = dict(vliw.non_nop())
        assert ops[24].opcode == AluOp.PORT
        assert ops[24].immediate == 6

    def test_missing_parameter_rejected(self):
        module = compile_control(SIMPLE_CONTROL)
        action = module.tables["t"].actions["set_port"]
        with pytest.raises(CompilerError):
            action.make_vliw({})

    def test_parameter_width_enforced(self):
        module = compile_control(SIMPLE_CONTROL)
        action = module.tables["t"].actions["set_port"]
        with pytest.raises(CompilerError):
            action.make_vliw({"port": 1 << 16})

    def test_predicate_table_emission(self):
        control = """
    action a() { hdr.ipv4.identification = 1; }
    action b() { hdr.ipv4.identification = 2; }
    table t1 { key = { hdr.udp.srcPort: exact; } actions = { a; } size = 2; }
    table t2 { key = { hdr.udp.dstPort: exact; } actions = { b; } size = 2; }
    apply {
        if (hdr.udp.length > 100) { t1.apply(); } else { t2.apply(); }
    }
"""
        module = compile_control(control)
        t1, t2 = module.tables["t1"], module.tables["t2"]
        assert t1.predicate_value is True
        assert t2.predicate_value is False
        assert t1.key_entry.cmp_op == CmpOp.GT
        assert t1.key_mask & 1  # flag bit matched
        # then-branch keys carry flag=1; else-branch flag=0
        assert t1.make_key({"hdr.udp.srcPort": 7}) & 1 == 1
        assert t2.make_key({"hdr.udp.dstPort": 7}) & 1 == 0

    def test_predicate_immediate_limit(self):
        control = """
    action a() { hdr.ipv4.identification = 1; }
    table t1 { key = { hdr.udp.srcPort: exact; } actions = { a; } size = 2; }
    apply { if (hdr.udp.length > 1000) { t1.apply(); } }
"""
        with pytest.raises(CompilerError, match="7-bit"):
            compile_control(control)

    def test_nested_if_rejected(self):
        control = """
    action a() { hdr.ipv4.identification = 1; }
    table t1 { key = { hdr.udp.srcPort: exact; } actions = { a; } size = 2; }
    apply {
        if (hdr.udp.length > 10) {
            if (hdr.udp.srcPort > 10) { t1.apply(); }
        }
    }
"""
        with pytest.raises(CompilerError, match="nested"):
            compile_control(control)

    def test_register_binding(self):
        control = """
    register<bit<32>>(8) seq;
    action bump() { seq.loadd(hdr.ipv4.identification, 0); }
    table t { key = { hdr.udp.dstPort: exact; } actions = { bump; } size = 2; }
    apply { t.apply(); }
"""
        module = compile_control(control)
        spec = module.registers["seq"]
        assert spec.size == 8
        assert spec.stage == module.tables["t"].stage
        action = module.tables["t"].actions["bump"]
        vliw = action.make_vliw({}, register_bases={"seq": 16})
        ops = dict(vliw.non_nop())
        slot = module.field_alloc["hdr.ipv4.identification"].flat_index
        assert ops[slot].opcode == AluOp.LOADD
        assert ops[slot].immediate == 16  # base + const addr 0

    def test_register_base_required(self):
        control = """
    register<bit<32>>(8) seq;
    action bump() { seq.loadd(hdr.ipv4.identification, 3); }
    table t { key = { hdr.udp.dstPort: exact; } actions = { bump; } size = 2; }
    apply { t.apply(); }
"""
        module = compile_control(control)
        action = module.tables["t"].actions["bump"]
        with pytest.raises(CompilerError):
            action.make_vliw({})  # no register base provided

    def test_register_address_out_of_bounds(self):
        control = """
    register<bit<32>>(8) seq;
    action bump() { seq.loadd(hdr.ipv4.identification, 8); }
    table t { key = { hdr.udp.dstPort: exact; } actions = { bump; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(CompilerError, match="out of register"):
            compile_control(control)

    def test_store_places_on_source_slot(self):
        control = """
    register<bit<32>>(8) mem;
    action save() { mem.write(2, hdr.ipv4.srcAddr); }
    table t { key = { hdr.udp.dstPort: exact; } actions = { save; } size = 2; }
    apply { t.apply(); }
"""
        module = compile_control(control)
        action = module.tables["t"].actions["save"]
        vliw = action.make_vliw({}, register_bases={"mem": 0})
        ops = dict(vliw.non_nop())
        slot = module.field_alloc["hdr.ipv4.srcAddr"].flat_index
        assert ops[slot].opcode == AluOp.STORE
        assert ops[slot].immediate == 2

    def test_mcast_action(self):
        control = """
    action flood() { standard_metadata.mcast_grp = 5; }
    table t { key = { hdr.ipv4.dstAddr: exact; } actions = { flood; } size = 2; }
    apply { t.apply(); }
"""
        module = compile_control(control)
        vliw = module.tables["t"].actions["flood"].make_vliw({})
        ops = dict(vliw.non_nop())
        assert ops[24].opcode == AluOp.MCAST
        assert ops[24].immediate == 5

    def test_two_metadata_ops_conflict(self):
        control = """
    action both() {
        standard_metadata.egress_spec = 1;
        standard_metadata.mcast_grp = 5;
    }
    table t { key = { hdr.ipv4.dstAddr: exact; } actions = { both; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(CompilerError, match="slot"):
            compile_control(control)

    def test_key_too_wide_for_class(self):
        control = """
    action a() { hdr.ipv4.identification = 1; }
    table t {
        key = {
            hdr.ipv4.srcAddr: exact;
            hdr.ipv4.dstAddr: exact;
            hdr.ipv4.totalLen: exact;
        }
        actions = { a; } size = 2;
    }
    apply { t.apply(); }
"""
        # 2x 32-bit + 1x 16-bit is fine; add a third 32-bit to overflow.
        module = compile_control(control)
        assert len(module.tables["t"].key_layout) == 3

        control_bad = control.replace(
            "hdr.ipv4.totalLen: exact;",
            "hdr.ipv4.totalLen: exact; hdr.calc_unused.x: exact;")
        # simpler: three 32-bit fields
        control_bad = """
    action a() { hdr.ipv4.identification = 1; }
    table t {
        key = {
            hdr.ipv4.srcAddr: exact;
            hdr.ipv4.dstAddr: exact;
            hdr.extra.f: exact;
        }
        actions = { a; } size = 2;
    }
    apply { t.apply(); }
"""
        extra = "header extra_t { bit<32> f; }"
        src = minimal_module(control_bad, extra_headers=extra,
                             extra_struct="extra_t extra;").replace(
            "transition accept;\n    }",
            "transition parse_extra;\n    }\n    state parse_extra {"
            " packet.extract(hdr.extra); transition accept; }")
        with pytest.raises(AllocationError, match="2 key fields"):
            compile_module(src, "wide")

    def test_system_target_stage_map(self):
        target = system_target()
        assert target.stage_map == [0, 4]

    def test_table_size_exceeding_cam_rejected(self):
        control = SIMPLE_CONTROL.replace("size = 4;", "size = 17;")
        with pytest.raises(ResourceError):
            compile_control(control)


class TestSharedFieldTarget:
    def test_shared_field_reuses_container(self):
        base = compile_control(SIMPLE_CONTROL)
        sys_fields = {"hdr.ipv4.dstAddr":
                      type("F", (), {"byte_offset": 34, "width_bits": 32})()}
        sys_alloc = {"hdr.ipv4.dstAddr": ContainerRef(ContainerType.B4, 5)}
        target = base.target.with_system_reservations(sys_alloc, sys_fields)
        module = compile_control(
            SIMPLE_CONTROL, options=CompilerOptions(target=target))
        assert module.field_alloc["hdr.ipv4.dstAddr"] == ContainerRef(
            ContainerType.B4, 5)

    def test_shared_parse_actions_merged(self):
        sys_fields = {"hdr.ipv4.srcAddr":
                      type("F", (), {"byte_offset": 30, "width_bits": 32})()}
        sys_alloc = {"hdr.ipv4.srcAddr": ContainerRef(ContainerType.B4, 6)}
        base = compile_control(SIMPLE_CONTROL)
        target = base.target.with_system_reservations(sys_alloc, sys_fields)
        module = compile_control(
            SIMPLE_CONTROL, options=CompilerOptions(target=target))
        offsets = [(a.bytes_from_head, a.container)
                   for a in module.parse_actions]
        assert (30, ContainerRef(ContainerType.B4, 6)) in offsets

    def test_user_target_stage_map(self):
        base = compile_control(SIMPLE_CONTROL)
        target = base.target.with_system_reservations({}, {})
        assert target.stage_map == [1, 2, 3]
