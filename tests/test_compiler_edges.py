"""Edge-case and error-path tests for the compiler."""

import pytest

from repro.compiler import compile_module
from repro.compiler.parser import parse_source
from repro.compiler.typecheck import typecheck
from repro.errors import (
    CompilerError,
    LexerError,
    ParseError,
    TypeCheckError,
)

from tests.test_compiler_frontend import (
    COMMON_HEADERS,
    COMMON_PARSE,
    SIMPLE_CONTROL,
    minimal_module,
)


class TestProgramShapeErrors:
    def test_module_without_parser(self):
        src = COMMON_HEADERS + """
struct headers_t { ethernet_t ethernet; }
control C(inout headers_t hdr) { apply { } }
"""
        with pytest.raises(TypeCheckError, match="no parser"):
            typecheck(parse_source(src))

    def test_module_without_control(self):
        src = COMMON_HEADERS + """
struct headers_t {
    ethernet_t ethernet; vlan_t vlan; ipv4_t ipv4; udp_t udp;
}
""" + COMMON_PARSE
        with pytest.raises(TypeCheckError, match="no control"):
            typecheck(parse_source(src))

    def test_parser_extracting_nothing(self):
        src = minimal_module(SIMPLE_CONTROL).replace(
            """packet.extract(hdr.ethernet);
        packet.extract(hdr.vlan);
        packet.extract(hdr.ipv4);
        packet.extract(hdr.udp);
        transition accept;""",
            "transition accept;")
        with pytest.raises(TypeCheckError, match="extracts no headers"):
            typecheck(parse_source(src))

    def test_undefined_parser_state(self):
        src = minimal_module(SIMPLE_CONTROL).replace(
            "transition accept;", "transition missing_state;")
        with pytest.raises(TypeCheckError, match="undefined parser state"):
            typecheck(parse_source(src))

    def test_extract_of_undeclared_instance(self):
        src = minimal_module(SIMPLE_CONTROL).replace(
            "packet.extract(hdr.udp);", "packet.extract(hdr.ghost);")
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(src))

    def test_header_with_partial_byte_rejected(self):
        extra = "header odd_t { bit<12> x; }"
        src = minimal_module(SIMPLE_CONTROL, extra_headers=extra,
                             extra_struct="odd_t odd;")
        src = src.replace(
            "transition accept;\n    }",
            "transition parse_odd;\n    }\n    state parse_odd {"
            " packet.extract(hdr.odd); transition accept; }")
        with pytest.raises(TypeCheckError, match="whole bytes"):
            typecheck(parse_source(src))


class TestGrammarLimits:
    def test_width_over_64_rejected(self):
        with pytest.raises(ParseError, match="unsupported bit width"):
            parse_source("header h_t { bit<65> x; }")

    def test_zero_width_rejected(self):
        with pytest.raises((ParseError, LexerError)):
            parse_source("header h_t { bit<0> x; }")

    def test_bad_match_kind(self):
        control = SIMPLE_CONTROL.replace("exact;", "lpm;")
        with pytest.raises(ParseError, match="match kind"):
            parse_source(minimal_module(control))

    def test_table_apply_with_args_rejected(self):
        control = SIMPLE_CONTROL.replace("t.apply();", "t.apply(1);")
        with pytest.raises(ParseError):
            parse_source(minimal_module(control))


class TestConstPropagation:
    def test_const_in_action_expression(self):
        src = ("const bit<16> MAGIC = 0x2A;\n"
               + minimal_module("""
    action stamp() { hdr.ipv4.identification = MAGIC; }
    table t { key = { hdr.udp.dstPort: exact; } actions = { stamp; } size = 2; }
    apply { t.apply(); }
"""))
        module = compile_module(src, "const-test")
        action = module.tables["t"].actions["stamp"]
        vliw = action.make_vliw({})
        ops = dict(vliw.non_nop())
        slot = module.field_alloc["hdr.ipv4.identification"].flat_index
        assert ops[slot].immediate == 0x2A

    def test_const_added_to_field(self):
        src = ("const bit<16> STEP = 5;\n"
               + minimal_module("""
    action bump() { hdr.ipv4.identification = hdr.ipv4.identification + STEP; }
    table t { key = { hdr.udp.dstPort: exact; } actions = { bump; } size = 2; }
    apply { t.apply(); }
"""))
        module = compile_module(src, "const-add")
        action = module.tables["t"].actions["bump"]
        ops = dict(action.make_vliw({}).non_nop())
        slot = module.field_alloc["hdr.ipv4.identification"].flat_index
        from repro.rmt.action import AluOp
        assert ops[slot].opcode == AluOp.ADDI
        assert ops[slot].immediate == 5

    def test_unknown_const_rejected(self):
        control = """
    action stamp() { hdr.ipv4.identification = GHOST; }
    table t { key = { hdr.udp.dstPort: exact; } actions = { stamp; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises((TypeCheckError, CompilerError)):
            compile_module(minimal_module(control), "bad")


class TestActionExpressionLimits:
    def test_const_plus_const_rejected(self):
        control = """
    action weird() { hdr.ipv4.identification = 1 + 2; }
    table t { key = { hdr.udp.dstPort: exact; } actions = { weird; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(CompilerError):
            compile_module(minimal_module(control), "bad")

    def test_param_minus_rejected(self):
        control = """
    action weird(bit<16> v) { hdr.ipv4.identification = hdr.ipv4.totalLen - v; }
    table t { key = { hdr.udp.dstPort: exact; } actions = { weird; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(CompilerError, match="parameter"):
            compile_module(minimal_module(control), "bad")

    def test_metadata_read_rejected(self):
        control = """
    action weird() { hdr.ipv4.identification = standard_metadata.enq_timestamp; }
    table t { key = { hdr.udp.dstPort: exact; } actions = { weird; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(CompilerError, match="not readable"):
            compile_module(minimal_module(control), "bad")

    def test_three_term_expression_rejected(self):
        control = """
    action weird() {
        hdr.ipv4.identification = hdr.ipv4.totalLen + hdr.udp.length + 1;
    }
    table t { key = { hdr.udp.dstPort: exact; } actions = { weird; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(CompilerError):
            compile_module(minimal_module(control), "bad")


class TestFieldCopySemantics:
    def test_field_copy_compiles_to_addi_zero(self):
        control = """
    action mirror() { hdr.ipv4.identification = hdr.udp.length; }
    table t { key = { hdr.udp.dstPort: exact; } actions = { mirror; } size = 2; }
    apply { t.apply(); }
"""
        module = compile_module(minimal_module(control), "copy")
        ops = dict(module.tables["t"].actions["mirror"].make_vliw({})
                   .non_nop())
        slot = module.field_alloc["hdr.ipv4.identification"].flat_index
        from repro.rmt.action import AluOp
        assert ops[slot].opcode == AluOp.ADDI
        assert ops[slot].immediate == 0
        assert ops[slot].c1 == module.field_alloc["hdr.udp.length"]
