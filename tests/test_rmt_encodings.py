"""Tests for the bit-accurate entry encodings (Fig. 7 widths)."""

import pytest

from repro.errors import EncodingError
from repro.rmt import encodings as enc
from repro.rmt.action import AluAction, AluOp, NOP_ACTION, VliwInstruction
from repro.rmt.key_extractor import CmpOp, KeyExtractEntry
from repro.rmt.parser import ParseAction
from repro.rmt.phv import ContainerRef, ContainerType


class TestParseActionEncoding:
    def test_roundtrip(self):
        word = enc.encode_parse_action(bytes_from_head=46, container_type=1,
                                       container_index=3, valid=1)
        fields = enc.decode_parse_action(word)
        assert fields["bytes_from_head"] == 46
        assert fields["container_type"] == 1
        assert fields["container_index"] == 3
        assert fields["valid"] == 1

    def test_width_is_16_bits(self):
        word = enc.encode_parse_action(127, 3, 7, 1)
        assert word < (1 << 16)

    def test_bytes_from_head_covers_window(self):
        # 7 bits must cover the full 128-byte window.
        enc.encode_parse_action(127, 0, 0, 1)
        with pytest.raises(EncodingError):
            enc.encode_parse_action(128, 0, 0, 1)

    def test_parse_action_dataclass_roundtrip(self):
        action = ParseAction(bytes_from_head=20,
                             container=ContainerRef(ContainerType.B6, 5))
        assert ParseAction.decode(action.encode()) == action

    def test_invalid_action_decodes_invalid(self):
        action = ParseAction(10, ContainerRef(ContainerType.B2, 0),
                             valid=False)
        assert not ParseAction.decode(action.encode()).valid


class TestParserEntryEncoding:
    def test_entry_width_160(self):
        actions = [enc.encode_parse_action(i, 0, i % 8, 1) for i in range(10)]
        entry = enc.encode_parser_entry(actions)
        assert entry < (1 << 160)

    def test_roundtrip_and_padding(self):
        actions = [enc.encode_parse_action(5, 1, 2, 1)]
        entry = enc.encode_parser_entry(actions)
        words = enc.decode_parser_entry(entry)
        assert len(words) == 10
        assert words[0] == actions[0]
        assert all(w == 0 for w in words[1:])

    def test_too_many_actions(self):
        with pytest.raises(EncodingError):
            enc.encode_parser_entry([0] * 11)


class TestKeyEncoding:
    def test_key_width_193(self):
        parts = [(1 << 48) - 1, (1 << 48) - 1, (1 << 32) - 1,
                 (1 << 32) - 1, 0xFFFF, 0xFFFF]
        key = enc.encode_key(parts, 1)
        assert key == (1 << 193) - 1

    def test_roundtrip(self):
        parts = [0x0102030405, 0, 0xAABBCCDD, 1, 0x1234, 0xFFFF]
        key = enc.encode_key(parts, 0)
        back, flag = enc.decode_key(key)
        assert back == parts
        assert flag == 0

    def test_flag_is_lsb(self):
        key0 = enc.encode_key([0] * 6, 0)
        key1 = enc.encode_key([0] * 6, 1)
        assert key1 - key0 == 1

    def test_needs_six_parts(self):
        with pytest.raises(EncodingError):
            enc.encode_key([0] * 5, 0)


class TestCamEntryEncoding:
    def test_width_205(self):
        word = enc.encode_cam_entry((1 << 193) - 1, 0xFFF)
        assert word == (1 << 205) - 1

    def test_roundtrip(self):
        word = enc.encode_cam_entry(0xABCDEF, 42)
        key, module_id = enc.decode_cam_entry(word)
        assert key == 0xABCDEF
        assert module_id == 42

    def test_module_id_in_low_bits(self):
        word = enc.encode_cam_entry(0, 7)
        assert word == 7


class TestKeyExtractEntry:
    def test_roundtrip_with_container_operands(self):
        entry = KeyExtractEntry(
            idx_6b_1=1, idx_6b_2=2, idx_4b_1=3, idx_4b_2=4,
            idx_2b_1=5, idx_2b_2=6,
            cmp_op=CmpOp.GT,
            cmp_a=ContainerRef(ContainerType.B2, 3),
            cmp_b=100,
        )
        assert KeyExtractEntry.decode(entry.encode()) == entry

    def test_width_38(self):
        entry = KeyExtractEntry(idx_6b_1=7, idx_6b_2=7, idx_4b_1=7,
                                idx_4b_2=7, idx_2b_1=7, idx_2b_2=7,
                                cmp_op=CmpOp.ALWAYS,
                                cmp_a=ContainerRef(ContainerType.B6, 7),
                                cmp_b=127)
        assert entry.encode() < (1 << 38)

    def test_immediate_operand_limit(self):
        with pytest.raises(EncodingError):
            enc.encode_cmp_operand(False, 128)  # only 7-bit immediates

    def test_operand_discrimination(self):
        is_c, val = enc.decode_cmp_operand(enc.encode_cmp_operand(True, 0x1F))
        assert is_c and val == 0x1F
        is_c, val = enc.decode_cmp_operand(enc.encode_cmp_operand(False, 99))
        assert not is_c and val == 99


class TestAluActionEncoding:
    def test_add_roundtrip(self):
        action = AluAction(AluOp.ADD, c1=ContainerRef(ContainerType.B4, 1),
                           c2=ContainerRef(ContainerType.B4, 2))
        assert AluAction.decode(action.encode()) == action

    def test_immediate_roundtrip(self):
        action = AluAction(AluOp.ADDI, c1=ContainerRef(ContainerType.B2, 0),
                           immediate=0xBEEF)
        assert AluAction.decode(action.encode()) == action

    def test_set_roundtrip(self):
        action = AluAction(AluOp.SET, immediate=42)
        decoded = AluAction.decode(action.encode())
        assert decoded.opcode == AluOp.SET
        assert decoded.immediate == 42

    def test_stateful_roundtrip(self):
        for op in (AluOp.LOAD, AluOp.STORE, AluOp.LOADD):
            action = AluAction(op, c1=ContainerRef(ContainerType.B2, 7),
                               immediate=12)
            assert AluAction.decode(action.encode()) == action

    def test_port_and_discard(self):
        port = AluAction(AluOp.PORT, c1=ContainerRef(ContainerType.B2, 0),
                         immediate=3)
        assert AluAction.decode(port.encode()) == port
        discard = AluAction(AluOp.DISCARD)
        assert AluAction.decode(discard.encode()) == discard

    def test_width_25(self):
        action = AluAction(AluOp.SET, immediate=0xFFFF)
        assert action.encode() < (1 << 25)

    def test_missing_operand_rejected(self):
        with pytest.raises(EncodingError):
            AluAction(AluOp.ADD, c1=ContainerRef(ContainerType.B2, 0))

    def test_immediate_on_two_operand_rejected(self):
        with pytest.raises(EncodingError):
            AluAction(AluOp.ADD, c1=ContainerRef(ContainerType.B2, 0),
                      c2=ContainerRef(ContainerType.B2, 1), immediate=5)

    def test_c2_on_immediate_form_rejected(self):
        with pytest.raises(EncodingError):
            AluAction(AluOp.ADDI, c1=ContainerRef(ContainerType.B2, 0),
                      c2=ContainerRef(ContainerType.B2, 1), immediate=5)

    def test_immediate_overflow(self):
        with pytest.raises(EncodingError):
            AluAction(AluOp.SET, immediate=1 << 16)

    def test_nonzero_reserved_rejected_on_decode(self):
        word = AluAction(AluOp.ADD, c1=ContainerRef(ContainerType.B2, 0),
                         c2=ContainerRef(ContainerType.B2, 1)).encode()
        with pytest.raises(EncodingError):
            AluAction.decode(word | 1)  # dirty reserved bit


class TestVliwEncoding:
    def test_width_625(self):
        instr = VliwInstruction()
        assert instr.encode() == 0  # all NOPs encode to zero

    def test_sparse_roundtrip(self):
        instr = VliwInstruction.from_sparse({
            0: AluAction(AluOp.SET, immediate=7),
            8: AluAction(AluOp.ADD, c1=ContainerRef(ContainerType.B4, 0),
                         c2=ContainerRef(ContainerType.B4, 1)),
            24: AluAction(AluOp.DISCARD),
        })
        decoded = VliwInstruction.decode(instr.encode())
        assert decoded == instr
        assert len(decoded.non_nop()) == 3

    def test_wrong_length_rejected(self):
        with pytest.raises(EncodingError):
            VliwInstruction([NOP_ACTION] * 24)

    def test_sparse_slot_bounds(self):
        with pytest.raises(EncodingError):
            VliwInstruction.from_sparse({25: NOP_ACTION})

    def test_slot0_is_msb(self):
        instr = VliwInstruction.from_sparse({0: AluAction(AluOp.DISCARD)})
        word = instr.encode()
        # Slot 0 occupies the top 25 bits of the 625-bit word.
        assert (word >> 600) == AluAction(AluOp.DISCARD).encode()


class TestSegmentEncoding:
    def test_roundtrip(self):
        word = enc.encode_segment_entry(offset=64, range_=32)
        assert enc.decode_segment_entry(word) == (64, 32)

    def test_width_16(self):
        assert enc.encode_segment_entry(255, 255) == 0xFFFF
