"""Edge-case coverage for :mod:`repro.sim.kernel`.

The kernel now underpins every timed path — the fabric timeline's
service/arrival cascade, churn reconfiguration events, and (through
the execution core) the Fig. 10 harness — so its corner semantics are
load-bearing: cancellation bookkeeping, the ``until`` horizon, the
``max_events`` guard, and re-entrant scheduling from inside handlers.
The basics (time order, FIFO ties, negative delay) live in
``tests/test_sim_perf.py``.
"""

import pytest

from repro.sim import Simulator
from repro.sim.kernel import SimulationError


class TestCancel:
    def test_cancelled_event_is_not_processed_and_not_pending(self):
        sim = Simulator()
        log = []
        keep = sim.schedule(1.0, lambda: log.append("keep"))
        drop = sim.schedule(2.0, lambda: log.append("drop"))
        drop.cancel()
        assert sim.pending() == 1
        sim.run()
        assert log == ["keep"]
        assert sim.events_processed == 1
        assert not keep.cancelled and drop.cancelled

    def test_cancelled_event_does_not_advance_the_clock(self):
        # A cancelled head-of-queue event is skipped without its time
        # becoming `now`.
        sim = Simulator()
        sim.schedule(5.0, lambda: None).cancel()
        sim.run()
        assert sim.now == 0.0

    def test_cancel_from_inside_an_earlier_handler(self):
        sim = Simulator()
        log = []
        later = sim.schedule(2.0, lambda: log.append("later"))
        sim.schedule(1.0, lambda: later.cancel())
        sim.run()
        assert log == []
        assert sim.now == 1.0

    def test_cancel_one_of_simultaneous_events_keeps_fifo(self):
        sim = Simulator()
        log = []
        events = [sim.schedule(1.0, lambda i=i: log.append(i))
                  for i in range(4)]
        events[1].cancel()
        events[2].cancel()
        sim.run()
        assert log == [0, 3]


class TestRunUntil:
    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("at"))
        sim.run(until=2.0)
        assert log == ["at"]
        assert sim.now == 2.0

    def test_later_events_stay_queued_and_resume(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(3.0, lambda: log.append(3))
        assert sim.run(until=2.0) == 2.0
        assert log == [1] and sim.pending() == 1
        assert sim.run() == 3.0
        assert log == [1, 3]

    def test_until_with_empty_queue_advances_the_clock(self):
        sim = Simulator()
        assert sim.run(until=7.5) == 7.5
        assert sim.now == 7.5

    def test_until_after_queue_drains_sets_final_clock(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=10.0) == 10.0


class TestMaxEvents:
    def test_guard_stops_after_n_events(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: log.append(i))
        sim.run(max_events=2)
        assert log == [0, 1]
        assert sim.now == 2.0
        assert sim.pending() == 3

    def test_guard_bounds_a_runaway_self_scheduling_cascade(self):
        # The guard exists exactly for this: a handler that always
        # schedules a successor would otherwise never terminate.
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run(max_events=100)
        assert len(fired) == 100
        assert sim.pending() == 1  # the 101st, still queued

    def test_cancelled_events_do_not_consume_the_budget(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: log.append("ran"))
        sim.run(max_events=1)
        assert log == ["ran"]

    def test_resuming_after_the_guard_completes_the_run(self):
        sim = Simulator()
        log = []
        for i in range(4):
            sim.schedule(float(i + 1), lambda i=i: log.append(i))
        sim.run(max_events=3)
        sim.run()
        assert log == [0, 1, 2, 3]


class TestReentrantScheduling:
    def test_schedule_at_now_from_handler_runs_after_current(self):
        sim = Simulator()
        log = []

        def handler():
            log.append("outer")
            sim.schedule_at(sim.now, lambda: log.append("inner"))

        sim.schedule_at(1.0, handler)
        sim.schedule_at(1.0, lambda: log.append("sibling"))
        sim.run()
        # Same-time FIFO: the re-entrant event fires after everything
        # already queued for that instant.
        assert log == ["outer", "sibling", "inner"]
        assert sim.now == 1.0

    def test_schedule_at_into_the_past_raises_inside_handler(self):
        sim = Simulator()

        def handler():
            sim.schedule_at(0.5, lambda: None)

        sim.schedule_at(1.0, handler)
        with pytest.raises(SimulationError):
            sim.run()

    def test_reentrant_chain_respects_until(self):
        sim = Simulator()
        log = []

        def tick():
            log.append(sim.now)
            sim.schedule_at(sim.now + 1.0, tick)

        sim.schedule_at(1.0, tick)
        sim.run(until=3.0)
        assert log == [1.0, 2.0, 3.0]
        assert sim.pending() == 1  # the 4.0 tick, beyond the horizon
        assert sim.now == 3.0