"""Property tests for the batched engine: isolation and invalidation.

Extends the repo's isolation guarantees (``TenantIsolationError`` at the
API, overlay/segment partitioning in hardware) to the engine layer:

* **Interleaving independence** — under randomized interleavings of two
  tenants' traffic, each tenant observes exactly the results it would
  observe running alone. In particular, two tenants whose packets are
  byte-identical except for the VID (same flows, different rules) never
  see each other's cached verdicts — the per-VID shards are a hard
  boundary, like the CAM module-ID check they mirror.
* **Invalidation soundness** — across random sequences of traffic and
  transactional rule flips, and under arbitrarily small cache
  capacities (eviction pressure), the engine never diverges from a
  scalar twin processing the same global sequence.
* **FlowCache unit properties** — capacity is a hard bound, LRU keeps
  the hot key, stale epochs never hit.

All randomness is Hypothesis-driven and derandomized, so runs are
reproducible; scenario constants derive from ``tests/seeds.py``.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.api import Switch, TenantIsolationError
from repro.engine import FlowCache, FlowEntry
from repro.rmt.phv import PHV
from repro.traffic import workload
from seeds import SEED, rng as make_rng

ENGINE_SETTINGS = settings(max_examples=15, deadline=None,
                           derandomize=True)

FW = workload("firewall")

#: Flow IDs small enough to revisit often (cache hits + rule coverage).
flow_ids = st.integers(0, 12)


def result_view(result):
    """The tenant-observable projection of one PipelineResult.

    Excludes the §3.2 packet-buffer tag: it is round-robin over *global*
    arrival order by design (shared infrastructure, not tenant state),
    so it legitimately depends on the neighbor's packet count. Nothing
    a tenant can match on or emit derives from it.
    """
    phv_view = None
    if result.phv is not None:
        meta = result.phv.metadata
        phv_view = (tuple(v for _ref, v in result.phv.containers()),
                    meta.dst_port, meta.mcast_group, meta.pkt_len,
                    meta.discard)
    return (result.dropped, result.drop_reason, result.egress_port,
            result.mcast_group,
            result.packet.tobytes() if result.packet else None,
            phv_view)


def fw_switch(vid_rules):
    """A switch with one firewall tenant per (vid, install?) pair."""
    switch = Switch.build().create()
    for vid, install in vid_rules:
        tenant = switch.admit(f"fw{vid}", FW.source, vid=vid)
        if install:
            FW.install(tenant)
    return switch


# ---------------------------------------------------------------------------
# interleaving independence / shard isolation
# ---------------------------------------------------------------------------

class TestInterleavingIsolation:
    @ENGINE_SETTINGS
    @given(st.lists(st.tuples(st.sampled_from([1, 2]), flow_ids),
                    min_size=1, max_size=50))
    def test_each_tenant_sees_its_solo_results(self, arrivals):
        """Tenant 1 has rules, tenant 2 has none; same flow space.

        Packets of the two tenants differ only in the VLAN VID, so a
        cache that keyed flows without per-VID sharding would serve
        tenant 1's verdicts (drops! rewrites!) to tenant 2. Each
        tenant's interleaved results must equal its solo run.
        """
        engine = fw_switch([(1, True), (2, False)]).engine()
        packets = [FW.flow_packet(vid, fid) for vid, fid in arrivals]
        interleaved = engine.process_batch([p.copy() for p in packets])

        for vid, has_rules in ((1, True), (2, False)):
            solo_engine = fw_switch([(vid, has_rules)]).engine()
            mine = [i for i, (v, _f) in enumerate(arrivals) if v == vid]
            solo = solo_engine.process_batch(
                [packets[i].copy() for i in mine])
            for j, i in enumerate(mine):
                assert result_view(interleaved[i]) == result_view(solo[j]), \
                    f"tenant {vid}, packet {i}"

    def test_tenant_isolation_error_still_guards_the_api(self):
        """Engine traffic does not loosen the facade's capability checks."""
        qos_spec = workload("qos")
        switch = Switch.build().create()
        FW.admit(switch, vid=1)
        qos_spec.admit(switch, vid=2)
        engine = switch.engine()
        engine.process_batch([FW.flow_packet(1, 1).copy() for _ in range(4)])
        cached_before = len(engine.shard(1))
        with pytest.raises(TenantIsolationError):
            switch.tenant(2).table("acl").insert(
                match={"hdr.ipv4.srcAddr": 1, "hdr.udp.dstPort": 1},
                action="block")
        # The denied attempt is a no-op end to end: tenant 1's shard and
        # behavior are untouched (its allow rule still steers flow 1).
        assert len(engine.shard(1)) == cached_before
        assert engine.process(FW.flow_packet(1, 1).copy()).egress_port == 2


# ---------------------------------------------------------------------------
# invalidation soundness under random traffic / reconfig / eviction
# ---------------------------------------------------------------------------

class TestInvalidationSoundness:
    @ENGINE_SETTINGS
    @given(st.lists(st.one_of(
        st.tuples(st.just("traffic"), st.lists(flow_ids, min_size=1,
                                               max_size=12)),
        st.tuples(st.just("reconfig"), st.just(None))),
        min_size=2, max_size=8))
    def test_random_reconfig_never_serves_stale(self, script):
        """Interleave traffic slices with transactional rule wipes/
        re-installs; the engine must match a scalar twin throughout."""
        scalar = fw_switch([(3, True)])
        batched = fw_switch([(3, True)])
        engine = batched.engine()
        installed = True
        for step, payload in script:
            if step == "traffic":
                packets = [FW.flow_packet(3, fid) for fid in payload]
                a = [scalar.process(p.copy()) for p in packets]
                b = engine.process_batch([p.copy() for p in packets])
                for i, (ra, rb) in enumerate(zip(a, b)):
                    assert result_view(ra) == result_view(rb), i
                    assert (ra.phv is None) == (rb.phv is None)
                    if ra.phv is not None:
                        assert ra.phv == rb.phv  # incl. buffer tags
            else:
                for switch in (scalar, batched):
                    tenant = switch.tenant(3)
                    acl = tenant.table("acl")
                    with tenant.transaction() as txn:
                        if installed:
                            for handle in acl.handles():
                                txn.table("acl").delete(handle)
                    if not installed:
                        FW.install(tenant)
                installed = not installed

    @ENGINE_SETTINGS
    @given(st.integers(1, 4),
           st.lists(flow_ids, min_size=1, max_size=60))
    def test_eviction_pressure_stays_exact(self, capacity, fids):
        """A cache of any capacity — even 1 — never changes results."""
        scalar = fw_switch([(3, True)])
        engine = fw_switch([(3, True)]).engine(cache_capacity=capacity)
        packets = [FW.flow_packet(3, fid) for fid in fids]
        a = [scalar.process(p.copy()) for p in packets]
        b = engine.process_batch([p.copy() for p in packets])
        for i, (ra, rb) in enumerate(zip(a, b)):
            assert result_view(ra) == result_view(rb), i
            assert ra.phv == rb.phv, i
        assert len(engine.shard(3)) <= capacity


# ---------------------------------------------------------------------------
# FlowCache unit properties
# ---------------------------------------------------------------------------

def _entry(epoch):
    return FlowEntry(epoch=epoch, phv=PHV(), writes=(), dropped=False)


class TestFlowCacheProperties:
    @given(st.integers(1, 8),
           st.lists(st.tuples(st.integers(0, 20), st.integers(0, 3)),
                    min_size=1, max_size=80))
    @settings(derandomize=True)
    def test_capacity_is_a_hard_bound_and_stale_never_hits(self, capacity,
                                                           ops):
        cache = FlowCache(capacity)
        shadow = {}
        for key, epoch in ops:
            hit = cache.lookup((key,), epoch)
            if hit is not None:
                # Anything served must be live and epoch-correct.
                assert hit.epoch == epoch
                assert shadow.get(key) == epoch
            cache.insert((key,), _entry(epoch))
            shadow[key] = epoch
            assert len(cache) <= capacity
            # Occupancy invariant: every removal path has exactly one
            # counter, and a same-key overwrite counts as a replacement.
            stats = cache.stats
            assert len(cache) == (stats.insertions - stats.evictions
                                  - stats.replacements
                                  - stats.invalidations)

    def test_lru_keeps_the_hot_key(self):
        cache = FlowCache(2)
        cache.insert(("hot",), _entry(0))
        cache.insert(("warm",), _entry(0))
        assert cache.lookup(("hot",), 0) is not None   # refresh hot
        cache.insert(("cold",), _entry(0))             # evicts warm
        assert cache.lookup(("hot",), 0) is not None
        assert cache.lookup(("warm",), 0) is None
        assert cache.stats.evictions == 1

    def test_seed_constant_documented(self):
        # The shared seed is the one documented in tests/seeds.py; the
        # scenario rng derives from it.
        assert SEED == 20260611
        assert make_rng(0).random() == make_rng(0).random()
