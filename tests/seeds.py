"""The single source of randomness for every randomized test.

All seeded tests derive their RNGs from :data:`SEED` via :func:`rng`, so

* a failure reproduces with nothing but the test name (no flaky
  "sometimes red" runs — the sequence is fixed),
* changing the global seed to shake out order-dependence is one edit,
* every test still gets an *independent* stream (the offset), so adding
  draws to one test never shifts another test's sequence.

Pick offsets per test/class and keep them unique within a file.
"""

import random

#: The repository-wide test seed. Bump deliberately, never per-test.
SEED = 20260611


def rng(offset: int = 0) -> random.Random:
    """A fresh, independent ``random.Random`` derived from :data:`SEED`."""
    return random.Random(SEED + offset)
