"""Tests for the seeded flow samplers (`repro.traffic.flows`)."""

import random

import pytest

from repro.traffic import BurstyOnOff, UniformFlows, ZipfFlows, arrival_times


class TestSamplers:
    def test_uniform_in_range_and_seeded(self):
        sampler = UniformFlows(16)
        a = list(sampler.stream(random.Random(1), 100))
        b = list(sampler.stream(random.Random(1), 100))
        assert a == b
        assert all(0 <= f < 16 for f in a)

    def test_zipf_skew_concentrates_head(self):
        rng = random.Random(2)
        hot = sum(1 for f in ZipfFlows(1000, skew=0.99).stream(rng, 2000)
                  if f < 10)
        rng = random.Random(2)
        cold = sum(1 for f in ZipfFlows(1000, skew=0.0).stream(rng, 2000)
                   if f < 10)
        assert hot > 5 * cold

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            UniformFlows(0)
        with pytest.raises(ValueError):
            ZipfFlows(10, skew=-0.1)
        with pytest.raises(ValueError):
            BurstyOnOff(mean_on=0)


class TestArrivalTimes:
    def test_evenly_spaced_without_bursts(self):
        times = arrival_times(random.Random(3), 5, rate_pps=10.0)
        assert times == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])

    def test_bursty_preserves_slot_grid_and_count(self):
        rng = random.Random(4)
        times = arrival_times(rng, 50, rate_pps=100.0,
                              bursts=BurstyOnOff(mean_on=4, mean_off=4))
        assert len(times) == 50
        gap = 1.0 / 100.0
        assert all(abs(t / gap - round(t / gap)) < 1e-9 for t in times)
        # Gating leaves holes: the 50 packets span more than 50 slots.
        assert times[-1] > 49 * gap

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(random.Random(5), -1, rate_pps=10.0)

    def test_zero_count_allowed(self):
        assert arrival_times(random.Random(5), 0, rate_pps=10.0) == []

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(random.Random(5), 3, rate_pps=0.0)
