"""Equivalence certification (``repro.analysis.equiv``) end to end.

Four layers of guarantees:

* **Soundness on stock modules** — all eight evaluated modules certify
  equivalent (or correctly-reasoned fallback) with zero traffic: the
  certifier has no false positives on the honest compiler.
* **The mutation harness** — every seeded corruption a buggy compiler
  could plausibly produce (off-by-one interval bounds, swapped
  priorities, dropped residual entries, wrong op targets, swapped exact
  leaves, mislabelled fallback reasons) is caught, and for every
  behaviorally observable corruption the synthesized counterexample
  packet makes the mutant *actually disagree* with the scalar oracle.
* **Engine integration** — ``BatchEngine(check_compiled=...)`` /
  ``REPRO_ENGINE_CERTIFY`` certifies on every lazy rebuild: ``enforce``
  refuses the compiled path (counted under the ``uncertified`` fallback
  reason), ``warn`` emits an :class:`AnalysisWarning`, and
  ``invalidate`` clears the stored certificates.
* **Property coverage** — Hypothesis pins the interval utilities the
  compiler and certifier both build on (``_mask_segments`` compaction
  round-trip, ``subtract``/``merge`` partition algebra).
"""

import json
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Switch, Tenant
from repro.analysis.equiv import (
    CERTIFICATE_SCHEMA_VERSION,
    MUTATIONS,
    OBLIGATIONS,
    Certificate,
    apply_mutation,
    certify_classifier,
)
from repro.analysis.equiv.certify import _scatter
from repro.analysis.verify import AnalysisWarning
from repro.core import MenshenPipeline
from repro.core.intervals import merge, subtract
from repro.engine import BatchEngine, Fallback, compile_classifier
from repro.engine.batch import (
    CERTIFY_MODES,
    FALLBACK_REASONS,
    certify_default_mode,
)
from repro.engine.classifier import _compact, _mask_segments
from repro.modules import firewall
from repro.net.packet import Packet
from repro.runtime import MenshenController
from repro.traffic import workload

PROP_SETTINGS = settings(max_examples=120, deadline=None, derandomize=True)

STOCK_MODULES = ("calc", "firewall", "load_balancer", "qos",
                 "source_routing", "netcache", "netchain", "multicast")


# ---------------------------------------------------------------------------
# Fixtures: one pipeline per compiled-stage shape
# ---------------------------------------------------------------------------

def _workload_pipeline(name, vid):
    switch = Switch.build().create()
    workload(name).admit(switch, vid=vid)
    return switch.pipeline, vid


def _ternary_pipeline(install, vid=2):
    pipe = MenshenPipeline(match_mode="ternary")
    ctl = MenshenController(pipe)
    ctl.load_module(vid, firewall.P4_SOURCE_TERNARY, "fw-ternary")
    install(ctl, vid)
    return pipe, vid


def _install_intervals(ctl, vid):
    firewall.install_prefix(
        Tenant.attach(ctl, vid),
        blocked_prefixes=[("10.66.0.0", 16), ("10.0.0.0", 8)],
        default_port=3)


def _install_residual(ctl, vid):
    from repro.net import Ipv4Address
    ctl.table_add(vid, "acl",
                  {"hdr.ipv4.srcAddr": int(Ipv4Address("10.0.10.0")),
                   "hdr.udp.dstPort": 0},
                  "block",
                  key_masks={"hdr.ipv4.srcAddr": 0xFF00FF00,
                             "hdr.udp.dstPort": 0})
    firewall.install_prefix(Tenant.attach(ctl, vid), default_port=5)


#: name -> () -> (pipeline, vid); each exercises a distinct stage shape.
FIXTURES = {
    "exact-firewall": lambda: _workload_pipeline("firewall", 3),
    "exact-calc": lambda: _workload_pipeline("calc", 5),
    "intervals": lambda: _ternary_pipeline(_install_intervals),
    "residual": lambda: _ternary_pipeline(_install_residual),
    "stateful-netcache": lambda: _workload_pipeline("netcache", 4),
}

#: (fixture, mutation, oracle_observable). Every mutation appears with
#: at least one fixture where it has an applicable site; observability
#: means the synthesized packet must make the mutant disagree with the
#: scalar oracle (a wrong *fallback reason* never changes behavior —
#: the engine bails to the correct oracle either way).
MUTATION_CASES = [
    ("exact-firewall", "swapped-exact-leaves", True),
    ("exact-calc", "swapped-exact-leaves", True),
    ("exact-calc", "wrong-op-target", True),
    ("intervals", "interval-bound-off-by-one", True),
    ("intervals", "swapped-priorities", True),
    ("residual", "swapped-priorities", True),
    ("residual", "dropped-residual-entry", True),
    ("stateful-netcache", "wrong-fallback-reason", False),
]


def _compile(pipeline, vid):
    return compile_classifier(pipeline, vid, pipeline.config_epoch)


def _oracle_disagrees(pipeline, clf, vid, packet_hex):
    """True when the classifier and the scalar pipeline walk produce
    different observable results for the counterexample packet."""
    packet = Packet(bytes.fromhex(packet_hex))
    outcome = clf.classify(packet.copy(), 0)
    merged_ref, phv_ref = pipeline.execute(packet.copy(), vid,
                                           buffer_slot=0)
    if type(outcome) is Fallback:
        return False  # mutant bails to the (correct) oracle: no change
    merged_mut, phv_mut = outcome
    if (merged_mut is None) != (merged_ref is None):
        return True
    if merged_mut is not None and \
            bytes(merged_mut.buf) != bytes(merged_ref.buf):
        return True
    return phv_mut != phv_ref


# ---------------------------------------------------------------------------
# Stock modules certify clean, with zero traffic
# ---------------------------------------------------------------------------

class TestStockModulesCertify:
    @pytest.mark.parametrize("name", STOCK_MODULES)
    def test_module_certifies_equivalent(self, name):
        pipeline, vid = _workload_pipeline(name, 3)
        before = (pipeline.stats.packets_in, pipeline.stats.packets_out,
                  pipeline.config_epoch)
        certificate = certify_classifier(pipeline, vid=vid)
        after = (pipeline.stats.packets_in, pipeline.stats.packets_out,
                 pipeline.config_epoch)
        assert certificate.ok, certificate.render()
        assert certificate.vid == vid
        assert certificate.epoch == pipeline.config_epoch
        assert before == after, "certification must be zero-traffic"

    @pytest.mark.parametrize("fixture", sorted(FIXTURES))
    def test_every_stage_shape_certifies(self, fixture):
        pipeline, vid = FIXTURES[fixture]()
        certificate = certify_classifier(pipeline, vid=vid)
        assert certificate.ok, certificate.render()

    def test_obligations_are_exhaustive_and_ordered(self):
        pipeline, vid = FIXTURES["intervals"]()
        certificate = certify_classifier(pipeline, vid=vid)
        names = [o.name for o in certificate.obligations]
        # Every catalog obligation appears (proved or skipped) ...
        assert set(names) == set(OBLIGATIONS)
        # ... in catalog order.
        order = {name: i for i, name in enumerate(OBLIGATIONS)}
        assert names == sorted(names, key=order.__getitem__)
        statuses = {o.status for o in certificate.obligations}
        assert statuses <= {"proved", "skipped"}

    def test_uncompilable_classifier_gets_reason_checked(self):
        """A refused compile is certified for *refusal accuracy*, not
        equivalence: the reason must match an independent recompile."""
        from repro.rmt.key_extractor import CmpOp, KeyExtractEntry
        from repro.rmt.phv import ContainerRef, ContainerType

        pipeline, vid = _workload_pipeline("firewall", 3)
        stage = pipeline.stages[0]
        entry = KeyExtractEntry(
            cmp_op=CmpOp.EQ,
            cmp_a=ContainerRef(ContainerType.META, 0), cmp_b=0)
        stage.key_extract_table.write(vid, entry.encode())
        clf = _compile(pipeline, vid)
        assert not clf.ok
        certificate = certify_classifier(pipeline, clf, vid=vid)
        assert certificate.ok, certificate.render()
        assert not certificate.compiled_ok
        assert certificate.reason == clf.reason
        by_name = {o.name: o for o in certificate.obligations}
        assert by_name["refusal-reason"].status == "proved"


# ---------------------------------------------------------------------------
# The mutation harness: every corruption caught, counterexamples real
# ---------------------------------------------------------------------------

class TestMutationHarness:
    @pytest.mark.parametrize("fixture,mutation,observable", MUTATION_CASES)
    def test_mutation_caught_with_counterexample(self, fixture, mutation,
                                                 observable):
        pipeline, vid = FIXTURES[fixture]()
        clf = _compile(pipeline, vid)
        assert certify_classifier(pipeline, clf, vid=vid).ok

        mutant, description = apply_mutation(clf, mutation)
        assert description is not None, \
            f"{mutation} found no applicable site in {fixture}"

        certificate = certify_classifier(pipeline, mutant, vid=vid)
        assert not certificate.ok, \
            f"{mutation} on {fixture} was not caught ({description})"
        assert certificate.violations()
        assert certificate.counterexamples, \
            f"{mutation} on {fixture}: no counterexample synthesized"

        if observable:
            packets = [ce.packet_hex for ce in certificate.counterexamples
                       if ce.packet_hex]
            assert packets, (f"{mutation} on {fixture}: no counterexample "
                             f"packet reached the wire")
            assert any(_oracle_disagrees(pipeline, mutant, vid, hexstr)
                       for hexstr in packets), \
                (f"{mutation} on {fixture}: oracle agrees with the "
                 f"mutant on every synthesized packet")

    def test_every_mutation_exercised(self):
        covered = {mutation for _f, mutation, _o in MUTATION_CASES}
        assert covered == set(MUTATIONS)

    def test_unknown_mutation_rejected(self):
        pipeline, vid = FIXTURES["exact-firewall"]()
        clf = _compile(pipeline, vid)
        with pytest.raises(ValueError, match="unknown mutation"):
            apply_mutation(clf, "made-up")

    def test_clone_does_not_alias_mutable_state(self):
        pipeline, vid = FIXTURES["exact-firewall"]()
        clf = _compile(pipeline, vid)
        mutant, description = apply_mutation(clf, "swapped-exact-leaves")
        assert description is not None
        # The original still certifies: mutation never leaks back.
        assert certify_classifier(pipeline, clf, vid=vid).ok


# ---------------------------------------------------------------------------
# Certificate model: findings + JSON round-trip
# ---------------------------------------------------------------------------

class TestCertificateModel:
    def _violated_certificate(self):
        pipeline, vid = FIXTURES["intervals"]()
        clf = _compile(pipeline, vid)
        mutant, _ = apply_mutation(clf, "swapped-priorities")
        return certify_classifier(pipeline, mutant, vid=vid)

    def test_json_round_trip(self):
        certificate = self._violated_certificate()
        clone = Certificate.from_json(certificate.to_json())
        assert clone.to_dict() == certificate.to_dict()
        assert clone.ok == certificate.ok is False
        assert clone.schema_version == CERTIFICATE_SCHEMA_VERSION

    def test_json_is_plain_data(self):
        certificate = self._violated_certificate()
        data = json.loads(certificate.to_json())
        assert data["ok"] is False
        assert data["schema_version"] == CERTIFICATE_SCHEMA_VERSION
        assert {o["status"] for o in data["obligations"]} <= \
            {"proved", "violated", "skipped"}

    def test_findings_model_compatibility(self):
        from repro.analysis import Severity

        certificate = self._violated_certificate()
        report = certificate.to_report()
        assert not report.ok
        for finding in report.findings:
            assert finding.code.startswith("equiv-")
            assert finding.code[len("equiv-"):] in OBLIGATIONS
            assert finding.severity is Severity.ERROR
            assert finding.pass_name == "equiv"

    def test_render_mentions_every_obligation(self):
        certificate = self._violated_certificate()
        rendered = certificate.render()
        for name in OBLIGATIONS:
            assert name in rendered


# ---------------------------------------------------------------------------
# Engine integration: check_compiled / REPRO_ENGINE_CERTIFY
# ---------------------------------------------------------------------------

def _firewall_engine(**kw):
    switch = Switch.build().create()
    workload("firewall").admit(switch, vid=3)
    engine = switch.engine(scheduled=False, enable_cache=False,
                           enable_classifier=True, **kw)
    packets = [workload("firewall").flow_packet(3, i) for i in range(8)]
    return switch, engine, packets


class TestEngineIntegration:
    def test_clean_classifier_serves_compiled_under_enforce(self):
        _switch, engine, packets = _firewall_engine(
            check_compiled="enforce")
        engine.process_batch(packets)
        assert engine.counters.compiled_hits == len(packets)
        assert engine.certificates[3].ok
        assert "uncertified" not in engine.counters.classifier_fallbacks

    def test_enforce_refuses_corrupt_classifier(self):
        _switch, engine, packets = _firewall_engine(
            check_compiled="enforce")
        engine.process_batch(packets)
        mutant, description = apply_mutation(
            engine._classifiers[3], "swapped-exact-leaves")
        assert description is not None
        engine._classifiers[3] = mutant
        engine._certify(3, mutant)
        before = engine.counters.compiled_hits
        engine.process_batch(packets)
        assert engine.counters.compiled_hits == before
        assert engine.counters.classifier_fallbacks["uncertified"] == \
            len(packets)
        assert not engine.certificates[3].ok

    def test_warn_mode_warns_and_keeps_serving(self):
        _switch, engine, packets = _firewall_engine(check_compiled="warn")
        engine.process_batch(packets)
        mutant, _ = apply_mutation(engine._classifiers[3],
                                   "swapped-exact-leaves")
        engine._classifiers[3] = mutant
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine._certify(3, mutant)
        assert len(caught) == 1
        assert issubclass(caught[0].category, AnalysisWarning)
        assert "failed certification" in str(caught[0].message)
        assert not engine._refused  # warn mode never refuses

    def test_invalidate_clears_certificates(self):
        _switch, engine, packets = _firewall_engine(
            check_compiled="enforce")
        engine.process_batch(packets)
        assert engine.certificates
        engine.invalidate(3)
        assert engine.certificates == {}
        assert engine._refused == {}

    def test_bad_mode_rejected(self):
        switch = Switch.build().create()
        with pytest.raises(ValueError, match="check_compiled"):
            BatchEngine(switch.pipeline, check_compiled="bogus")

    def test_off_mode_skips_certification(self):
        _switch, engine, packets = _firewall_engine(check_compiled="off")
        engine.process_batch(packets)
        assert engine.certificates == {}
        assert engine.counters.compiled_hits == len(packets)

    @pytest.mark.parametrize("raw,expected", [
        (None, "off"), ("", "off"), ("0", "off"), ("off", "off"),
        ("false", "off"), ("no", "off"), ("1", "enforce"),
        ("on", "enforce"), ("true", "enforce"), ("enforce", "enforce"),
        ("WARN", "warn"), ("warn", "warn"),
    ])
    def test_certify_default_mode_env(self, raw, expected, monkeypatch):
        if raw is None:
            monkeypatch.delenv("REPRO_ENGINE_CERTIFY", raising=False)
        else:
            monkeypatch.setenv("REPRO_ENGINE_CERTIFY", raw)
        assert certify_default_mode() == expected

    def test_certify_default_mode_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CERTIFY", "sometimes")
        with pytest.raises(ValueError, match="REPRO_ENGINE_CERTIFY"):
            certify_default_mode()

    def test_env_var_drives_engine_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CERTIFY", "enforce")
        switch = Switch.build().create()
        engine = BatchEngine(switch.pipeline)
        assert engine.check_compiled == "enforce"

    def test_mode_constants(self):
        assert CERTIFY_MODES == ("enforce", "warn", "off")
        assert "uncertified" in FALLBACK_REASONS

    def test_fallback_histogram_serializes_with_published_reasons(self):
        """The observed fallback histogram only ever uses reasons from
        the vocabulary ``repro-info --json`` publishes, and is plain
        JSON-serializable data."""
        from repro.tools.info import info_dict

        _switch, engine, packets = _firewall_engine(
            check_compiled="enforce")
        engine.process_batch(packets)
        mutant, _ = apply_mutation(engine._classifiers[3],
                                   "swapped-exact-leaves")
        engine._classifiers[3] = mutant
        engine._certify(3, mutant)
        engine.process_batch(packets)
        histogram = engine.counters.classifier_fallbacks
        assert histogram["uncertified"] == len(packets)
        published = info_dict()["engine"]["fallback_reasons"]
        assert set(histogram) <= set(published)
        assert json.loads(json.dumps(histogram)) == histogram


# ---------------------------------------------------------------------------
# Surfaces: Switch.analyze() and repro-verify --classifier
# ---------------------------------------------------------------------------

class TestSurfaces:
    def test_switch_analyze_includes_certification(self):
        switch = Switch.build().create()
        workload("firewall").admit(switch, vid=3)
        workload("netcache").admit(switch, vid=4)
        report = switch.analyze()
        assert report.ok
        # Opting out skips the (relatively costly) certification.
        assert switch.analyze(certify_classifiers=False).ok

    def test_repro_verify_classifier_json(self, capsys):
        from repro.tools.verify import main

        assert main(["--builtin", "firewall", "--classifier",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert "firewall:classifier" in data["reports"]
        certificate = data["certificates"]["firewall"]
        assert certificate["ok"] is True
        assert certificate["schema_version"] == CERTIFICATE_SCHEMA_VERSION

    def test_repro_verify_classifier_text(self, capsys):
        from repro.tools.verify import main

        assert main(["--builtin", "calc", "--classifier"]) == 0
        out = capsys.readouterr().out
        assert "calc:classifier: ok" in out


# ---------------------------------------------------------------------------
# Property coverage: the interval substrate (satellite)
# ---------------------------------------------------------------------------

masks = st.integers(1, (1 << 64) - 1)
keys = st.integers(0, (1 << 64) - 1)


def _segment_width(segments):
    return sum(run.bit_length() for _s, run, _o in segments)


class TestIntervalProperties:
    @PROP_SETTINGS
    @given(mask=masks, key=keys)
    def test_compact_scatter_round_trip(self, mask, key):
        segments = _mask_segments(mask)
        compact = _compact(key, segments)
        assert 0 <= compact < (1 << _segment_width(segments))
        # Scatter inverts compaction on the masked bits.
        assert _scatter(compact, segments) == key & mask
        # And compaction inverts scattering on the compact domain.
        assert _compact(_scatter(compact, segments), segments) == compact

    @PROP_SETTINGS
    @given(mask=masks)
    def test_segments_partition_the_mask(self, mask):
        segments = _mask_segments(mask)
        rebuilt = 0
        out_positions = set()
        for shift, run, out in segments:
            seg_bits = run << shift
            assert rebuilt & seg_bits == 0, "segments must be disjoint"
            rebuilt |= seg_bits
            outs = {out + i for i in range(run.bit_length())}
            assert out_positions.isdisjoint(outs)
            out_positions |= outs
        assert rebuilt == mask
        assert out_positions == set(range(_segment_width(segments)))

    @PROP_SETTINGS
    @given(lo=st.integers(0, 1000), width=st.integers(0, 1000),
           claims=st.lists(
               st.tuples(st.integers(0, 2000), st.integers(0, 50)),
               max_size=8))
    def test_subtract_is_set_difference(self, lo, width, claims):
        hi = lo + width
        claimed = []
        for c_lo, c_width in claims:
            merge(claimed, (c_lo, c_lo + c_width))
        # merge() invariant: sorted, disjoint, non-adjacent.
        for (a_lo, a_hi), (b_lo, b_hi) in zip(claimed, claimed[1:]):
            assert a_hi + 1 < b_lo
        pieces = subtract((lo, hi), claimed)
        covered = set()
        for p_lo, p_hi in pieces:
            assert lo <= p_lo <= p_hi <= hi
            piece = set(range(p_lo, p_hi + 1))
            assert covered.isdisjoint(piece)
            covered |= piece
        claimed_points = set()
        for c_lo, c_hi in claimed:
            claimed_points |= set(range(c_lo, c_hi + 1))
        assert covered == set(range(lo, hi + 1)) - claimed_points

    @PROP_SETTINGS
    @given(intervals=st.lists(
        st.tuples(st.integers(0, 300), st.integers(0, 30)), min_size=1,
        max_size=10))
    def test_merge_preserves_union(self, intervals):
        claimed = []
        expected = set()
        for lo, width in intervals:
            merge(claimed, (lo, lo + width))
            expected |= set(range(lo, lo + width + 1))
        actual = set()
        for lo, hi in claimed:
            assert lo <= hi
            actual |= set(range(lo, hi + 1))
        assert actual == expected
        assert claimed == sorted(claimed)
