"""Documentation gates.

Docs are part of the surface: a markdown link that 404s inside the
repo, or an architecture overview naming a class that no longer
exists, is a regression the same way a broken example is. Two checks:

1. every relative (intra-repo) markdown link in ``README.md`` and
   ``docs/*.md`` resolves to a real file;
2. every fully-qualified ``repro.*`` dotted name quoted in
   ``docs/architecture.md`` imports — the layer map may only name
   real code.

The CI docs job runs exactly this file plus the example smokes.
"""

import importlib
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).parent.parent
DOC_FILES = sorted(
    p for p in [REPO / "README.md", *(REPO / "docs").glob("*.md")]
    if p.exists())

#: [text](target) — excluding images and absolute URLs
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)(#[^)\s]*)?\)")
#: `repro.pkg.attr` dotted names quoted in architecture.md
NAME_RE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")


def test_doc_inventory():
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "api.md", "architecture.md",
            "benchmarks.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    broken = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken links {broken}"


def _architecture_names():
    text = (REPO / "docs" / "architecture.md").read_text(
        encoding="utf-8")
    return sorted({m.group(1) for m in NAME_RE.finditer(text)})


def test_architecture_names_are_importable():
    names = _architecture_names()
    assert len(names) >= 40, "layer map lost its class inventory"
    missing = []
    for dotted in names:
        parts = dotted.split(".")
        # longest importable module prefix, then attribute walk
        obj = None
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
                break
            except ImportError:
                continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            obj = None
        if obj is None:
            missing.append(dotted)
    assert not missing, f"architecture.md names unknowns: {missing}"


def test_every_layer_section_names_classes():
    text = (REPO / "docs" / "architecture.md").read_text(
        encoding="utf-8")
    sections = re.split(r"^## ", text, flags=re.M)[1:]
    layer_sections = [s for s in sections
                      if s.startswith(("`repro.", "Auxiliary"))]
    assert len(layer_sections) >= 8
    for section in layer_sections:
        assert NAME_RE.search(section), (
            f"layer section {section.splitlines()[0]!r} names no "
            f"importable classes")
