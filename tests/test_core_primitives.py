"""Tests for Menshen's isolation primitives: overlays, segment tables,
packet filter, reconfiguration packets, daisy chain, partition ledger."""

import pytest

from repro.core import (
    DaisyChain,
    ModuleAllocation,
    OverlayTable,
    PacketClass,
    PacketFilter,
    PartitionLedger,
    ResourceId,
    ResourceType,
    SegmentTable,
    SegmentedAccess,
    build_reconfig_packet,
    entry_payload_bytes,
    parse_reconfig_packet,
)
from repro.core.resources import StageAllocation
from repro.errors import (
    AdmissionError,
    ConfigError,
    IsolationViolationError,
    ReconfigurationError,
    SegmentFaultError,
)
from repro.net import PacketBuilder
from repro.rmt import StatefulMemory
from repro.rmt.params import DEFAULT_PARAMS


def data_packet(vid=3, dport=5001):
    return (PacketBuilder().ethernet().vlan(vid=vid)
            .ipv4().udp(dport=dport).payload(b"x" * 20).build())


class TestOverlayTable:
    def test_lookup_is_module_indexed(self):
        table = OverlayTable("t", 16, 32)
        table.write(5, 0xAAAA)
        table.write(6, 0xBBBB)
        assert table.lookup(5) == 0xAAAA
        assert table.lookup(6) == 0xBBBB

    def test_lookup_depth_guard(self):
        table = OverlayTable("t", 16, 32)
        with pytest.raises(ConfigError):
            table.lookup(32)

    def test_write_log_tracks_touched_modules(self):
        table = OverlayTable("t", 16, 32)
        table.write(1, 1)
        mark = table.log_position
        table.write(7, 2)
        table.write(7, 3)
        assert table.modules_written_since(mark) == {7}

    def test_no_disruption_invariant(self):
        # Updating module 7's row never changes other rows' contents.
        table = OverlayTable("t", 16, 32)
        for m in range(32):
            table.write(m, m + 100)
        before = {m: table.lookup(m) for m in range(32) if m != 7}
        table.write(7, 0xFFFF)
        after = {m: table.lookup(m) for m in range(32) if m != 7}
        assert before == after


class TestSegmentTable:
    def test_translate_adds_offset(self):
        seg = SegmentTable("seg", 32)
        seg.set_segment(4, offset=64, range_=32)
        assert seg.translate(4, 0) == 64
        assert seg.translate(4, 31) == 95

    def test_out_of_range_faults(self):
        seg = SegmentTable("seg", 32)
        seg.set_segment(4, offset=64, range_=32)
        with pytest.raises(SegmentFaultError):
            seg.translate(4, 32)
        with pytest.raises(SegmentFaultError):
            seg.translate(4, -1)

    def test_zero_range_module_has_no_memory(self):
        seg = SegmentTable("seg", 32)
        with pytest.raises(SegmentFaultError):
            seg.translate(9, 0)

    def test_segmented_access_isolates_modules(self):
        mem = StatefulMemory(words=128)
        seg = SegmentTable("seg", 32)
        seg.set_segment(1, offset=0, range_=16)
        seg.set_segment(2, offset=16, range_=16)
        access = SegmentedAccess(mem, seg)
        access.write(1, 0, 111)
        access.write(2, 0, 222)
        # Same per-module address 0 lands in different physical words.
        assert access.read(1, 0) == 111
        assert access.read(2, 0) == 222
        assert mem.read(0) == 111
        assert mem.read(16) == 222

    def test_module_cannot_reach_other_segment(self):
        mem = StatefulMemory(words=128)
        seg = SegmentTable("seg", 32)
        seg.set_segment(1, offset=0, range_=16)
        seg.set_segment(2, offset=16, range_=16)
        access = SegmentedAccess(mem, seg)
        with pytest.raises(SegmentFaultError):
            access.read(1, 16)  # would be module 2's first word


class TestPacketFilter:
    def test_data_packet_classified(self):
        f = PacketFilter()
        assert f.classify(data_packet()) == PacketClass.DATA
        assert f.data_packets == 1

    def test_untagged_is_control(self):
        f = PacketFilter()
        pkt = PacketBuilder().ethernet().ipv4().udp().build()
        assert f.classify(pkt) == PacketClass.CONTROL
        assert f.dropped_untagged == 1

    def test_reconfig_port_detected(self):
        f = PacketFilter()
        pkt = data_packet(dport=0xF1F2)
        assert f.classify(pkt) == PacketClass.RECONFIG

    def test_bitmap_drops_updating_module(self):
        f = PacketFilter()
        f.set_module_updating(3)
        assert f.classify(data_packet(vid=3)) == PacketClass.DROP_UPDATING
        assert f.classify(data_packet(vid=4)) == PacketClass.DATA
        f.clear_module_updating(3)
        assert f.classify(data_packet(vid=3)) == PacketClass.DATA

    def test_bitmap_register_roundtrip(self):
        f = PacketFilter()
        f.write_bitmap(0b1010)
        assert f.is_module_updating(1)
        assert f.is_module_updating(3)
        assert not f.is_module_updating(0)
        assert f.read_bitmap() == 0b1010

    def test_bitmap_width(self):
        with pytest.raises(ConfigError):
            PacketFilter().write_bitmap(1 << 32)
        with pytest.raises(ConfigError):
            PacketFilter().set_module_updating(32)

    def test_counter_wraps_at_32_bits(self):
        f = PacketFilter()
        f.reconfig_counter = (1 << 32) - 1
        f.count_reconfig_packet()
        assert f.read_counter() == 0

    def test_round_robin_assignment(self):
        f = PacketFilter()
        assert [f.assign_buffer() for _ in range(6)] == [0, 1, 2, 3, 0, 1]
        assert [f.assign_parser() for _ in range(4)] == [0, 1, 0, 1]

    def test_short_packet_is_control(self):
        from repro.net.packet import Packet
        f = PacketFilter()
        assert f.classify(Packet(b"\x00" * 8)) == PacketClass.CONTROL


class TestReconfigPackets:
    def test_resource_id_roundtrip(self):
        rid = ResourceId(ResourceType.KEY_EXTRACTOR, stage=3)
        assert ResourceId.decode(rid.encode()) == rid

    def test_unknown_type_rejected(self):
        with pytest.raises(ReconfigurationError):
            ResourceId.decode(0xF00)

    def test_payload_widths(self):
        assert entry_payload_bytes(ResourceType.PARSER_TABLE) == 20
        assert entry_payload_bytes(ResourceType.KEY_EXTRACTOR) == 5
        assert entry_payload_bytes(ResourceType.KEY_MASK) == 25
        assert entry_payload_bytes(ResourceType.CAM) == 26
        assert entry_payload_bytes(ResourceType.VLIW) == 79
        assert entry_payload_bytes(ResourceType.SEGMENT) == 2
        assert entry_payload_bytes(ResourceType.CAM_INVALIDATE) == 0

    def test_build_parse_roundtrip(self):
        rid = ResourceId(ResourceType.VLIW, stage=2)
        entry = (1 << 624) | 0xABCDEF
        pkt = build_reconfig_packet(rid, index=7, entry=entry)
        payload = parse_reconfig_packet(pkt)
        assert payload.resource == rid
        assert payload.index == 7
        assert payload.entry == entry

    def test_packet_has_reconfig_port(self):
        pkt = build_reconfig_packet(
            ResourceId(ResourceType.SEGMENT, 0), index=1, entry=0x1020)
        assert PacketFilter.is_reconfig_packet(pkt)

    def test_oversized_entry_rejected(self):
        with pytest.raises(ReconfigurationError):
            build_reconfig_packet(ResourceId(ResourceType.SEGMENT, 0),
                                  index=0, entry=1 << 16)

    def test_non_reconfig_packet_rejected(self):
        with pytest.raises(ReconfigurationError):
            parse_reconfig_packet(data_packet())

    def test_index_width(self):
        with pytest.raises(ReconfigurationError):
            build_reconfig_packet(ResourceId(ResourceType.SEGMENT, 0),
                                  index=256, entry=0)


class TestDaisyChain:
    def chain(self):
        f = PacketFilter()
        chain = DaisyChain(f)
        written = {}
        chain.register(ResourceType.SEGMENT, 0,
                       lambda i, e: written.__setitem__(i, e))
        return chain, f, written

    def test_delivery_applies_write_and_counts(self):
        chain, f, written = self.chain()
        pkt = build_reconfig_packet(ResourceId(ResourceType.SEGMENT, 0),
                                    index=4, entry=0x2010)
        payload = chain.deliver(pkt)
        assert payload is not None
        assert written[4] == 0x2010
        assert f.read_counter() == 1

    def test_lost_packet_does_not_count(self):
        chain, f, written = self.chain()
        chain.drop_next(1)
        pkt = build_reconfig_packet(ResourceId(ResourceType.SEGMENT, 0),
                                    index=4, entry=0x2010)
        assert chain.deliver(pkt) is None
        assert written == {}
        assert f.read_counter() == 0
        # Retry succeeds.
        assert chain.deliver(pkt) is not None
        assert f.read_counter() == 1

    def test_unregistered_hop_rejected(self):
        chain, _, _ = self.chain()
        pkt = build_reconfig_packet(ResourceId(ResourceType.VLIW, 9),
                                    index=0, entry=0)
        with pytest.raises(ReconfigurationError):
            chain.deliver(pkt)

    def test_duplicate_hop_rejected(self):
        chain, _, _ = self.chain()
        with pytest.raises(ReconfigurationError):
            chain.register(ResourceType.SEGMENT, 0, lambda i, e: None)

    def test_hop_position(self):
        chain, _, _ = self.chain()
        chain.register(ResourceType.SEGMENT, 1, lambda i, e: None)
        assert chain.hop_position(ResourceId(ResourceType.SEGMENT, 0)) == 0
        assert chain.hop_position(ResourceId(ResourceType.SEGMENT, 1)) == 1


class TestPartitionLedger:
    def alloc(self, module_id, stage=1, start=0, count=4, base=0, words=16):
        return ModuleAllocation(module_id, {
            stage: StageAllocation(match_start=start, match_count=count,
                                   stateful_base=base, stateful_words=words),
        })

    def test_grant_and_query(self):
        ledger = PartitionLedger()
        ledger.grant(self.alloc(1))
        assert ledger.loaded_modules() == [1]
        assert ledger.allocation_of(1).total_match_entries() == 4

    def test_overlapping_match_rejected(self):
        ledger = PartitionLedger()
        ledger.grant(self.alloc(1, start=0, count=8))
        with pytest.raises(AdmissionError):
            ledger.grant(self.alloc(2, start=7, count=4))

    def test_overlapping_stateful_rejected(self):
        ledger = PartitionLedger()
        ledger.grant(self.alloc(1, base=0, words=100))
        with pytest.raises(AdmissionError):
            ledger.grant(self.alloc(2, start=8, count=4, base=50, words=10))

    def test_adjacent_allocations_ok(self):
        ledger = PartitionLedger()
        ledger.grant(self.alloc(1, start=0, count=8, base=0, words=64))
        ledger.grant(self.alloc(2, start=8, count=8, base=64, words=64))
        assert ledger.free_match_rows(1) == 0

    def test_out_of_bounds_rejected(self):
        ledger = PartitionLedger()
        with pytest.raises(AdmissionError):
            ledger.grant(self.alloc(1, start=10, count=10))  # 16-deep CAM
        with pytest.raises(AdmissionError):
            ledger.grant(self.alloc(1, base=200, words=100))  # 256 words

    def test_bad_stage_rejected(self):
        ledger = PartitionLedger()
        with pytest.raises(AdmissionError):
            ledger.grant(self.alloc(1, stage=5))

    def test_module_id_bounds(self):
        ledger = PartitionLedger()
        with pytest.raises(AdmissionError):
            ledger.grant(self.alloc(32))

    def test_double_grant_rejected(self):
        ledger = PartitionLedger()
        ledger.grant(self.alloc(1))
        with pytest.raises(AdmissionError):
            ledger.grant(self.alloc(1))

    def test_revoke_frees_rows(self):
        ledger = PartitionLedger()
        ledger.grant(self.alloc(1, start=0, count=16))
        assert ledger.free_match_rows(1) == 0
        ledger.revoke(1)
        assert ledger.free_match_rows(1) == 16

    def test_write_guards(self):
        ledger = PartitionLedger()
        ledger.grant(self.alloc(1, stage=1, start=4, count=4))
        ledger.check_match_write(1, 1, 4)
        ledger.check_match_write(1, 1, 7)
        with pytest.raises(IsolationViolationError):
            ledger.check_match_write(1, 1, 3)
        with pytest.raises(IsolationViolationError):
            ledger.check_match_write(1, 1, 8)
        with pytest.raises(IsolationViolationError):
            ledger.check_match_write(2, 1, 4)  # module 2 not loaded

    def test_stateful_write_guard(self):
        ledger = PartitionLedger()
        ledger.grant(self.alloc(1, base=32, words=8))
        ledger.check_stateful_write(1, 1, 32)
        with pytest.raises(IsolationViolationError):
            ledger.check_stateful_write(1, 1, 40)

    def test_first_free_blocks(self):
        ledger = PartitionLedger()
        ledger.grant(self.alloc(1, start=4, count=4, base=64, words=64))
        assert ledger.first_free_match_block(1, 4) == 0
        assert ledger.first_free_match_block(1, 5) == 8
        assert ledger.first_free_match_block(1, 9) is None
        assert ledger.first_free_stateful_block(1, 64) == 0
        assert ledger.first_free_stateful_block(1, 128) == 128
        assert ledger.first_free_stateful_block(1, 200) is None
