"""Differential conformance: batched+cached execution vs the scalar path.

The :class:`repro.engine.BatchEngine` contract is packet-for-packet
equivalence with ``pipeline.process``. These tests enforce it across all
eight evaluated modules on seeded zipf flow traffic (so warm cache-hit
paths are exercised, not just cold misses), across API reconfiguration
mid-stream (cached verdicts must die with the configuration that
produced them), and across dataplane reconfiguration packets *inside* a
batch (Corundum mode), where the engine must flush pending shards before
the configuration write lands.
"""

import pytest

from repro.api import Switch
from repro.core.reconfig import ResourceId, ResourceType, build_reconfig_packet
from repro.traffic import TraceReplayer, ZipfFlows, all_workloads, flow_stream, workload
from seeds import rng as make_rng

WARMUP = 120    #: packets before assertions about hits kick in
ROUNDS = 360


def build_pair(specs, engine_kw=None, **build_kw):
    """Two identically configured switches + an engine on the second."""

    def build():
        switch = Switch.build().create() if not build_kw else \
            _build_with(**build_kw)
        for vid, spec in specs:
            spec.admit(switch, vid=vid)
        return switch

    scalar = build()
    batched = build()
    return scalar, batched, batched.engine(**(engine_kw or {}))


def _build_with(**kw):
    builder = Switch.build()
    if kw.get("reconfig_from_dataplane"):
        builder = builder.reconfig_from_dataplane()
    return builder.create()


def assert_equivalent(scalar_results, engine_results, context=""):
    """Field-for-field equality of two result sequences."""
    assert len(scalar_results) == len(engine_results)
    for i, (a, b) in enumerate(zip(scalar_results, engine_results)):
        where = f"{context} packet {i}"
        assert a.dropped == b.dropped, where
        assert a.drop_reason == b.drop_reason, where
        assert a.egress_port == b.egress_port, where
        assert a.mcast_group == b.mcast_group, where
        assert a.module_id == b.module_id, where
        assert (a.packet is None) == (b.packet is None), where
        if a.packet is not None:
            assert a.packet.tobytes() == b.packet.tobytes(), where
        assert (a.phv is None) == (b.phv is None), where
        if a.phv is not None:
            assert a.phv == b.phv, f"{where}: PHV diverged"


def _vid_of(packet_bytes):
    """Tenant VID from the 802.1Q tag of raw packet bytes."""
    return int.from_bytes(packet_bytes[14:16], "big") & 0xFFF


def assert_same_observable_state(scalar, batched):
    """Pipeline statistics and TM queue contents must match too.

    The batched switch serves egress through the weighted-fair
    scheduler (``switch.engine()`` installs it), which is *allowed* to
    reorder packets across tenants — that is its whole point — but
    never within one tenant's flow order, and never to gain or lose a
    packet. So queues are compared as (a) identical per-port packet
    multisets and (b) identical per-(port, tenant) subsequences.
    """
    assert scalar.pipeline.stats.summary() == batched.pipeline.stats.summary()
    assert dict(scalar.pipeline.stats.per_module_out) == \
        dict(batched.pipeline.stats.per_module_out)
    assert dict(scalar.pipeline.stats.drop_reasons) == \
        dict(batched.pipeline.stats.drop_reasons)
    queues_a = scalar.pipeline.traffic_manager.drain_all()
    queues_b = batched.pipeline.traffic_manager.drain_all()

    def multisets(queues):
        return {port: sorted(p.tobytes() for p in q)
                for port, q in queues.items()}

    def tenant_order(queues):
        order = {}
        for port, q in queues.items():
            for p in q:
                raw = p.tobytes()
                order.setdefault((port, _vid_of(raw)), []).append(raw)
        return order

    assert multisets(queues_a) == multisets(queues_b)
    assert tenant_order(queues_a) == tenant_order(queues_b)


# ---------------------------------------------------------------------------
# all eight modules, warm cache included
# ---------------------------------------------------------------------------

#: Engine configurations the equivalence contract is pinned under:
#: the full three-level hot path, and classifier-only (exact-match
#: cache off), which forces *every* pure packet through the compiled
#: path instead of letting warm flows hide behind cache hits.
ENGINE_MODES = {
    "cached": {"enable_classifier": True},
    "classifier-only": {"enable_cache": False, "enable_classifier": True},
}


@pytest.mark.parametrize("mode", sorted(ENGINE_MODES))
@pytest.mark.parametrize("spec", all_workloads(), ids=lambda s: s.name)
def test_batched_equals_scalar(spec, mode):
    offset = 100 + [w.name for w in all_workloads()].index(spec.name)
    rng = make_rng(offset)
    packets = flow_stream(spec, 3, rng, ROUNDS,
                          ZipfFlows(spec.n_flows, skew=0.9))
    scalar, batched, engine = build_pair([(3, spec)],
                                         engine_kw=ENGINE_MODES[mode])

    scalar_results = [scalar.process(p.copy()) for p in packets]
    engine_results = TraceReplayer(packets).replay(engine, batch_size=64)

    assert_equivalent(scalar_results, engine_results, f"{spec.name}/{mode}")
    assert_same_observable_state(scalar, batched)

    counters = engine.counters
    if spec.stateful:
        # State-carrying modules must never be served from the cache or
        # the compiled path: every packet hits a stateful leaf, bails,
        # and takes the scalar walk.
        assert counters.cache_hits == 0
        assert counters.compiled_hits == 0
        assert counters.uncacheable == ROUNDS
        assert counters.classifier_fallbacks.get("stateful") == ROUNDS
    elif mode == "classifier-only":
        # With the exact-match level off, every pure packet must be a
        # compiled hit — otherwise this test silently stops covering
        # the classifier.
        assert counters.compiled_hits == ROUNDS
        assert counters.cache_hits == 0
        assert not counters.classifier_fallbacks
    else:
        # Zipf-0.9 over a warm cache must actually hit; otherwise this
        # test silently stops covering the cached path. Cold misses are
        # served by the compiled level, never the scalar walk.
        assert counters.cache_hits > WARMUP
        assert any(r.cache_hit for r in engine_results[WARMUP:])
        assert counters.cache_hits + counters.compiled_hits == ROUNDS


def test_two_tenants_interleaved():
    """Two tenants of the same program but different rules, interleaved."""
    fw = workload("firewall")
    rng = make_rng(150)
    scalar, batched, engine = build_pair([(1, fw), (2, fw)])
    sampler = ZipfFlows(fw.n_flows, skew=0.99)
    packets = []
    for _ in range(ROUNDS // 2):
        packets.append(fw.flow_packet(1, sampler.sample(rng)))
        packets.append(fw.flow_packet(2, sampler.sample(rng)))

    scalar_results = [scalar.process(p.copy()) for p in packets]
    engine_results = engine.process_batch([p.copy() for p in packets])
    assert_equivalent(scalar_results, engine_results, "interleaved")
    assert_same_observable_state(scalar, batched)
    assert engine.counters.tenant(1).cache_hits > 0
    assert engine.counters.tenant(2).cache_hits > 0


# ---------------------------------------------------------------------------
# mid-stream reconfiguration through the repro.api facade
# ---------------------------------------------------------------------------

def test_api_reconfig_mid_stream_invalidates():
    """Cached verdicts must not survive a rule change between batches."""
    fw = workload("firewall")
    rng = make_rng(160)
    scalar, batched, engine = build_pair([(3, fw)])
    packets = flow_stream(fw, 3, rng, ROUNDS,
                          ZipfFlows(fw.n_flows, skew=0.99))
    half = len(packets) // 2

    first_a = [scalar.process(p.copy()) for p in packets[:half]]
    first_b = engine.process_batch([p.copy() for p in packets[:half]])
    assert_equivalent(first_a, first_b, "pre-reconfig")
    assert engine.counters.cache_hits > 0

    # Same transactional rule wipe on both switches: every ACL entry
    # goes away, so previously-blocked flows now pass through.
    for switch in (scalar, batched):
        tenant = switch.tenant(3)
        acl = tenant.table("acl")
        with tenant.transaction() as txn:
            for handle in acl.handles():
                txn.table("acl").delete(handle)

    hits_before_second_half = engine.counters.cache_hits
    second_a = [scalar.process(p.copy()) for p in packets[half:]]
    second_b = engine.process_batch([p.copy() for p in packets[half:]])
    assert_equivalent(second_a, second_b, "post-reconfig")
    assert_same_observable_state(scalar, batched)

    # The old verdicts really differed (flow 0 was blocked, now flows),
    # so equivalence above proves stale entries were not served.
    blocked_flow = fw.flow_packet(3, 0)
    assert scalar.process(blocked_flow.copy()).forwarded
    # And the cache re-learned rather than replayed: the first packet of
    # each flow after the wipe was a miss.
    assert engine.counters.cache_misses > 0
    assert engine.counters.cache_hits > hits_before_second_half  # re-warmed


def test_module_update_and_evict_invalidate():
    """tenant.update()/evict() flush the tenant's cached flows."""
    fw = workload("firewall")
    qos = workload("qos")
    scalar, batched, engine = build_pair([(1, fw), (2, qos)])
    pkt_fw = fw.flow_packet(1, 1)      # allowed -> port 2
    pkt_qos = qos.flow_packet(2, 0)

    for _ in range(3):
        scalar.process(pkt_fw.copy())
        scalar.process(pkt_qos.copy())
        engine.process_batch([pkt_fw.copy(), pkt_qos.copy()])
    assert engine.shard(1).stats.hits > 0

    # Replace tenant 1's program with the same source but no rules:
    # every flow now takes the default path.
    for switch in (scalar, batched):
        switch.tenant(1).update(fw.source)
    a = scalar.process(pkt_fw.copy())
    b = engine.process(pkt_fw.copy())
    assert_equivalent([a], [b], "post-update")
    assert a.egress_port == 0  # the allow rule is gone

    # Evicting drops the module: packets become unknown_module drops.
    for switch in (scalar, batched):
        switch.tenant(1).evict()
    a = scalar.process(pkt_fw.copy())
    b = engine.process(pkt_fw.copy())
    assert_equivalent([a], [b], "post-evict")
    assert b.drop_reason == "unknown_module"
    assert len(engine.shard(1)) == 0
    # The untouched tenant's entries survive the eviction (only the
    # evicted VID's shard was flushed). They were stamped under an older
    # global epoch, so they re-validate lazily: next packet re-learns.
    assert len(engine.shard(2)) > 0
    c = engine.process(pkt_qos.copy())
    assert not c.cache_hit                      # re-learned, not stale
    assert engine.process(pkt_qos.copy()).cache_hit  # and hot again


# ---------------------------------------------------------------------------
# dataplane reconfiguration packets inside one batch (Corundum mode)
# ---------------------------------------------------------------------------

def test_reconfig_packet_inside_batch():
    """A config write mid-batch splits it: old config before, new after.

    The write zeroes the firewall's stage-0 key mask, so every flow
    stops matching its ACL entries (lookup key collapses to zero) and
    falls through to the default path — an observable behavior flip that
    cached entries must not paper over.
    """
    fw = workload("firewall")
    rng = make_rng(170)
    scalar, batched, engine = build_pair([(3, fw)],
                                         reconfig_from_dataplane=True)
    stage = scalar.controller._loaded(3).compiled.stages_used()[0]
    wipe_mask = build_reconfig_packet(
        ResourceId(ResourceType.KEY_MASK, stage), index=3, entry=0,
        params=scalar.params)

    packets = flow_stream(fw, 3, rng, 120, ZipfFlows(fw.n_flows, skew=0.99))
    batch = packets[:60] + [wipe_mask] + packets[60:]

    scalar_results = [scalar.process(p.copy()) for p in batch]
    engine_results = engine.process_batch([p.copy() for p in batch])

    assert_equivalent(scalar_results, engine_results, "split batch")
    assert_same_observable_state(scalar, batched)
    assert engine.counters.reconfig_flushes == 1
    assert scalar_results[60].drop_reason == "reconfig_consumed"
    # The flip is real: flow 0 was blocked before the write, passes after.
    blocked = [r.dropped for i, r in enumerate(scalar_results)
               if i != 60 and batch[i].tobytes() ==
               fw.flow_packet(3, 0).tobytes()]
    if blocked:  # zipf rank 1 appears on both sides of the barrier
        assert True in blocked and False in blocked
