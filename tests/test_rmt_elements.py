"""Tests for parser, deparser, key extractor, match tables, and memory."""

import pytest

from repro.errors import ConfigError, FieldRangeError, PacketError
from repro.net import PacketBuilder
from repro.net.packet import Packet
from repro.rmt import (
    CmpOp,
    ExactMatchTable,
    KeyExtractEntry,
    KeyExtractor,
    ParseAction,
    ProgrammableParser,
    StatefulMemory,
    TernaryMatchTable,
    TrafficManager,
)
from repro.rmt.config_table import ConfigTable
from repro.rmt.deparser import Deparser
from repro.rmt.encodings import FULL_KEY_MASK, encode_key
from repro.rmt.key_extractor import build_mask
from repro.rmt.parser import extract_module_id
from repro.rmt.params import DEFAULT_PARAMS
from repro.rmt.phv import PHV, ContainerRef, ContainerType


def make_packet(vid=7, payload=b"\x00" * 16, **kw):
    return (PacketBuilder()
            .ethernet(src="02:00:00:00:00:01", dst="02:00:00:00:00:02")
            .vlan(vid=vid)
            .ipv4(src="10.0.0.1", dst="10.0.0.2")
            .udp(sport=5000, dport=5001)
            .payload(payload)
            .build(**kw))


class TestConfigTable:
    def test_read_write(self):
        table = ConfigTable("t", 16, 4)
        table.write(2, 0xABCD)
        assert table.read(2) == 0xABCD

    def test_width_enforced(self):
        table = ConfigTable("t", 8, 4)
        with pytest.raises(ConfigError):
            table.write(0, 256)

    def test_index_bounds(self):
        table = ConfigTable("t", 8, 4)
        with pytest.raises(ConfigError):
            table.read(4)
        with pytest.raises(ConfigError):
            table.write(-1, 0)

    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            ConfigTable("t", 8, 0)
        with pytest.raises(ConfigError):
            ConfigTable("t", 0, 8)

    def test_counters(self):
        table = ConfigTable("t", 8, 4)
        table.write(0, 1)
        table.read(0)
        table.clear(0)
        assert table.write_count == 2
        assert table.read_count == 1
        assert table.read(0) == 0


class TestModuleIdExtraction:
    def test_vid_from_tci(self):
        pkt = make_packet(vid=0x123)
        assert extract_module_id(pkt) == 0x123

    def test_short_packet_raises(self):
        with pytest.raises(PacketError):
            extract_module_id(Packet(b"\x00" * 10))


class TestParser:
    def parser(self):
        table = ConfigTable("parser", DEFAULT_PARAMS.parser_entry_bits, 32)
        return ProgrammableParser(table)

    def test_extracts_fields_into_containers(self):
        parser = self.parser()
        # Extract the IPv4 dst (offset 14+4+16=34, 4 bytes) into B4[0]
        parser.install_program(7, [
            ParseAction(34, ContainerRef(ContainerType.B4, 0)),
        ])
        pkt = make_packet(vid=7)
        phv = parser.parse(pkt, 7)
        assert phv.get(ContainerRef(ContainerType.B4, 0)) == int(
            __import__("repro.net", fromlist=["Ipv4Address"]).Ipv4Address("10.0.0.2"))

    def test_metadata_populated(self):
        parser = self.parser()
        parser.install_program(3, [])
        pkt = make_packet(vid=3)
        pkt.ingress_port = 2
        phv = parser.parse(pkt, 3)
        assert phv.metadata.pkt_len == len(pkt)
        assert phv.metadata.src_port == 2
        assert phv.metadata.module_id == 3

    def test_unparsed_containers_are_zero(self):
        parser = self.parser()
        parser.install_program(1, [
            ParseAction(0, ContainerRef(ContainerType.B2, 0)),
        ])
        phv = parser.parse(make_packet(vid=1), 1)
        assert phv.get(ContainerRef(ContainerType.B2, 1)) == 0
        assert phv.get(ContainerRef(ContainerType.B6, 5)) == 0

    def test_parse_window_enforced(self):
        parser = self.parser()
        parser.install_program(1, [
            ParseAction(127, ContainerRef(ContainerType.B4, 0)),
        ])
        big = make_packet(vid=1, payload=b"\x00" * 200)
        with pytest.raises(PacketError):
            parser.parse(big, 1)

    def test_parse_past_packet_end(self):
        parser = self.parser()
        parser.install_program(1, [
            ParseAction(60, ContainerRef(ContainerType.B6, 0)),
        ])
        short = make_packet(vid=1, payload=b"")  # 46 bytes
        with pytest.raises(PacketError):
            parser.parse(short, 1)

    def test_too_many_actions(self):
        parser = self.parser()
        actions = [ParseAction(i, ContainerRef(ContainerType.B2, i % 8))
                   for i in range(11)]
        with pytest.raises(ConfigError):
            parser.install_program(0, actions)

    def test_program_roundtrip(self):
        parser = self.parser()
        actions = [ParseAction(46, ContainerRef(ContainerType.B2, 1)),
                   ParseAction(48, ContainerRef(ContainerType.B4, 2))]
        parser.install_program(9, actions)
        assert parser.read_program(9) == actions


class TestDeparser:
    def build(self):
        ptable = ConfigTable("parser", DEFAULT_PARAMS.parser_entry_bits, 32)
        dtable = ConfigTable("deparser", DEFAULT_PARAMS.parser_entry_bits, 32)
        return (ProgrammableParser(ptable), Deparser(dtable))

    def test_writeback_modified_container(self):
        parser, deparser = self.build()
        ref = ContainerRef(ContainerType.B4, 0)
        actions = [ParseAction(34, ref)]  # IPv4 dst
        parser.install_program(7, actions)
        deparser.install_program(7, actions)
        pkt = make_packet(vid=7)
        buffered = pkt.copy()
        phv = parser.parse(pkt, 7)
        phv.set(ref, 0x0A000063)  # 10.0.0.99
        out = deparser.deparse(phv, buffered, 7)
        assert out is not None
        assert out.read_int(34, 4) == 0x0A000063

    def test_untouched_bytes_preserved(self):
        parser, deparser = self.build()
        ref = ContainerRef(ContainerType.B2, 0)
        actions = [ParseAction(46, ref)]
        parser.install_program(7, actions)
        deparser.install_program(7, actions)
        pkt = make_packet(vid=7, payload=b"\xaa\xbb\xcc\xdd")
        buffered = pkt.copy()
        phv = parser.parse(pkt, 7)
        out = deparser.deparse(phv, buffered, 7)
        # payload bytes beyond the rewritten ones unchanged
        assert out.read_bytes(48, 2) == b"\xcc\xdd"

    def test_discard_drops(self):
        parser, deparser = self.build()
        parser.install_program(7, [])
        deparser.install_program(7, [])
        pkt = make_packet(vid=7)
        phv = parser.parse(pkt, 7)
        phv.metadata.discard = True
        assert deparser.deparse(phv, pkt.copy(), 7) is None


class TestKeyExtractor:
    def extractor(self):
        et = ConfigTable("ke", DEFAULT_PARAMS.key_extractor_entry_bits, 32)
        mt = ConfigTable("km", DEFAULT_PARAMS.key_bits, 32)
        return KeyExtractor(et, mt)

    def phv_with(self, values):
        phv = PHV()
        for (ctype, index), value in values.items():
            phv.set(ContainerRef(ctype, index), value)
        return phv

    def test_key_assembly_order(self):
        ke = self.extractor()
        ke.install(5, KeyExtractEntry(idx_6b_1=0, idx_4b_1=0, idx_2b_1=0))
        phv = self.phv_with({
            (ContainerType.B6, 0): 0x0102030405,
            (ContainerType.B4, 0): 0xAABBCCDD,
            (ContainerType.B2, 0): 0x1234,
        })
        key = ke.extract(phv, 5)
        # Both slots of each type default to container 0, so each selected
        # value appears twice in the key.
        expected = encode_key(
            [0x0102030405, 0x0102030405, 0xAABBCCDD, 0xAABBCCDD,
             0x1234, 0x1234], 0)
        assert key == expected

    def test_mask_zeroes_unused_slots(self):
        ke = self.extractor()
        mask = build_mask(use_2b=(True, False))
        ke.install(5, KeyExtractEntry(idx_2b_1=3), mask=mask)
        phv = self.phv_with({
            (ContainerType.B2, 3): 0xBEEF,
            (ContainerType.B6, 0): 0xFFFFFFFFFFFF,  # must be masked away
        })
        key = ke.extract(phv, 5)
        assert key == encode_key([0, 0, 0, 0, 0xBEEF, 0], 0)

    def test_predicate_sets_flag_bit(self):
        ke = self.extractor()
        entry = KeyExtractEntry(
            cmp_op=CmpOp.GT,
            cmp_a=ContainerRef(ContainerType.B2, 0),
            cmp_b=10,
        )
        ke.install(1, entry, mask=build_mask(use_flag=True))
        low = self.phv_with({(ContainerType.B2, 0): 5})
        high = self.phv_with({(ContainerType.B2, 0): 50})
        assert ke.extract(low, 1) == 0
        assert ke.extract(high, 1) == 1

    def test_all_cmp_ops(self):
        cases = [
            (CmpOp.EQ, 5, 5, True), (CmpOp.EQ, 5, 6, False),
            (CmpOp.NE, 5, 6, True), (CmpOp.NE, 5, 5, False),
            (CmpOp.GT, 6, 5, True), (CmpOp.GT, 5, 5, False),
            (CmpOp.LT, 4, 5, True), (CmpOp.LT, 5, 5, False),
            (CmpOp.GE, 5, 5, True), (CmpOp.GE, 4, 5, False),
            (CmpOp.LE, 5, 5, True), (CmpOp.LE, 6, 5, False),
            (CmpOp.ALWAYS, 0, 0, True), (CmpOp.DISABLED, 0, 0, False),
        ]
        for op, a, b, expected in cases:
            assert op.evaluate(a, b) is expected, (op, a, b)

    def test_container_vs_container_predicate(self):
        ke = self.extractor()
        entry = KeyExtractEntry(
            cmp_op=CmpOp.EQ,
            cmp_a=ContainerRef(ContainerType.B2, 0),
            cmp_b=ContainerRef(ContainerType.B2, 1),
        )
        ke.install(2, entry, mask=build_mask(use_flag=True))
        same = self.phv_with({(ContainerType.B2, 0): 9,
                              (ContainerType.B2, 1): 9})
        diff = self.phv_with({(ContainerType.B2, 0): 9,
                              (ContainerType.B2, 1): 8})
        assert ke.extract(same, 2) == 1
        assert ke.extract(diff, 2) == 0

    def test_per_module_entries_independent(self):
        ke = self.extractor()
        ke.install(1, KeyExtractEntry(idx_2b_1=0),
                   mask=build_mask(use_2b=(True, False)))
        ke.install(2, KeyExtractEntry(idx_2b_1=1),
                   mask=build_mask(use_2b=(True, False)))
        phv = self.phv_with({(ContainerType.B2, 0): 0x1111,
                             (ContainerType.B2, 1): 0x2222})
        assert ke.extract(phv, 1) == encode_key([0, 0, 0, 0, 0x1111, 0], 0)
        assert ke.extract(phv, 2) == encode_key([0, 0, 0, 0, 0x2222, 0], 0)


class TestExactMatchTable:
    def test_lookup_requires_module_match(self):
        cam = ExactMatchTable()
        cam.write(0, key=0xAB, module_id=1)
        assert cam.lookup(0xAB, 1) == 0
        assert cam.lookup(0xAB, 2) is None  # other module can't hit it

    def test_miss_returns_none(self):
        cam = ExactMatchTable()
        assert cam.lookup(0x1, 0) is None

    def test_duplicate_rejected(self):
        cam = ExactMatchTable()
        cam.write(0, key=5, module_id=1)
        with pytest.raises(ConfigError):
            cam.write(3, key=5, module_id=1)

    def test_same_key_different_modules_ok(self):
        cam = ExactMatchTable()
        cam.write(0, key=5, module_id=1)
        cam.write(1, key=5, module_id=2)
        assert cam.lookup(5, 1) == 0
        assert cam.lookup(5, 2) == 1

    def test_overwrite_same_slot(self):
        cam = ExactMatchTable()
        cam.write(0, key=5, module_id=1)
        cam.write(0, key=6, module_id=1)
        assert cam.lookup(5, 1) is None
        assert cam.lookup(6, 1) == 0

    def test_invalidate(self):
        cam = ExactMatchTable()
        cam.write(2, key=9, module_id=3)
        cam.invalidate(2)
        assert cam.lookup(9, 3) is None
        assert cam.occupancy() == 0

    def test_word_roundtrip(self):
        cam = ExactMatchTable()
        from repro.rmt.encodings import encode_cam_entry
        cam.write_word(1, encode_cam_entry(0x77, 9))
        assert cam.lookup(0x77, 9) == 1

    def test_entries_of(self):
        cam = ExactMatchTable()
        cam.write(0, key=1, module_id=1)
        cam.write(5, key=2, module_id=1)
        cam.write(3, key=3, module_id=2)
        assert cam.entries_of(1) == [0, 5]
        assert cam.entries_of(2) == [3]

    def test_index_bounds(self):
        cam = ExactMatchTable(depth=4)
        with pytest.raises(ConfigError):
            cam.write(4, key=0, module_id=0)

    def test_hit_counters(self):
        cam = ExactMatchTable()
        cam.write(0, key=1, module_id=1)
        cam.lookup(1, 1)
        cam.lookup(2, 1)
        assert cam.lookup_count == 2
        assert cam.hit_count == 1


class TestTernaryMatchTable:
    def test_masked_match(self):
        tcam = TernaryMatchTable()
        tcam.write(0, key=0xAB00, mask=0xFF00, module_id=1)
        assert tcam.lookup(0xABCD, 1) == 0
        assert tcam.lookup(0xAC00, 1) is None

    def test_lowest_address_priority(self):
        tcam = TernaryMatchTable()
        tcam.write(3, key=0x0, mask=0x0, module_id=1)      # match-all
        tcam.write(1, key=0xAB, mask=0xFF, module_id=1)    # specific
        assert tcam.lookup(0xAB, 1) == 1   # specific wins by address
        assert tcam.lookup(0xCD, 1) == 3   # falls through to match-all

    def test_module_isolation(self):
        tcam = TernaryMatchTable()
        tcam.write(0, key=0, mask=0, module_id=1)  # module 1 match-all
        assert tcam.lookup(0x123, 2) is None

    def test_contiguous_blocks_do_not_interfere(self):
        # Module 1 owns addresses 0-3, module 2 owns 4-7. Updating module
        # 1's rules cannot change module 2's lookup results.
        tcam = TernaryMatchTable(depth=8)
        tcam.write(4, key=0x10, mask=0xFF, module_id=2)
        before = tcam.lookup(0x10, 2)
        tcam.write(0, key=0x10, mask=0xFF, module_id=1)
        tcam.write(1, key=0x0, mask=0x0, module_id=1)
        assert tcam.lookup(0x10, 2) == before


class TestStatefulMemory:
    def test_read_write(self):
        mem = StatefulMemory(words=8)
        mem.write(3, 0xCAFE)
        assert mem.read(3) == 0xCAFE

    def test_bounds(self):
        mem = StatefulMemory(words=8)
        with pytest.raises(FieldRangeError):
            mem.read(8)
        with pytest.raises(FieldRangeError):
            mem.write(-1, 0)

    def test_word_width(self):
        mem = StatefulMemory(words=4, word_bits=16)
        with pytest.raises(FieldRangeError):
            mem.write(0, 1 << 16)

    def test_loadd_increments_and_wraps(self):
        mem = StatefulMemory(words=2, word_bits=8)
        assert mem.load_add_store(0) == 1
        assert mem.load_add_store(0) == 2
        mem.write(1, 255)
        assert mem.load_add_store(1) == 0  # wraps at word width

    def test_region_and_fill(self):
        mem = StatefulMemory(words=16)
        mem.fill(4, 4, 7)
        assert mem.region(4, 4) == [7, 7, 7, 7]
        assert mem.region(0, 4) == [0, 0, 0, 0]


class TestTrafficManager:
    def test_unicast(self):
        tm = TrafficManager(num_ports=4)
        pkt = make_packet()
        assert tm.enqueue(pkt, 2) == 1
        assert tm.queue_len(2) == 1
        assert tm.dequeue(2) is pkt
        assert tm.dequeue(2) is None

    def test_multicast_replication(self):
        tm = TrafficManager(num_ports=4)
        tm.set_mcast_group(5, [0, 1, 3])
        pkt = make_packet()
        assert tm.enqueue(pkt, 0, mcast_group=5) == 3
        for port in (0, 1, 3):
            out = tm.dequeue(port)
            assert out == pkt and out is not pkt  # replicas are copies
        assert tm.queue_len(2) == 0

    def test_unknown_mcast_group_drops(self):
        tm = TrafficManager()
        assert tm.enqueue(make_packet(), 0, mcast_group=99) == 0
        assert tm.dropped == 1

    def test_queue_capacity(self):
        tm = TrafficManager(num_ports=1, queue_capacity=2)
        assert tm.enqueue(make_packet(), 0) == 1
        assert tm.enqueue(make_packet(), 0) == 1
        assert tm.enqueue(make_packet(), 0) == 0
        assert tm.dropped == 1

    def test_group_zero_reserved(self):
        tm = TrafficManager()
        with pytest.raises(ConfigError):
            tm.set_mcast_group(0, [1])

    def test_port_bounds(self):
        tm = TrafficManager(num_ports=2)
        with pytest.raises(ConfigError):
            tm.enqueue(make_packet(), 2)

    def test_drain_all(self):
        tm = TrafficManager(num_ports=2)
        tm.enqueue(make_packet(), 0)
        tm.enqueue(make_packet(), 1)
        drained = tm.drain_all()
        assert len(drained[0]) == 1 and len(drained[1]) == 1
        assert tm.total_queued() == 0
