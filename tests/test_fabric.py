"""Fabric layer: topology, routing, placement, forwarding, timeline.

The differential gates (single-switch degeneracy, manual chaining
equivalence) live in ``tests/test_fabric_differential.py``; this file
covers the graph/placement/timeline behavior itself, including the
edge cases the issue calls out — link-down raises a typed error, and
placement rejects over-capacity switches before admitting anything.
"""

import pytest

from repro.api import Switch
from repro.errors import (
    FabricError,
    LinkDownError,
    PlacementError,
    TopologyError,
)
from repro.fabric import Fabric, leaf_spine
from repro.modules import calc
from repro.sim import FabricTimelineExperiment
from repro.traffic import TrafficMatrix


def calc_installer(tenant, port):
    calc.install(tenant, port=port)


def make_fabric(leaves=2, spines=1, **kwargs):
    kwargs.setdefault("hosts_per_leaf", 4)
    return leaf_spine(leaves=leaves, spines=spines, **kwargs)


def place_calc(fabric, vid, src, dst, name=None, via=None):
    tenant = fabric.tenant(name or f"calc{vid}", calc.P4_SOURCE,
                           vid=vid, installer=calc_installer)
    tenant.place(src, dst, via=via)
    return tenant


class TestTopology:
    def test_leaf_spine_shape(self):
        fabric = make_fabric(leaves=3, spines=2)
        assert [m.name for m in fabric.switches()] == [
            "leaf0", "leaf1", "leaf2", "spine0", "spine1"]
        assert len(fabric.links()) == 6
        leaf = fabric.switch("leaf0")
        assert leaf.host_ports() == [0, 1, 2, 3]
        assert leaf.fabric_ports() == [4, 5]
        assert fabric.switch("spine0").host_ports() == []

    def test_link_capacity_paces_endpoint_ports(self):
        fabric = make_fabric(link_capacity_bps=5e9)
        leaf = fabric.switch("leaf0")
        assert leaf.scheduler.port_rate_of(4) == 5e9
        # host ports transmit at the fabric's host rate
        assert leaf.scheduler.port_rate_of(0) == 5e9 or \
            leaf.scheduler.port_rate_of(0) == fabric.host_rate_bps

    def test_duplicate_switch_rejected(self):
        fabric = Fabric()
        fabric.add_switch("sw0")
        with pytest.raises(TopologyError):
            fabric.add_switch("sw0")

    def test_port_already_wired_rejected(self):
        fabric = Fabric()
        fabric.add_switch("a")
        fabric.add_switch("b")
        fabric.add_switch("c")
        fabric.connect("a", 0, "b", 0)
        with pytest.raises(TopologyError):
            fabric.connect("a", 0, "c", 0)

    def test_self_loop_rejected(self):
        fabric = Fabric()
        fabric.add_switch("a")
        with pytest.raises(TopologyError):
            fabric.connect("a", 0, "a", 1)

    def test_unknown_switch_is_typed_error(self):
        fabric = Fabric()
        with pytest.raises(TopologyError):
            fabric.switch("nope")

    def test_routes_are_hop_count_shortest(self):
        fabric = make_fabric(leaves=2, spines=2)
        paths = fabric.shortest_paths("leaf0", "leaf1")
        assert paths == [["leaf0", "spine0", "leaf1"],
                         ["leaf0", "spine1", "leaf1"]]
        assert fabric.shortest_paths("leaf0", "leaf0") == [["leaf0"]]


class TestLinkDown:
    def test_route_around_downed_spine(self):
        fabric = make_fabric(leaves=2, spines=2)
        fabric.set_link_state("leaf0", "spine0", up=False)
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        assert tenant.routes[0] == ["leaf0", "spine1", "leaf1"]

    def test_unreachable_raises_typed_error(self):
        fabric = make_fabric(leaves=2, spines=1)
        fabric.set_link_state("leaf0", "spine0", up=False)
        with pytest.raises(LinkDownError):
            fabric.shortest_paths("leaf0", "leaf1")
        with pytest.raises(LinkDownError):
            place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))

    def test_forwarding_onto_downed_link_records_loss(self):
        fabric = make_fabric(leaves=2, spines=1)
        place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        fabric.set_link_state("leaf0", "spine0", up=False)
        pkt = calc.make_packet(1, calc.OP_ADD, 1, 2)
        result = fabric.process_batch([("leaf0", pkt)])
        assert result.delivered == []
        (loss,) = result.lost_for(1)
        assert loss.link == "leaf0:4—spine0:0"
        assert loss.switch == "leaf0" and loss.port == 4

    def test_failure_does_not_affect_other_tenants_in_same_batch(self):
        # One tenant per spine; failing spine0's uplink loses the
        # first tenant's packet (recorded, not raised) while the
        # second tenant's packet in the same batch still delivers.
        fabric = make_fabric(leaves=2, spines=2)
        a = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 0))
        b = place_calc(fabric, 2, ("leaf0", 1), ("leaf1", 1))
        assert a.routes[0][1] == "spine0"
        assert b.routes[0][1] == "spine1"
        fabric.set_link_state("leaf0", "spine0", up=False)
        result = fabric.process_batch(
            [("leaf0", calc.make_packet(1, calc.OP_ADD, 1, 2)),
             ("leaf0", calc.make_packet(2, calc.OP_ADD, 2, 3))])
        assert len(result.lost_for(1)) == 1
        assert len(result.delivered_for(2)) == 1
        # and nothing lingers to poison the next batch
        follow_up = fabric.process_batch(
            [("leaf0", calc.make_packet(2, calc.OP_ADD, 4, 5))])
        assert len(follow_up.delivered_for(2)) == 1
        assert follow_up.lost == []

    def test_timeline_counts_mid_run_losses(self):
        from repro.sim import FabricTimelineExperiment
        from repro.traffic import TrafficMatrix
        fabric = make_fabric(leaves=2, spines=1)
        place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        fabric.set_link_state("leaf0", "spine0", up=False)
        matrix = TrafficMatrix()
        matrix.add(1, ("leaf0", 0), ("leaf1", 1), offered_bps=1e9,
                   packet_size=1000,
                   make_packet=lambda: calc.make_packet(
                       1, calc.OP_ADD, 1, 2, pad_to=1000))
        result = FabricTimelineExperiment(
            fabric, matrix, duration_s=0.0002).run()
        assert result.delivered.get(1, 0) == 0
        assert result.lost[1] > 0

    def test_linkdown_is_a_fabric_error(self):
        # Callers can catch the whole fabric sub-hierarchy at once.
        assert issubclass(LinkDownError, FabricError)
        assert issubclass(PlacementError, FabricError)


class TestPlacement:
    def test_place_spans_route_and_delivers(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 2))
        assert tenant.switches() == ["leaf0", "spine0", "leaf1"]
        result = fabric.process_batch(
            [("leaf0", calc.make_packet(1, calc.OP_ADD, 20, 22))])
        outs = result.delivered_for(1)
        assert len(outs) == 1
        assert calc.read_result(outs[0]) == 42
        assert result.delivered[0].switch == "leaf1"
        assert result.delivered[0].port == 2

    def test_greedy_spreads_across_spines(self):
        fabric = make_fabric(leaves=2, spines=2)
        a = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 0))
        b = place_calc(fabric, 2, ("leaf0", 1), ("leaf1", 1))
        # tie on first placement breaks lexicographically; the second
        # placement greedily avoids the now-busier spine0
        assert a.routes[0][1] == "spine0"
        assert b.routes[0][1] == "spine1"

    def test_pinned_route_overrides_greedy(self):
        fabric = make_fabric(leaves=2, spines=2)
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 0),
                            via=("spine1",))
        assert tenant.routes[0] == ["leaf0", "spine1", "leaf1"]

    def test_over_capacity_switch_rejected(self):
        # max_modules(2) -> exactly one tenant slot per switch
        fabric = make_fabric(
            make_builder=lambda: Switch.build().max_modules(2))
        place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        with pytest.raises(PlacementError):
            place_calc(fabric, 2, ("leaf0", 2), ("leaf1", 3))

    def test_rejection_happens_before_any_admission(self):
        fabric = make_fabric(
            make_builder=lambda: Switch.build().max_modules(2))
        place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        before = {m.name: m.free_module_slots()
                  for m in fabric.switches()}
        with pytest.raises(PlacementError):
            place_calc(fabric, 2, ("leaf0", 2), ("leaf1", 3))
        after = {m.name: m.free_module_slots()
                 for m in fabric.switches()}
        assert before == after

    def test_fabric_port_is_not_an_attachment_point(self):
        fabric = make_fabric()
        with pytest.raises(PlacementError):
            place_calc(fabric, 1, ("leaf0", 4), ("leaf1", 0))

    def test_second_placement_sharing_agreeing_switches_is_idempotent(self):
        # Same destination port, different source hosts: the routes
        # coincide and steer every shared switch the same way, so the
        # second placement reuses the installed entries.
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 2))
        occupancy = tenant.handle("leaf1").table(
            "calc_table").occupancy()
        assert tenant.place(("leaf0", 1), ("leaf1", 2)) == \
            tenant.routes[0]
        assert tenant.handle("leaf1").table(
            "calc_table").occupancy() == occupancy  # not re-installed
        result = fabric.process_batch(
            [("leaf0", calc.make_packet(1, calc.OP_ADD, 1, 2))])
        assert len(result.delivered_for(1)) == 1

    def test_conflicting_second_placement_rejected_atomically(self):
        # The reverse direction would need leaf1 to steer to the
        # uplink instead of the host port: typed rejection, and no
        # entries/admissions half-land anywhere.
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 2))
        occupancies = {
            name: tenant.handle(name).table("calc_table").occupancy()
            for name in tenant.switches()}
        with pytest.raises(PlacementError):
            tenant.place(("leaf1", 1), ("leaf0", 3))
        assert tenant.routes == [["leaf0", "spine0", "leaf1"]]
        for name, occupancy in occupancies.items():
            assert tenant.handle(name).table(
                "calc_table").occupancy() == occupancy

    def test_duplicate_vid_rejected(self):
        fabric = make_fabric()
        fabric.tenant("a", calc.P4_SOURCE, vid=1,
                      installer=calc_installer)
        with pytest.raises(TopologyError):
            fabric.tenant("b", calc.P4_SOURCE, vid=1,
                          installer=calc_installer)

    def test_handle_lookup_requires_placement(self):
        fabric = make_fabric(leaves=2, spines=2)
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 0))
        assert tenant.handle("leaf0").vid == 1
        with pytest.raises(PlacementError):
            tenant.handle("spine1")  # greedy route went via spine0


class TestForwardingGuards:
    def test_forwarding_loop_raises_instead_of_spinning(self):
        # Hand-build a two-switch cycle: each switch's entries point
        # back across the link, so the packet ping-pongs forever.
        fabric = Fabric()
        fabric.add_switch("a")
        fabric.add_switch("b")
        fabric.connect("a", 0, "b", 0)
        for name in ("a", "b"):
            handle = fabric.switch(name).switch.admit(
                "calc", calc.P4_SOURCE, vid=1)
            calc.install(handle, port=0)   # 0 is the fabric port
        pkt = calc.make_packet(1, calc.OP_ADD, 1, 2)
        with pytest.raises(FabricError):
            fabric.process_batch([("a", pkt)], max_hops=8)

    def test_adopted_switch_or_builder_not_both(self):
        fabric = Fabric()
        with pytest.raises(TopologyError):
            fabric.add_switch("a", switch=Switch.build().create(),
                              builder=Switch.build())

    def test_link_endpoint_queries(self):
        fabric = make_fabric()
        link = fabric.link_between("leaf0", "spine0")
        assert link.other_end("leaf0").switch == "spine0"
        assert link.other_end("spine0").switch == "leaf0"
        with pytest.raises(TopologyError):
            link.other_end("leaf1")
        with pytest.raises(TopologyError):
            fabric.link_between("leaf0", "leaf1")
        assert link.utilization(0.0) == 0.0


class TestSchedulingAndStats:
    def test_weight_and_rate_fan_out_to_all_placed_switches(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        tenant.set_weight(4.0)
        tenant.set_rate_limit(1e6)
        for name in tenant.switches():
            scheduler = fabric.switch(name).scheduler
            assert scheduler.weight_of(1) == 4.0
            assert scheduler.rate_limit_of(1) == 1e6

    def test_settings_apply_to_later_placements(self):
        fabric = make_fabric(leaves=2, spines=2)
        tenant = fabric.tenant("calc1", calc.P4_SOURCE, vid=1,
                               installer=calc_installer)
        tenant.set_weight(2.5)
        tenant.place(("leaf0", 0), ("leaf1", 0))
        for name in tenant.switches():
            assert fabric.switch(name).scheduler.weight_of(1) == 2.5

    def test_fabric_wide_counters_have_per_hop_semantics(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        fabric.process_batch(
            [("leaf0", calc.make_packet(1, calc.OP_ADD, 1, 2))])
        counters = tenant.counters()
        assert counters.packets_in == 3       # one per hop
        assert counters.packets_out == 3
        assert counters.packets_dropped == 0

    def test_link_byte_accounting_per_tenant(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        pkt = calc.make_packet(1, calc.OP_ADD, 1, 2, pad_to=100)
        fabric.process_batch([("leaf0", pkt)])
        per_link = tenant.link_bytes()
        assert set(per_link) == {"leaf0:4—spine0:0", "leaf1:4—spine0:1"}
        assert all(v == 100 for v in per_link.values())
        spine_link = fabric.link_between("leaf0", "spine0")
        assert spine_link.bytes_carried == 100

    def test_unplaced_vid_dropped_as_unknown_module(self):
        fabric = make_fabric()
        place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        stray = calc.make_packet(9, calc.OP_ADD, 1, 2)
        result = fabric.process_batch([("leaf0", stray)])
        assert result.delivered == []
        assert result.dropped == {9: 1}


class TestTrafficMatrix:
    def test_arrivals_are_deterministic_and_sorted(self):
        mk = lambda: calc.make_packet(1, calc.OP_ADD, 1, 2)
        matrix = TrafficMatrix()
        matrix.add(1, ("leaf0", 0), ("leaf1", 1), offered_bps=1e9,
                   packet_size=1000, make_packet=mk)
        matrix.add(2, ("leaf0", 1), ("leaf1", 2), offered_bps=2e9,
                   packet_size=1000, make_packet=mk)
        a = matrix.arrivals(0.001, scale=10.0)
        b = matrix.arrivals(0.001, scale=10.0)
        assert [(t, d.vid) for t, d in a] == [(t, d.vid) for t, d in b]
        assert a == sorted(a, key=lambda x: x[0])
        by_vid = {}
        for _, demand in a:
            by_vid[demand.vid] = by_vid.get(demand.vid, 0) + 1
        # 2x the offered rate -> 2x the arrivals
        assert by_vid[2] == 2 * by_vid[1]

    def test_invalid_demands_rejected(self):
        from repro.errors import ConfigError
        matrix = TrafficMatrix()
        mk = lambda: calc.make_packet(1, calc.OP_ADD, 1, 2)
        with pytest.raises(ConfigError):
            matrix.add(1, ("a", 0), ("b", 0), offered_bps=0,
                       packet_size=100, make_packet=mk)
        with pytest.raises(ConfigError):
            matrix.add(1, ("a", 0), ("b", 0), offered_bps=1e9,
                       packet_size=0, make_packet=mk)
        matrix.add(1, ("a", 0), ("b", 0), offered_bps=1e9,
                   packet_size=100, make_packet=mk)
        with pytest.raises(ConfigError):
            matrix.arrivals(0.0)


class TestFabricTimeline:
    def _run(self, link_delay_s=1e-6, offered_bps=1e9):
        fabric = make_fabric(link_delay_s=link_delay_s)
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        matrix = TrafficMatrix()
        matrix.add(1, ("leaf0", 0), ("leaf1", 1),
                   offered_bps=offered_bps, packet_size=1000,
                   make_packet=lambda: calc.make_packet(
                       1, calc.OP_ADD, 1, 2, pad_to=1000))
        exp = FabricTimelineExperiment(fabric, matrix,
                                       duration_s=0.0005, scale=1.0)
        return tenant, exp.run()

    def test_delivers_offered_load_uncontended(self):
        _tenant, result = self._run()
        assert result.delivered[1] > 0
        assert result.drops.get(1, 0) == 0
        # delivered ~= offered when the path is uncontended
        assert result.delivered_gbps(1) == pytest.approx(
            result.offered_gbps[1], rel=0.1)

    def test_latency_includes_propagation_delay(self):
        _t, fast = self._run(link_delay_s=1e-6)
        _t, slow = self._run(link_delay_s=100e-6)
        # two fabric links on the route -> +2 x 99us, within jitter
        delta = slow.mean_latency_s(1) - fast.mean_latency_s(1)
        assert delta == pytest.approx(2 * 99e-6, rel=0.05)

    def test_link_utilization_reported(self):
        _tenant, result = self._run()
        spine = "leaf0:4—spine0:0"
        nbytes, util = result.link_utilization[spine]
        assert nbytes > 0
        assert 0.0 < util <= 1.0
