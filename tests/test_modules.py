"""End-to-end tests of the eight evaluated modules (Table 3), including
the paper's §5.1 behavior-isolation experiments."""

import pytest

from repro.core import MenshenPipeline
from repro.modules import (
    calc,
    firewall,
    load_balancer,
    multicast,
    netcache,
    netchain,
    qos,
    source_routing,
)
from repro.modules.registry import ALL_MODULES, module_by_name, module_names
from repro.net import parse_layers
from repro.runtime import MenshenController
from repro.api import Switch, Tenant


def fresh():
    pipe = MenshenPipeline()
    return pipe, MenshenController(pipe)


class TestCalc:
    def test_all_opcodes(self):
        pipe, ctl = fresh()
        ctl.load_module(1, calc.P4_SOURCE)
        calc.install(Tenant.attach(ctl, 1), port=2)
        cases = [(calc.OP_ADD, 100, 23), (calc.OP_SUB, 50, 8),
                 (calc.OP_ECHO, 77, 0), (calc.OP_SUB, 1, 2)]
        for op, a, b in cases:
            res = pipe.process(calc.make_packet(1, op, a, b))
            assert calc.read_result(res.packet) == \
                calc.reference_result(op, a, b), (op, a, b)

    def test_egress_port_from_entry(self):
        pipe, ctl = fresh()
        ctl.load_module(1, calc.P4_SOURCE)
        calc.install(Tenant.attach(ctl, 1), port=5)
        res = pipe.process(calc.make_packet(1, calc.OP_ADD, 1, 1))
        assert res.egress_port == 5

    def test_unknown_opcode_passthrough(self):
        pipe, ctl = fresh()
        ctl.load_module(1, calc.P4_SOURCE)
        calc.install(Tenant.attach(ctl, 1))
        res = pipe.process(calc.make_packet(1, 99, 5, 5))
        assert res.forwarded
        assert calc.read_result(res.packet) == 0


class TestFirewall:
    def test_block_and_allow(self):
        pipe, ctl = fresh()
        ctl.load_module(2, firewall.P4_SOURCE)
        firewall.install(
            Tenant.attach(ctl, 2),
            blocked=[("10.0.0.66", 53)],
            allowed=[("10.0.0.1", 80, 4)])
        blocked = pipe.process(firewall.make_packet(2, "10.0.0.66", 53))
        assert blocked.dropped and blocked.drop_reason == "discard"
        allowed = pipe.process(firewall.make_packet(2, "10.0.0.1", 80))
        assert allowed.forwarded and allowed.egress_port == 4

    def test_unmatched_traffic_passes(self):
        pipe, ctl = fresh()
        ctl.load_module(2, firewall.P4_SOURCE)
        firewall.install(Tenant.attach(ctl, 2), blocked=[("10.0.0.66", 53)])
        res = pipe.process(firewall.make_packet(2, "10.0.0.9", 53))
        assert res.forwarded

    def test_block_is_exact_on_both_fields(self):
        pipe, ctl = fresh()
        ctl.load_module(2, firewall.P4_SOURCE)
        firewall.install(Tenant.attach(ctl, 2), blocked=[("10.0.0.66", 53)])
        assert pipe.process(
            firewall.make_packet(2, "10.0.0.66", 54)).forwarded


class TestLoadBalancer:
    def test_flow_steering(self):
        pipe, ctl = fresh()
        ctl.load_module(3, load_balancer.P4_SOURCE)
        load_balancer.install(Tenant.attach(ctl, 3), flows=[
            ("10.0.0.1", 1111, 2, 8001),
            ("10.0.0.1", 2222, 3, 8002),
        ])
        res1 = pipe.process(load_balancer.make_packet(3, "10.0.0.1", 1111))
        assert res1.egress_port == 2
        assert load_balancer.read_dport(res1.packet) == 8001
        res2 = pipe.process(load_balancer.make_packet(3, "10.0.0.1", 2222))
        assert res2.egress_port == 3
        assert load_balancer.read_dport(res2.packet) == 8002


class TestQos:
    def test_dscp_marking(self):
        pipe, ctl = fresh()
        ctl.load_module(4, qos.P4_SOURCE)
        qos.install(Tenant.attach(ctl, 4))
        voice = pipe.process(qos.make_packet(4, 5060))
        assert qos.read_dscp(voice.packet) == qos.DSCP_EF
        video = pipe.process(qos.make_packet(4, 8801))
        assert qos.read_dscp(video.packet) == qos.DSCP_AF41
        other = pipe.process(qos.make_packet(4, 9999))
        assert qos.read_dscp(other.packet) == 0

    def test_version_ihl_preserved(self):
        pipe, ctl = fresh()
        ctl.load_module(4, qos.P4_SOURCE)
        qos.install(Tenant.attach(ctl, 4))
        res = pipe.process(qos.make_packet(4, 5060))
        assert parse_layers(res.packet)["ipv4"].version == 4
        assert parse_layers(res.packet)["ipv4"].ihl == 5


class TestSourceRouting:
    def test_port_comes_from_packet(self):
        pipe, ctl = fresh()
        ctl.load_module(5, source_routing.P4_SOURCE)
        source_routing.install(Tenant.attach(ctl, 5))
        for port in (1, 3, 7):
            res = pipe.process(source_routing.make_packet(5, port))
            assert res.egress_port == port

    def test_invalid_tag_misses(self):
        pipe, ctl = fresh()
        ctl.load_module(5, source_routing.P4_SOURCE)
        source_routing.install(Tenant.attach(ctl, 5))
        res = pipe.process(source_routing.make_packet(5, 3, tag=0x1111))
        assert res.egress_port == 0  # no matching tag: no routing action


class TestNetCache:
    def test_cache_hit_returns_value(self):
        pipe, ctl = fresh()
        ctl.load_module(6, netcache.P4_SOURCE)
        netcache.install(Tenant.attach(ctl, 6), cached=[
            (0xAAAA, 0, 1234), (0xBBBB, 1, 5678)])
        res = pipe.process(netcache.make_get(6, 0xAAAA))
        assert netcache.read_value(res.packet) == 1234
        res = pipe.process(netcache.make_get(6, 0xBBBB))
        assert netcache.read_value(res.packet) == 5678

    def test_cache_miss_leaves_zero(self):
        pipe, ctl = fresh()
        ctl.load_module(6, netcache.P4_SOURCE)
        netcache.install(Tenant.attach(ctl, 6), cached=[(0xAAAA, 0, 1234)])
        res = pipe.process(netcache.make_get(6, 0xCCCC))
        assert netcache.read_value(res.packet) == 0

    def test_op_counter_increments(self):
        pipe, ctl = fresh()
        ctl.load_module(6, netcache.P4_SOURCE)
        netcache.install(Tenant.attach(ctl, 6), cached=[(0xAAAA, 0, 1)])
        stats = [netcache.read_stat(
            pipe.process(netcache.make_get(6, 0xAAAA)).packet)
            for _ in range(3)]
        assert stats == [1, 2, 3]
        assert ctl.register_read(6, "op_stats", 0) == 3

    def test_value_update_via_control_plane(self):
        pipe, ctl = fresh()
        ctl.load_module(6, netcache.P4_SOURCE)
        netcache.install(Tenant.attach(ctl, 6), cached=[(0xAAAA, 0, 1)])
        ctl.register_write(6, "values", 0, 999)
        res = pipe.process(netcache.make_get(6, 0xAAAA))
        assert netcache.read_value(res.packet) == 999


class TestNetChain:
    def test_sequencer_monotonic(self):
        pipe, ctl = fresh()
        ctl.load_module(7, netchain.P4_SOURCE)
        netchain.install(Tenant.attach(ctl, 7), port=3)
        seqs = [netchain.read_seq(
            pipe.process(netchain.make_packet(7)).packet)
            for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_egress_from_entry(self):
        pipe, ctl = fresh()
        ctl.load_module(7, netchain.P4_SOURCE)
        netchain.install(Tenant.attach(ctl, 7), port=3)
        assert pipe.process(netchain.make_packet(7)).egress_port == 3


class TestMulticast:
    def test_replication(self):
        pipe, ctl = fresh()
        pipe.traffic_manager.set_mcast_group(5, [1, 2, 3])
        ctl.load_module(8, multicast.P4_SOURCE)
        multicast.install(Tenant.attach(ctl, 8), groups=[("224.0.0.7", 5)])
        res = pipe.process(multicast.make_packet(8, "224.0.0.7"))
        assert res.mcast_group == 5
        for port in (1, 2, 3):
            assert pipe.traffic_manager.queue_len(port) == 1
        assert pipe.traffic_manager.queue_len(0) == 0

    def test_non_group_traffic_unicast(self):
        pipe, ctl = fresh()
        pipe.traffic_manager.set_mcast_group(5, [1, 2])
        ctl.load_module(8, multicast.P4_SOURCE)
        multicast.install(Tenant.attach(ctl, 8), groups=[("224.0.0.7", 5)])
        res = pipe.process(multicast.make_packet(8, "10.0.0.9"))
        assert res.mcast_group == 0


class TestRegistry:
    def test_all_eight_present(self):
        assert len(ALL_MODULES) == 8
        assert module_names() == [
            "calc", "firewall", "load_balancer", "qos", "source_routing",
            "netcache", "netchain", "multicast"]

    def test_lookup(self):
        assert module_by_name("calc") is calc
        with pytest.raises(KeyError):
            module_by_name("nope")

    def test_all_modules_compile(self):
        from repro.compiler import compile_module
        for mod in ALL_MODULES:
            compiled = compile_module(mod.P4_SOURCE, mod.NAME)
            assert compiled.table_order, mod.NAME


class TestBehaviorIsolationExperiments:
    """§5.1: run module trios concurrently; each behaves as if alone."""

    def load_trio_a(self):
        pipe, ctl = fresh()
        ctl.load_module(1, calc.P4_SOURCE, "calc")
        calc.install(Tenant.attach(ctl, 1), port=1)
        ctl.load_module(2, firewall.P4_SOURCE, "firewall")
        firewall.install(Tenant.attach(ctl, 2), blocked=[("10.0.0.66", 53)],
                                 allowed=[("10.0.0.1", 80, 4)])
        ctl.load_module(3, netcache.P4_SOURCE, "netcache")
        netcache.install(Tenant.attach(ctl, 3), cached=[(0xAAAA, 0, 42)])
        return pipe, ctl

    def test_calc_firewall_netcache_concurrently(self):
        pipe, _ = self.load_trio_a()
        # Interleave all three modules' traffic.
        for _round in range(3):
            r = pipe.process(calc.make_packet(1, calc.OP_ADD, 10, 5))
            assert calc.read_result(r.packet) == 15
            r = pipe.process(firewall.make_packet(2, "10.0.0.66", 53))
            assert r.dropped
            r = pipe.process(firewall.make_packet(2, "10.0.0.1", 80))
            assert r.egress_port == 4
            r = pipe.process(netcache.make_get(3, 0xAAAA))
            assert netcache.read_value(r.packet) == 42

    def test_trio_a_matches_solo_behavior(self):
        # Golden run: each module alone.
        solo_results = []
        for loader, pkt_maker, reader in [
            (lambda c: (c.load_module(1, calc.P4_SOURCE),
                        calc.install(Tenant.attach(c, 1))),
             lambda: calc.make_packet(1, calc.OP_SUB, 9, 4),
             lambda r: calc.read_result(r.packet)),
        ]:
            pipe, ctl = fresh()
            loader(ctl)
            solo_results.append(reader(pipe.process(pkt_maker())))
        # Mixed run.
        pipe, _ = self.load_trio_a()
        pipe.process(netcache.make_get(3, 0xAAAA))
        mixed = calc.read_result(
            pipe.process(calc.make_packet(1, calc.OP_SUB, 9, 4)).packet)
        pipe.process(firewall.make_packet(2, "10.0.0.66", 53))
        assert [mixed] == solo_results

    def test_lb_sourcerouting_netchain_concurrently(self):
        pipe, ctl = fresh()
        ctl.load_module(1, load_balancer.P4_SOURCE, "lb")
        load_balancer.install(Tenant.attach(ctl, 1),
                                      flows=[("10.0.0.1", 1111, 2, 8001)])
        ctl.load_module(2, source_routing.P4_SOURCE, "sr")
        source_routing.install(Tenant.attach(ctl, 2))
        ctl.load_module(3, netchain.P4_SOURCE, "chain")
        netchain.install(Tenant.attach(ctl, 3), port=6)

        for expected_seq in (1, 2, 3):
            r = pipe.process(load_balancer.make_packet(1, "10.0.0.1", 1111))
            assert r.egress_port == 2
            r = pipe.process(source_routing.make_packet(2, 7))
            assert r.egress_port == 7
            r = pipe.process(netchain.make_packet(3))
            assert netchain.read_seq(r.packet) == expected_seq


class TestWithSystemModule:
    def test_all_modules_compile_against_user_target(self):
        from repro.compiler import CompilerOptions, compile_module
        pipe, ctl = fresh()
        Switch(controller=ctl).install_system(routes={"10.0.0.2": 3})
        target = ctl.compile_target()
        for mod in ALL_MODULES:
            compiled = compile_module(
                mod.P4_SOURCE, mod.NAME, CompilerOptions(target=target))
            assert set(compiled.stages_used()) <= {1, 2, 3}, mod.NAME

    def test_system_routing_applies_to_module_traffic(self):
        pipe, ctl = fresh()
        Switch(controller=ctl).install_system(vip_map={"10.99.0.5": "10.0.0.2"},
                            routes={"10.0.0.2": 3})
        ctl.load_module(4, calc.P4_SOURCE)
        calc.install(Tenant.attach(ctl, 4))
        from repro.modules.base import common_packet
        payload = (calc.OP_ADD.to_bytes(2, "big") + (40).to_bytes(4, "big")
                   + (2).to_bytes(4, "big") + (0).to_bytes(4, "big"))
        res = pipe.process(common_packet(4, payload, dst="10.99.0.5"))
        assert res.egress_port == 3  # system route decided the port
        assert calc.read_result(res.packet) == 42  # module logic ran too
        assert str(parse_layers(res.packet)["ipv4"].dst) == "10.0.0.2"

    def test_tenant_counters_per_module(self):
        pipe, ctl = fresh()
        Switch(controller=ctl).install_system(
            vip_map={"10.99.0.5": "10.0.0.2", "10.99.0.6": "10.0.0.2"},
            routes={"10.0.0.2": 1})
        # counter_index defaults to 0 for both vips; use explicit indexes
        # through install order instead: re-install with indexes.
        pipe2, ctl2 = fresh()
        Switch(controller=ctl2).install_system(
            routes={"10.0.0.2": 1}, vip_map={"10.99.0.5": "10.0.0.2"},
            counter_index={"10.99.0.5": 3})
        ctl2.load_module(4, calc.P4_SOURCE)
        calc.install(Tenant.attach(ctl2, 4))
        from repro.modules.base import common_packet
        payload = (calc.OP_ECHO.to_bytes(2, "big") + (1).to_bytes(4, "big")
                   + (0).to_bytes(4, "big") + (0).to_bytes(4, "big"))
        pipe2.process(common_packet(4, payload, dst="10.99.0.5"))
        pipe2.process(common_packet(4, payload, dst="10.99.0.5"))
        assert ctl2.register_read(0, "tenant_counters", 3) == 2
