"""Tests for the compiler frontend: lexer, parser, typecheck."""

import pytest

from repro.compiler.lexer import Token, TokenKind, parse_number, tokenize
from repro.compiler.parser import parse_source
from repro.compiler.typecheck import typecheck
from repro.errors import LexerError, ParseError, TypeCheckError

COMMON_HEADERS = """
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header vlan_t { bit<16> tci; bit<16> etherType; }
header ipv4_t {
    bit<16> ver_ihl_tos; bit<16> totalLen; bit<16> identification;
    bit<16> flags_frag; bit<8> ttl; bit<8> protocol; bit<16> checksum;
    bit<32> srcAddr; bit<32> dstAddr;
}
header udp_t { bit<16> srcPort; bit<16> dstPort; bit<16> length; bit<16> checksum; }
"""

COMMON_PARSE = """
parser P(packet_in packet, out headers_t hdr) {
    state start {
        packet.extract(hdr.ethernet);
        packet.extract(hdr.vlan);
        packet.extract(hdr.ipv4);
        packet.extract(hdr.udp);
        transition accept;
    }
}
"""


def minimal_module(control_body: str, extra_headers: str = "",
                   extra_struct: str = "") -> str:
    return (COMMON_HEADERS + extra_headers + f"""
struct headers_t {{
    ethernet_t ethernet; vlan_t vlan; ipv4_t ipv4; udp_t udp; {extra_struct}
}}
""" + COMMON_PARSE + f"""
control C(inout headers_t hdr) {{
{control_body}
}}
""")


SIMPLE_CONTROL = """
    action set_port(bit<16> port) { standard_metadata.egress_spec = port; }
    table t { key = { hdr.ipv4.dstAddr: exact; } actions = { set_port; } size = 4; }
    apply { t.apply(); }
"""


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("header foo { bit<16> x; } // comment")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == TokenKind.KEYWORD
        assert kinds[1] == TokenKind.IDENT
        assert kinds[-1] == TokenKind.EOF

    def test_numbers(self):
        assert parse_number(tokenize("42")[0]) == 42
        assert parse_number(tokenize("0x2A")[0]) == 42
        assert parse_number(tokenize("8w42")[0]) == 42
        assert parse_number(tokenize("16w0xF1F2")[0]) == 0xF1F2

    def test_block_comment(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexerError):
            tokenize("a /* never ends")

    def test_bad_character(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")

    def test_two_char_punct(self):
        tokens = tokenize("a == b != c >= d")
        punct = [t.value for t in tokens if t.kind == TokenKind.PUNCT]
        assert punct == ["==", "!=", ">="]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3


class TestParser:
    def test_full_module_parses(self):
        program = parse_source(minimal_module(SIMPLE_CONTROL))
        assert "ethernet_t" in program.headers
        assert program.parser is not None
        assert program.control is not None
        assert len(program.control.tables) == 1
        assert program.control.tables[0].size == 4

    def test_header_fields(self):
        program = parse_source(minimal_module(SIMPLE_CONTROL))
        eth = program.headers["ethernet_t"]
        assert [f.name for f in eth.fields] == ["dstAddr", "srcAddr",
                                                "etherType"]
        assert eth.width_bytes == 14

    def test_const_declaration(self):
        src = "const bit<16> MAGIC = 0xBEEF;" + minimal_module(SIMPLE_CONTROL)
        program = parse_source(src)
        assert program.consts["MAGIC"].value == 0xBEEF

    def test_select_transition(self):
        src = minimal_module(SIMPLE_CONTROL).replace(
            "transition accept;",
            """transition select(hdr.ethernet.etherType) {
                0x8100: accept;
                default: accept;
            }""")
        program = parse_source(src)
        start = program.parser.states[0]
        assert start.transition.select_expr is not None
        assert len(start.transition.cases) == 2

    def test_register_declaration(self):
        control = """
    register<bit<32>>(16) counters;
""" + SIMPLE_CONTROL
        program = parse_source(minimal_module(control))
        reg = program.control.registers[0]
        assert reg.name == "counters"
        assert reg.width_bits == 32
        assert reg.size == 16

    def test_if_else_in_apply(self):
        control = """
    action a() { hdr.ipv4.identification = 1; }
    table t1 { key = { hdr.ipv4.srcAddr: exact; } actions = { a; } size = 2; }
    table t2 { key = { hdr.ipv4.dstAddr: exact; } actions = { a; } size = 2; }
    apply {
        if (hdr.udp.srcPort > 1024) { t1.apply(); } else { t2.apply(); }
    }
"""
        program = parse_source(minimal_module(control))
        from repro.compiler.ast_nodes import IfStmt
        stmt = program.control.apply_body[0]
        assert isinstance(stmt, IfStmt)
        assert stmt.condition.op == ">"
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_action_params(self):
        program = parse_source(minimal_module(SIMPLE_CONTROL))
        action = program.control.actions[0]
        assert action.params[0].name == "port"
        assert action.params[0].type_name == "bit<16>"

    def test_syntax_errors(self):
        for bad in [
            "header x {",                       # unterminated
            "header x { bit<16> f }",           # missing semicolon
            "control C() { apply { } } banana", # trailing garbage
            "parser P() { state start { } }",   # state without transition
        ]:
            with pytest.raises(ParseError):
                parse_source(bad)

    def test_duplicate_header_rejected(self):
        src = "header a_t { bit<16> x; } header a_t { bit<16> y; }"
        with pytest.raises(ParseError):
            parse_source(src)

    def test_default_action_clause(self):
        control = """
    action nop() { hdr.ipv4.identification = 0; }
    table t {
        key = { hdr.ipv4.dstAddr: exact; }
        actions = { nop; }
        size = 2;
        default_action = nop();
    }
    apply { t.apply(); }
"""
        program = parse_source(minimal_module(control))
        assert program.control.tables[0].default_action == "nop"


class TestTypecheck:
    def test_field_offsets(self):
        env = typecheck(parse_source(minimal_module(SIMPLE_CONTROL)))
        # eth(14) + vlan(4) = 18 -> ipv4 base; dstAddr at +16
        assert env.fields["hdr.ipv4.dstAddr"].byte_offset == 34
        assert env.fields["hdr.udp.dstPort"].byte_offset == 40
        assert env.fields["hdr.ethernet.dstAddr"].byte_offset == 0
        assert env.header_offsets["hdr.udp"] == 38

    def test_extract_order(self):
        env = typecheck(parse_source(minimal_module(SIMPLE_CONTROL)))
        assert env.extract_order == ["hdr.ethernet", "hdr.vlan", "hdr.ipv4",
                                     "hdr.udp"]

    def test_select_single_target_ok(self):
        src = minimal_module(SIMPLE_CONTROL).replace(
            "transition accept;",
            """transition select(hdr.udp.dstPort) {
                100: accept;
                default: reject;
            }""")
        env = typecheck(parse_source(src))
        assert env.extract_order[-1] == "hdr.udp"

    def test_branching_select_rejected(self):
        extra = "header a_t { bit<16> x; }"
        src = minimal_module(SIMPLE_CONTROL, extra_headers=extra,
                             extra_struct="a_t a;")
        src = src.replace(
            "transition accept;",
            """transition select(hdr.udp.dstPort) {
                1: parse_a;
                default: accept;
            }
        }
        state parse_a { packet.extract(hdr.a); transition accept;""")
        # one non-default case: allowed, follows parse_a
        env = typecheck(parse_source(src))
        assert "hdr.a" in env.extract_order

    def test_truly_branching_select_rejected(self):
        extra = "header a_t { bit<16> x; } header b_t { bit<16> y; }"
        src = minimal_module(SIMPLE_CONTROL, extra_headers=extra,
                             extra_struct="a_t a; b_t b;")
        src = src.replace(
            "transition accept;",
            """transition select(hdr.udp.dstPort) {
                1: parse_a;
                2: parse_b;
            }
        }
        state parse_a { packet.extract(hdr.a); transition accept; }
        state parse_b { packet.extract(hdr.b); transition accept;""")
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(src))

    def test_parser_loop_detected(self):
        src = minimal_module(SIMPLE_CONTROL).replace(
            "transition accept;", "transition start;")
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(src))

    def test_unknown_key_field(self):
        control = SIMPLE_CONTROL.replace("hdr.ipv4.dstAddr", "hdr.ipv4.nope")
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(minimal_module(control)))

    def test_unknown_action_in_table(self):
        control = SIMPLE_CONTROL.replace("actions = { set_port; }",
                                         "actions = { missing; }")
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(minimal_module(control)))

    def test_unaligned_key_field_rejected(self):
        # ttl is 8 bits: not container-mappable.
        control = SIMPLE_CONTROL.replace("hdr.ipv4.dstAddr: exact;",
                                         "hdr.ipv4.ttl: exact;")
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(minimal_module(control)))

    def test_metadata_key_rejected(self):
        control = SIMPLE_CONTROL.replace(
            "hdr.ipv4.dstAddr: exact;",
            "standard_metadata.ingress_port: exact;")
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(minimal_module(control)))

    def test_unknown_metadata_field(self):
        control = SIMPLE_CONTROL.replace("egress_spec", "banana")
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(minimal_module(control)))

    def test_register_ops_checked(self):
        control = """
    register<bit<32>>(8) reg;
    action load_it() { reg.read(hdr.ipv4.identification, 0); }
    table t { key = { hdr.udp.dstPort: exact; } actions = { load_it; } size = 2; }
    apply { t.apply(); }
"""
        env = typecheck(parse_source(minimal_module(control)))
        assert "reg" in env.registers

    def test_unknown_register_rejected(self):
        control = """
    action load_it() { ghost.read(hdr.ipv4.identification, 0); }
    table t { key = { hdr.udp.dstPort: exact; } actions = { load_it; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(minimal_module(control)))

    def test_apply_of_unknown_table(self):
        control = """
    action a() { hdr.ipv4.identification = 1; }
    table t { key = { hdr.udp.dstPort: exact; } actions = { a; } size = 2; }
    apply { ghost.apply(); }
"""
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(minimal_module(control)))

    def test_table_without_key_rejected(self):
        control = """
    action a() { hdr.ipv4.identification = 1; }
    table t { actions = { a; } size = 2; }
    apply { t.apply(); }
"""
        with pytest.raises(TypeCheckError):
            typecheck(parse_source(minimal_module(control)))
