"""Live fabric-wide tenant lifecycle.

``FabricTenant``'s lifecycle no longer ends at ``place()``: the
runtime controller's §4.1 load/update/unload procedures fan out across
the tenant's route mid-run (:meth:`~repro.fabric.tenant.FabricTenant.
update` / :meth:`~repro.fabric.tenant.FabricTenant.unload` /
:meth:`~repro.fabric.tenant.FabricTenant.migrate`), and
:class:`repro.sim.FabricReconfigEvent` +
:class:`repro.traffic.ChurnSchedule` fire those actions inside a
running event-driven timeline. These tests pin the semantics: the
churned tenant takes exactly its own disruption; neighbors never lose
a packet or a share.
"""

import pytest

from repro.errors import AdmissionError, CompilerError, ConfigError, \
    PlacementError
from repro.fabric import leaf_spine
from repro.modules import calc
from repro.sim import FabricTimelineExperiment
from repro.traffic import ChurnSchedule, TrafficMatrix

HOSTS = 4
PACKET_SIZE = 500


def installer(tenant, port):
    calc.install(tenant, port=port)


def make_fabric(leaves=2, spines=1):
    return leaf_spine(leaves=leaves, spines=spines, hosts_per_leaf=HOSTS)


def place_calc(fabric, vid, src, dst):
    tenant = fabric.tenant(f"calc{vid}", calc.P4_SOURCE, vid=vid,
                           installer=installer)
    tenant.place(src, dst)
    return tenant


def _packet(vid, i=0):
    return calc.make_packet(vid, calc.OP_ADD, i, i + 1,
                            pad_to=PACKET_SIZE)


def _delivers(fabric, vid, n=3):
    result = fabric.process_batch(
        [("leaf0", _packet(vid, i)) for i in range(n)])
    return len(result.delivered_for(vid)) == n and not result.lost


# ------------------------------------------------------------------ update

class TestUpdate:
    def test_update_fans_out_across_the_route(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        assert _delivers(fabric, 1)
        tenant.update(calc.P4_SOURCE)
        # Program and steering entries are re-landed on all 3 switches;
        # end-to-end computation still works.
        result = fabric.process_batch([("leaf0", _packet(1, 20))])
        out = result.delivered_for(1)
        assert len(out) == 1
        assert calc.read_result(out[0]) == 41
        assert tenant.switches() == ["leaf0", "spine0", "leaf1"]

    def test_update_is_hitless_for_neighbors(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 0))
        neighbor = place_calc(fabric, 2, ("leaf0", 1), ("leaf1", 1))
        before = neighbor.counters().packets_dropped
        tenant.update(calc.P4_SOURCE)
        assert _delivers(fabric, 2)
        assert neighbor.counters().packets_dropped == before

    def test_update_can_swap_the_installer(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        seen = []

        def tracking_installer(handle, port):
            seen.append((handle.switch, port))
            calc.install(handle, port=port)

        tenant.update(calc.P4_SOURCE, installer=tracking_installer)
        # Installer re-ran everywhere with each switch's recorded
        # egress: leaf0 -> uplink, spine0 -> toward leaf1, leaf1 -> host.
        assert len(seen) == 3
        assert tenant.installer is tracking_installer
        assert _delivers(fabric, 1)

    def test_failed_update_leaves_tenant_and_switches_unchanged(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        with pytest.raises(CompilerError):
            tenant.update("definitely not P4")
        # Compilation fails before any teardown: the switches still run
        # the old program and the tenant object still claims it.
        assert tenant.source == calc.P4_SOURCE
        assert tenant.installer is installer
        assert _delivers(fabric, 1)

    def test_mid_route_update_failure_rolls_back(self, monkeypatch):
        # The source compiles, but one switch's reinstall is rejected
        # after its teardown already ran (the §4.1 install half can
        # fail on fragmentation). The fan-out must restore the old
        # program everywhere — never leave the route mixed, with one
        # switch empty.
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        spine_handle = tenant.handle("spine0")

        def torn_down_then_rejected(source):
            spine_handle._controller.unload_module(1)
            raise AdmissionError("no contiguous CAM block free")

        monkeypatch.setattr(spine_handle, "update",
                            torn_down_then_rejected)
        with pytest.raises(AdmissionError):
            tenant.update(calc.P4_SOURCE)
        # All three switches serve the old program again (spine0 was
        # re-admitted; leaf0 — updated before the failure — was
        # updated back), and the object still reports it.
        assert tenant.source == calc.P4_SOURCE
        assert sorted(tenant.switches()) == ["leaf0", "leaf1", "spine0"]
        for member in fabric.switches():
            assert 1 in member.switch.controller.modules
        assert _delivers(fabric, 1)

    def test_update_before_place_is_a_typed_error(self):
        fabric = make_fabric()
        tenant = fabric.tenant("calc", calc.P4_SOURCE, vid=1,
                               installer=installer)
        with pytest.raises(PlacementError, match="not placed"):
            tenant.update(calc.P4_SOURCE)


# ------------------------------------------------------------------ unload

class TestUnload:
    def test_unload_releases_every_switch_and_the_vid(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        slots = {m.name: m.free_module_slots() for m in fabric.switches()}
        tenant.unload()
        assert tenant.switches() == []
        assert tenant.routes == []
        assert fabric.tenants() == []
        for member in fabric.switches():
            assert member.free_module_slots() == slots[member.name] + 1
        # The VID is free fabric-wide: a new tenant claims it.
        replacement = place_calc(fabric, 1, ("leaf0", 2), ("leaf1", 2))
        assert replacement.switches() == ["leaf0", "spine0", "leaf1"]

    def test_unloaded_tenants_packets_drop_as_unknown(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        tenant.unload()
        result = fabric.process_batch([("leaf0", _packet(1))])
        assert result.delivered_for(1) == []
        assert result.dropped.get(1, 0) == 1

    def test_unload_purges_queued_egress(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        leaf0 = fabric.switch("leaf0")
        leaf0.engine.process_batch([_packet(1, i) for i in range(5)])
        assert leaf0.scheduler.total_queued() == 5
        tenant.unload()
        # Queued packets must not transmit under a dead VID, and the
        # scheduler forgets the tenant's weight/rate state and its
        # telemetry — the next tenant on this VID starts from zero.
        assert leaf0.scheduler.total_queued() == 0
        assert leaf0.scheduler.weight_of(1) == 1.0
        assert leaf0.scheduler.rate_limit_of(1) is None
        assert 1 not in leaf0.scheduler.per_tenant


# ------------------------------------------------------------------ migrate

class TestMigrate:
    def _placed(self):
        fabric = make_fabric(leaves=3)
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 1))
        neighbor = place_calc(fabric, 2, ("leaf0", 1), ("leaf1", 2))
        return fabric, tenant, neighbor

    def test_migrate_moves_the_route_and_evicts_the_tail(self):
        fabric, tenant, _ = self._placed()
        leaf1_slots = fabric.switch("leaf1").free_module_slots()
        path = tenant.migrate(dst=("leaf2", 2))
        assert path == ["leaf0", "spine0", "leaf2"]
        assert tenant.routes == [path]
        assert sorted(tenant.switches()) == ["leaf0", "leaf2", "spine0"]
        # leaf1 released its slot; leaf2 now hosts the program.
        assert fabric.switch("leaf1").free_module_slots() == \
            leaf1_slots + 1
        result = fabric.process_batch([("leaf0", _packet(1, 7))])
        deliveries = [d for d in result.delivered if d.vid == 1]
        assert [(d.switch, d.port) for d in deliveries] == [("leaf2", 2)]
        assert calc.read_result(deliveries[0].packet) == 15

    def test_migrate_resteers_shared_switches(self):
        fabric, tenant, _ = self._placed()
        spine = fabric.switch("spine0")
        before = tenant.handle("spine0")
        tenant.migrate(dst=("leaf2", 2))
        # spine0 was on both routes but its next hop changed: the §4.1
        # update re-landed the program there (same VID, new steering).
        assert 1 in spine.switch.controller.modules
        assert tenant._egress["spine0"] == 2  # spine port 2 faces leaf2
        assert tenant.handle("spine0") is before

    def test_migrate_is_hitless_for_neighbors(self):
        fabric, tenant, neighbor = self._placed()
        tenant.migrate(dst=("leaf2", 2))
        assert _delivers(fabric, 2)
        assert neighbor.switches() == ["leaf0", "spine0", "leaf1"]

    def test_migrate_validates_before_mutating(self):
        fabric, tenant, _ = self._placed()
        with pytest.raises(PlacementError, match="fabric port"):
            tenant.migrate(dst=("leaf2", HOSTS))  # an uplink, not a host
        # Old placement intact after the failed migration.
        assert tenant.routes == [["leaf0", "spine0", "leaf1"]]
        assert _delivers(fabric, 1)

    def test_failed_admission_rolls_back_new_switches(self):
        # leaf2 keeps free VID slots (passing the slot pre-check) but
        # its CAM is exhausted, so admission fails *after* spine1 —
        # also new on the pinned route — was already admitted. The
        # migration must evict spine1 again and leave the old
        # placement fully intact.
        fabric = leaf_spine(leaves=3, spines=2, hosts_per_leaf=HOSTS)
        tenant = fabric.tenant("calc30", calc.P4_SOURCE, vid=30,
                               installer=installer)
        tenant.place(("leaf0", 0), ("leaf1", 0), via=("spine0",))
        leaf2 = fabric.switch("leaf2")
        for vid in range(1, 32):
            try:
                leaf2.switch.admit(f"filler{vid}", calc.P4_SOURCE,
                                   vid=vid)
            except AdmissionError:
                break  # CAM-bound before the VID slots run out
        assert leaf2.free_module_slots() > 0
        spine1_slots = fabric.switch("spine1").free_module_slots()
        with pytest.raises(AdmissionError):
            tenant.migrate(dst=("leaf2", 0), via=("spine1",))
        assert fabric.switch("spine1").free_module_slots() == \
            spine1_slots
        assert 30 not in fabric.switch("spine1").switch.controller.modules
        assert tenant.routes == [["leaf0", "spine0", "leaf1"]]
        assert sorted(tenant.switches()) == ["leaf0", "leaf1", "spine0"]
        assert _delivers(fabric, 30)

    def test_migrate_requires_exactly_one_route(self):
        fabric = make_fabric()
        tenant = fabric.tenant("calc", calc.P4_SOURCE, vid=1,
                               installer=installer)
        with pytest.raises(PlacementError, match="exactly one"):
            tenant.migrate(dst=("leaf1", 0))
        tenant.place(("leaf0", 0), ("leaf1", 0))
        tenant.place(("leaf0", 1), ("leaf1", 0))  # second agreeing demand
        with pytest.raises(PlacementError, match="exactly one"):
            tenant.migrate(dst=("leaf1", 2))


# ------------------------------------------- reconfiguration mid-timeline

def _matrix(vids, pps=2e5):
    matrix = TrafficMatrix()
    for vid in vids:
        matrix.add(vid, ("leaf0", vid - 1), ("leaf1", vid - 1),
                   offered_bps=pps * (PACKET_SIZE + 24) * 8,
                   packet_size=PACKET_SIZE,
                   make_packet=lambda vid=vid: _packet(vid))
    return matrix


class TestFabricReconfigEvent:
    def test_window_drops_exactly_the_churned_tenant(self):
        fabric = make_fabric()
        place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 0))
        place_calc(fabric, 2, ("leaf0", 1), ("leaf1", 1))
        experiment = FabricTimelineExperiment(
            fabric, _matrix([1, 2]), duration_s=1e-3, bin_s=1e-4)
        experiment.schedule_reconfig(vid=2, start_s=4e-4,
                                     duration_s=2e-4)
        result = experiment.run()
        # Tenant 2 lost packets during its §4.1 window; tenant 1 kept
        # every one of its own.
        assert result.drops.get(2, 0) > 0
        assert result.drops.get(1, 0) == 0
        assert result.delivered[1] > 0
        assert result.lost_records() == []
        # And the window closed: no lingering bitmap bit.
        for member in fabric.switches():
            assert not member.switch.pipeline.packet_filter \
                .is_module_updating(2)

    def test_live_update_fires_inside_the_run(self):
        fabric = make_fabric()
        tenant = place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 0))
        fired = []
        experiment = FabricTimelineExperiment(
            fabric, _matrix([1]), duration_s=1e-3, bin_s=1e-4)
        experiment.schedule_reconfig(
            vid=1, start_s=5e-4, duration_s=1e-4,
            apply=lambda: fired.append(
                tenant.update(calc.P4_SOURCE) and None))
        result = experiment.run()
        assert fired == [None]
        # Disrupted during its own window, serving before and after.
        assert result.delivered[1] > 0
        assert result.drops.get(1, 0) > 0


    def test_overlapping_windows_hold_until_the_last_ends(self):
        # Two overlapping §4.1 windows for the same tenant must cover
        # their union: the earlier close must not truncate the later
        # window. Windows [2, 4) ms and [3, 5) ms at 200 packets/ms
        # drop the 3 ms union's worth of arrivals (plus at most a
        # couple of packets already in flight mid-route when the
        # window opened) — a truncated window would drop only ~2 ms
        # worth (~400).
        fabric = make_fabric()
        place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 0))
        experiment = FabricTimelineExperiment(
            fabric, _matrix([1]), duration_s=8e-3, bin_s=1e-3)
        experiment.schedule_reconfig(vid=1, start_s=2e-3,
                                     duration_s=2e-3)
        experiment.schedule_reconfig(vid=1, start_s=3e-3,
                                     duration_s=2e-3)
        result = experiment.run()
        offered = 8e-3 * 2e5
        assert 600 <= result.drops[1] <= 605
        assert result.delivered[1] + result.drops[1] == offered


class TestChurnScheduleBinding:
    def test_events_fire_in_order_at_their_times(self):
        fabric = make_fabric()
        place_calc(fabric, 1, ("leaf0", 0), ("leaf1", 0))
        schedule = ChurnSchedule()
        schedule.update(1, at_s=3e-4, duration_s=1e-4)
        schedule.depart(1, at_s=8e-4)
        experiment = FabricTimelineExperiment(
            fabric, _matrix([1]), duration_s=1e-3, bin_s=1e-4)
        log = []
        experiment.schedule_churn(
            schedule, apply=lambda ev: log.append((ev.kind, ev.time_s)))
        experiment.run()
        assert log == [("update", 3e-4), ("depart", 8e-4)]


class TestChurnSchedule:
    def test_kind_validation(self):
        schedule = ChurnSchedule()
        with pytest.raises(ConfigError, match="unknown churn kind"):
            schedule.add("explode", 1, 0.0)
        with pytest.raises(ConfigError):
            schedule.arrive(1, at_s=-1.0)
        with pytest.raises(ConfigError):
            schedule.update(1, at_s=0.0, duration_s=-0.1)

    def test_staggered_generator_is_deterministic(self):
        schedule = ChurnSchedule.staggered(
            [1, 2, 3], start_s=0.0, gap_s=1.0, update_after_s=0.5,
            lifetime_s=2.0, window_s=0.1)
        assert len(schedule) == 9
        assert schedule.churned_vids() == [1, 2, 3]
        kinds = [e.kind for e in schedule.for_vid(2)]
        assert kinds == ["arrive", "update", "depart"]
        assert schedule.window(2, "update") == (1.5, 1.6)
        assert schedule.window(3) == (2.0, 4.0)
        with pytest.raises(ConfigError, match="no churn events"):
            schedule.window(9)

    def test_sorted_events_order(self):
        schedule = ChurnSchedule()
        schedule.depart(2, at_s=5.0)
        schedule.arrive(1, at_s=1.0)
        assert [e.vid for e in schedule.sorted_events()] == [1, 2]