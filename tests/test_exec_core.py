"""The unified execution core (:mod:`repro.exec`).

The packet-for-packet equivalence of the refactored frontends is
enforced by the existing differential suites
(``tests/test_fabric_differential.py``,
``tests/test_engine_differential.py``); this file covers the core's
own surface — departure routing against stub topologies, the timing
policies' guard rails — and the unified lost-traffic reporting: the
untimed wave path and the event-driven timeline must report the *same*
typed :class:`repro.exec.LostRecord` set for the same dropped traffic.
"""

from types import SimpleNamespace

import pytest

from repro.errors import FabricError
from repro.exec import (
    ExecutionCore,
    ExecutionSink,
    LostRecord,
    SwitchMember,
    summarize_lost,
    vid_of,
)
from repro.fabric import leaf_spine
from repro.modules import calc
from repro.net.packet import Packet
from repro.sim import FabricTimelineExperiment
from repro.traffic import TrafficMatrix

PACKET_SIZE = 1000
HOSTS = 4


# ---------------------------------------------------------------- stubs

class _RecordingSink(ExecutionSink):
    def __init__(self):
        self.delivered = []
        self.lost = []

    def on_deliver(self, member, port, vid, packet, time):
        self.delivered.append((member, port, vid, time))

    def on_lost(self, member, port, vid, packet, link, time):
        self.lost.append((member, port, vid, link, time))


class _StubLink:
    def __init__(self, name="leafA:1—leafB:2", up=True, delay_s=2e-6):
        self.name = name
        self.up = up
        self.delay_s = delay_s
        self.recorded = []

    def record(self, vid, nbytes):
        self.recorded.append((vid, nbytes))

    def other_end(self, _name):
        return SimpleNamespace(switch="leafB", port=2)


def _stub_member(links):
    return SimpleNamespace(name="leafA", links=links, engine=None,
                           scheduler=None, num_ports=4)


def _packet(vid=1, i=0):
    return calc.make_packet(vid, calc.OP_ADD, i, i + 1,
                            pad_to=PACKET_SIZE)


# ---------------------------------------------------------------- routing

class TestRouting:
    def test_host_port_delivers(self):
        sink = _RecordingSink()
        member = _stub_member(links={})
        core = ExecutionCore([member], sink=sink)
        assert core.route(member, 3, _packet(), vid=1, time=0.5) is None
        assert sink.delivered == [("leafA", 3, 1, 0.5)]

    def test_down_link_loses_with_link_name(self):
        sink = _RecordingSink()
        link = _StubLink(up=False)
        member = _stub_member(links={1: link})
        core = ExecutionCore([member], sink=sink)
        assert core.route(member, 1, _packet(), vid=7) is None
        assert sink.lost == [("leafA", 1, 7, link.name, 0.0)]
        assert link.recorded == []  # lost traffic carries no bytes

    def test_up_link_forwards_with_rewrite_and_accounting(self):
        link = _StubLink(up=True, delay_s=3e-6)
        member = _stub_member(links={1: link})
        core = ExecutionCore([member])
        packet = _packet(vid=5)
        target = core.route(member, 1, packet, vid=5, time=1.0)
        assert target == ("leafB", packet, 1.0 + 3e-6)
        assert packet.ingress_port == 2  # remote end's port
        assert link.recorded == [(5, len(packet))]

    def test_timed_forwarding_without_a_simulator_is_an_error(self):
        member = _stub_member(links={1: _StubLink()})
        core = ExecutionCore([member])  # sim=None
        dep = SimpleNamespace(port=1, packet=_packet(), module_id=1,
                              time=0.0)
        with pytest.raises(FabricError, match="no simulator"):
            core.route_departures(member, [dep])

    def test_unknown_member_is_a_typed_error(self):
        core = ExecutionCore([_stub_member(links={})])
        with pytest.raises(FabricError, match="stranger"):
            core.member("stranger")

    def test_vid_of_falls_back_to_system_vid(self):
        assert vid_of(Packet(bytes(64))) == 0
        assert vid_of(_packet(vid=9)) == 9


class TestAdapters:
    def test_switch_member_is_a_degenerate_topology(self):
        scheduler = SimpleNamespace(num_ports=6)
        member = SwitchMember("sw", engine=None, scheduler=scheduler)
        assert member.num_ports == 6
        assert member.links == {}
        assert "sw" in repr(member)

    def test_default_sink_observes_nothing(self):
        sink = ExecutionSink()  # every hook is a no-op
        sink.on_result("m", None)
        sink.on_drop(1)
        sink.on_deliver("m", 0, 1, _packet(), 0.0)
        sink.on_lost("m", 0, 1, _packet(), "l", 0.0)


class TestSummarizeLost:
    def test_aggregates_and_orders(self):
        records = summarize_lost([(2, "l1"), (1, "l0"), (2, "l1"),
                                  (1, "l1")])
        assert records == [LostRecord(1, "l0", 1), LostRecord(1, "l1", 1),
                           LostRecord(2, "l1", 2)]


# ------------------------------------------- lost-record unification gate

def _lossy_fabric():
    """2-leaf/1-spine with one tenant whose uplink fails post-placement."""
    fabric = leaf_spine(leaves=2, spines=1, hosts_per_leaf=HOSTS)
    tenant = fabric.tenant(
        "calc", calc.P4_SOURCE, vid=1,
        installer=lambda t, port: calc.install(t, port=port))
    tenant.place(("leaf0", 0), ("leaf1", 1))
    fabric.set_link_state("leaf0", "spine0", up=False)
    return fabric


class TestLostRecordUnification:
    """The satellite contract: both serving paths, one loss shape."""

    N = 20

    def test_wave_and_timeline_paths_agree_on_dropped_traffic(self):
        # Untimed waves.
        wave_result = _lossy_fabric().process_batch(
            [("leaf0", _packet(i=i)) for i in range(self.N)])
        # Event-driven timeline offering exactly N packets: one demand,
        # phase = gap/2, so floor((duration - gap/2)/gap) + 1 = N.
        pps = 1e6
        matrix = TrafficMatrix()
        matrix.add(1, ("leaf0", 0), ("leaf1", 1),
                   offered_bps=pps * (PACKET_SIZE + 24) * 8,
                   packet_size=PACKET_SIZE,
                   make_packet=lambda: _packet())
        timeline_result = FabricTimelineExperiment(
            _lossy_fabric(), matrix, duration_s=self.N / pps).run()

        expected = [LostRecord(vid=1, link="leaf0:4—spine0:0",
                               count=self.N)]
        assert wave_result.lost_records() == expected
        assert timeline_result.lost_records() == expected
        # and the legacy shapes stay consistent with the typed one
        assert len(wave_result.lost_for(1)) == self.N
        assert timeline_result.lost[1] == self.N

    def test_healthy_run_reports_no_lost_records(self):
        fabric = leaf_spine(leaves=2, spines=1, hosts_per_leaf=HOSTS)
        tenant = fabric.tenant(
            "calc", calc.P4_SOURCE, vid=1,
            installer=lambda t, port: calc.install(t, port=port))
        tenant.place(("leaf0", 0), ("leaf1", 1))
        result = fabric.process_batch(
            [("leaf0", _packet(i=i)) for i in range(4)])
        assert result.lost_records() == []
        assert len(result.delivered_for(1)) == 4