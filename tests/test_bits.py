"""Unit tests for bit-level packing helpers."""

import pytest

from repro import bits
from repro.errors import EncodingError


class TestMaskAndFits:
    def test_mask_widths(self):
        assert bits.mask(0) == 0
        assert bits.mask(1) == 1
        assert bits.mask(12) == 0xFFF
        assert bits.mask(193) == (1 << 193) - 1

    def test_mask_negative_raises(self):
        with pytest.raises(EncodingError):
            bits.mask(-1)

    def test_check_fits_accepts_boundary(self):
        assert bits.check_fits(0xFFF, 12) == 0xFFF

    def test_check_fits_rejects_overflow(self):
        with pytest.raises(EncodingError):
            bits.check_fits(0x1000, 12)

    def test_check_fits_rejects_negative(self):
        with pytest.raises(EncodingError):
            bits.check_fits(-1, 12)

    def test_check_fits_rejects_non_int(self):
        with pytest.raises(EncodingError):
            bits.check_fits("5", 12)


class TestGetSetBits:
    def test_get_bits(self):
        word = 0b1011_0110
        assert bits.get_bits(word, 1, 3) == 0b011
        assert bits.get_bits(word, 4, 4) == 0b1011

    def test_set_bits_roundtrip(self):
        word = bits.set_bits(0, 5, 3, 0b101)
        assert bits.get_bits(word, 5, 3) == 0b101

    def test_set_bits_clears_previous(self):
        word = bits.set_bits(0xFF, 2, 4, 0)
        assert bits.get_bits(word, 2, 4) == 0

    def test_set_bits_overflow(self):
        with pytest.raises(EncodingError):
            bits.set_bits(0, 0, 2, 4)


class TestByteConversion:
    def test_to_bytes_pads_to_whole_bytes(self):
        # 12-bit value -> 2 bytes
        assert bits.to_bytes(0xABC, 12) == b"\x0a\xbc"

    def test_from_bytes_roundtrip(self):
        for width, value in [(16, 0x1234), (38, 0x3FFFFFFFFF), (193, 1 << 192)]:
            data = bits.to_bytes(value, width)
            assert bits.from_bytes(data, width) == value

    def test_from_bytes_rejects_oversized(self):
        with pytest.raises(EncodingError):
            bits.from_bytes(b"\xff\xff", 12)

    def test_to_bytes_rejects_oversized(self):
        with pytest.raises(EncodingError):
            bits.to_bytes(1 << 16, 16)


class TestConcatSplit:
    def test_concat_msb_first(self):
        # opcode(4)=0xA, c1(5)=0x1F, imm(16)=0xBEEF
        word = bits.concat_fields([(0xA, 4), (0x1F, 5), (0xBEEF, 16)])
        assert word == (0xA << 21) | (0x1F << 16) | 0xBEEF

    def test_split_inverse_of_concat(self):
        fields = [(0x3, 2), (0x15, 7), (0x0, 3), (0x1, 1)]
        word = bits.concat_fields(fields)
        assert bits.split_fields(word, [2, 7, 3, 1]) == [f[0] for f in fields]

    def test_concat_rejects_overflow(self):
        with pytest.raises(EncodingError):
            bits.concat_fields([(4, 2)])

    def test_split_rejects_oversized_word(self):
        with pytest.raises(EncodingError):
            bits.split_fields(1 << 10, [5, 5])


class TestWordLayout:
    def layout(self):
        return bits.WordLayout(16, [
            ("reserved", 3),
            ("bytes_from_head", 7),
            ("container_type", 2),
            ("container_index", 3),
            ("valid", 1),
        ])

    def test_width_mismatch_raises(self):
        with pytest.raises(EncodingError):
            bits.WordLayout(8, [("a", 4), ("b", 3)])

    def test_duplicate_field_raises(self):
        with pytest.raises(EncodingError):
            bits.WordLayout(8, [("a", 4), ("a", 4)])

    def test_pack_unpack_roundtrip(self):
        layout = self.layout()
        word = layout.pack(bytes_from_head=100, container_type=2,
                           container_index=5, valid=1)
        fields = layout.unpack(word)
        assert fields["bytes_from_head"] == 100
        assert fields["container_type"] == 2
        assert fields["container_index"] == 5
        assert fields["valid"] == 1
        assert fields["reserved"] == 0

    def test_msb_first_placement(self):
        layout = self.layout()
        # 'reserved' should occupy the top 3 bits.
        word = layout.pack(reserved=0b111)
        assert word == 0b111 << 13

    def test_pack_unknown_field(self):
        with pytest.raises(EncodingError):
            self.layout().pack(nope=1)

    def test_pack_overflow_names_field(self):
        with pytest.raises(EncodingError, match="container_type"):
            self.layout().pack(container_type=4)

    def test_repack_updates_single_field(self):
        layout = self.layout()
        word = layout.pack(bytes_from_head=10, valid=1)
        word2 = layout.repack(word, bytes_from_head=20)
        fields = layout.unpack(word2)
        assert fields["bytes_from_head"] == 20
        assert fields["valid"] == 1

    def test_describe_offsets(self):
        desc = self.layout().describe()
        assert desc["valid"] == (0, 1)
        assert desc["container_index"] == (1, 3)
        assert desc["container_type"] == (4, 2)
        assert desc["bytes_from_head"] == (6, 7)
        assert desc["reserved"] == (13, 3)
