"""Tests for multi-module tenants (§3.4 compiler extension)."""

import pytest

from repro.api import Tenant
from repro.compiler import CompilerOptions, compile_module_group
from repro.compiler.target import TargetDescription
from repro.core import MenshenPipeline
from repro.errors import AllocationError, CompilerError
from repro.modules import calc, qos
from repro.runtime import MenshenController


def group_sources():
    # QoS's table is named "classify" and calc's "calc_table": no clash.
    return [("calc", calc.P4_SOURCE), ("qos", qos.P4_SOURCE)]


class TestCompileGroup:
    def test_members_get_disjoint_stages(self):
        merged = compile_module_group(group_sources())
        calc_stage = merged.tables["calc_table"].stage
        qos_stage = merged.tables["classify"].stage
        assert calc_stage != qos_stage
        assert calc_stage < qos_stage  # apply order preserved

    def test_same_offset_fields_share_containers(self):
        merged = compile_module_group(group_sources())
        # Both members key on hdr.udp.dstPort (offset 40, 16 bits): one
        # container, parsed once.
        refs = {ref.encode5() for dotted, ref in merged.field_alloc.items()
                if dotted == "hdr.udp.dstPort"}
        assert len(refs) == 1
        offsets = [a.bytes_from_head for a in merged.parse_actions]
        assert offsets.count(40) == 1

    def test_stage_budget_enforced(self):
        target = TargetDescription(stage_map=[0])  # one stage only
        with pytest.raises(AllocationError, match="stages"):
            compile_module_group(group_sources(),
                                 CompilerOptions(target=target))

    def test_table_name_collision_rejected(self):
        with pytest.raises(CompilerError, match="table name"):
            compile_module_group([("a", calc.P4_SOURCE),
                                  ("b", calc.P4_SOURCE)])

    def test_merged_name(self):
        merged = compile_module_group(group_sources())
        assert merged.name == "calc+qos"

    def test_empty_group_rejected(self):
        with pytest.raises(CompilerError):
            compile_module_group([])


class TestGroupEndToEnd:
    def test_packet_flows_through_both_members(self):
        pipe = MenshenPipeline()
        ctl = MenshenController(pipe)
        merged = compile_module_group(group_sources())
        ctl.load_compiled(5, merged, "tenant5-group")

        # Entries for both members under ONE module id.
        ctl.table_add(5, "calc_table", {"hdr.calc.op": calc.OP_ADD},
                      "op_add", {"port": 2})
        ctl.table_add(5, "classify", {"hdr.udp.dstPort": 20000},
                      "set_tos", {"tos": qos.tos_word(qos.DSCP_EF)})

        packet = calc.make_packet(5, calc.OP_ADD, 30, 12)
        result = pipe.process(packet)
        # calc's stage computed the sum...
        assert calc.read_result(result.packet) == 42
        # ...and qos's stage marked the DSCP, same packet, same pass.
        assert qos.read_dscp(result.packet) == qos.DSCP_EF
        assert result.egress_port == 2

    def test_group_isolated_from_other_modules(self):
        pipe = MenshenPipeline()
        ctl = MenshenController(pipe)
        merged = compile_module_group(group_sources())
        ctl.load_compiled(5, merged, "tenant5-group")
        ctl.table_add(5, "calc_table", {"hdr.calc.op": calc.OP_ADD},
                      "op_add", {"port": 2})
        # Another plain calc tenant shares the pipeline.
        ctl.load_module(6, calc.P4_SOURCE, "tenant6")
        calc.install(Tenant.attach(ctl, 6), port=3)

        r5 = pipe.process(calc.make_packet(5, calc.OP_ADD, 1, 1))
        r6 = pipe.process(calc.make_packet(6, calc.OP_ADD, 1, 1))
        assert r5.egress_port == 2 and r6.egress_port == 3
        assert calc.read_result(r5.packet) == 2
        assert calc.read_result(r6.packet) == 2
        # Tenant 6 has no QoS member: its DSCP stays 0 even for the
        # dport tenant 5 classifies.
        assert qos.read_dscp(r6.packet) == 0
