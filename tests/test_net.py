"""Unit tests for the packet-crafting substrate (repro.net)."""

import pytest

from repro.errors import FieldRangeError, PacketError, TruncatedPacketError
from repro.net import (
    EthernetHeader,
    Ipv4Address,
    Ipv4Header,
    MacAddress,
    Packet,
    PacketBuilder,
    TcpHeader,
    UdpHeader,
    VlanTag,
    internet_checksum,
    parse_layers,
)
from repro.net.builder import COMMON_HEADER_LEN
from repro.net.udp_ import MENSHEN_RECONFIG_DPORT


class TestPacketBuffer:
    def test_len_and_bytes(self):
        pkt = Packet(b"\x01\x02\x03")
        assert len(pkt) == 3
        assert pkt.tobytes() == b"\x01\x02\x03"

    def test_read_write_int_roundtrip(self):
        pkt = Packet(b"\x00" * 8)
        pkt.write_int(2, 4, 0xDEADBEEF)
        assert pkt.read_int(2, 4) == 0xDEADBEEF

    def test_out_of_range_read(self):
        pkt = Packet(b"\x00" * 4)
        with pytest.raises(TruncatedPacketError):
            pkt.read_bytes(2, 3)

    def test_negative_offset(self):
        with pytest.raises(TruncatedPacketError):
            Packet(b"\x00" * 4).read_bytes(-1, 2)

    def test_write_int_range_check(self):
        pkt = Packet(b"\x00" * 4)
        with pytest.raises(FieldRangeError):
            pkt.write_int(0, 1, 256)

    def test_pad_and_truncate(self):
        pkt = Packet(b"\xaa")
        pkt.pad_to(4)
        assert pkt.tobytes() == b"\xaa\x00\x00\x00"
        pkt.truncate(2)
        assert len(pkt) == 2

    def test_pad_to_smaller_is_noop(self):
        pkt = Packet(b"\xaa\xbb")
        pkt.pad_to(1)
        assert len(pkt) == 2

    def test_copy_is_independent(self):
        pkt = Packet(b"\x01\x02", ingress_port=3)
        dup = pkt.copy()
        dup.write_int(0, 1, 0xFF)
        assert pkt.read_int(0, 1) == 0x01
        assert dup.ingress_port == 3

    def test_equality_with_bytes(self):
        assert Packet(b"\x01") == b"\x01"
        assert Packet(b"\x01") == Packet(b"\x01")


class TestMacAddress:
    def test_from_string_roundtrip(self):
        mac = MacAddress("02:00:00:00:00:2a")
        assert str(mac) == "02:00:00:00:00:2a"
        assert int(mac) == 0x02000000002A

    def test_from_int_and_bytes(self):
        assert MacAddress(0x1).tobytes() == b"\x00" * 5 + b"\x01"
        assert MacAddress(b"\xff" * 6).is_broadcast

    def test_multicast_bit(self):
        assert MacAddress("01:00:5e:00:00:01").is_multicast
        assert not MacAddress("02:00:00:00:00:01").is_multicast

    def test_bad_strings(self):
        for bad in ["", "1:2:3", "zz:00:00:00:00:00", "01:02:03:04:05:666"]:
            with pytest.raises(FieldRangeError):
                MacAddress(bad)

    def test_int_out_of_range(self):
        with pytest.raises(FieldRangeError):
            MacAddress(1 << 48)

    def test_equality_modes(self):
        assert MacAddress("02:00:00:00:00:01") == "02:00:00:00:00:01"
        assert MacAddress(5) == 5


class TestIpv4Address:
    def test_string_roundtrip(self):
        ip = Ipv4Address("10.1.2.3")
        assert str(ip) == "10.1.2.3"
        assert int(ip) == (10 << 24) | (1 << 16) | (2 << 8) | 3

    def test_bad_strings(self):
        for bad in ["10.0.0", "256.0.0.1", "a.b.c.d", "1.2.3.4.5"]:
            with pytest.raises(FieldRangeError):
                Ipv4Address(bad)

    def test_subnet_membership(self):
        ip = Ipv4Address("192.168.1.77")
        assert ip.in_subnet(Ipv4Address("192.168.1.0"), 24)
        assert not ip.in_subnet(Ipv4Address("192.168.2.0"), 24)
        assert ip.in_subnet(Ipv4Address("0.0.0.0"), 0)

    def test_subnet_bad_prefix(self):
        with pytest.raises(FieldRangeError):
            Ipv4Address("1.2.3.4").in_subnet(Ipv4Address("0.0.0.0"), 33)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example: checksum of this word sequence is 0xddf2.
        data = bytes([0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF


class TestBuilderAndViews:
    def build_udp(self, vid=7, payload=b"hello", **udp_kw):
        return (PacketBuilder()
                .ethernet(src="02:00:00:00:00:01", dst="02:00:00:00:00:02")
                .vlan(vid=vid)
                .ipv4(src="10.0.0.1", dst="10.0.0.2")
                .udp(**({"sport": 5000, "dport": 5001} | udp_kw))
                .payload(payload)
                .build())

    def test_common_header_length(self):
        pkt = self.build_udp(payload=b"")
        assert len(pkt) == COMMON_HEADER_LEN

    def test_layers_parse_back(self):
        pkt = self.build_udp()
        layers = parse_layers(pkt)
        assert isinstance(layers["ethernet"], EthernetHeader)
        assert isinstance(layers["vlan"], VlanTag)
        assert isinstance(layers["ipv4"], Ipv4Header)
        assert isinstance(layers["udp"], UdpHeader)
        assert layers["vlan"].vid == 7
        assert str(layers["ipv4"].dst) == "10.0.0.2"
        assert layers["udp"].sport == 5000

    def test_ip_total_length_and_udp_length(self):
        pkt = self.build_udp(payload=b"x" * 10)
        layers = parse_layers(pkt)
        assert layers["ipv4"].total_length == 20 + 8 + 10
        assert layers["udp"].length == 8 + 10

    def test_ipv4_checksum_valid(self):
        pkt = self.build_udp()
        assert parse_layers(pkt)["ipv4"].checksum_ok()

    def test_checksum_invalidated_by_mutation(self):
        pkt = self.build_udp()
        ip = parse_layers(pkt)["ipv4"]
        ip.ttl = 10
        assert not ip.checksum_ok()
        ip.update_checksum()
        assert ip.checksum_ok()

    def test_tcp_packet(self):
        pkt = (PacketBuilder()
               .ethernet()
               .vlan(vid=3)
               .ipv4()
               .tcp(sport=1234, dport=80, seq=42, flags=0x02)
               .payload(b"GET")
               .build())
        layers = parse_layers(pkt)
        tcp = layers["tcp"]
        assert isinstance(tcp, TcpHeader)
        assert tcp.sport == 1234 and tcp.dport == 80
        assert tcp.seq == 42
        assert tcp.has_flag(0x02)
        assert layers["ipv4"].protocol == 6

    def test_no_vlan_packet(self):
        pkt = (PacketBuilder().ethernet().ipv4().udp().build())
        layers = parse_layers(pkt)
        assert "vlan" not in layers
        assert "udp" in layers

    def test_vlan_requires_ethernet(self):
        with pytest.raises(PacketError):
            PacketBuilder().vlan(vid=1)

    def test_udp_requires_ipv4(self):
        with pytest.raises(PacketError):
            PacketBuilder().ethernet().udp()

    def test_udp_and_tcp_mutually_exclusive(self):
        builder = PacketBuilder().ethernet().ipv4().udp()
        with pytest.raises(PacketError):
            builder.tcp()

    def test_build_requires_ethernet(self):
        with pytest.raises(PacketError):
            PacketBuilder().build()

    def test_pad_to_minimum_frame(self):
        pkt = self.build_udp(payload=b"")
        assert len(pkt) == 46
        pkt2 = (PacketBuilder().ethernet().vlan(vid=1).ipv4().udp()
                .build(pad_to=64))
        assert len(pkt2) == 64

    def test_reconfig_port_detection(self):
        pkt = self.build_udp(dport=MENSHEN_RECONFIG_DPORT)
        assert parse_layers(pkt)["udp"].is_reconfig

    def test_vlan_tci_subfields(self):
        pkt = (PacketBuilder().ethernet().vlan(vid=0xABC, pcp=5, dei=1)
               .ipv4().udp().build())
        vlan = parse_layers(pkt)["vlan"]
        assert vlan.vid == 0xABC
        assert vlan.pcp == 5
        assert vlan.dei == 1
        vlan.vid = 0x123
        assert vlan.pcp == 5  # VID write must not clobber PCP/DEI
        assert vlan.dei == 1

    def test_dscp_set_preserves_ecn(self):
        pkt = self.build_udp()
        ip = parse_layers(pkt)["ipv4"]
        ip.dscp = 46
        assert ip.dscp == 46
        assert ip.ecn == 0

    def test_header_view_bounds(self):
        with pytest.raises(TruncatedPacketError):
            EthernetHeader(Packet(b"\x00" * 10), 0)
