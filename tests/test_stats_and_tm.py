"""Tests for pipeline statistics and traffic-manager telemetry — the
numbers the system-level module exposes to tenants (§3.3)."""

import pytest

from repro.core import PipelineStats
from repro.net import PacketBuilder
from repro.rmt import TrafficManager


def pkt(size=100, vid=1):
    return (PacketBuilder().ethernet().vlan(vid=vid).ipv4().udp()
            .payload(b"\x00" * (size - 46)).build())


class TestPipelineStats:
    def test_per_module_accounting(self):
        stats = PipelineStats()
        stats.record_in(1)
        stats.record_in(1)
        stats.record_in(2)
        stats.record_out(1, 100)
        stats.record_out(1, 200)
        stats.record_drop(2, "discard")
        assert stats.per_module_in == {1: 2, 2: 1}
        assert stats.per_module_out[1] == 2
        assert stats.per_module_bytes_out[1] == 300
        assert stats.per_module_dropped[2] == 1
        assert stats.drop_reasons["discard"] == 1

    def test_summary(self):
        stats = PipelineStats()
        stats.record_in(1)
        stats.record_out(1, 64)
        stats.record_reconfig()
        assert stats.summary() == {
            "packets_in": 1, "packets_out": 1, "packets_dropped": 0,
            "reconfig_packets": 1}

    def test_link_utilization(self):
        stats = PipelineStats()
        stats.record_out(1, 1250)  # 10000 bits
        assert stats.link_utilization(1, elapsed_s=1.0, link_bps=1e5) \
            == pytest.approx(0.1)
        assert stats.link_utilization(1, elapsed_s=0, link_bps=1e5) == 0.0
        assert stats.link_utilization(9, 1.0, 1e5) == 0.0

    def test_utilization_guard_rails(self):
        stats = PipelineStats()
        stats.record_out(1, 100)
        assert stats.link_utilization(1, 1.0, 0.0) == 0.0


class TestTrafficManagerTelemetry:
    def test_bytes_out_counts_at_dequeue(self):
        # "Transmitted bytes" means transmitted: packets still queued
        # must not show up in the §3.3 real-time statistics.
        tm = TrafficManager(num_ports=2)
        tm.enqueue(pkt(100), 0)
        tm.enqueue(pkt(200), 0)
        tm.enqueue(pkt(300), 1)
        assert tm.bytes_out == [0, 0]
        tm.dequeue(0)
        assert tm.bytes_out == [100, 0]
        tm.drain(0)
        tm.drain(1)
        assert tm.bytes_out == [300, 300]

    def test_dropped_packet_never_counts_as_transmitted(self):
        tm = TrafficManager(num_ports=1, queue_capacity=1)
        tm.enqueue(pkt(100), 0)
        assert tm.enqueue(pkt(200), 0) == 0   # over capacity: dropped
        assert tm.dropped == 1
        tm.drain(0)
        assert tm.bytes_out[0] == 100

    def test_queue_length_visible(self):
        # The "queue length" statistic tenants can read (§3.3).
        tm = TrafficManager(num_ports=1)
        for _ in range(5):
            tm.enqueue(pkt(), 0)
        assert tm.queue_len(0) == 5
        tm.dequeue(0)
        assert tm.queue_len(0) == 4
        assert tm.total_queued() == 4

    def test_enqueue_dequeue_counters(self):
        tm = TrafficManager(num_ports=1)
        tm.enqueue(pkt(), 0)
        tm.enqueue(pkt(), 0)
        tm.dequeue(0)
        assert tm.enqueued == 2
        assert tm.dequeued == 1

    def test_mcast_ports_listing(self):
        tm = TrafficManager(num_ports=4)
        tm.set_mcast_group(3, [0, 2])
        assert tm.mcast_ports(3) == [0, 2]
        assert tm.mcast_ports(99) == []
