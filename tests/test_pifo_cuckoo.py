"""Tests for the PIFO scheduler (§3.5) and cuckoo exact match (§4.3)."""

import pytest

from repro.errors import ConfigError
from repro.net import PacketBuilder
from repro.rmt.cuckoo import CuckooExactTable, CuckooInsertError
from repro.rmt.pifo import PifoQueue, PifoTrafficManager, StfqRanker


def packet(size=200, vid=1):
    return (PacketBuilder().ethernet().vlan(vid=vid).ipv4().udp()
            .payload(b"\x00" * (size - 46)).build())


class TestPifoQueue:
    def test_dequeue_in_rank_order(self):
        q = PifoQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop(), q.pop(), q.pop()] == ["a", "b", "c"]

    def test_stable_for_equal_ranks(self):
        q = PifoQueue()
        for i in range(5):
            q.push(1.0, i)
        assert [q.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_drops(self):
        q = PifoQueue(capacity=2)
        assert q.push(1, "a") and q.push(2, "b")
        assert not q.push(3, "c")
        assert q.dropped == 1

    def test_peek_and_len(self):
        q = PifoQueue()
        assert q.pop() is None and q.peek_rank() is None
        q.push(7.0, "x")
        assert q.peek_rank() == 7.0
        assert len(q) == 1

    def test_drop_leaves_queue_intact(self):
        # A capacity drop must not disturb what is already queued, and
        # the queue must keep serving (and accepting) correctly after.
        q = PifoQueue(capacity=2)
        q.push(2.0, "b")
        q.push(1.0, "a")
        assert not q.push(0.5, "would-win")   # dropped despite best rank
        assert q.pop() == "a"
        assert q.push(3.0, "c")               # slot freed by the pop
        assert [q.pop(), q.pop()] == ["b", "c"]
        assert q.dropped == 1

    def test_equal_ranks_stay_fifo_across_interleaved_pops(self):
        q = PifoQueue()
        q.push(1.0, "a1")
        q.push(1.0, "a2")
        assert q.pop() == "a1"
        q.push(1.0, "a3")
        assert [q.pop(), q.pop()] == ["a2", "a3"]


class TestStfqRanker:
    def test_backlogged_weights_share_proportionally(self):
        ranker = StfqRanker({1: 2.0, 2: 1.0})
        # Module 1 (weight 2) accumulates finish tags half as fast.
        r1 = [ranker.rank(1, 100) for _ in range(4)]
        r2 = [ranker.rank(2, 100) for _ in range(4)]
        assert r1 == [0.0, 50.0, 100.0, 150.0]
        assert r2 == [0.0, 100.0, 200.0, 300.0]

    def test_idle_module_not_punished(self):
        # A module that was idle re-enters at the current virtual time,
        # not at zero (no starvation of the busy ones).
        ranker = StfqRanker({})
        for _ in range(10):
            ranker.rank(1, 100)
        ranker.on_dequeue(500.0)
        assert ranker.rank(2, 100) == 500.0

    def test_bad_weight_rejected(self):
        with pytest.raises(ConfigError):
            StfqRanker({1: 0.0})

    def test_unknown_module_gets_default_weight(self):
        ranker = StfqRanker({1: 2.0}, default_weight=4.0)
        assert ranker.weight_of(1) == 2.0
        assert ranker.weight_of(99) == 4.0
        # Weight 4 accumulates finish tags at 1/4 the byte rate.
        ranks = [ranker.rank(99, 100) for _ in range(3)]
        assert ranks == [0.0, 25.0, 50.0]

    def test_unequal_weights_share_proportionally_with_mixed_sizes(self):
        # Weighted shares must hold in *bytes*, not packets: module 1
        # (weight 3) sends 300-byte packets, module 2 (weight 1) sends
        # 100-byte ones; finish-tag spacing is size/weight either way.
        ranker = StfqRanker({1: 3.0, 2: 1.0})
        r1 = [ranker.rank(1, 300) for _ in range(3)]
        r2 = [ranker.rank(2, 100) for _ in range(3)]
        assert r1 == [0.0, 100.0, 200.0]
        assert r2 == [0.0, 100.0, 200.0]


class TestPifoTrafficManager:
    def test_weighted_fair_sharing_under_backlog(self):
        # Modules 1:2:3 with weights 5:3:2, all flooding one port.
        tm = PifoTrafficManager(num_ports=1,
                                weights={1: 5.0, 2: 3.0, 3: 2.0})
        for _ in range(300):
            for vid in (1, 2, 3):
                tm.enqueue(packet(200, vid), 0, module_id=vid)
        served = tm.drain_bytes(0, budget_bytes=200 * 100)
        total = sum(served.values())
        assert served[1] / total == pytest.approx(0.5, abs=0.05)
        assert served[2] / total == pytest.approx(0.3, abs=0.05)
        assert served[3] / total == pytest.approx(0.2, abs=0.05)

    def test_flooding_module_cannot_crowd_out(self):
        # Module 9 floods 10x the packets; equal weights still halve.
        tm = PifoTrafficManager(num_ports=1)
        for _ in range(500):
            tm.enqueue(packet(200, 9), 0, module_id=9)
        for _ in range(50):
            tm.enqueue(packet(200, 1), 0, module_id=1)
        served = tm.drain_bytes(0, budget_bytes=200 * 80)
        # Module 1's 50 packets all make it out within the first ~100.
        assert served.get(1, 0) >= 200 * 35

    def test_fifo_contrast(self):
        # The same flood through the plain FIFO TM starves module 1 —
        # the §3.5 problem PIFO fixes.
        from repro.rmt import TrafficManager
        tm = TrafficManager(num_ports=1)
        for _ in range(500):
            tm.enqueue(packet(200, 9), 0)
        for _ in range(50):
            tm.enqueue(packet(200, 1), 0)
        first_80 = [tm.dequeue(0) for _ in range(80)]
        vids = [p.read_int(14, 2) & 0xFFF for p in first_80]
        assert vids.count(1) == 0  # all module 9's backlog first

    def test_dequeue_and_counters(self):
        tm = PifoTrafficManager(num_ports=2)
        tm.enqueue(packet(100, 1), 1, module_id=1)
        out = tm.dequeue(1)
        assert len(out) == 100
        assert tm.dequeue(1) is None
        assert tm.bytes_out_per_module[1] == 100

    def test_drain_bytes_counts_transmitted_bytes(self):
        # drain_bytes is a service path like dequeue: what it serves
        # must land in bytes_out_per_module with the same (dequeue-time)
        # semantics, and packets left queued must not.
        tm = PifoTrafficManager(num_ports=1)
        for _ in range(4):
            tm.enqueue(packet(200, 1), 0, module_id=1)
            tm.enqueue(packet(200, 2), 0, module_id=2)
        served = tm.drain_bytes(0, budget_bytes=200 * 4)
        assert sum(served.values()) == 200 * 4
        assert tm.bytes_out_per_module == served
        assert tm.dequeued == 4
        tm.dequeue(0)
        assert sum(tm.bytes_out_per_module.values()) == 200 * 5

    def test_port_bounds(self):
        tm = PifoTrafficManager(num_ports=1)
        with pytest.raises(ConfigError):
            tm.enqueue(packet(), 1, module_id=1)

    def test_drop_in_as_pipeline_traffic_manager(self):
        # The advertised use: install it as pipeline.traffic_manager.
        # commit() calls enqueue(packet, port, mcast, module_id=vid), so
        # the signature must match the TM contract.
        from repro.api import Switch
        from repro.modules import calc

        switch = Switch.build().create()
        tenant = switch.admit("calc", calc.P4_SOURCE, vid=1)
        calc.install(tenant, port=1)
        switch.pipeline.traffic_manager = PifoTrafficManager(num_ports=8)
        result = switch.process(calc.make_packet(1, calc.OP_ADD, 2, 3))
        assert result.forwarded
        assert switch.pipeline.traffic_manager.queue_len(1) == 1
        switch.pipeline.traffic_manager.dequeue(1)
        assert switch.pipeline.traffic_manager.bytes_out_per_module[1] > 0

    def test_multicast_not_modeled(self):
        tm = PifoTrafficManager(num_ports=2)
        with pytest.raises(ConfigError):
            tm.enqueue(packet(), 0, mcast_group=3, module_id=1)


class TestCuckooExactTable:
    def test_insert_lookup_delete(self):
        table = CuckooExactTable(depth=32)
        slot, moves = table.insert(key=0xABC, module_id=3)
        assert moves == []
        assert table.lookup(0xABC, 3) == slot
        assert table.lookup(0xABC, 4) is None  # module isolation
        table.delete(0xABC, 3)
        assert table.lookup(0xABC, 3) is None

    def test_duplicate_rejected(self):
        table = CuckooExactTable(depth=32)
        table.insert(1, 1)
        with pytest.raises(ConfigError):
            table.insert(1, 1)

    def test_same_key_different_modules(self):
        table = CuckooExactTable(depth=32)
        s1, _ = table.insert(5, 1)
        s2, _ = table.insert(5, 2)
        assert table.lookup(5, 1) == s1
        assert table.lookup(5, 2) == s2

    def test_relocations_keep_entries_findable(self):
        table = CuckooExactTable(depth=64, max_kicks=200)
        inserted = []
        for key in range(40):
            table.insert(key, module_id=1)
            inserted.append(key)
            for k in inserted:  # every prior entry still findable
                assert table.lookup(k, 1) is not None, (key, k)

    def test_high_occupancy_beats_cam_depth(self):
        # §4.3's point: a hash table reaches far beyond 16 entries.
        table = CuckooExactTable(depth=256, max_kicks=500)
        inserted = 0
        try:
            for key in range(256):
                table.insert(key, 1)
                inserted += 1
        except CuckooInsertError:
            pass
        assert inserted >= 128  # >=50% load with 2 hashes
        assert table.load_factor() >= 0.5

    def test_full_table_raises(self):
        table = CuckooExactTable(depth=4, max_kicks=16)
        with pytest.raises(CuckooInsertError):
            for key in range(10):
                table.insert(key, 1)

    def test_relocation_moves_are_consistent(self):
        # Replaying the reported moves on a shadow array must track the
        # table's slot contents (the VLIW-table synchronization rule).
        table = CuckooExactTable(depth=32, max_kicks=100)
        shadow = {}
        for key in range(24):
            slot, moves = table.insert(key, 1)
            for src, dst in moves:
                if src in shadow:
                    shadow[dst] = shadow.pop(src)
            shadow[slot] = key
        for slot, key in shadow.items():
            assert table.lookup(key, 1) == slot

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            CuckooExactTable(depth=0)
        with pytest.raises(ConfigError):
            CuckooExactTable(hash_count=1)

    def test_entries_of(self):
        table = CuckooExactTable(depth=32)
        table.insert(1, 1)
        table.insert(2, 1)
        table.insert(3, 2)
        assert len(table.entries_of(1)) == 2
        assert len(table.entries_of(2)) == 1
