"""Tests for Appendix-B ternary matching, end to end."""

import pytest

from repro.api import Tenant
from repro.core import MenshenPipeline, ResourceId, ResourceType, build_reconfig_packet
from repro.errors import RuntimeInterfaceError
from repro.modules import firewall
from repro.rmt.encodings import decode_tcam_entry, encode_tcam_entry
from repro.runtime import MenshenController


def ternary_setup():
    pipe = MenshenPipeline(match_mode="ternary")
    ctl = MenshenController(pipe)
    ctl.load_module(2, firewall.P4_SOURCE_TERNARY, "fw-ternary")
    return pipe, ctl


class TestTcamEncoding:
    def test_roundtrip(self):
        word = encode_tcam_entry(0xABC, 0xFFF, 7)
        assert decode_tcam_entry(word) == (0xABC, 0xFFF, 7)

    def test_width_398(self):
        word = encode_tcam_entry((1 << 193) - 1, (1 << 193) - 1, 0xFFF)
        assert word == (1 << 398) - 1

    def test_reconfig_payload_width(self):
        from repro.core import entry_payload_bytes
        assert entry_payload_bytes(ResourceType.TCAM) == 50


class TestTernaryPipeline:
    def test_prefix_block_and_default_allow(self):
        pipe, ctl = ternary_setup()
        firewall.install_prefix(
            Tenant.attach(ctl, 2), blocked_prefixes=[("10.66.0.0", 16)], default_port=3)
        # Inside the blocked /16: dropped regardless of host bits.
        for src in ("10.66.0.1", "10.66.255.254", "10.66.7.7"):
            result = pipe.process(firewall.make_packet(2, src, 53))
            assert result.dropped, src
        # Outside: allowed by the match-all entry.
        for src in ("10.67.0.1", "192.168.1.1"):
            result = pipe.process(firewall.make_packet(2, src, 53))
            assert result.forwarded and result.egress_port == 3, src

    def test_priority_by_address_order(self):
        # A specific allow installed BEFORE a broader block wins.
        pipe, ctl = ternary_setup()
        from repro.net import Ipv4Address
        ctl.table_add(2, "acl",
                      {"hdr.ipv4.srcAddr": int(Ipv4Address("10.66.1.1")),
                       "hdr.udp.dstPort": 0},
                      "allow", {"port": 5},
                      key_masks={"hdr.udp.dstPort": 0})
        ctl.table_add(2, "acl",
                      {"hdr.ipv4.srcAddr": int(Ipv4Address("10.66.0.0")),
                       "hdr.udp.dstPort": 0},
                      "block",
                      key_masks={"hdr.ipv4.srcAddr":
                                 firewall.prefix_mask(16),
                                 "hdr.udp.dstPort": 0})
        exempt = pipe.process(firewall.make_packet(2, "10.66.1.1", 80))
        assert exempt.forwarded and exempt.egress_port == 5
        other = pipe.process(firewall.make_packet(2, "10.66.1.2", 80))
        assert other.dropped

    def test_module_isolation_in_ternary_mode(self):
        pipe, ctl = ternary_setup()
        firewall.install_prefix(
            Tenant.attach(ctl, 2), blocked_prefixes=[("0.0.0.0", 0)])  # block everything
        ctl.load_module(3, firewall.P4_SOURCE_TERNARY, "fw2")
        firewall.install_prefix(Tenant.attach(ctl, 3), default_port=4)
        # Module 2 blocks all its traffic; module 3's flows anyway.
        assert pipe.process(firewall.make_packet(2, "1.2.3.4", 9)).dropped
        result = pipe.process(firewall.make_packet(3, "1.2.3.4", 9))
        assert result.forwarded and result.egress_port == 4

    def test_update_one_module_leaves_other_rules(self):
        # Appendix B's point: contiguous per-module blocks mean rule
        # updates for one module never move another module's rules.
        pipe, ctl = ternary_setup()
        firewall.install_prefix(
            Tenant.attach(ctl, 2), blocked_prefixes=[("10.66.0.0", 16)], default_port=3)
        ctl.load_module(3, firewall.P4_SOURCE_TERNARY, "fw2")
        firewall.install_prefix(
            Tenant.attach(ctl, 3), blocked_prefixes=[("10.77.0.0", 16)], default_port=4)
        before = pipe.process(firewall.make_packet(3, "10.77.1.1", 1))
        assert before.dropped
        # Re-install module 2's rules (delete + add within its block).
        loaded = ctl.modules[2]
        for handle in list(loaded.table("acl").entries):
            ctl.table_delete(2, "acl", handle)
        firewall.install_prefix(
            Tenant.attach(ctl, 2), blocked_prefixes=[("10.99.0.0", 16)], default_port=3)
        after = pipe.process(firewall.make_packet(3, "10.77.1.1", 1))
        assert after.dropped  # module 3's rule still in force

    def test_masks_rejected_on_exact_tables(self):
        pipe = MenshenPipeline()  # exact mode
        ctl = MenshenController(pipe)
        ctl.load_module(2, firewall.P4_SOURCE, "fw")
        with pytest.raises(RuntimeInterfaceError, match="exact-match"):
            ctl.table_add(2, "acl",
                          {"hdr.ipv4.srcAddr": 1, "hdr.udp.dstPort": 1},
                          "block", key_masks={"hdr.udp.dstPort": 0})

    def test_tcam_write_via_daisy_chain(self):
        pipe = MenshenPipeline(match_mode="ternary")
        word = encode_tcam_entry(0x1200, 0xFF00, 6)
        pipe.inject_reconfig(build_reconfig_packet(
            ResourceId(ResourceType.TCAM, 0), index=3, entry=word))
        assert pipe.stages[0].match_table.lookup(0x12AB, 6) == 3
        assert pipe.stages[0].match_table.lookup(0x13AB, 6) is None

    def test_bad_match_mode_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            MenshenPipeline(match_mode="banana")
