"""Tests for the default-action (miss-action) extension."""

import pytest

from repro.api import Tenant
from repro.core import MenshenPipeline
from repro.errors import CompilerError, RuntimeInterfaceError
from repro.modules import firewall
from repro.runtime import MenshenController

#: Default-deny firewall: unmatched traffic is dropped.
DEFAULT_DENY_SOURCE = firewall.P4_SOURCE.replace(
    "size = 4;",
    "size = 4;\n        default_action = block();")


class TestDefaultActions:
    def test_default_deny_firewall(self):
        pipe = MenshenPipeline(enable_default_actions=True)
        ctl = MenshenController(pipe)
        ctl.load_module(2, DEFAULT_DENY_SOURCE, "fw-deny")
        firewall.install(Tenant.attach(ctl, 2), allowed=[("10.0.0.1", 80, 3)])
        # Explicitly allowed traffic flows...
        allowed = pipe.process(firewall.make_packet(2, "10.0.0.1", 80))
        assert allowed.forwarded and allowed.egress_port == 3
        # ...everything else hits the default block.
        denied = pipe.process(firewall.make_packet(2, "10.0.0.9", 80))
        assert denied.dropped and denied.drop_reason == "discard"

    def test_default_is_per_module(self):
        pipe = MenshenPipeline(enable_default_actions=True)
        ctl = MenshenController(pipe)
        ctl.load_module(2, DEFAULT_DENY_SOURCE, "fw-deny")
        ctl.load_module(3, firewall.P4_SOURCE, "fw-open")
        # Module 3 has no default: its unmatched traffic passes; module
        # 2's identical traffic is dropped by its own default.
        assert pipe.process(firewall.make_packet(2, "10.0.0.9", 80)).dropped
        assert pipe.process(firewall.make_packet(3, "10.0.0.9", 80)).forwarded

    def test_pipeline_without_feature_rejects(self):
        pipe = MenshenPipeline()  # feature off (paper-faithful)
        ctl = MenshenController(pipe)
        with pytest.raises(RuntimeInterfaceError,
                           match="enable_default_actions"):
            ctl.load_module(2, DEFAULT_DENY_SOURCE, "fw-deny")

    def test_parameterized_default_rejected_at_compile(self):
        source = firewall.P4_SOURCE.replace(
            "size = 4;",
            "size = 4;\n        default_action = allow();")
        from repro.compiler import compile_module
        with pytest.raises(CompilerError, match="parameterless"):
            compile_module(source, "bad-default")

    def test_unknown_default_rejected(self):
        source = firewall.P4_SOURCE.replace(
            "size = 4;",
            "size = 4;\n        default_action = ghost();")
        from repro.compiler import compile_module
        from repro.errors import TypeCheckError
        with pytest.raises((CompilerError, TypeCheckError)):
            compile_module(source, "bad-default")

    def test_default_survives_update_protocol(self):
        pipe = MenshenPipeline(enable_default_actions=True)
        ctl = MenshenController(pipe)
        ctl.load_module(2, DEFAULT_DENY_SOURCE, "fw")
        ctl.update_module(2, DEFAULT_DENY_SOURCE)
        assert pipe.process(firewall.make_packet(2, "10.0.0.9", 80)).dropped
