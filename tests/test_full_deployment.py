"""Integration: the complete paper setup on one pipeline — system-level
module plus all eight evaluated modules, resident simultaneously."""

import pytest

from repro.core import MenshenPipeline
from repro.modules import (
    calc,
    firewall,
    load_balancer,
    multicast,
    netcache,
    netchain,
    qos,
    source_routing,
)
from repro.runtime import MenshenController
from repro.api import Switch, Tenant


@pytest.fixture(scope="module")
def deployment():
    pipe = MenshenPipeline()
    ctl = MenshenController(pipe)
    Switch(controller=ctl).install_system(routes={"10.0.0.2": 7})
    pipe.traffic_manager.set_mcast_group(5, [1, 2])

    ctl.load_module(1, calc.P4_SOURCE, "calc")
    calc.install(Tenant.attach(ctl, 1), port=1)
    ctl.load_module(2, firewall.P4_SOURCE, "firewall")
    firewall.install(Tenant.attach(ctl, 2), blocked=[("10.0.0.66", 53)],
                             allowed=[("10.0.0.1", 80, 2)])
    ctl.load_module(3, load_balancer.P4_SOURCE, "lb")
    load_balancer.install(Tenant.attach(ctl, 3),
                                  flows=[("10.0.0.1", 1111, 3, 8001)])
    ctl.load_module(4, qos.P4_SOURCE, "qos")
    qos.install(Tenant.attach(ctl, 4))
    ctl.load_module(5, source_routing.P4_SOURCE, "srcroute")
    source_routing.install(Tenant.attach(ctl, 5))
    ctl.load_module(6, netcache.P4_SOURCE, "netcache")
    netcache.install(Tenant.attach(ctl, 6), cached=[(0xAA, 0, 4242)])
    ctl.load_module(7, netchain.P4_SOURCE, "netchain")
    netchain.install(Tenant.attach(ctl, 7), port=6)
    ctl.load_module(8, multicast.P4_SOURCE, "multicast")
    multicast.install(Tenant.attach(ctl, 8), groups=[("224.0.0.7", 5)])
    return pipe, ctl


class TestAllEightResident:
    def test_all_loaded(self, deployment):
        pipe, ctl = deployment
        assert ctl.loaded_ids() == [1, 2, 3, 4, 5, 6, 7, 8]
        assert ctl.system_module is not None

    def test_modules_spread_across_user_stages(self, deployment):
        pipe, ctl = deployment
        # All tables sit in the user stages {1,2,3}; the balancer must
        # have used more than one stage to fit 32 CAM rows of demand.
        stages_used = set()
        for loaded in ctl.modules.values():
            stages_used.update(loaded.compiled.stages_used())
        assert stages_used <= {1, 2, 3}
        assert len(stages_used) >= 2

    def test_no_partition_overlaps(self, deployment):
        pipe, ctl = deployment
        for stage_idx in range(pipe.params.num_stages):
            taken = []
            for loaded in list(ctl.modules.values()) + \
                    [ctl.system_module]:
                alloc = loaded.allocation.stage(stage_idx)
                if alloc.match_count:
                    taken.append((loaded.module_id, alloc.match_start,
                                  alloc.match_end))
            taken.sort(key=lambda t: t[1])
            for (m1, s1, e1), (m2, s2, e2) in zip(taken, taken[1:]):
                assert e1 <= s2, (stage_idx, m1, m2)

    def test_every_module_behaves(self, deployment):
        # NOTE: every generated packet's destination (10.0.0.2) is routed
        # by the SYSTEM module's last-stage route table to port 7, which
        # overrides tenant PORT actions — the paper's design: the system
        # module owns physical routing; tenants only steer when the
        # system has no route (see the multicast case below).
        pipe, ctl = deployment
        r = pipe.process(calc.make_packet(1, calc.OP_ADD, 20, 22))
        assert calc.read_result(r.packet) == 42
        assert r.egress_port == 7
        assert pipe.process(firewall.make_packet(2, "10.0.0.66", 53)).dropped
        r = pipe.process(firewall.make_packet(2, "10.0.0.1", 80))
        assert r.forwarded and r.egress_port == 7
        r = pipe.process(load_balancer.make_packet(3, "10.0.0.1", 1111))
        assert load_balancer.read_dport(r.packet) == 8001  # rewrite holds
        r = pipe.process(qos.make_packet(4, 5060))
        assert qos.read_dscp(r.packet) == qos.DSCP_EF
        r = pipe.process(source_routing.make_packet(5, 4))
        assert r.forwarded
        r = pipe.process(netcache.make_get(6, 0xAA))
        assert netcache.read_value(r.packet) == 4242
        seq1 = netchain.read_seq(
            pipe.process(netchain.make_packet(7)).packet)
        seq2 = netchain.read_seq(
            pipe.process(netchain.make_packet(7)).packet)
        assert seq2 == seq1 + 1
        # 224.0.0.7 has no system route: the tenant's mcast tag stands.
        r = pipe.process(multicast.make_packet(8, "224.0.0.7"))
        assert r.mcast_group == 5

    def test_interleaved_round_robin(self, deployment):
        pipe, ctl = deployment
        # Two full interleaved rounds: behavior stays correct.
        for _ in range(2):
            assert calc.read_result(pipe.process(
                calc.make_packet(1, calc.OP_SUB, 9, 5)).packet) == 4
            assert pipe.process(
                firewall.make_packet(2, "10.0.0.66", 53)).dropped
            assert pipe.process(
                qos.make_packet(4, 9999)).forwarded
            assert netcache.read_value(pipe.process(
                netcache.make_get(6, 0xAA)).packet) == 4242

    def test_system_route_applies_to_every_module(self, deployment):
        pipe, ctl = deployment
        # A packet to the routed physical IP gets the system port, no
        # matter which module owns the packet.
        from repro.modules.base import common_packet
        payload = (calc.OP_ECHO.to_bytes(2, "big") + (5).to_bytes(4, "big")
                   + bytes(8))
        r = pipe.process(common_packet(1, payload, dst="10.0.0.2"))
        assert r.egress_port == 7

    def test_unload_one_reload_another(self, deployment):
        pipe, ctl = deployment
        ctl.unload_module(4)
        assert pipe.process(qos.make_packet(4, 5060)).dropped
        ctl.load_module(4, qos.P4_SOURCE, "qos")
        qos.install(Tenant.attach(ctl, 4))
        r = pipe.process(qos.make_packet(4, 5060))
        assert qos.read_dscp(r.packet) == qos.DSCP_EF
