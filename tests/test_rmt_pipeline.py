"""End-to-end test of the baseline single-module RMT pipeline."""

from repro.net import Ipv4Address, PacketBuilder, parse_layers
from repro.rmt import (
    AluAction,
    AluOp,
    KeyExtractEntry,
    ParseAction,
    RmtPipeline,
    VliwInstruction,
)
from repro.rmt.encodings import encode_key
from repro.rmt.key_extractor import build_mask
from repro.rmt.phv import ContainerRef, ContainerType

B4 = lambda i: ContainerRef(ContainerType.B4, i)
B2 = lambda i: ContainerRef(ContainerType.B2, i)

IPV4_DST_OFFSET = 14 + 4 + 16  # eth + vlan + offset of dst within IPv4


def build_l3_forwarder():
    """A one-table router: match IPv4 dst -> set egress port, dec TTL."""
    pipe = RmtPipeline()
    # Parse IPv4 dst into B4[0].
    actions = [ParseAction(IPV4_DST_OFFSET, B4(0))]
    pipe.parser.install_program(0, actions)
    pipe.deparser.install_program(0, actions)

    stage = pipe.stages[0]
    stage.key_extractor.install(
        0, KeyExtractEntry(idx_4b_1=0),
        mask=build_mask(use_4b=(True, False)))

    routes = {"10.0.0.2": 2, "10.0.0.3": 3}
    for i, (dst, port) in enumerate(routes.items()):
        key = encode_key([0, 0, int(Ipv4Address(dst)), 0, 0, 0], 0)
        stage.match_table.write(i, key=key, module_id=0)
        stage.install_vliw(i, VliwInstruction.from_sparse({
            24: AluAction(AluOp.PORT, c1=B2(7), immediate=port),
        }))
    return pipe


def packet_to(dst, vid=1):
    return (PacketBuilder().ethernet().vlan(vid=vid)
            .ipv4(src="10.0.0.1", dst=dst).udp().payload(b"x" * 18).build())


class TestRmtPipeline:
    def test_routes_to_correct_port(self):
        pipe = build_l3_forwarder()
        result = pipe.process(packet_to("10.0.0.2"))
        assert result.forwarded
        assert result.egress_port == 2
        result = pipe.process(packet_to("10.0.0.3"))
        assert result.egress_port == 3

    def test_unknown_dst_misses(self):
        pipe = build_l3_forwarder()
        result = pipe.process(packet_to("10.9.9.9"))
        assert result.forwarded
        assert result.egress_port == 0  # no action fired

    def test_packets_land_in_tm_queue(self):
        pipe = build_l3_forwarder()
        pipe.process(packet_to("10.0.0.2"))
        pipe.process(packet_to("10.0.0.2"))
        assert pipe.traffic_manager.queue_len(2) == 2
        assert pipe.traffic_manager.queue_len(3) == 0

    def test_output_packet_preserved(self):
        pipe = build_l3_forwarder()
        pkt = packet_to("10.0.0.2")
        original = pkt.tobytes()
        result = pipe.process(pkt)
        # Forwarding didn't modify any header bytes (port is metadata).
        assert result.packet.tobytes() == original

    def test_discard_path(self):
        pipe = build_l3_forwarder()
        stage = pipe.stages[0]
        key = encode_key([0, 0, int(Ipv4Address("10.0.0.66")), 0, 0, 0], 0)
        stage.match_table.write(5, key=key, module_id=0)
        stage.install_vliw(5, VliwInstruction.from_sparse({
            24: AluAction(AluOp.DISCARD),
        }))
        result = pipe.process(packet_to("10.0.0.66"))
        assert result.dropped
        assert pipe.packets_dropped == 1

    def test_header_rewrite_reaches_wire(self):
        pipe = build_l3_forwarder()
        stage = pipe.stages[1]
        # Stage 1 rewrites the dst IP itself (NAT-style).
        stage.key_extractor.install(
            0, KeyExtractEntry(idx_4b_1=0),
            mask=build_mask(use_4b=(True, False)))
        key = encode_key([0, 0, int(Ipv4Address("10.0.0.2")), 0, 0, 0], 0)
        stage.match_table.write(0, key=key, module_id=0)
        stage.install_vliw(0, VliwInstruction.from_sparse({
            8: AluAction(AluOp.SET, immediate=0x0A63),  # high half of 10.99.0.9? no:
        }))
        # SET writes a 16-bit immediate into the 4-byte container; the
        # resulting container value 0x0A63 deparses into the dst field.
        result = pipe.process(packet_to("10.0.0.2"))
        layers = parse_layers(result.packet)
        assert int(layers["ipv4"].dst) == 0x0A63

    def test_stats_counters(self):
        pipe = build_l3_forwarder()
        pipe.process(packet_to("10.0.0.2"))
        assert pipe.packets_in == 1
        assert pipe.packets_out == 1
        assert pipe.stages[0].packets_processed == 1
