"""Tests for the performance models: DES kernel, throughput, latency,
area models, traffic generation, and the Fig. 10 timeline."""

import pytest

from repro.api import Tenant
from repro.area import AsicAreaModel, FpgaResourceModel, TABLE4_REFERENCE
from repro.sim import (
    CORUNDUM_LATENCY,
    CORUNDUM_OPTIMIZED,
    CORUNDUM_UNOPTIMIZED,
    NETFPGA_LATENCY,
    NETFPGA_OPTIMIZED,
    PipelineDes,
    ReconfigTimelineExperiment,
    Simulator,
    throughput_at,
    throughput_sweep,
)
from repro.sim.kernel import SimulationError
from repro.sim.perf_model import FIG11A_SIZES, FIG11BCD_SIZES
from repro.traffic import PacketGenerator, SizeSweep, mixed_module_stream
from repro.traffic.workloads import fig10_workload


class TestSimulatorKernel:
    def test_events_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=2.0)
        assert log == [1]
        assert sim.now == 2.0
        sim.run()
        assert log == [1, 5]

    def test_cancel(self):
        sim = Simulator()
        log = []
        ev = sim.schedule(1.0, lambda: log.append(1))
        ev.cancel()
        sim.run()
        assert log == []

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule(1.0, lambda: log.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert log == ["first", "second"]
        assert sim.now == 2.0


class TestThroughputModel:
    def test_fig11a_line_rate_from_96B(self):
        # Paper: "Menshen achieves a rate of 10 Gbit/s after a packet
        # size of 96 bytes" (capped by the 10G test port).
        for point in throughput_sweep(NETFPGA_OPTIMIZED, FIG11A_SIZES):
            if point.size >= 96:
                assert point.l1_gbps == pytest.approx(10.0)

    def test_fig11a_l2_below_l1(self):
        for point in throughput_sweep(NETFPGA_OPTIMIZED, FIG11A_SIZES):
            assert point.l2_gbps < point.l1_gbps

    def test_fig11b_100g_at_256B(self):
        # Paper: "optimized Menshen on Corundum achieves 100 Gbit/s at
        # 256 bytes".
        point = throughput_at(CORUNDUM_OPTIMIZED, 256)
        assert point.l1_gbps == pytest.approx(100.0)
        assert point.line_limited
        # Below 256 B the pipeline is the bottleneck.
        assert not throughput_at(CORUNDUM_OPTIMIZED, 70).line_limited

    def test_fig11c_unoptimized_caps_near_80g(self):
        # Paper: "unoptimized Menshen can only achieve 80 Gbit/s at
        # MTU-size packets".
        point = throughput_at(CORUNDUM_UNOPTIMIZED, 1500)
        assert 70.0 <= point.l1_gbps <= 85.0
        assert point.bottleneck == "deparser"

    def test_optimizations_strictly_help(self):
        for size in FIG11BCD_SIZES:
            opt = throughput_at(CORUNDUM_OPTIMIZED, size)
            unopt = throughput_at(CORUNDUM_UNOPTIMIZED, size)
            assert opt.l1_gbps >= unopt.l1_gbps, size

    def test_throughput_monotonic_in_size(self):
        series = throughput_sweep(CORUNDUM_UNOPTIMIZED, FIG11BCD_SIZES)
        l1 = [p.l1_gbps for p in series]
        assert l1 == sorted(l1)

    def test_mpps_decreasing_in_size(self):
        series = throughput_sweep(CORUNDUM_OPTIMIZED, FIG11BCD_SIZES)
        pps = [p.pps_millions for p in series]
        assert pps == sorted(pps, reverse=True)


class TestDesCrossValidation:
    @pytest.mark.parametrize("size", [70, 256, 1500])
    def test_des_matches_analytic_optimized(self, size):
        des = PipelineDes(CORUNDUM_OPTIMIZED).run(size)
        analytic = CORUNDUM_OPTIMIZED.pipeline_pps(size)
        assert des.pps == pytest.approx(analytic, rel=0.05)

    @pytest.mark.parametrize("size", [70, 512, 1500])
    def test_des_matches_analytic_unoptimized(self, size):
        des = PipelineDes(CORUNDUM_UNOPTIMIZED).run(size)
        analytic = CORUNDUM_UNOPTIMIZED.pipeline_pps(size)
        assert des.pps == pytest.approx(analytic, rel=0.05)

    def test_des_matches_analytic_netfpga(self):
        des = PipelineDes(NETFPGA_OPTIMIZED).run(64)
        analytic = NETFPGA_OPTIMIZED.pipeline_pps(64)
        assert des.pps == pytest.approx(analytic, rel=0.05)


class TestLatencyModel:
    def test_published_calibration_points(self):
        # §5.2: 64 B -> 79 cycles (505.6 ns) NetFPGA, 106 (424 ns) Corundum.
        assert NETFPGA_LATENCY.cycles(64) == pytest.approx(79)
        assert NETFPGA_LATENCY.latency_ns(64) == pytest.approx(505.6)
        assert CORUNDUM_LATENCY.cycles(64) == pytest.approx(106)
        assert CORUNDUM_LATENCY.latency_ns(64) == pytest.approx(424.0)
        assert NETFPGA_LATENCY.cycles(1500) == pytest.approx(146)
        assert CORUNDUM_LATENCY.cycles(1500) == pytest.approx(112)

    def test_latency_increases_with_size(self):
        assert NETFPGA_LATENCY.cycles(1500) > NETFPGA_LATENCY.cycles(64)

    def test_fullrate_latency_fig11d_range(self):
        # Fig. 11d: ~1.0-1.25 us across the size sweep at full rate.
        for size in FIG11BCD_SIZES:
            us = CORUNDUM_LATENCY.fullrate_latency_us(size)
            assert 0.9 <= us <= 1.3, (size, us)

    def test_fullrate_exceeds_unloaded(self):
        for size in (70, 1500):
            assert CORUNDUM_LATENCY.fullrate_cycles(size) > \
                CORUNDUM_LATENCY.cycles(size)


class TestAsicAreaModel:
    def test_reproduces_published_overheads(self):
        report = AsicAreaModel().report()
        assert report["parser_overhead_pct"] == pytest.approx(18.5, abs=0.1)
        assert report["deparser_overhead_pct"] == pytest.approx(7.0, abs=0.1)
        assert report["stage_overhead_pct"] == pytest.approx(20.9, abs=0.1)
        assert report["pipeline_overhead_pct"] == pytest.approx(11.4, abs=0.5)
        assert report["chip_level_overhead_pct"] == pytest.approx(5.7,
                                                                  abs=0.3)

    def test_reproduces_published_totals(self):
        report = AsicAreaModel().report()
        assert report["rmt_total_mm2"] == pytest.approx(9.71, abs=0.05)
        assert report["menshen_total_mm2"] == pytest.approx(10.81, abs=0.05)

    def test_overhead_shrinks_with_bigger_tables(self):
        # §5.2: "With much larger number of entries in lookup tables...
        # Menshen's additional chip area will be negligible."
        base = AsicAreaModel()
        big = base.with_params(match_entries_per_stage=512,
                               vliw_entries_per_stage=512)
        assert big.overheads()["stage"] < base.overheads()["stage"]
        assert big.overheads()["pipeline"] < base.overheads()["pipeline"]

    def test_overhead_grows_with_module_count(self):
        # §3.1: "area overhead increases as we increase the number of
        # simultaneous programming modules".
        base = AsicAreaModel()
        more = base.with_params(parser_table_depth=64,
                                key_extractor_depth=64, key_mask_depth=64,
                                segment_table_depth=64)
        assert more.overheads()["pipeline"] > base.overheads()["pipeline"]


class TestFpgaResourceModel:
    def test_rmt_rows_calibrated(self):
        n = FpgaResourceModel.netfpga()
        assert n.luts(False) == pytest.approx(
            TABLE4_REFERENCE["rmt_on_netfpga"][0], rel=0.01)
        c = FpgaResourceModel.corundum()
        assert c.luts(False) == pytest.approx(
            TABLE4_REFERENCE["rmt_on_corundum"][0], rel=0.01)

    def test_menshen_lut_delta_small(self):
        # Table 4: +160 LUTs (NetFPGA) / +217 (Corundum); model ~200.
        for model in (FpgaResourceModel.netfpga(),
                      FpgaResourceModel.corundum()):
            delta = model.luts(True) - model.luts(False)
            assert 100 <= delta <= 300
            assert model.lut_overhead_pct() < 1.0

    def test_bram_delta_at_most_one_block(self):
        # Table 4 reports zero BRAM delta; the model may round up once.
        for model in (FpgaResourceModel.netfpga(),
                      FpgaResourceModel.corundum()):
            assert model.brams(True) - model.brams(False) <= 1.0


class TestTrafficGeneration:
    def test_exact_sizes(self):
        gen = PacketGenerator(vid=3)
        for size in SizeSweep.corundum().sizes:
            assert len(gen.packet(size)) == size

    def test_sequence_numbers(self):
        gen = PacketGenerator(vid=3)
        packets = gen.burst(64, 5)
        seqs = [p.read_int(46, 4) for p in packets]
        assert seqs == [0, 1, 2, 3, 4]

    def test_timestamps_from_rate(self):
        gen = PacketGenerator(vid=1)
        stream = list(gen.stream(64, 3, rate_pps=100.0))
        times = [p.arrival_time for p in stream]
        assert times == pytest.approx([0.0, 0.01, 0.02])

    def test_too_small_rejected(self):
        from repro.errors import PacketError
        with pytest.raises(PacketError):
            PacketGenerator(vid=1).packet(50)

    def test_mixed_stream_ratio(self):
        packets = mixed_module_stream({1: 5, 2: 3, 3: 2}, 64, 100)
        from repro.rmt.parser import extract_module_id
        counts = {}
        for p in packets:
            vid = extract_module_id(p)
            counts[vid] = counts.get(vid, 0) + 1
        assert counts == {1: 50, 2: 30, 3: 20}

    def test_fig10_workload_split(self):
        loads = dict(fig10_workload(link_gbps=9.3))
        assert loads[1] == pytest.approx(9.3e9 * 0.5)
        assert loads[2] == pytest.approx(9.3e9 * 0.3)
        assert loads[3] == pytest.approx(9.3e9 * 0.2)


class TestFig10Timeline:
    def build(self, tofino=False):
        from repro.core import MenshenPipeline
        from repro.runtime import MenshenController
        from repro.modules import calc

        pipe = MenshenPipeline()
        ctl = MenshenController(pipe)
        for vid in (1, 2, 3):
            ctl.load_module(vid, calc.P4_SOURCE, f"calc{vid}")
            calc.install(Tenant.attach(ctl, vid), port=vid)

        exp = ReconfigTimelineExperiment(pipe, duration_s=3.0, bin_s=0.1,
                                         scale=1000.0,
                                         tofino_fast_refresh=tofino)
        for vid, bps in fig10_workload():
            exp.add_module(
                vid, bps, 1500,
                lambda vid=vid: calc.make_packet(vid, calc.OP_ADD, 1, 2,
                                                 pad_to=1500))
        return pipe, ctl, exp

    def test_other_modules_undisturbed(self):
        pipe, ctl, exp = self.build()
        exp.schedule_reconfig(1, start_s=0.5, duration_s=1.5)
        result = exp.run()
        # Modules 2 and 3 never dip below ~90% of their offered rate.
        for vid in (2, 3):
            offered = result.offered_gbps[vid]
            interior = result.throughput_gbps[vid][1:-1]
            assert min(interior) >= 0.9 * offered, vid

    def test_updated_module_drops_during_window(self):
        pipe, ctl, exp = self.build()
        exp.schedule_reconfig(1, start_s=0.5, duration_s=1.5)
        result = exp.run()
        inside = result.mean_throughput_inside(1, (0.6, 1.9))
        assert inside == pytest.approx(0.0)
        # ... and recovers afterwards.
        tail = result.throughput_gbps[1][-3:]
        assert min(tail) >= 0.9 * result.offered_gbps[1]

    def test_tofino_baseline_disrupts_everyone(self):
        pipe, ctl, exp = self.build(tofino=True)
        exp.schedule_reconfig(1, start_s=0.5, duration_s=1.5)
        result = exp.run()
        # During fast refresh all modules lose packets.
        assert all(result.drops[vid] > 0 for vid in (1, 2, 3))

    def test_apply_callback_invoked(self):
        pipe, ctl, exp = self.build()
        called = []
        exp.schedule_reconfig(1, 0.5, 1.0, apply=lambda: called.append(1))
        exp.run()
        assert called == [1]
