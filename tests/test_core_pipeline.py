"""Integration tests for the MenshenPipeline: multi-module behavior
isolation, secure reconfiguration, and the system-stage override."""

import pytest

from repro.core import (
    MenshenPipeline,
    ResourceId,
    ResourceType,
    SYSTEM_MODULE_ID,
    build_reconfig_packet,
)
from repro.errors import ReconfigurationError
from repro.net import PacketBuilder
from repro.rmt import (
    AluAction,
    AluOp,
    KeyExtractEntry,
    ParseAction,
    VliwInstruction,
)
from repro.rmt.encodings import encode_key
from repro.rmt.key_extractor import build_mask
from repro.rmt.phv import ContainerRef, ContainerType

B2 = lambda i: ContainerRef(ContainerType.B2, i)

PAYLOAD_OFFSET = 46  # first byte after the common header


def packet(vid, opcode, pad=20):
    """A packet whose first two payload bytes carry a 16-bit opcode."""
    return (PacketBuilder().ethernet().vlan(vid=vid)
            .ipv4().udp(sport=5000, dport=5001)
            .payload(opcode.to_bytes(2, "big") + b"\x00" * pad)
            .build())


def install_doubler(pipe, module_id, stage_idx, cam_slot, mapping):
    """Install a module: parse payload[0:2] into B2[0]; for each
    (input_value -> output_value) in mapping, write the result into
    payload bytes [2:4] via B2[1]."""
    actions = [ParseAction(PAYLOAD_OFFSET, B2(0)),
               ParseAction(PAYLOAD_OFFSET + 2, B2(1))]
    pipe.parser.install_program(module_id, actions)
    pipe.deparser.install_program(module_id, actions)

    stage = pipe.stages[stage_idx]
    stage.key_extractor.install(
        module_id, KeyExtractEntry(idx_2b_1=0),
        mask=build_mask(use_2b=(True, False)))
    for offset, (value_in, value_out) in enumerate(mapping.items()):
        key = encode_key([0, 0, 0, 0, value_in, 0], 0)
        slot = cam_slot + offset
        stage.match_table.write(slot, key=key, module_id=module_id)
        stage.install_vliw(slot, VliwInstruction.from_sparse({
            1: AluAction(AluOp.SET, immediate=value_out),
        }))
    pipe.mark_loaded(module_id)


def result_value(result):
    """The 16-bit output value written into payload bytes [2:4]."""
    return result.packet.read_int(PAYLOAD_OFFSET + 2, 2)


class TestMultiModuleBehaviorIsolation:
    def build(self):
        pipe = MenshenPipeline()
        install_doubler(pipe, 1, stage_idx=1, cam_slot=0,
                        mapping={10: 100, 20: 200})
        install_doubler(pipe, 2, stage_idx=1, cam_slot=4,
                        mapping={10: 999})
        return pipe

    def test_each_module_sees_its_own_rules(self):
        pipe = self.build()
        # Same input value, different modules, different outcomes.
        assert result_value(pipe.process(packet(1, 10))) == 100
        assert result_value(pipe.process(packet(2, 10))) == 999
        assert result_value(pipe.process(packet(1, 20))) == 200

    def test_module_miss_on_other_modules_value(self):
        pipe = self.build()
        # Module 2 has no rule for 20 even though module 1 does.
        assert result_value(pipe.process(packet(2, 20))) == 0

    def test_interleaving_makes_no_difference(self):
        # Behavior isolation: module 1's outputs are identical whether or
        # not module 2's traffic is interleaved.
        solo = self.build()
        outputs_solo = [result_value(solo.process(packet(1, 10)))
                        for _ in range(5)]
        mixed = self.build()
        outputs_mixed = []
        for _ in range(5):
            mixed.process(packet(2, 10))
            outputs_mixed.append(result_value(mixed.process(packet(1, 10))))
            mixed.process(packet(2, 77))
        assert outputs_solo == outputs_mixed

    def test_unknown_module_dropped(self):
        pipe = self.build()
        result = pipe.process(packet(9, 10))
        assert result.dropped
        assert result.drop_reason == "unknown_module"

    def test_untagged_packet_dropped(self):
        pipe = self.build()
        pkt = PacketBuilder().ethernet().ipv4().udp().payload(b"hi").build()
        result = pipe.process(pkt)
        assert result.dropped
        assert result.drop_reason == "untagged"

    def test_per_module_stats(self):
        pipe = self.build()
        pipe.process(packet(1, 10))
        pipe.process(packet(1, 20))
        pipe.process(packet(2, 10))
        assert pipe.stats.per_module_in[1] == 2
        assert pipe.stats.per_module_in[2] == 1
        assert pipe.stats.per_module_out[1] == 2


class TestStatefulIsolation:
    def build(self):
        """Two counter modules sharing stage 0's stateful memory."""
        pipe = MenshenPipeline()
        pipe.segment_tables[0].set_segment(1, offset=0, range_=4)
        pipe.segment_tables[0].set_segment(2, offset=4, range_=4)
        for module_id in (1, 2):
            actions = [ParseAction(PAYLOAD_OFFSET, B2(0)),
                       ParseAction(PAYLOAD_OFFSET + 2, B2(1))]
            pipe.parser.install_program(module_id, actions)
            pipe.deparser.install_program(module_id, actions)
            stage = pipe.stages[0]
            stage.key_extractor.install(
                module_id, KeyExtractEntry(idx_2b_1=0),
                mask=build_mask(use_2b=(True, False)))
            slot = 0 if module_id == 1 else 8
            key = encode_key([0, 0, 0, 0, 1, 0], 0)
            stage.match_table.write(slot, key=key, module_id=module_id)
            # loadd counter at per-module address 0 -> B2[1]
            stage.install_vliw(slot, VliwInstruction.from_sparse({
                1: AluAction(AluOp.LOADD, c1=B2(7), immediate=0),
            }))
            pipe.mark_loaded(module_id)
        return pipe

    def test_counters_are_independent(self):
        pipe = self.build()
        assert result_value(pipe.process(packet(1, 1))) == 1
        assert result_value(pipe.process(packet(1, 1))) == 2
        # Module 2's counter starts at its own zero.
        assert result_value(pipe.process(packet(2, 1))) == 1
        # Module 1 unaffected by module 2's increments.
        assert result_value(pipe.process(packet(1, 1))) == 3
        # Physical memory: module 1 at word 0, module 2 at word 4.
        assert pipe.stages[0].stateful_memory.read(0) == 3
        assert pipe.stages[0].stateful_memory.read(4) == 1


class TestSecureReconfiguration:
    def test_dataplane_reconfig_dropped_in_switch_mode(self):
        pipe = MenshenPipeline(reconfig_from_dataplane=False)
        pkt = build_reconfig_packet(
            ResourceId(ResourceType.SEGMENT, 0), index=1, entry=0x0004)
        result = pipe.process(pkt)
        assert result.dropped
        assert result.drop_reason == "reconfig_on_dataplane"
        # The write must NOT have been applied.
        from repro.errors import SegmentFaultError
        with pytest.raises(SegmentFaultError):
            pipe.segment_tables[0].translate(1, 0)

    def test_dataplane_reconfig_consumed_in_nic_mode(self):
        pipe = MenshenPipeline(reconfig_from_dataplane=True)
        pkt = build_reconfig_packet(
            ResourceId(ResourceType.SEGMENT, 0), index=1, entry=0x0004)
        result = pipe.process(pkt)
        assert result.dropped  # consumed, not forwarded
        assert pipe.segment_tables[0].segment_of(1) == (0, 4)

    def test_pcie_injection_applies_write(self):
        pipe = MenshenPipeline()
        pkt = build_reconfig_packet(
            ResourceId(ResourceType.KEY_MASK, 2), index=5,
            entry=(1 << 193) - 1)
        payload = pipe.inject_reconfig(pkt)
        assert payload is not None
        assert pipe.stages[2].key_mask_table.read(5) == (1 << 193) - 1
        assert pipe.packet_filter.read_counter() == 1

    def test_inject_rejects_non_reconfig(self):
        pipe = MenshenPipeline()
        with pytest.raises(ReconfigurationError):
            pipe.inject_reconfig(packet(1, 10))

    def test_bitmap_drops_only_updating_module(self):
        pipe = MenshenPipeline()
        install_doubler(pipe, 1, 1, 0, {10: 100})
        install_doubler(pipe, 2, 1, 4, {10: 200})
        pipe.packet_filter.set_module_updating(1)
        r1 = pipe.process(packet(1, 10))
        r2 = pipe.process(packet(2, 10))
        assert r1.dropped and r1.drop_reason == "module_updating"
        assert not r2.dropped and result_value(r2) == 200
        pipe.packet_filter.clear_module_updating(1)
        assert not pipe.process(packet(1, 10)).dropped

    def test_all_config_tables_reachable_via_chain(self):
        pipe = MenshenPipeline()
        cases = [
            (ResourceType.PARSER_TABLE, 0, 3, 0xAB),
            (ResourceType.DEPARSER_TABLE, 0, 3, 0xCD),
            (ResourceType.KEY_EXTRACTOR, 1, 2, 0x1F),
            (ResourceType.KEY_MASK, 4, 2, 0xFF),
            (ResourceType.VLIW, 3, 9, 0x0),
            (ResourceType.SEGMENT, 2, 1, 0x0810),
            (ResourceType.STATEFUL_WORD, 0, 7, 0xDEAD),
        ]
        for rtype, stage, index, entry in cases:
            pkt = build_reconfig_packet(ResourceId(rtype, stage), index,
                                        entry)
            assert pipe.inject_reconfig(pkt) is not None
        assert pipe.parser_table.read(3) == 0xAB
        assert pipe.deparser_table.read(3) == 0xCD
        assert pipe.stages[1].key_extract_table.read(2) == 0x1F
        assert pipe.stages[4].key_mask_table.read(2) == 0xFF
        assert pipe.segment_tables[2].segment_of(1) == (0x08, 0x10)
        assert pipe.stages[0].stateful_memory.read(7) == 0xDEAD

    def test_cam_write_and_invalidate_via_chain(self):
        from repro.rmt.encodings import encode_cam_entry
        pipe = MenshenPipeline()
        word = encode_cam_entry(0x1234, 6)
        pipe.inject_reconfig(build_reconfig_packet(
            ResourceId(ResourceType.CAM, 0), index=2, entry=word))
        assert pipe.stages[0].match_table.lookup(0x1234, 6) == 2
        pipe.inject_reconfig(build_reconfig_packet(
            ResourceId(ResourceType.CAM_INVALIDATE, 0), index=2, entry=0))
        assert pipe.stages[0].match_table.lookup(0x1234, 6) is None

    def test_lost_reconfig_detected_by_counter(self):
        pipe = MenshenPipeline()
        pipe.daisy_chain.drop_next(1)
        pkt = build_reconfig_packet(
            ResourceId(ResourceType.SEGMENT, 0), index=1, entry=0x0101)
        before = pipe.packet_filter.read_counter()
        assert pipe.inject_reconfig(pkt) is None
        assert pipe.packet_filter.read_counter() == before  # loss visible
        assert pipe.inject_reconfig(pkt) is not None
        assert pipe.packet_filter.read_counter() == before + 1


class TestSystemStageOverride:
    def test_system_stages_use_system_module_config(self):
        pipe = MenshenPipeline()
        install_doubler(pipe, 1, stage_idx=1, cam_slot=0, mapping={10: 100})
        # System module in stage 0: stamp B2[2] = 0x5A for every packet.
        stage0 = pipe.stages[0]
        stage0.key_extractor.install(
            SYSTEM_MODULE_ID, KeyExtractEntry(), mask=0)  # match-all key 0
        stage0.match_table.write(0, key=0, module_id=SYSTEM_MODULE_ID)
        stage0.install_vliw(0, VliwInstruction.from_sparse({
            2: AluAction(AluOp.SET, immediate=0x5A),
        }))
        pipe.set_system_stages({0})
        # Module 1's deparse program additionally writes B2[2].
        actions = [ParseAction(PAYLOAD_OFFSET, B2(0)),
                   ParseAction(PAYLOAD_OFFSET + 2, B2(1)),
                   ParseAction(PAYLOAD_OFFSET + 4, B2(2))]
        pipe.parser.install_program(1, actions)
        pipe.deparser.install_program(1, actions)

        result = pipe.process(packet(1, 10))
        assert result_value(result) == 100  # module 1's own rule ran
        assert result.packet.read_int(PAYLOAD_OFFSET + 4, 2) == 0x5A

    def test_bad_system_stage_rejected(self):
        pipe = MenshenPipeline()
        with pytest.raises(ReconfigurationError):
            pipe.set_system_stages({7})
