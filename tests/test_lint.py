"""Tests for the determinism lint: every rule, pragma suppression, the
baseline mechanism, and the guarantee that src/repro itself is clean."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.lint import (
    RULES,
    apply_baseline,
    lint_paths,
    lint_source,
    parse_pragmas,
)

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


def codes(source, **kw):
    return [f.code for f in lint_source(textwrap.dedent(source), **kw)
            .findings]


class TestMutableGlobal:
    def test_mutated_module_dict_flagged(self):
        assert codes("""
            CACHE = {}
            def put(k, v):
                CACHE[k] = v
            """) == ["mutable-global"]

    def test_mutator_method_flagged(self):
        assert codes("""
            REGISTRY = []
            def register(x):
                REGISTRY.append(x)
            """) == ["mutable-global"]

    def test_global_rebinding_flagged(self):
        assert codes("""
            STATE = {"n": 0}
            def reset():
                global STATE
                STATE = {}
            """) == ["mutable-global"]

    def test_constant_table_not_flagged(self):
        assert codes("""
            OPCODES = {"add": 1, "sub": 2}
            def lookup(name):
                return OPCODES[name]
            """) == []

    def test_local_shadowing_not_flagged(self):
        assert codes("""
            POOL = []
            def build():
                POOL = []
                POOL.append(1)
                return POOL
            """) == []

    def test_parameter_shadowing_not_flagged(self):
        assert codes("""
            ITEMS = []
            def fill(ITEMS):
                ITEMS.append(1)
            """) == []


class TestUnseededRandom:
    def test_global_generator_call_flagged(self):
        assert codes("""
            import random
            def jitter():
                return random.random()
            """) == ["unseeded-random"]

    def test_unseeded_constructor_flagged(self):
        assert codes("""
            import random
            rng = random.Random()
            """) == ["unseeded-random"]

    def test_seeded_constructor_clean(self):
        assert codes("""
            import random
            rng = random.Random(1234)
            def jitter():
                return rng.random()
            """) == []

    def test_numpy_global_flagged(self):
        assert codes("""
            import numpy as np
            def noise():
                return np.random.rand()
            """) == ["unseeded-random"]


class TestWallClock:
    def test_time_time_flagged(self):
        assert codes("""
            import time
            def stamp():
                return time.time()
            """) == ["wall-clock"]

    def test_datetime_now_flagged(self):
        assert codes("""
            import datetime
            def stamp():
                return datetime.datetime.now()
            """) == ["wall-clock"]

    def test_monotonic_virtual_time_clean(self):
        assert codes("""
            def advance(clock, dt):
                return clock + dt
            """) == []


class TestSetIteration:
    def test_for_over_set_literal_name(self):
        assert codes("""
            def walk():
                seen = {1, 2, 3}
                for x in seen:
                    print(x)
            """) == ["set-iteration"]

    def test_comprehension_over_set_call(self):
        assert codes("""
            def walk(items):
                return [x for x in set(items)]
            """) == ["set-iteration"]

    def test_sorted_neutralizes(self):
        assert codes("""
            def walk(items):
                seen = set(items)
                return [x for x in sorted(seen)]
            """) == []

    def test_set_algebra_tracked(self):
        assert codes("""
            def walk(a, b):
                both = set(a) & set(b)
                for x in both:
                    print(x)
            """) == ["set-iteration"]

    def test_rebinding_to_list_clears_inference(self):
        assert codes("""
            def walk(items):
                xs = set(items)
                xs = sorted(xs)
                for x in xs:
                    print(x)
            """) == []

    def test_dict_iteration_clean(self):
        assert codes("""
            def walk(d):
                for k in d:
                    print(k)
            """) == []


class TestPragmas:
    def test_blanket_pragma_suppresses(self):
        assert codes("""
            import time
            def stamp():
                return time.time()  # repro-lint: disable
            """) == []

    def test_named_pragma_suppresses_only_that_rule(self):
        src = """
            import time, random
            def stamp():
                return time.time()  # repro-lint: disable=wall-clock
            def jitter():
                return random.random()  # repro-lint: disable=wall-clock
            """
        assert codes(src) == ["unseeded-random"]

    def test_parse_pragmas_maps_lines(self):
        pragmas = parse_pragmas(
            "x = 1  # repro-lint: disable=set-iteration, wall-clock\n"
            "y = 2  # repro-lint: disable\n")
        assert pragmas[1] == {"set-iteration", "wall-clock"}
        assert pragmas[2] is None


class TestBareAssert:
    def test_assert_flagged(self):
        assert codes("""
            def admit(n):
                assert n > 0
                return n
            """) == ["bare-assert"]

    def test_assert_with_message_still_flagged(self):
        # The message does not survive python -O either.
        assert codes("""
            def admit(n):
                assert n > 0, "n must be positive"
            """) == ["bare-assert"]

    def test_module_level_assert_flagged(self):
        assert codes("assert True\n") == ["bare-assert"]

    def test_raise_not_flagged(self):
        assert codes("""
            def admit(n):
                if n <= 0:
                    raise ValueError(n)
                return n
            """) == []

    def test_pragma_suppresses(self):
        assert codes("""
            def f(n):
                assert n  # repro-lint: disable=bare-assert
            """) == []


class TestDriver:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            lint_source("x = 1", rules=("made-up",))

    def test_rule_subset_filters(self):
        src = textwrap.dedent("""
            import time
            def f(s):
                for x in set(s):
                    print(x)
                return time.time()
            """)
        report = lint_source(src, rules=("wall-clock",))
        assert [f.code for f in report.findings] == ["wall-clock"]

    def test_syntax_error_becomes_finding(self):
        report = lint_source("def broken(:\n")
        assert [f.code for f in report.findings] == ["syntax-error"]
        assert report.findings[0].severity is Severity.ERROR

    def test_findings_carry_path_and_line(self):
        report = lint_source("import time\nt = time.time()\n",
                             path="pkg/mod.py")
        finding = report.findings[0]
        assert finding.subject == "pkg/mod.py" and finding.line == 2

    def test_baseline_subtracts_and_reports_stale(self):
        src = "import time\nt = time.time()\n"
        current = lint_source(src, path="m.py")
        fresh, stale = apply_baseline(current, current)
        assert fresh.findings == [] and stale == []
        empty = AnalysisReport()
        fresh, stale = apply_baseline(empty, current)
        assert fresh.findings == [] and len(stale) == 1


class TestRepoIsClean:
    def test_src_repro_has_no_hazards(self):
        """The committed baseline is empty and must stay empty: the
        serving core is free of nondeterminism hazards."""
        report = lint_paths([SRC_REPRO])
        assert report.findings == [], "\n".join(
            str(f) for f in report.findings)

    def test_committed_baseline_is_empty(self):
        baseline_file = SRC_REPRO.parent.parent / "lint-baseline.json"
        baseline = AnalysisReport.from_json(
            baseline_file.read_text(encoding="utf-8"))
        assert baseline.findings == []

    def test_all_rules_documented_in_rules_tuple(self):
        assert RULES == ("mutable-global", "unseeded-random",
                         "wall-clock", "set-iteration", "bare-assert")
