"""Unit tests for the PHV, containers, and metadata."""

import pytest

from repro.errors import ConfigError, FieldRangeError
from repro.rmt import PHV, ContainerRef, ContainerType, Metadata
from repro.rmt.params import DEFAULT_PARAMS


class TestContainerRef:
    def test_encode5_layout(self):
        # type in bits 4:3, index in bits 2:0
        assert ContainerRef(ContainerType.B2, 0).encode5() == 0
        assert ContainerRef(ContainerType.B4, 3).encode5() == 0b01011
        assert ContainerRef(ContainerType.B6, 7).encode5() == 0b10111

    def test_decode5_roundtrip(self):
        for ctype in (ContainerType.B2, ContainerType.B4, ContainerType.B6):
            for index in range(8):
                ref = ContainerRef(ctype, index)
                assert ContainerRef.decode5(ref.encode5()) == ref

    def test_index_bounds(self):
        with pytest.raises(FieldRangeError):
            ContainerRef(ContainerType.B2, 8)
        with pytest.raises(FieldRangeError):
            ContainerRef(ContainerType.META, 1)

    def test_flat_index_mapping(self):
        assert ContainerRef(ContainerType.B2, 0).flat_index == 0
        assert ContainerRef(ContainerType.B4, 0).flat_index == 8
        assert ContainerRef(ContainerType.B6, 7).flat_index == 23
        assert ContainerRef(ContainerType.META, 0).flat_index == 24

    def test_from_flat_roundtrip(self):
        for flat in range(25):
            assert ContainerRef.from_flat(flat).flat_index == flat

    def test_from_flat_bounds(self):
        with pytest.raises(FieldRangeError):
            ContainerRef.from_flat(25)

    def test_sizes(self):
        assert ContainerRef(ContainerType.B2, 0).size_bytes == 2
        assert ContainerRef(ContainerType.B4, 0).size_bytes == 4
        assert ContainerRef(ContainerType.B6, 0).size_bytes == 6


class TestMetadata:
    def test_starts_zeroed(self):
        meta = Metadata()
        assert bytes(meta.buf) == b"\x00" * 32

    def test_discard_flag_roundtrip(self):
        meta = Metadata()
        meta.discard = True
        assert meta.discard
        meta.discard = False
        assert not meta.discard

    def test_field_roundtrips(self):
        meta = Metadata()
        meta.dst_port = 5
        meta.src_port = 2
        meta.pkt_len = 1500
        meta.mcast_group = 9
        meta.module_id = 0xFFF
        meta.enq_timestamp = 123456
        meta.queue_delay = 789
        assert meta.dst_port == 5
        assert meta.src_port == 2
        assert meta.pkt_len == 1500
        assert meta.mcast_group == 9
        assert meta.module_id == 0xFFF
        assert meta.enq_timestamp == 123456
        assert meta.queue_delay == 789

    def test_field_range_check(self):
        with pytest.raises(FieldRangeError):
            Metadata().dst_port = 1 << 16

    def test_copy_independent(self):
        meta = Metadata()
        meta.dst_port = 1
        dup = meta.copy()
        dup.dst_port = 2
        assert meta.dst_port == 1


class TestPHV:
    def test_fresh_phv_is_zero(self):
        # Isolation property: the PHV is zeroed for each incoming packet.
        assert PHV().is_zero()

    def test_get_set_roundtrip(self):
        phv = PHV()
        ref = ContainerRef(ContainerType.B4, 2)
        phv.set(ref, 0xDEADBEEF)
        assert phv.get(ref) == 0xDEADBEEF

    def test_set_range_check(self):
        phv = PHV()
        with pytest.raises(FieldRangeError):
            phv.set(ContainerRef(ContainerType.B2, 0), 1 << 16)

    def test_set_wrapping(self):
        phv = PHV()
        ref = ContainerRef(ContainerType.B2, 0)
        phv.set_wrapping(ref, (1 << 16) + 5)
        assert phv.get(ref) == 5
        phv.set_wrapping(ref, -1)
        assert phv.get(ref) == 0xFFFF

    def test_bytes_roundtrip(self):
        phv = PHV()
        ref = ContainerRef(ContainerType.B6, 1)
        phv.set_bytes(ref, b"\x01\x02\x03\x04\x05\x06")
        assert phv.get_bytes(ref) == b"\x01\x02\x03\x04\x05\x06"

    def test_set_bytes_wrong_length(self):
        with pytest.raises(FieldRangeError):
            PHV().set_bytes(ContainerRef(ContainerType.B2, 0), b"\x01")

    def test_metadata_not_container_accessible(self):
        phv = PHV()
        meta_ref = ContainerRef(ContainerType.META, 0)
        with pytest.raises(ConfigError):
            phv.get(meta_ref)
        with pytest.raises(ConfigError):
            phv.set(meta_ref, 1)

    def test_copy_independent(self):
        phv = PHV()
        ref = ContainerRef(ContainerType.B2, 0)
        phv.set(ref, 7)
        dup = phv.copy()
        dup.set(ref, 9)
        dup.metadata.dst_port = 3
        assert phv.get(ref) == 7
        assert phv.metadata.dst_port == 0

    def test_containers_enumeration(self):
        phv = PHV()
        refs = [r for r, _ in phv.containers()]
        assert len(refs) == 24
        assert len(set(r.flat_index for r in refs)) == 24

    def test_equality(self):
        a, b = PHV(), PHV()
        assert a == b
        a.set(ContainerRef(ContainerType.B2, 0), 1)
        assert a != b


class TestParamsGeometry:
    def test_table5_values(self):
        p = DEFAULT_PARAMS
        assert p.num_containers == 25
        assert p.phv_bytes == 128
        assert p.key_bytes == 24
        assert p.key_bits == 193
        assert p.cam_entry_bits == 205
        assert p.parser_entry_bits == 160
        assert p.vliw_entry_bits == 625
        assert p.max_modules == 32
        assert p.num_stages == 5
        assert p.module_id_bits == 12

    def test_with_overrides(self):
        p = DEFAULT_PARAMS.with_overrides(num_stages=3)
        assert p.num_stages == 3
        assert DEFAULT_PARAMS.num_stages == 5

    def test_inventory_has_all_tables(self):
        inv = DEFAULT_PARAMS.table_inventory()
        assert set(inv) == {
            "parser_table", "deparser_table", "key_extractor_table",
            "key_mask_table", "exact_match_cam", "vliw_action_table",
            "segment_table", "stateful_memory",
        }
        assert inv["exact_match_cam"]["width_bits"] == 205
        assert inv["vliw_action_table"]["width_bits"] == 625
