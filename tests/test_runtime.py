"""Tests for the runtime: interface, controller lifecycle, policies."""

import pytest

from repro.api import Tenant
from repro.compiler.resource_checker import ResourceRequest
from repro.core import MenshenPipeline, ResourceId, ResourceType
from repro.errors import (
    AdmissionError,
    ReconfigurationError,
    RuntimeInterfaceError,
)
from repro.modules import calc, firewall
from repro.policy import DrfPolicy, FirstFitPolicy, UtilityPolicy
from repro.runtime import AxiLiteModel, MenshenController, TofinoModel
from repro.runtime.axi_lite import fig12_series
from repro.rmt.params import DEFAULT_PARAMS


def make_controller(**kw):
    pipe = MenshenPipeline()
    return pipe, MenshenController(pipe, **kw)


class TestInterface:
    def test_reliable_write_retries_on_loss(self):
        pipe, ctl = make_controller()
        pipe.daisy_chain.drop_next(2)
        ctl.interface.write_config_reliable(
            ResourceId(ResourceType.SEGMENT, 0), 1, 0x0104)
        assert pipe.segment_tables[0].segment_of(1) == (1, 4)
        assert ctl.interface.stats.packets_lost == 2

    def test_reliable_write_gives_up(self):
        pipe, ctl = make_controller()
        pipe.daisy_chain.drop_next(100)
        with pytest.raises(ReconfigurationError):
            ctl.interface.write_config_reliable(
                ResourceId(ResourceType.SEGMENT, 0), 1, 0x0104,
                max_retries=3)

    def test_send_batch_counts_delivered(self):
        pipe, ctl = make_controller()
        writes = [(ResourceId(ResourceType.SEGMENT, 0), i, 0x0101)
                  for i in range(4)]
        pipe.daisy_chain.drop_next(1)
        assert ctl.interface.send_batch(writes) == 3

    def test_modeled_time_accumulates(self):
        pipe, ctl = make_controller()
        before = ctl.interface.stats.modeled_time_s
        ctl.interface.write_config(
            ResourceId(ResourceType.SEGMENT, 0), 1, 0x0101)
        assert ctl.interface.stats.modeled_time_s > before


class TestControllerLifecycle:
    def test_load_and_process(self):
        pipe, ctl = make_controller()
        ctl.load_module(3, calc.P4_SOURCE, "calc")
        calc.install(Tenant.attach(ctl, 3))
        res = pipe.process(calc.make_packet(3, calc.OP_ADD, 2, 3))
        assert calc.read_result(res.packet) == 5

    def test_load_survives_packet_loss(self):
        pipe, ctl = make_controller()
        pipe.daisy_chain.drop_next(3)
        ctl.load_module(3, calc.P4_SOURCE, "calc")
        calc.install(Tenant.attach(ctl, 3))
        res = pipe.process(calc.make_packet(3, calc.OP_ADD, 2, 3))
        assert calc.read_result(res.packet) == 5

    def test_duplicate_module_id_rejected(self):
        pipe, ctl = make_controller()
        ctl.load_module(3, calc.P4_SOURCE)
        with pytest.raises(AdmissionError):
            ctl.load_module(3, calc.P4_SOURCE)

    def test_module_id_zero_reserved(self):
        pipe, ctl = make_controller()
        with pytest.raises(AdmissionError):
            ctl.load_module(0, calc.P4_SOURCE)

    def test_unload_frees_and_stops_traffic(self):
        pipe, ctl = make_controller()
        ctl.load_module(3, calc.P4_SOURCE)
        calc.install(Tenant.attach(ctl, 3))
        ctl.unload_module(3)
        res = pipe.process(calc.make_packet(3, calc.OP_ADD, 2, 3))
        assert res.dropped and res.drop_reason == "unknown_module"
        # Resources are free again: another module can take id 3.
        ctl.load_module(3, firewall.P4_SOURCE)

    def test_unload_zeroes_stateful(self):
        from repro.modules import netchain
        pipe, ctl = make_controller()
        ctl.load_module(3, netchain.P4_SOURCE)
        netchain.install(Tenant.attach(ctl, 3))
        pipe.process(netchain.make_packet(3))
        pipe.process(netchain.make_packet(3))
        assert ctl.register_read(3, "sequencer", 0) == 2
        stage = ctl.modules[3].compiled.registers["sequencer"].stage
        phys = ctl.modules[3].allocation.stage(stage).stateful_base
        ctl.unload_module(3)
        assert pipe.stages[stage].stateful_memory.read(phys) == 0

    def test_update_module_swaps_logic(self):
        pipe, ctl = make_controller()
        ctl.load_module(3, calc.P4_SOURCE, "calc")
        calc.install(Tenant.attach(ctl, 3))
        # Update to the firewall program under the same module id.
        ctl.update_module(3, firewall.P4_SOURCE)
        firewall.install(Tenant.attach(ctl, 3),
                                 blocked=[("10.0.0.1", 20000)])
        res = pipe.process(firewall.make_packet(3, "10.0.0.1", 20000))
        assert res.dropped and res.drop_reason == "discard"

    def test_update_does_not_touch_other_modules_rows(self):
        pipe, ctl = make_controller()
        ctl.load_module(3, calc.P4_SOURCE, "calc")
        ctl.load_module(4, firewall.P4_SOURCE, "fw")
        calc.install(Tenant.attach(ctl, 3))
        mark = pipe.parser_table.log_position
        marks = {i: s.key_extract_table.log_position
                 for i, s in enumerate(pipe.stages)}
        ctl.update_module(3, calc.P4_SOURCE)
        # Only module 3's overlay rows were written during the update.
        assert pipe.parser_table.modules_written_since(mark) == {3}
        for i, stage in enumerate(pipe.stages):
            touched = stage.key_extract_table.modules_written_since(marks[i])
            assert touched <= {3}

    def test_bitmap_cleared_after_load(self):
        pipe, ctl = make_controller()
        ctl.load_module(3, calc.P4_SOURCE)
        assert pipe.packet_filter.read_bitmap() == 0

    def test_admission_fails_when_cam_exhausted(self):
        pipe, ctl = make_controller()
        # calc uses one 4-entry table. With stage-balanced placement,
        # 4 modules fit per stage x 5 stages = 20; the 21st must be
        # rejected by admission control.
        for module_id in range(1, 21):
            ctl.load_module(module_id, calc.P4_SOURCE)
        with pytest.raises(AdmissionError):
            ctl.load_module(21, calc.P4_SOURCE)

    def test_stage_balancing_spreads_modules(self):
        pipe, ctl = make_controller()
        stages = set()
        for module_id in (1, 2, 3, 4, 5):
            loaded = ctl.load_module(module_id, calc.P4_SOURCE)
            stages.update(loaded.compiled.stages_used())
        assert len(stages) >= 2  # not everything piled into stage 0

    def test_table_add_full_table(self):
        pipe, ctl = make_controller()
        ctl.load_module(3, calc.P4_SOURCE)
        for op in range(4):
            ctl.table_add(3, "calc_table", {"hdr.calc.op": 100 + op},
                          "op_echo")
        with pytest.raises(RuntimeInterfaceError, match="full"):
            ctl.table_add(3, "calc_table", {"hdr.calc.op": 999}, "op_echo")

    def test_table_delete_frees_slot(self):
        pipe, ctl = make_controller()
        ctl.load_module(3, calc.P4_SOURCE)
        handle = ctl.table_add(3, "calc_table", {"hdr.calc.op": 1},
                               "op_echo")
        ctl.table_delete(3, "calc_table", handle)
        res = pipe.process(calc.make_packet(3, 1, 9, 0))
        assert calc.read_result(res.packet) == 0  # entry gone: no echo
        ctl.table_add(3, "calc_table", {"hdr.calc.op": 1}, "op_echo")

    def test_table_add_unknown_action(self):
        pipe, ctl = make_controller()
        ctl.load_module(3, calc.P4_SOURCE)
        with pytest.raises(RuntimeInterfaceError):
            ctl.table_add(3, "calc_table", {"hdr.calc.op": 1}, "nope")

    def test_register_rw(self):
        from repro.modules import netcache
        pipe, ctl = make_controller()
        ctl.load_module(3, netcache.P4_SOURCE)
        ctl.register_write(3, "values", 2, 4242)
        assert ctl.register_read(3, "values", 2) == 4242


class TestPolicies:
    def request(self, match=16, stateful=0, tables=1, parse=4, cont=3):
        return ResourceRequest(match_entries=match, stateful_words=stateful,
                               num_tables=tables, parse_actions=parse,
                               containers=cont)

    def test_first_fit_admits_until_capacity(self):
        policy = FirstFitPolicy()
        admitted = 0
        for i in range(1, 32):
            if policy.admit(i, self.request(match=16)):
                admitted += 1
        # 5 stages x 16 entries = 80 total match entries -> 5 modules
        assert admitted == 5

    def test_drf_caps_dominant_share(self):
        policy = DrfPolicy(expected_tenants=8, fairness_slack=2.0)
        # One module wanting half of all match entries exceeds 2/8 cap.
        assert not policy.admit(1, self.request(match=40))
        assert policy.admit(2, self.request(match=16))

    def test_drf_tracks_shares(self):
        policy = DrfPolicy(expected_tenants=8)
        policy.admit(1, self.request(match=16))
        shares = policy.dominant_shares()
        assert shares[1] == pytest.approx(16 / 80)

    def test_drf_release(self):
        policy = DrfPolicy(expected_tenants=4, fairness_slack=1.0)
        assert policy.admit(1, self.request(match=20))
        assert not policy.admit(2, self.request(match=80))
        policy.release(1)
        assert policy.admit(3, self.request(match=20))

    def test_drf_caps_cumulative_share_per_owner(self):
        # The starvation-by-a-thousand-cuts hole: many small modules,
        # each individually under fair_cap, must not let one owner
        # accumulate an unbounded cumulative dominant share.
        policy = DrfPolicy(expected_tenants=8, fairness_slack=2.0)
        # fair_cap = 0.25 of 80 match entries -> 20 entries per owner.
        assert policy.admit(1, self.request(match=8), owner=100)
        assert policy.admit(2, self.request(match=8), owner=100)
        # Third 8-entry module would take owner 100 to 24/80 = 0.30.
        assert not policy.admit(3, self.request(match=8), owner=100)
        # A different owner still has full headroom.
        assert policy.admit(4, self.request(match=8), owner=200)
        assert policy.owner_dominant_share(100) == pytest.approx(16 / 80)

    def test_drf_release_returns_owner_headroom(self):
        policy = DrfPolicy(expected_tenants=8, fairness_slack=2.0)
        assert policy.admit(1, self.request(match=16), owner=100)
        assert not policy.admit(2, self.request(match=16), owner=100)
        policy.release(1)
        assert policy.owner_dominant_share(100) == 0.0
        assert policy.admit(2, self.request(match=16), owner=100)

    def test_controller_releases_policy_on_unload(self):
        # Evicting a module must return its demand to the policy —
        # otherwise reloading the same VID is rejected as a duplicate
        # and evicted tenants are charged forever.
        pipe = MenshenPipeline()
        policy = DrfPolicy(expected_tenants=8, fairness_slack=2.0)
        ctl = MenshenController(pipe, policy=policy)
        ctl.load_module(3, calc.P4_SOURCE, "calc")
        assert 3 in policy.state.usage
        ctl.unload_module(3)
        assert 3 not in policy.state.usage
        ctl.load_module(3, calc.P4_SOURCE, "calc")  # reload works
        assert 3 in policy.state.usage

    def test_controller_releases_policy_on_update(self):
        pipe = MenshenPipeline()
        policy = DrfPolicy(expected_tenants=8, fairness_slack=2.0)
        ctl = MenshenController(pipe, policy=policy)
        ctl.load_module(3, calc.P4_SOURCE, "calc")
        before = policy.state.usage[3]
        ctl.update_module(3, calc.P4_SOURCE)  # re-admits, no duplicate
        assert policy.state.usage[3] == before

    def test_utility_density_threshold(self):
        policy = UtilityPolicy(min_density=1.0)
        policy.set_utility(1, 0.01)  # low utility, big demand
        assert not policy.admit(1, self.request(match=40))
        policy.set_utility(2, 100.0)
        assert policy.admit(2, self.request(match=40))
        assert policy.total_utility == 100.0

    def test_controller_respects_policy(self):
        class RejectAll:
            def admit(self, module_id, request, ledger):
                return False
        pipe = MenshenPipeline()
        ctl = MenshenController(pipe, policy=RejectAll())
        with pytest.raises(AdmissionError, match="policy"):
            ctl.load_module(3, calc.P4_SOURCE)


class TestCostModels:
    def test_axi_writes_per_entry(self):
        model = AxiLiteModel()
        assert model.writes_per_entry(625) == 20
        assert model.writes_per_entry(205) == 7
        assert model.writes_per_entry(32) == 1

    def test_axi_vs_daisy_shape(self):
        rows = fig12_series()
        assert len(rows) == DEFAULT_PARAMS.num_stages * 2
        for row in rows:
            # The paper's Appendix-A claim: daisy chain is much faster,
            # especially for the wide VLIW entries.
            assert row["daisy_chain_s"] < row["axi_lite_s"]
        vliw = [r for r in rows if r["resource"] == "vliw_action_table"]
        cam = [r for r in rows if r["resource"] == "cam"]
        assert vliw[0]["axi_lite_s"] > cam[0]["axi_lite_s"]

    def test_tofino_disrupts_everyone(self):
        model = TofinoModel()
        assert model.update_disruption([1, 2, 3], updated_module=1) == \
            {1, 2, 3}
        assert model.disruption_window_s() == pytest.approx(50e-3)

    def test_tofino_entry_time_linear(self):
        model = TofinoModel()
        assert model.entry_insert_time(1024) == pytest.approx(
            1024 * model.t_per_entry)
