"""Exception hierarchy for the Menshen reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries. Sub-hierarchies mirror
the major subsystems: packet crafting, the RMT/Menshen data plane, the
compiler, the runtime interface, and resource policies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Packet / net substrate
# ---------------------------------------------------------------------------

class PacketError(ReproError):
    """Malformed packet bytes or invalid header field values."""


class TruncatedPacketError(PacketError):
    """A header view extends past the end of the packet buffer."""


class FieldRangeError(PacketError):
    """A header field was assigned a value outside its bit width."""


# ---------------------------------------------------------------------------
# RMT / Menshen data plane
# ---------------------------------------------------------------------------

class DataPlaneError(ReproError):
    """Base class for errors in the behavioral pipeline."""


class EncodingError(DataPlaneError):
    """A configuration entry failed bit-level encoding or decoding."""


class ConfigError(DataPlaneError):
    """A configuration write targeted an invalid table, index, or width."""


class IsolationViolationError(DataPlaneError):
    """An operation would have crossed a module isolation boundary.

    Raised, e.g., when a stateful-memory access falls outside the module's
    segment-table range, or when a config write would touch another
    module's partition. In real hardware these are silently prevented;
    the simulator raises so tests can assert the guard fired.
    """


class SegmentFaultError(IsolationViolationError):
    """A per-module stateful-memory address exceeded the module's range."""


class ReconfigurationError(DataPlaneError):
    """The reconfiguration protocol was violated or a packet was rejected."""


class TenantIsolationError(IsolationViolationError):
    """A tenant-scoped API operation tried to cross a VID boundary.

    Raised by the :mod:`repro.api` facade when, e.g., a tenant handle
    names a table owned by a different tenant. The lower layers would
    also refuse the eventual write (the partition ledger / segment
    table), but the facade rejects it at the object-capability boundary
    so the caller learns *whose* resource it touched."""


# ---------------------------------------------------------------------------
# Fabric (multi-switch topologies)
# ---------------------------------------------------------------------------

class FabricError(ReproError):
    """Base class for errors in the multi-switch fabric layer."""


class TopologyError(FabricError):
    """Invalid fabric graph construction: unknown switch, port already
    wired, port out of range, or a self-loop link."""


class LinkDownError(FabricError):
    """A packet or route needed a link that is administratively down.

    Raised both at route computation time (no up path between two
    switches) and at forwarding time (a scheduled departure left on a
    fabric port whose link went down after placement)."""


class PlacementError(FabricError):
    """Tenant placement failed: every candidate path crosses a switch
    with no free module slot, or a user pin names a switch that cannot
    host the tenant."""


class ParallelExecError(FabricError):
    """The sharded process backend cannot run this configuration:
    a cross-worker link with zero propagation delay (conservative
    time-sync needs positive lookahead), an opaque reconfiguration
    callable that cannot cross a process boundary (use the declarative
    ops in :mod:`repro.exec.parallel`), or a worker that died mid-run."""


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------

class CompilerError(ReproError):
    """Base class for compiler errors; carries source location if known."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class LexerError(CompilerError):
    """Unrecognized character or malformed token in P4 source."""


class ParseError(CompilerError):
    """P4 source does not conform to the supported grammar subset."""


class TypeCheckError(CompilerError):
    """A name is undefined, redefined, or used at the wrong type/width."""


class StaticCheckError(CompilerError):
    """Module violates a Menshen static-safety rule (VID write, stats
    write, recirculation, or routing loop)."""


class ResourceError(CompilerError):
    """Module exceeds its allocated share of a pipeline resource."""


class AllocationError(CompilerError):
    """The compiler could not place tables into stages or fields into
    PHV containers under the hardware constraints."""


class CompilationFailed(CompilerError):
    """A :class:`repro.api.CompileResult` with errors was unwrapped.

    Carries the structured diagnostics so callers that do want an
    exception still get the full findings, not just the first one."""

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        super().__init__(message)


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------

class AnalysisError(ReproError):
    """A :mod:`repro.analysis` report with ERROR findings was enforced.

    Carries the full structured finding list (``.findings``) so callers
    on the exception path still see every violation, not just the
    summary string."""

    def __init__(self, message: str, findings=()):
        self.findings = list(findings)
        super().__init__(message)


# ---------------------------------------------------------------------------
# Runtime / policy
# ---------------------------------------------------------------------------

class RuntimeInterfaceError(ReproError):
    """Software-to-hardware interface misuse (unknown module/table, bad
    entry, interface in the wrong protocol state)."""


class TransactionError(RuntimeInterfaceError):
    """A transactional reconfiguration batch failed.

    Every operation that had already been applied was rolled back
    through the same daisy-chain protocol before this was raised; the
    original failure is chained as ``__cause__``."""


class AdmissionError(ReproError):
    """A module's resource request was rejected by admission control."""


class PolicyError(ReproError):
    """A resource-sharing policy was configured inconsistently."""
