"""Bit-level packing helpers.

Menshen's configuration entries are odd-width bit strings (16-bit parse
actions, 38-bit key-extractor entries, 193-bit masks, 205-bit CAM words,
625-bit VLIW instructions). This module provides a tiny, explicit toolkit
for assembling and disassembling such words as Python integers, plus a
:class:`BitField` descriptor table used by ``repro.rmt.encodings``.

Conventions
-----------
* Words are unsigned Python ints; bit 0 is the least-significant bit.
* Fields are described by ``(offset, width)`` with ``offset`` counting
  from the LSB. Encoders validate ranges and raise
  :class:`~repro.errors.EncodingError` on overflow.
* ``to_bytes``/``from_bytes`` use big-endian byte order (network order),
  matching how entries ride inside reconfiguration-packet payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from .errors import EncodingError


def mask(width: int) -> int:
    """Return a bit mask of ``width`` ones."""
    if width < 0:
        raise EncodingError(f"negative bit width: {width}")
    return (1 << width) - 1


def check_fits(value: int, width: int, name: str = "value") -> int:
    """Validate that ``value`` is an unsigned int fitting in ``width`` bits."""
    if not isinstance(value, int):
        raise EncodingError(f"{name} must be int, got {type(value).__name__}")
    if value < 0:
        raise EncodingError(f"{name} must be non-negative, got {value}")
    if value > mask(width):
        raise EncodingError(f"{name}={value:#x} does not fit in {width} bits")
    return value


def get_bits(word: int, offset: int, width: int) -> int:
    """Extract ``width`` bits of ``word`` starting at ``offset`` (LSB=0)."""
    return (word >> offset) & mask(width)


def set_bits(word: int, offset: int, width: int, value: int) -> int:
    """Return ``word`` with ``width`` bits at ``offset`` replaced by ``value``."""
    check_fits(value, width, "field value")
    cleared = word & ~(mask(width) << offset)
    return cleared | (value << offset)


def to_bytes(word: int, width_bits: int) -> bytes:
    """Serialize ``word`` to big-endian bytes, padded to whole bytes."""
    check_fits(word, width_bits, "word")
    nbytes = (width_bits + 7) // 8
    return word.to_bytes(nbytes, "big")


def from_bytes(data: bytes, width_bits: int) -> int:
    """Parse a big-endian byte string into an int, validating width."""
    word = int.from_bytes(data, "big")
    if word > mask(width_bits):
        raise EncodingError(
            f"byte string encodes {word.bit_length()} bits, "
            f"exceeding declared width {width_bits}"
        )
    return word


def concat_fields(fields: Iterable[Tuple[int, int]]) -> int:
    """Concatenate ``(value, width)`` pairs MSB-first into one word.

    The first pair ends up in the most-significant position, mirroring how
    the paper draws entry diagrams left-to-right (Fig. 7).
    """
    word = 0
    for value, width in fields:
        check_fits(value, width, "field")
        word = (word << width) | value
    return word


def split_fields(word: int, widths: Iterable[int]) -> List[int]:
    """Inverse of :func:`concat_fields`: split MSB-first by ``widths``."""
    widths = list(widths)
    total = sum(widths)
    check_fits(word, total, "word")
    out: List[int] = []
    remaining = total
    for width in widths:
        remaining -= width
        out.append(get_bits(word, remaining, width))
    return out


@dataclass(frozen=True)
class BitField:
    """A named field inside a fixed-width word (LSB offset + width)."""

    name: str
    offset: int
    width: int

    def extract(self, word: int) -> int:
        return get_bits(word, self.offset, self.width)

    def insert(self, word: int, value: int) -> int:
        try:
            return set_bits(word, self.offset, self.width, value)
        except EncodingError as exc:
            raise EncodingError(f"field {self.name!r}: {exc}") from exc


class WordLayout:
    """A fixed-width word with named bit fields.

    Layouts are declared MSB-first (the order the paper's figures use) and
    converted to LSB offsets internally::

        PARSE_ACTION = WordLayout(16, [
            ("reserved", 3), ("bytes_from_head", 7),
            ("container_type", 2), ("container_index", 3), ("valid", 1),
        ])
        word = PARSE_ACTION.pack(bytes_from_head=14, container_type=1,
                                 container_index=2, valid=1)
        fields = PARSE_ACTION.unpack(word)
    """

    def __init__(self, total_width: int, fields_msb_first: List[Tuple[str, int]]):
        declared = sum(width for _, width in fields_msb_first)
        if declared != total_width:
            raise EncodingError(
                f"layout declares {declared} bits but total width is {total_width}"
            )
        self.total_width = total_width
        self.fields: Dict[str, BitField] = {}
        offset = total_width
        for name, width in fields_msb_first:
            offset -= width
            if name in self.fields:
                raise EncodingError(f"duplicate field name {name!r}")
            self.fields[name] = BitField(name, offset, width)

    def pack(self, **values: int) -> int:
        """Build a word from keyword field values; unset fields are 0."""
        word = 0
        for name, value in values.items():
            if name not in self.fields:
                raise EncodingError(f"unknown field {name!r}")
            word = self.fields[name].insert(word, value)
        return word

    def unpack(self, word: int) -> Dict[str, int]:
        """Split a word into a ``{field name: value}`` mapping."""
        check_fits(word, self.total_width, "word")
        return {name: field.extract(word) for name, field in self.fields.items()}

    def repack(self, word: int, **updates: int) -> int:
        """Return ``word`` with the given fields replaced."""
        check_fits(word, self.total_width, "word")
        for name, value in updates.items():
            if name not in self.fields:
                raise EncodingError(f"unknown field {name!r}")
            word = self.fields[name].insert(word, value)
        return word

    def width_of(self, name: str) -> int:
        return self.fields[name].width

    def describe(self) -> Mapping[str, Tuple[int, int]]:
        """Return ``{name: (offset, width)}`` for documentation/tests."""
        return {n: (f.offset, f.width) for n, f in self.fields.items()}
