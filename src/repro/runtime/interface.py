"""Software-to-hardware interface (§3.4).

Works like P4Runtime — modify entries, fetch statistics — plus Menshen's
extension: reconfiguring any hardware resource by serializing
configuration writes into reconfiguration packets and pushing them down
the daisy chain. The interface also models the *time* each operation
costs, with constants calibrated to the paper's Fig. 9/Fig. 12 scales,
so benchmarks can report configuration times comparable to the paper's.

Cost model (documented calibration):

* ``T_SW_PER_ENTRY``: software-stack overhead per entry operation
  (driver + packet construction), dominating Fig. 9 (~0.6 ms/entry).
* ``T_DAISY_PER_PACKET``: bus/chain transfer per reconfiguration packet,
  the Fig. 12 scale (~8 µs/packet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.pipeline import MenshenPipeline
from ..core.reconfig import (
    ReconfigPayload,
    ResourceId,
    ResourceType,
    build_reconfig_packet,
)
from ..errors import ReconfigurationError

#: Software overhead per configuration write (seconds). Fig. 9 scale.
T_SW_PER_ENTRY = 0.6e-3
#: Daisy-chain transfer time per reconfiguration packet (seconds).
T_DAISY_PER_PACKET = 8e-6


@dataclass
class InterfaceStats:
    """Accounting of interface operations and modeled time."""

    packets_sent: int = 0
    packets_lost: int = 0
    register_reads: int = 0
    register_writes: int = 0
    modeled_time_s: float = 0.0


class SoftwareHardwareInterface:
    """The controller's handle on one Menshen pipeline."""

    def __init__(self, pipeline: MenshenPipeline,
                 t_sw_per_entry: float = T_SW_PER_ENTRY,
                 t_daisy_per_packet: float = T_DAISY_PER_PACKET):
        self.pipeline = pipeline
        self.t_sw_per_entry = t_sw_per_entry
        self.t_daisy_per_packet = t_daisy_per_packet
        self.stats = InterfaceStats()

    # -- register file access (AXI-Lite path, §4.1) ----------------------------

    def read_reconfig_counter(self) -> int:
        self.stats.register_reads += 1
        return self.pipeline.packet_filter.read_counter()

    def write_update_bitmap(self, bitmap: int) -> None:
        self.stats.register_writes += 1
        self.pipeline.packet_filter.write_bitmap(bitmap)

    def set_module_updating(self, module_id: int) -> None:
        self.stats.register_writes += 1
        self.pipeline.packet_filter.set_module_updating(module_id)

    def clear_module_updating(self, module_id: int) -> None:
        self.stats.register_writes += 1
        self.pipeline.packet_filter.clear_module_updating(module_id)

    # -- configuration writes ---------------------------------------------------

    def write_config(self, resource: ResourceId, index: int,
                     entry: int) -> Optional[ReconfigPayload]:
        """Send one configuration write down the daisy chain.

        Returns the applied payload, or ``None`` if the chain lost the
        packet (detectable via the counter).
        """
        packet = build_reconfig_packet(resource, index, entry,
                                       self.pipeline.params)
        self.stats.packets_sent += 1
        self.stats.modeled_time_s += self.t_daisy_per_packet
        payload = self.pipeline.inject_reconfig(packet)
        if payload is None:
            self.stats.packets_lost += 1
        return payload

    def write_config_reliable(self, resource: ResourceId, index: int,
                              entry: int, max_retries: int = 8) -> None:
        """Write with loss detection and retry (the §4.1 counter protocol)."""
        for _attempt in range(max_retries):
            before = self.read_reconfig_counter()
            self.write_config(resource, index, entry)
            if self.read_reconfig_counter() != before:
                return
        raise ReconfigurationError(
            f"configuration write to {resource.rtype.name} stage "
            f"{resource.stage} index {index} kept getting lost after "
            f"{max_retries} attempts")

    def send_batch(self, writes: List) -> int:
        """Send ``(resource, index, entry)`` writes; returns delivered count.

        Models the batched delivery the controller's load protocol uses:
        the caller compares the counter delta with ``len(writes)`` to
        detect loss.
        """
        before = self.read_reconfig_counter()
        for resource, index, entry in writes:
            self.write_config(resource, index, entry)
        after = self.read_reconfig_counter()
        return (after - before) % (1 << 32)

    # -- per-entry operations (P4Runtime-like) ------------------------------------

    def add_match_entry(self, stage: int, cam_index: int, cam_word: int,
                        vliw_word: int) -> None:
        """Install one match-action entry: a CAM word and its VLIW word."""
        self.stats.modeled_time_s += self.t_sw_per_entry
        self.write_config_reliable(ResourceId(ResourceType.CAM, stage),
                                   cam_index, cam_word)
        self.write_config_reliable(ResourceId(ResourceType.VLIW, stage),
                                   cam_index, vliw_word)

    def add_ternary_entry(self, stage: int, index: int,
                          tcam_word: int, vliw_word: int) -> None:
        """Install one ternary entry (Appendix B) and its VLIW word."""
        self.stats.modeled_time_s += self.t_sw_per_entry
        self.write_config_reliable(ResourceId(ResourceType.TCAM, stage),
                                   index, tcam_word)
        self.write_config_reliable(ResourceId(ResourceType.VLIW, stage),
                                   index, vliw_word)

    def delete_match_entry(self, stage: int, cam_index: int) -> None:
        self.stats.modeled_time_s += self.t_sw_per_entry
        self.write_config_reliable(
            ResourceId(ResourceType.CAM_INVALIDATE, stage), cam_index, 0)

    def read_stateful(self, stage: int, phys_addr: int) -> int:
        """Fetch one stateful word (statistics gathering)."""
        self.stats.register_reads += 1
        return self.pipeline.stages[stage].stateful_memory.read(phys_addr)

    def write_stateful(self, stage: int, phys_addr: int, value: int) -> None:
        """Initialize one stateful word through the daisy chain."""
        self.write_config_reliable(
            ResourceId(ResourceType.STATEFUL_WORD, stage), phys_addr, value)
