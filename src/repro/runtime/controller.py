"""Module lifecycle controller.

Implements the paper's software procedures on top of the
software-to-hardware interface:

* **Load** (§4.1): compile, admission-check, partition resources, then —
  with the module's bit set in the packet filter's bitmap so its
  in-flight packets are dropped rather than half-processed — write every
  configuration row through the daisy chain, verify delivery through the
  reconfiguration counter (retrying the whole batch on loss), zero the
  module's stateful words and CAM rows so nothing leaks from a previous
  tenant, and finally clear the bitmap.
* **Update**: the same procedure for an already-loaded module; other
  modules' rows and partitions are untouched (asserted by tests via
  overlay write logs).
* **Unload**: invalidate and zero everything the module owned, then
  release the partitions.
* **Entry management**: P4Runtime-style ``table_add``/``table_delete``
  bound to the module's CAM partition, and register access through the
  module's segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.verify import check_mode, verify_admission
from ..compiler import CompilerOptions, compile_module
from ..compiler.backend import CompiledModule
from ..compiler.resource_checker import ResourceRequest
from ..compiler.target import TargetDescription, system_target, user_target
from ..core.pipeline import MenshenPipeline, SYSTEM_MODULE_ID
from ..core.reconfig import ConfigWrite, ResourceId, ResourceType
from ..core.resources import ModuleAllocation, StageAllocation
from ..errors import (
    AdmissionError,
    AllocationError,
    AnalysisError,
    ReconfigurationError,
    RuntimeInterfaceError,
)
from ..rmt.encodings import (
    encode_cam_entry,
    encode_parser_entry,
    encode_segment_entry,
    encode_tcam_entry,
)
from ..rmt.entry_types import ActionCall, Exact, Match, TableEntry, Ternary
from .interface import SoftwareHardwareInterface


@dataclass
class TableState:
    """Runtime entry bookkeeping for one table."""

    stage: int
    cam_start: int
    cam_count: int
    #: handle -> cam index
    entries: Dict[int, int] = field(default_factory=dict)
    next_handle: int = 0

    def free_slots(self) -> List[int]:
        used = set(self.entries.values())
        return [self.cam_start + i for i in range(self.cam_count)
                if self.cam_start + i not in used]


@dataclass
class LoadedModule:
    """A module installed on the pipeline."""

    module_id: int
    name: str
    compiled: CompiledModule
    allocation: ModuleAllocation
    #: module-local stateful base per register
    register_bases: Dict[str, int]
    tables: Dict[str, TableState]

    def table(self, name: str) -> TableState:
        if name not in self.tables:
            raise RuntimeInterfaceError(
                f"module {self.name!r} has no table {name!r}")
        return self.tables[name]


class AlwaysAdmit:
    """Default admission policy: admit whenever partitions fit."""

    def admit(self, module_id: int, request: ResourceRequest,
              ledger) -> bool:
        return True


class MenshenController:
    """Software controller for one Menshen pipeline."""

    def __init__(self, pipeline: MenshenPipeline,
                 interface: Optional[SoftwareHardwareInterface] = None,
                 policy=None, max_load_retries: int = 5,
                 verify: str = "enforce"):
        self.pipeline = pipeline
        self.interface = interface or SoftwareHardwareInterface(pipeline)
        self.policy = policy or AlwaysAdmit()
        self.max_load_retries = max_load_retries
        #: Static-verifier admission gate: "enforce" (reject on ERROR
        #: findings), "warn" (admit but emit AnalysisWarning), "off".
        self.verify = check_mode(verify)
        self.modules: Dict[int, LoadedModule] = {}
        self.system_module: Optional[LoadedModule] = None
        self._user_target: Optional[TargetDescription] = None

    # ------------------------------------------------------------------ targets

    def compile_target(self) -> TargetDescription:
        """The target user modules compile against right now."""
        if self._user_target is not None:
            return self._user_target
        return user_target(self.pipeline.params)

    # ------------------------------------------------------------------ system

    def load_system_module(self, source: str,
                           name: str = "system") -> LoadedModule:
        """Compile and install the system-level module (§3.3)."""
        if self.system_module is not None:
            raise RuntimeInterfaceError("system module already loaded")
        target = system_target(self.pipeline.params)
        compiled = compile_module(source, name,
                                  CompilerOptions(target=target,
                                                  run_static_checks=False))
        loaded = self._install(SYSTEM_MODULE_ID, name, compiled)
        self.system_module = loaded
        self.pipeline.set_system_stages(set(compiled.stages_used()))
        # Every field the system module parses becomes shared state that
        # user modules must keep in the same containers.
        self._user_target = self._derive_user_target(compiled)
        return loaded

    def _derive_user_target(self, system: CompiledModule) -> TargetDescription:
        base = TargetDescription(params=self.pipeline.params)
        shared_alloc = dict(system.field_alloc)
        # Build FieldInfo-like records from the parse actions: offset comes
        # from the parse program, width from the container class.
        class _Shim:
            def __init__(self, byte_offset, width_bits):
                self.byte_offset = byte_offset
                self.width_bits = width_bits

        ref_to_offset = {}
        for action in system.parse_actions:
            key = (int(action.container.ctype), action.container.index)
            ref_to_offset[key] = action.bytes_from_head
        fields = {}
        for dotted, ref in shared_alloc.items():
            key = (int(ref.ctype), ref.index)
            if key not in ref_to_offset:
                continue
            fields[dotted] = _Shim(ref_to_offset[key], ref.size_bytes * 8)
        # Containers the system module uses for non-wire (scratch) fields
        # must still be reserved: system stages write them while
        # processing every packet.
        scratch_refs = [r for d, r in system.field_alloc.items()
                        if d not in fields]
        shared_alloc = {d: r for d, r in shared_alloc.items() if d in fields}
        written = [a.container for a in system.deparse_actions]
        written_names = [d for d, r in shared_alloc.items() if r in written]
        target = base.with_system_reservations(shared_alloc, fields,
                                               written_names)
        target.reserved_containers.extend(scratch_refs)
        return target

    # ------------------------------------------------------------------ loading

    def load_module(self, module_id: int, source: str,
                    name: str = "") -> LoadedModule:
        """Compile, admit, and install a user module.

        Placement is load-balanced: if the module does not fit starting
        at the first user stage (its tables would collide with already
        loaded modules' CAM partitions), compilation is retried with the
        stage window shifted right — a simple version of the memory
        allocation optimizations the paper cites as future work (§3.5).
        Later windows preserve apply order (they are increasing slices
        of the stage map), so dependency correctness is unaffected.
        """
        if module_id == SYSTEM_MODULE_ID:
            raise AdmissionError(
                f"module id {SYSTEM_MODULE_ID} is reserved for the system "
                f"module")
        if module_id in self.modules:
            raise AdmissionError(
                f"module id {module_id} is already loaded; use "
                f"update_module()")
        name = name or f"module{module_id}"
        base_target = self.compile_target()
        stage_map = base_target.stage_map
        # Prefer windows whose first stage has the most free CAM rows.
        offsets = sorted(
            range(len(stage_map)),
            key=lambda off: -self.pipeline.ledger.free_match_rows(
                stage_map[off]))
        last_error: Optional[Exception] = None
        for offset in offsets:
            window = stage_map[offset:]
            if not window:
                continue
            target = TargetDescription(
                params=base_target.params,
                stage_map=window,
                shared_fields=dict(base_target.shared_fields),
                reserved_containers=list(base_target.reserved_containers),
                zero_container=base_target.zero_container,
                shared_parse_fields=list(base_target.shared_parse_fields),
                shared_deparse_fields=list(
                    base_target.shared_deparse_fields),
            )
            try:
                compiled = compile_module(
                    source, name, CompilerOptions(target=target))
                loaded = self._install(module_id, name, compiled)
            except (AdmissionError, AllocationError) as exc:
                last_error = exc  # window too small or rows taken: shift
                continue
            self.modules[module_id] = loaded
            return loaded
        raise AdmissionError(
            f"module {name!r} does not fit in any stage window: "
            f"{last_error}")

    def load_compiled(self, module_id: int, compiled: CompiledModule,
                      name: str = "") -> LoadedModule:
        """Install an already-compiled artifact (used by benchmarks)."""
        if module_id in self.modules:
            raise AdmissionError(f"module id {module_id} is already loaded")
        loaded = self._install(module_id, name or compiled.name, compiled)
        self.modules[module_id] = loaded
        return loaded

    def update_module(self, module_id: int, source: str) -> LoadedModule:
        """Replace a module's program; other modules keep running."""
        if module_id not in self.modules:
            raise RuntimeInterfaceError(
                f"module {module_id} is not loaded")
        old = self.modules[module_id]
        compiled = compile_module(
            source, old.name, CompilerOptions(target=self.compile_target()))
        self._teardown(old)
        self.pipeline.ledger.revoke(module_id)
        self._policy_release(module_id)
        del self.modules[module_id]
        loaded = self._install(module_id, old.name, compiled)
        self.modules[module_id] = loaded
        return loaded

    def unload_module(self, module_id: int) -> None:
        if module_id not in self.modules:
            raise RuntimeInterfaceError(f"module {module_id} is not loaded")
        loaded = self.modules.pop(module_id)
        self._teardown(loaded)
        self.pipeline.ledger.revoke(module_id)
        self._policy_release(module_id)
        self.pipeline.mark_unloaded(module_id)

    def _policy_release(self, module_id: int) -> None:
        """Return a module's demand to the admission policy's ledger.

        Without this, a stateful policy (DRF, first-fit) keeps charging
        for evicted modules forever — and rejects a reloaded VID as a
        duplicate. Policies without bookkeeping (``AlwaysAdmit``,
        ad-hoc test doubles) simply have no ``release``.
        """
        release = getattr(self.policy, "release", None)
        if release is not None:
            release(module_id)

    # ------------------------------------------------------------------ install

    def _partition(self, module_id: int,
                   compiled: CompiledModule) -> Tuple[ModuleAllocation,
                                                      Dict[str, int],
                                                      Dict[int, int]]:
        """Carve CAM and stateful partitions; returns (allocation,
        module-local register bases, per-stage physical stateful base)."""
        ledger = self.pipeline.ledger
        stages: Dict[int, StageAllocation] = {}
        match_blocks: Dict[int, Tuple[int, int]] = {}
        for table in compiled.tables.values():
            start = ledger.first_free_match_block(table.stage, table.size)
            if start is None:
                raise AdmissionError(
                    f"no contiguous block of {table.size} CAM rows free in "
                    f"stage {table.stage}")
            match_blocks[table.stage] = (start, table.size)

        stateful_words: Dict[int, int] = {}
        register_bases: Dict[str, int] = {}
        for reg_name in sorted(compiled.registers):
            spec = compiled.registers[reg_name]
            register_bases[reg_name] = stateful_words.get(spec.stage, 0)
            stateful_words[spec.stage] = (stateful_words.get(spec.stage, 0)
                                          + spec.size)
        stateful_bases: Dict[int, int] = {}
        for stage, words in stateful_words.items():
            base = ledger.first_free_stateful_block(stage, words)
            if base is None:
                raise AdmissionError(
                    f"no contiguous block of {words} stateful words free "
                    f"in stage {stage}")
            stateful_bases[stage] = base

        for stage in sorted(set(list(match_blocks) + list(stateful_bases))):
            m_start, m_count = match_blocks.get(stage, (0, 0))
            stages[stage] = StageAllocation(
                match_start=m_start, match_count=m_count,
                stateful_base=stateful_bases.get(stage, 0),
                stateful_words=stateful_words.get(stage, 0))

        allocation = ModuleAllocation(module_id, stages)
        request = ResourceRequest.of(compiled)
        if not self.policy.admit(module_id, request, ledger):
            raise AdmissionError(
                f"module {module_id} rejected by the resource policy")
        ledger.grant(allocation)
        return allocation, register_bases, stateful_bases

    def config_writes(self, module_id: int, compiled: CompiledModule,
                      allocation: ModuleAllocation,
                      register_bases: Optional[Dict[str, int]] = None
                      ) -> List[ConfigWrite]:
        """All configuration writes needed to install the module."""
        writes: List[ConfigWrite] = []
        parser_entry = encode_parser_entry(
            [a.encode() for a in compiled.parse_actions])
        deparser_entry = encode_parser_entry(
            [a.encode() for a in compiled.deparse_actions])
        writes.append(ConfigWrite(ResourceId(ResourceType.PARSER_TABLE, 0),
                                  module_id, parser_entry))
        writes.append(ConfigWrite(ResourceId(ResourceType.DEPARSER_TABLE, 0),
                                  module_id, deparser_entry))
        for table in compiled.tables.values():
            writes.append(ConfigWrite(
                ResourceId(ResourceType.KEY_EXTRACTOR, table.stage),
                module_id, table.key_entry.encode()))
            writes.append(ConfigWrite(
                ResourceId(ResourceType.KEY_MASK, table.stage),
                module_id, table.key_mask))
            if table.default_action is not None:
                if not self.pipeline.enable_default_actions:
                    raise RuntimeInterfaceError(
                        f"table {table.name!r} declares a default_action "
                        f"but the pipeline was built without "
                        f"enable_default_actions=True")
                vliw = table.actions[table.default_action].make_vliw(
                    {}, register_bases or {})
                writes.append(ConfigWrite(
                    ResourceId(ResourceType.DEFAULT_VLIW, table.stage),
                    module_id, vliw.encode()))
        for stage, alloc in allocation.stages.items():
            if alloc.stateful_words:
                writes.append(ConfigWrite(
                    ResourceId(ResourceType.SEGMENT, stage), module_id,
                    encode_segment_entry(alloc.stateful_base,
                                         alloc.stateful_words)))
            # Zero the partition so nothing leaks from a prior tenant.
            for addr in range(alloc.stateful_base, alloc.stateful_end):
                writes.append(ConfigWrite(
                    ResourceId(ResourceType.STATEFUL_WORD, stage), addr, 0))
            for row in range(alloc.match_start, alloc.match_end):
                writes.append(ConfigWrite(
                    ResourceId(ResourceType.CAM_INVALIDATE, stage), row, 0))
        return writes

    def _install(self, module_id: int, name: str,
                 compiled: CompiledModule) -> LoadedModule:
        allocation, register_bases, _ = self._partition(module_id, compiled)

        # Static-verifier gate: prove the switch stays isolated with the
        # candidate's partitions before any config packet is sent. The
        # system module (vid 0) predates user state and is exempt.
        if module_id != SYSTEM_MODULE_ID and self.verify != "off":
            try:
                verify_admission(self, module_id, name, compiled,
                                 allocation, mode=self.verify)
            except AnalysisError as exc:
                self.pipeline.ledger.revoke(module_id)
                self._policy_release(module_id)
                raise AdmissionError(str(exc)) from exc

        writes = self.config_writes(module_id, compiled, allocation,
                                    register_bases)

        # §4.1 protocol: bitmap on -> send -> verify counter -> bitmap off.
        self.interface.set_module_updating(module_id)
        try:
            for _attempt in range(self.max_load_retries):
                delivered = self.interface.send_batch(writes)
                if delivered == len(writes):
                    break
            else:
                raise ReconfigurationError(
                    f"loading module {module_id}: reconfiguration packets "
                    f"kept getting lost after {self.max_load_retries} "
                    f"attempts")
        except BaseException:
            # Don't leak the partition grant (or the admission policy's
            # charge) on a failed install.
            self.pipeline.ledger.revoke(module_id)
            self._policy_release(module_id)
            raise
        finally:
            self.interface.clear_module_updating(module_id)

        tables = {
            t.name: TableState(
                stage=t.stage,
                cam_start=allocation.stage(t.stage).match_start,
                cam_count=t.size)
            for t in compiled.tables.values()
        }
        self.pipeline.mark_loaded(module_id)
        return LoadedModule(module_id=module_id, name=name,
                            compiled=compiled, allocation=allocation,
                            register_bases=register_bases, tables=tables)

    def _teardown(self, loaded: LoadedModule) -> None:
        """Invalidate and zero everything the module owns."""
        module_id = loaded.module_id
        self.interface.set_module_updating(module_id)
        try:
            self.interface.write_config_reliable(
                ResourceId(ResourceType.PARSER_TABLE, 0), module_id, 0)
            self.interface.write_config_reliable(
                ResourceId(ResourceType.DEPARSER_TABLE, 0), module_id, 0)
            for stage, alloc in loaded.allocation.stages.items():
                self.interface.write_config_reliable(
                    ResourceId(ResourceType.KEY_EXTRACTOR, stage),
                    module_id, 0)
                self.interface.write_config_reliable(
                    ResourceId(ResourceType.KEY_MASK, stage), module_id, 0)
                if self.pipeline.enable_default_actions:
                    self.interface.write_config_reliable(
                        ResourceId(ResourceType.DEFAULT_VLIW, stage),
                        module_id, 0)
                if alloc.stateful_words:
                    self.interface.write_config_reliable(
                        ResourceId(ResourceType.SEGMENT, stage),
                        module_id, 0)
                for addr in range(alloc.stateful_base, alloc.stateful_end):
                    self.interface.write_stateful(stage, addr, 0)
                for row in range(alloc.match_start, alloc.match_end):
                    self.interface.delete_match_entry(stage, row)
        finally:
            self.interface.clear_module_updating(module_id)
        self.pipeline.mark_unloaded(module_id)

    # ------------------------------------------------------------------ entries

    def insert_entry(self, module_id: int, table_name: str,
                     entry: TableEntry) -> int:
        """Install one typed match-action entry; returns an entry handle.

        This is the canonical installation path: the :mod:`repro.api`
        facade and the dict-based :meth:`table_add` shim both land here.
        For ternary tables (Appendix B), :class:`~repro.rmt.entry_types.
        Ternary` field specs carry the bit masks (exact specs match
        all bits); entries take slots in installation order within the
        module's contiguous block, so earlier entries have higher
        priority (lower address wins).
        """
        loaded = self._loaded(module_id)
        state = loaded.table(table_name)
        compiled_table = loaded.compiled.tables[table_name]
        action = entry.action
        if action.name not in compiled_table.actions:
            raise RuntimeInterfaceError(
                f"table {table_name!r} has no action {action.name!r}")
        is_ternary = compiled_table.match_kind == "ternary"
        key_masks = entry.match.key_masks()
        if key_masks and not is_ternary:
            raise RuntimeInterfaceError(
                f"table {table_name!r} is exact-match; Ternary field specs "
                f"need a ternary table (and a pipeline with "
                f"match_mode='ternary')")
        free = state.free_slots()
        if not free:
            raise RuntimeInterfaceError(
                f"table {table_name!r} is full "
                f"({state.cam_count} entries)")
        cam_index = free[0]
        self.pipeline.ledger.check_match_write(module_id, state.stage,
                                               cam_index)
        key = compiled_table.make_key(entry.match.key_values())
        vliw = compiled_table.actions[action.name].make_vliw(
            dict(action.params), loaded.register_bases)
        if is_ternary:
            entry_mask = (compiled_table.make_entry_mask(key_masks)
                          & compiled_table.key_mask)
            word = encode_tcam_entry(key & entry_mask, entry_mask,
                                     module_id)
            self.interface.add_ternary_entry(state.stage, cam_index, word,
                                             vliw.encode())
        else:
            cam_word = encode_cam_entry(key, module_id)
            self.interface.add_match_entry(state.stage, cam_index,
                                           cam_word, vliw.encode())
        handle = state.next_handle
        state.next_handle += 1
        state.entries[handle] = cam_index
        return handle

    def table_add(self, module_id: int, table_name: str,
                  key_values: Dict[str, int], action_name: str,
                  action_params: Optional[Dict[str, int]] = None,
                  key_masks: Optional[Dict[str, int]] = None) -> int:
        """Install one entry from loose dicts (P4Runtime-style shim).

        ``key_masks`` maps ternary key fields to bit masks (omitted
        fields match exactly). Converts to a typed
        :class:`~repro.rmt.entry_types.TableEntry` and delegates to
        :meth:`insert_entry`.
        """
        key_masks = key_masks or {}
        fields: Dict[str, object] = {}
        for dotted, value in key_values.items():
            if dotted in key_masks:
                fields[dotted] = Ternary(value, key_masks[dotted])
            else:
                fields[dotted] = Exact(value)
        missing = set(key_masks) - set(fields)
        if missing:
            raise RuntimeInterfaceError(
                f"key_masks name fields without values: {sorted(missing)}")
        entry = TableEntry(match=Match(fields),
                           action=ActionCall(action_name,
                                             dict(action_params or {})))
        return self.insert_entry(module_id, table_name, entry)

    def table_delete(self, module_id: int, table_name: str,
                     handle: int) -> None:
        loaded = self._loaded(module_id)
        state = loaded.table(table_name)
        if handle not in state.entries:
            raise RuntimeInterfaceError(
                f"table {table_name!r} has no entry handle {handle}")
        cam_index = state.entries.pop(handle)
        self.pipeline.ledger.check_match_write(module_id, state.stage,
                                               cam_index)
        self.interface.delete_match_entry(state.stage, cam_index)

    # ------------------------------------------------------------------ registers

    def register_read(self, module_id: int, register: str,
                      addr: int = 0) -> int:
        """Read a module's register through its segment (statistics)."""
        loaded = self._loaded(module_id)
        spec = loaded.compiled.registers[register]
        local = loaded.register_bases[register] + addr
        stage = self.pipeline.stages[spec.stage]
        return stage.stateful_access.read(module_id, local)

    def register_write(self, module_id: int, register: str, addr: int,
                       value: int) -> None:
        loaded = self._loaded(module_id)
        spec = loaded.compiled.registers[register]
        local = loaded.register_bases[register] + addr
        stage = self.pipeline.stages[spec.stage]
        stage.stateful_access.write(module_id, local, value)

    # ------------------------------------------------------------------ misc

    def _loaded(self, module_id: int) -> LoadedModule:
        if module_id == SYSTEM_MODULE_ID and self.system_module is not None:
            return self.system_module
        if module_id not in self.modules:
            raise RuntimeInterfaceError(f"module {module_id} is not loaded")
        return self.modules[module_id]

    def loaded_ids(self) -> List[int]:
        return sorted(self.modules)
