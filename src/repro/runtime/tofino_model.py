"""Tofino-like baseline cost model (§5.1, §6).

Two behaviors of the commercial baseline matter to the paper's
comparisons:

1. **Run-time API cost** (Fig. 9): inserting match-action entries through
   the Tofino SDE's runtime APIs costs roughly the same per entry as
   Menshen's software-to-hardware interface — a per-entry software
   overhead, modeled here as a calibrated constant.
2. **Fast Refresh disruption** (Fig. 10 discussion): updating *any*
   module's program requires resetting the entire pipeline; even with
   Fast Refresh this stalls **all** traffic for ~50 ms. Menshen instead
   drops only the updated module's packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

#: Per-entry runtime-API insert cost, seconds (Fig. 9 scale).
T_TOFINO_PER_ENTRY = 0.7e-3
#: Full-pipeline disruption on any module update, seconds.
FAST_REFRESH_DISRUPTION_S = 50e-3


@dataclass
class TofinoModel:
    """Cost/disruption model of the Tofino baseline."""

    t_per_entry: float = T_TOFINO_PER_ENTRY
    fast_refresh_s: float = FAST_REFRESH_DISRUPTION_S

    def entry_insert_time(self, entries: int) -> float:
        """Seconds to insert ``entries`` match-action entries."""
        return entries * self.t_per_entry

    def update_disruption(self, all_modules: List[int],
                          updated_module: int) -> Set[int]:
        """Modules whose traffic stalls when one module is updated.

        On Tofino the answer is *all of them* — the property Menshen
        fixes (where the answer is ``{updated_module}``).
        """
        return set(all_modules)

    def disruption_window_s(self) -> float:
        return self.fast_refresh_s
