"""Runtime: the software side of Menshen (§3.4, §4.2).

* :mod:`~repro.runtime.interface` — the P4Runtime-like
  software-to-hardware interface: configuration writes as
  reconfiguration packets, register access, statistics.
* :mod:`~repro.runtime.controller` — module lifecycle: compile, admit,
  install (with the §4.1 bitmap/counter protocol), update without
  disrupting other modules, unload; plus per-module table entry
  management.
* :mod:`~repro.runtime.axi_lite` — the Appendix-A AXI-Lite configuration
  cost model (the alternative Menshen rejected).
* :mod:`~repro.runtime.tofino_model` — a Tofino-like baseline cost
  model: per-entry runtime-API cost and full-pipeline Fast-Refresh
  disruption on any module update.
"""

from .interface import SoftwareHardwareInterface
from .controller import MenshenController, LoadedModule
from .axi_lite import AxiLiteModel
from .tofino_model import TofinoModel

__all__ = [
    "SoftwareHardwareInterface",
    "MenshenController",
    "LoadedModule",
    "AxiLiteModel",
    "TofinoModel",
]
