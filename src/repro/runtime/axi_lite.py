"""AXI-Lite configuration model (Appendix A).

Before settling on the daisy chain, the authors considered configuring
everything over AXI-Lite from the host: one AXI-L write moves 32 bits,
so a 625-bit VLIW entry costs ceil(625/32) = 20 writes and a 205-bit CAM
entry ceil(205/32) = 7 writes, versus **one** reconfiguration packet per
entry on the daisy chain. Fig. 12 compares the two; this model
reproduces it with a calibrated per-write cost.

Calibration: the paper estimates AXI-L time from a single measured write.
``T_AXI_WRITE`` is chosen so 16 VLIW entries x 20 writes land on the
Fig. 12 scale (~1.3 ms per stage's VLIW table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..rmt.params import DEFAULT_PARAMS, HardwareParams

#: Seconds per 32-bit AXI-Lite write (calibrated, see module docstring).
T_AXI_WRITE = 4e-6
#: AXI-Lite data width in bits.
AXI_DATA_BITS = 32


@dataclass
class AxiLiteModel:
    """Cost model for fully-AXI-Lite configuration."""

    params: HardwareParams = DEFAULT_PARAMS
    t_write: float = T_AXI_WRITE

    def writes_per_entry(self, width_bits: int) -> int:
        """32-bit writes needed for one entry of the given width."""
        return (width_bits + AXI_DATA_BITS - 1) // AXI_DATA_BITS

    def config_time(self, width_bits: int, entries: int) -> float:
        """Seconds to configure ``entries`` rows of the given width."""
        return self.writes_per_entry(width_bits) * entries * self.t_write

    def vliw_table_time(self, entries: int = None) -> float:
        if entries is None:
            entries = self.params.vliw_entries_per_stage
        return self.config_time(self.params.vliw_entry_bits, entries)

    def cam_table_time(self, entries: int = None) -> float:
        if entries is None:
            entries = self.params.match_entries_per_stage
        return self.config_time(self.params.cam_entry_bits, entries)

    def per_stage_breakdown(self) -> Dict[str, float]:
        """Configuration time per resource of one full stage."""
        inv = self.params.table_inventory()
        out: Dict[str, float] = {}
        for name in ("key_extractor_table", "key_mask_table",
                     "exact_match_cam", "vliw_action_table",
                     "segment_table"):
            spec = inv[name]
            out[name] = self.config_time(spec["width_bits"], spec["depth"])
        return out


def fig12_series(params: HardwareParams = DEFAULT_PARAMS,
                 t_axi_write: float = T_AXI_WRITE,
                 t_daisy_packet: float = None) -> List[Dict[str, float]]:
    """The Fig. 12 comparison: per stage, VLIW table and CAM config time
    under AXI-Lite vs the daisy chain.

    Returns one record per (stage, resource) with both times in seconds.
    """
    from .interface import T_DAISY_PER_PACKET
    if t_daisy_packet is None:
        t_daisy_packet = T_DAISY_PER_PACKET
    axi = AxiLiteModel(params, t_axi_write)
    rows: List[Dict[str, float]] = []
    for stage in range(params.num_stages):
        for resource, width, entries in (
                ("vliw_action_table", params.vliw_entry_bits,
                 params.vliw_entries_per_stage),
                ("cam", params.cam_entry_bits,
                 params.match_entries_per_stage)):
            rows.append({
                "stage": stage,
                "resource": resource,
                "axi_lite_s": axi.config_time(width, entries),
                "daisy_chain_s": entries * t_daisy_packet,
                "axi_writes_per_entry": axi.writes_per_entry(width),
            })
    return rows
