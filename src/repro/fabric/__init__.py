"""Multi-switch fabrics of Menshen pipelines.

The paper evaluates isolation on one switch; this package scales the
*scenario* to the setting where isolation actually pays off — tenants
spanning multiple switches that contend on shared links:

* :class:`~repro.fabric.topology.Fabric` /
  :class:`~repro.fabric.topology.Link` /
  :class:`~repro.fabric.topology.PortRef` — graph construction with
  per-link capacity and propagation delay;
  :func:`~repro.fabric.topology.leaf_spine` builds the canonical
  two-tier Clos.
* :class:`~repro.fabric.tenant.FabricTenant` — a facade over
  :mod:`repro.api` that places one tenant's program on every switch
  along its route (greedy capacity-aware, or pinned via ``via=``) and
  installs VLAN-based inter-switch forwarding.
* :func:`~repro.fabric.forwarding.process_batch` — batched multi-hop
  forwarding that drains each switch's scheduled egress into the next
  switch's ingress through the :mod:`repro.engine` batch path.
* the timed companion lives in :mod:`repro.sim.fabric_timeline`
  (event-driven, per-link delays, end-to-end latency under
  cross-switch contention, fed by
  :class:`repro.traffic.TrafficMatrix` demand).

Quick start::

    from repro.fabric import leaf_spine
    from repro.modules import calc

    fabric = leaf_spine(leaves=2, spines=1, hosts_per_leaf=4)
    tenant = fabric.tenant(
        "calc", calc.P4_SOURCE, vid=1,
        installer=lambda t, port: calc.install(t, port=port))
    tenant.place(src=("leaf0", 0), dst=("leaf1", 2))
    result = fabric.process_batch(
        [("leaf0", calc.make_packet(1, calc.OP_ADD, 2, 3))])
    result.delivered_for(1)     # exited on leaf1 host port 2
"""

from .forwarding import Delivery, FabricResult, LostPacket, process_batch
from .tenant import FabricTenant
from .topology import Fabric, FabricSwitch, Link, PortRef, leaf_spine

__all__ = [
    "Fabric",
    "FabricSwitch",
    "FabricTenant",
    "Link",
    "PortRef",
    "leaf_spine",
    "Delivery",
    "FabricResult",
    "LostPacket",
    "process_batch",
]
