"""Fabric graph construction: switches, ports, links, routes.

A :class:`Fabric` wires multiple :class:`repro.api.Switch` instances —
each a full Menshen pipeline with its batched engine and weighted-fair
egress scheduler — into an arbitrary graph. Ports are the joints:
every switch exposes its pipeline's output ports, a :class:`Link`
couples one port on each of two switches (with a capacity and a
propagation delay), and any port without a link is a *host port* where
packets enter and leave the fabric.

Routing is hop-count shortest path over links that are up, computed on
demand (fabrics here are a handful of switches, not a million — the
paper's setting is racks, not WANs). Ties between equal-length paths
are broken *greedily by free module capacity*: tenant placement walks
the chosen route and must admit the tenant's program on every switch
along it, so the route selector prefers the path whose switches have
the most free VID slots (see :mod:`repro.fabric.placement`).

:func:`leaf_spine` builds the canonical two-tier Clos used by the
tests, the benchmark, and ``examples/leaf_spine_fabric.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..api.switch import Switch, SwitchBuilder, TenantCounters
from ..core.stats import PipelineStats
from ..engine.batch import BatchEngine
from ..engine.scheduler import EgressScheduler
from ..errors import LinkDownError, TopologyError
from ..net.packet import Packet
# One ``(switch, port)`` reference type serves both roles: a traffic
# matrix's attachment point and a link endpoint. Defined once in the
# traffic layer (which must not depend on the fabric) and aliased here
# under the name this module's vocabulary uses.
from ..traffic.matrix import HostRef as PortRef


@dataclass
class Link:
    """A bidirectional link between two switch ports.

    ``capacity_bps`` is installed as the egress-scheduler port rate on
    *both* endpoints, so transmissions onto the link pace at link
    speed; ``delay_s`` is the propagation delay the fabric adds between
    a departure on one end and the arrival on the other. Byte counters
    accumulate per tenant (both directions combined) — the fabric-level
    "link utilization" statistic.
    """

    a: PortRef
    b: PortRef
    capacity_bps: float
    delay_s: float = 0.0
    up: bool = True
    bytes_carried: int = 0
    bytes_by_tenant: Dict[int, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return f"{self.a}—{self.b}"

    def other_end(self, switch: str) -> PortRef:
        if switch == self.a.switch:
            return self.b
        if switch == self.b.switch:
            return self.a
        raise TopologyError(f"switch {switch!r} is not an endpoint of "
                            f"link {self.name}")

    def record(self, vid: int, nbytes: int) -> None:
        self.bytes_carried += nbytes
        self.bytes_by_tenant[vid] = self.bytes_by_tenant.get(vid, 0) \
            + nbytes

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of capacity used over ``elapsed_s`` seconds."""
        if elapsed_s <= 0 or self.capacity_bps <= 0:
            return 0.0
        return self.bytes_carried * 8 / elapsed_s / self.capacity_bps


class FabricSwitch:
    """One member switch: a full Menshen pipeline plus its serving path.

    Wraps a :class:`repro.api.Switch` with the batched engine the
    fabric drives (scheduled egress always — multi-hop forwarding
    drains :class:`~repro.engine.scheduler.Departure` service order)
    and the port→link map the forwarder follows.
    """

    def __init__(self, name: str, switch: Switch,
                 host_rate_bps: Optional[float] = None):
        self.name = name
        self.switch = switch
        self.engine: BatchEngine = switch.engine(
            line_rate_bps=host_rate_bps)
        #: port index -> attached fabric link (absent = host port)
        self.links: Dict[int, Link] = {}
        #: False while crashed (:meth:`Fabric.crash_switch`): the
        #: member forwards nothing and its links are down.
        self.up: bool = True

    @property
    def scheduler(self) -> EgressScheduler:
        scheduler = self.switch.egress_scheduler
        if scheduler is None:  # engine() above installed it
            raise TopologyError(
                f"switch {self.name!r} has no egress scheduler installed")
        return scheduler

    @property
    def num_ports(self) -> int:
        return self.scheduler.num_ports

    def host_ports(self) -> List[int]:
        return [p for p in range(self.num_ports) if p not in self.links]

    def fabric_ports(self) -> List[int]:
        return sorted(self.links)

    def free_module_slots(self) -> int:
        """Free tenant VIDs on this switch (VID 0 is the system's)."""
        params = self.switch.params
        return (params.max_modules - 1
                - len(self.switch.controller.modules))

    def __repr__(self) -> str:
        return (f"FabricSwitch({self.name!r}, "
                f"{len(self.links)} fabric ports, "
                f"{self.free_module_slots()} free slots)")


class Fabric:
    """A graph of Menshen switches joined by capacity/delay links."""

    def __init__(self, default_link_rate_bps: float = 10e9,
                 host_rate_bps: Optional[float] = None):
        if default_link_rate_bps <= 0:
            raise TopologyError(
                f"default link rate must be positive, got "
                f"{default_link_rate_bps}")
        self.default_link_rate_bps = default_link_rate_bps
        #: Transmission rate of host-facing ports (defaults to the
        #: fabric's default link rate).
        self.host_rate_bps = (host_rate_bps if host_rate_bps is not None
                              else default_link_rate_bps)
        self._switches: Dict[str, FabricSwitch] = {}
        self._links: List[Link] = []
        self._tenants: Dict[int, "FabricTenant"] = {}

    # -- construction ---------------------------------------------------------

    def add_switch(self, name: str, switch: Optional[Switch] = None,
                   builder: Optional[SwitchBuilder] = None) -> FabricSwitch:
        """Add one switch (built from ``builder``, adopted from
        ``switch``, or default-built)."""
        if name in self._switches:
            raise TopologyError(f"switch {name!r} already in fabric")
        if switch is not None and builder is not None:
            raise TopologyError("pass switch= or builder=, not both")
        if switch is None:
            switch = (builder or Switch.build()).create()
        member = FabricSwitch(name, switch,
                              host_rate_bps=self.host_rate_bps)
        self._switches[name] = member
        return member

    def switch(self, name: str) -> FabricSwitch:
        member = self._switches.get(name)
        if member is None:
            raise TopologyError(
                f"no switch {name!r} in fabric "
                f"(have: {sorted(self._switches)})")
        return member

    def switches(self) -> List[FabricSwitch]:
        """Members in insertion order (the forwarder's wave order)."""
        return list(self._switches.values())

    def connect(self, a: str, a_port: int, b: str, b_port: int,
                capacity_bps: Optional[float] = None,
                delay_s: float = 0.0) -> Link:
        """Wire ``a:a_port`` to ``b:b_port`` with one link."""
        sw_a, sw_b = self.switch(a), self.switch(b)
        if a == b:
            raise TopologyError(f"self-loop link on {a!r}")
        for sw, port in ((sw_a, a_port), (sw_b, b_port)):
            if not 0 <= port < sw.num_ports:
                raise TopologyError(
                    f"{sw.name}:{port} out of range "
                    f"[0, {sw.num_ports})")
            if port in sw.links:
                raise TopologyError(
                    f"{sw.name}:{port} already wired to "
                    f"{sw.links[port].name}")
        if delay_s < 0:
            raise TopologyError(f"negative delay: {delay_s}")
        capacity = (capacity_bps if capacity_bps is not None
                    else self.default_link_rate_bps)
        if capacity <= 0:
            raise TopologyError(
                f"link capacity must be positive, got {capacity}")
        link = Link(a=PortRef(a, a_port), b=PortRef(b, b_port),
                    capacity_bps=capacity, delay_s=delay_s)
        self._links.append(link)
        sw_a.links[a_port] = link
        sw_b.links[b_port] = link
        # Pace each endpoint's egress at link speed.
        sw_a.scheduler.set_port_rate(a_port, capacity)
        sw_b.scheduler.set_port_rate(b_port, capacity)
        return link

    def links(self) -> List[Link]:
        return list(self._links)

    def link_between(self, a: str, b: str) -> Link:
        """The (first) link joining two switches."""
        for link in self._links:
            if {link.a.switch, link.b.switch} == {a, b}:
                return link
        raise TopologyError(f"no link between {a!r} and {b!r}")

    def set_link_state(self, a: str, b: str, up: bool) -> Link:
        """Administratively raise or fail the link between two switches.

        Routing recomputes from live link state on every call
        (:meth:`shortest_paths` / :meth:`next_hop_port` hold no route
        cache), so a restored link is immediately usable by the next
        placement or migration. Raising a link whose endpoint switch is
        crashed is refused — :meth:`restore_switch` is the only way a
        dead switch's links come back.
        """
        link = self.link_between(a, b)
        if up:
            for name in (a, b):
                if not self.switch(name).up:
                    raise TopologyError(
                        f"cannot raise link {link.name}: switch "
                        f"{name!r} is crashed — restore_switch() it "
                        f"first")
        link.up = up
        return link

    def crash_switch(self, name: str) -> List[Tuple[int, int, Packet]]:
        """Crash one switch: mark it down, fail every attached link,
        and scrub its egress queues.

        A crashed switch forwards nothing and reboots with empty
        buffers, so the queued packets die with it — they are returned
        as ``(port, vid, packet)`` triples (the
        :meth:`~repro.engine.scheduler.EgressScheduler.drop_queued`
        shape) for the caller to account as losses
        (:meth:`repro.exec.ExecutionCore.report_fault_losses` routes
        them onto the unified lost-record path). Crashing a switch
        that is already down is a no-op returning ``[]``, so
        crash→restore→crash is idempotent on fabric state.
        """
        member = self.switch(name)
        if not member.up:
            return []
        member.up = False
        for port in sorted(member.links):
            member.links[port].up = False
        return member.scheduler.drop_queued()

    def restore_switch(self, name: str) -> FabricSwitch:
        """Restore a crashed switch: mark it up and raise every
        attached link whose far end is also up.

        A link toward a still-crashed neighbor stays down until that
        neighbor restores. Module placements and egress configuration
        survive the reboot (they are control-plane state the controller
        re-pushes); the data-plane queues were scrubbed at crash time,
        so a restored switch cannot emit ghost departures for packets
        that died in the crash. Idempotent on an up switch.
        """
        member = self.switch(name)
        member.up = True
        for port in sorted(member.links):
            link = member.links[port]
            if self.switch(link.other_end(name).switch).up:
                link.up = True
        return member

    # -- routing ---------------------------------------------------------------

    def neighbors(self, name: str) -> List[Tuple[str, Link]]:
        """Up-link neighbors of one switch, with the joining link."""
        member = self.switch(name)
        result: List[Tuple[str, Link]] = []
        for port in sorted(member.links):
            link = member.links[port]
            if link.up:
                result.append((link.other_end(name).switch, link))
        return result

    def shortest_paths(self, src: str, dst: str) -> List[List[str]]:
        """All hop-count-shortest switch sequences from src to dst
        over up links. Raises :class:`LinkDownError` when unreachable
        (the typed link-down path)."""
        self.switch(src), self.switch(dst)
        if src == dst:
            return [[src]]
        # BFS layering, then backtrack every shortest predecessor.
        dist = {src: 0}
        preds: Dict[str, List[str]] = {}
        frontier = [src]
        while frontier and dst not in dist:
            nxt = []
            for name in frontier:
                for neighbor, _link in self.neighbors(name):
                    if neighbor not in dist:
                        dist[neighbor] = dist[name] + 1
                        preds.setdefault(neighbor, []).append(name)
                        nxt.append(neighbor)
                    elif dist[neighbor] == dist[name] + 1:
                        preds.setdefault(neighbor, []).append(name)
            frontier = nxt
        if dst not in dist:
            raise LinkDownError(
                f"no up path from {src!r} to {dst!r} "
                f"(down links: "
                f"{[l.name for l in self._links if not l.up]})")
        paths: List[List[str]] = []

        def backtrack(name: str, suffix: List[str]) -> None:
            if name == src:
                paths.append([src] + suffix)
                return
            for pred in preds[name]:
                backtrack(pred, [name] + suffix)

        backtrack(dst, [])
        return sorted(paths)

    def next_hop_port(self, at: str, toward: str) -> int:
        """The egress port on ``at`` whose up link reaches ``toward``."""
        candidates = [(port, link)
                      for port, link in self.switch(at).links.items()
                      if link.other_end(at).switch == toward]
        for port, link in sorted(candidates):
            if link.up:
                return port
        if candidates:
            raise LinkDownError(
                f"every link from {at!r} toward {toward!r} is down")
        raise TopologyError(f"{at!r} has no link toward {toward!r}")

    # -- tenants ----------------------------------------------------------------

    def tenant(self, name: str, source: str, vid: int,
               installer) -> "FabricTenant":
        """Create a fabric-level tenant (place it with
        :meth:`~repro.fabric.tenant.FabricTenant.place`)."""
        from .tenant import FabricTenant
        if vid in self._tenants:
            raise TopologyError(
                f"VID {vid} already belongs to fabric tenant "
                f"{self._tenants[vid].name!r}")
        tenant = FabricTenant(self, name, source, vid, installer)
        self._tenants[vid] = tenant
        return tenant

    def tenants(self) -> List["FabricTenant"]:
        return list(self._tenants.values())

    def tenant_by_vid(self, vid: int) -> "FabricTenant":
        """The fabric tenant owning ``vid`` — the lookup the parallel
        backend's declarative ops (:class:`repro.exec.parallel.
        TenantUpdateOp`) resolve against when the parent replays them
        after a process-backend run."""
        tenant = self._tenants.get(vid)
        if tenant is None:
            raise TopologyError(f"no fabric tenant with VID {vid}")
        return tenant

    def _release_tenant(self, vid: int) -> None:
        """Return a VID to the fabric pool (FabricTenant.unload calls
        this after evicting every per-switch instance)."""
        self._tenants.pop(vid, None)

    # -- statistics --------------------------------------------------------------

    def stats(self) -> PipelineStats:
        """Fabric-wide pipeline statistics (sum over member switches)."""
        return PipelineStats.aggregate(
            member.switch.pipeline.stats
            for member in self._switches.values())

    def tenant_counters(self, vid: int) -> TenantCounters:
        """One tenant's fabric-wide counters (per-hop semantics: a
        packet crossing three switches counts on each)."""
        stats = self.stats()
        return TenantCounters(
            packets_in=stats.per_module_in[vid],
            packets_out=stats.per_module_out[vid],
            packets_dropped=stats.per_module_dropped[vid],
            bytes_out=stats.per_module_bytes_out[vid],
            egress_bytes_tx=stats.egress_bytes_tx.get(vid, 0),
            egress_queue_depth=stats.egress_queue_depth.get(vid, 0))

    # -- data plane --------------------------------------------------------------

    def process_batch(self, arrivals, max_hops: Optional[int] = None,
                      backend: Optional[str] = None,
                      workers: Optional[int] = None):
        """Batched multi-hop forwarding; see
        :func:`repro.fabric.forwarding.process_batch`."""
        from .forwarding import process_batch
        return process_batch(self, arrivals, max_hops=max_hops,
                             backend=backend, workers=workers)


def leaf_spine(leaves: int = 2, spines: int = 1,
               hosts_per_leaf: int = 4,
               link_capacity_bps: float = 10e9,
               link_delay_s: float = 1e-6,
               make_builder: Optional[Callable[[], SwitchBuilder]] = None
               ) -> Fabric:
    """The canonical two-tier Clos: every leaf links to every spine.

    Leaves are named ``leaf0..leaf{L-1}``, spines ``spine0..spine{S-1}``.
    On each leaf, ports ``0..hosts_per_leaf-1`` face hosts and ports
    ``hosts_per_leaf..hosts_per_leaf+S-1`` are uplinks (to spine ``i``
    in order); spine port ``j`` faces leaf ``j``. ``make_builder`` (a
    zero-argument callable returning a fresh
    :class:`~repro.api.switch.SwitchBuilder`) customizes every member
    switch — port counts are set here from the topology.
    """
    if leaves < 1 or spines < 1:
        raise TopologyError(
            f"need >= 1 leaf and >= 1 spine, got {leaves}/{spines}")
    if hosts_per_leaf < 1:
        raise TopologyError(
            f"need >= 1 host port per leaf, got {hosts_per_leaf}")
    fabric = Fabric(default_link_rate_bps=link_capacity_bps)
    for i in range(leaves):
        b = make_builder() if make_builder is not None else Switch.build()
        fabric.add_switch(f"leaf{i}",
                          builder=b.ports(hosts_per_leaf + spines))
    for j in range(spines):
        b = make_builder() if make_builder is not None else Switch.build()
        fabric.add_switch(f"spine{j}", builder=b.ports(leaves))
    for i in range(leaves):
        for j in range(spines):
            fabric.connect(f"leaf{i}", hosts_per_leaf + j,
                           f"spine{j}", i,
                           capacity_bps=link_capacity_bps,
                           delay_s=link_delay_s)
    return fabric
