"""``FabricTenant``: one tenant spanning one or more switches.

The fabric-level analogue of :class:`repro.api.Tenant`. A fabric
tenant owns one VID and one P4 program, fabric-wide: 802.1Q carries
the VID end-to-end (*VLAN-based inter-switch forwarding* — the same
tag that names the module inside each pipeline also names the tenant
on the wire between pipelines), so one placement installs the same
program on every switch along the tenant's route, with per-switch
table entries pointing at that switch's next hop.

The per-switch entries come from the tenant's ``installer``, a
callable ``(tenant_handle, egress_port) -> None`` — e.g.
``lambda t, port: calc.install(t, port=port)``. On intermediate
switches the egress port faces the next hop's link; on the final
switch it is the destination host port. Egress-scheduling knobs
(:meth:`set_weight`, :meth:`set_rate_limit`) fan out to every placed
switch and are remembered for switches placed later, mirroring the
single-switch facade's install-before-or-after-engine semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..api.switch import Tenant, TenantCounters
from ..errors import PlacementError
from .placement import choose_path, validate_host_port
from .topology import Fabric, PortRef

Installer = Callable[[Tenant, int], None]


class FabricTenant:
    """One VID's program, placed across the fabric."""

    def __init__(self, fabric: Fabric, name: str, source: str, vid: int,
                 installer: Installer):
        self.fabric = fabric
        self.name = name
        self.source = source
        self.vid = vid
        self.installer = installer
        #: switch name -> per-switch tenant handle, in placement order
        self._handles: Dict[str, Tenant] = {}
        #: switch name -> egress port the installer was run with there
        self._egress: Dict[str, int] = {}
        #: every placed route, in placement order
        self.routes: List[List[str]] = []
        self._weight: Optional[float] = None
        self._rate: Optional[Tuple[float, Optional[float]]] = None

    def __repr__(self) -> str:
        return (f"FabricTenant(vid={self.vid}, name={self.name!r}, "
                f"switches={sorted(self._handles)})")

    # -- placement --------------------------------------------------------------

    def place(self, src: Tuple[str, int], dst: Tuple[str, int],
              via: Optional[Sequence[str]] = None) -> List[str]:
        """Place this tenant along one ``src -> dst`` demand.

        ``src``/``dst`` are ``(switch, host_port)`` attachment points.
        Chooses the route (greedy shortest-path, or pinned through
        ``via``), admits the tenant's program on every switch along it
        that doesn't host it yet, and installs entries steering to each
        switch's next hop. Returns the chosen route.

        Placement never half-lands: route viability, next-hop ports,
        and egress conflicts are all checked *before* any admission or
        install. A second placement may share switches with an earlier
        one as long as it steers them the same way (the installer is
        not re-run there); a shared switch that would need a
        *different* egress port raises
        :class:`~repro.errors.PlacementError` — one program instance
        cannot steer the same packets two ways, so such demands need
        an installer that discriminates (or separate tenants).
        """
        src_ref, dst_ref = PortRef(*src), PortRef(*dst)
        validate_host_port(self.fabric, src_ref.switch, src_ref.port,
                           "source")
        validate_host_port(self.fabric, dst_ref.switch, dst_ref.port,
                           "destination")
        path = choose_path(self.fabric, src_ref.switch, dst_ref.switch,
                           self.vid, via=via)
        # Plan every switch's egress first (next_hop_port may raise
        # LinkDownError), then check conflicts — nothing has been
        # admitted or installed yet if any of this fails.
        plan = {
            name: (dst_ref.port if i == len(path) - 1
                   else self.fabric.next_hop_port(name, path[i + 1]))
            for i, name in enumerate(path)}
        for name, egress in plan.items():
            prev = self._egress.get(name)
            if prev is not None and prev != egress:
                raise PlacementError(
                    f"tenant VID {self.vid} already steers {name!r} "
                    f"to port {prev}; route {path} needs port "
                    f"{egress} there — overlapping placements must "
                    f"agree, or use an installer that discriminates")
        for name in path:
            handle = self._admit_on(name)
            if name not in self._egress:
                self.installer(handle, plan[name])
                self._egress[name] = plan[name]
        self.routes.append(path)
        return path

    def _admit_on(self, name: str) -> Tenant:
        handle = self._handles.get(name)
        if handle is not None:
            return handle
        member = self.fabric.switch(name)
        if member.free_module_slots() <= 0:
            # choose_path should have filtered this; re-check so a
            # direct caller still gets the typed error.
            raise PlacementError(
                f"switch {name!r} has no free module slot for "
                f"tenant VID {self.vid}")
        handle = member.switch.admit(self.name, self.source, vid=self.vid)
        self._handles[name] = handle
        if self._weight is not None:
            handle.set_weight(self._weight)
        if self._rate is not None:
            handle.set_rate_limit(*self._rate)
        return handle

    def handles(self) -> Dict[str, Tenant]:
        """Per-switch tenant handles, keyed by switch name."""
        return dict(self._handles)

    def handle(self, switch: str) -> Tenant:
        handle = self._handles.get(switch)
        if handle is None:
            raise PlacementError(
                f"tenant VID {self.vid} is not placed on {switch!r} "
                f"(placed on: {sorted(self._handles)})")
        return handle

    def switches(self) -> List[str]:
        """Switches hosting this tenant, in placement order."""
        return list(self._handles)

    # -- egress scheduling (fabric-wide fan-out) ---------------------------------

    def set_weight(self, weight: float) -> "FabricTenant":
        """Weighted-fair share on every port of every placed switch."""
        if weight <= 0:
            raise ValueError(
                f"tenant {self.vid}: weight must be positive, "
                f"got {weight}")
        self._weight = float(weight)
        for handle in self._handles.values():
            handle.set_weight(weight)
        return self

    def set_rate_limit(self, rate_bytes_per_s: float,
                       burst_bytes: Optional[float] = None
                       ) -> "FabricTenant":
        """Token-bucket egress cap, applied on every placed switch."""
        if rate_bytes_per_s <= 0:
            raise ValueError(
                f"tenant {self.vid}: rate must be positive, "
                f"got {rate_bytes_per_s}")
        self._rate = (float(rate_bytes_per_s), burst_bytes)
        for handle in self._handles.values():
            handle.set_rate_limit(rate_bytes_per_s, burst_bytes)
        return self

    # -- statistics ---------------------------------------------------------------

    def counters(self) -> TenantCounters:
        """Fabric-wide counters (summed over placed switches)."""
        return self.fabric.tenant_counters(self.vid)

    def link_bytes(self) -> Dict[str, int]:
        """Bytes this tenant has carried on each fabric link."""
        return {link.name: link.bytes_by_tenant[self.vid]
                for link in self.fabric.links()
                if self.vid in link.bytes_by_tenant}
