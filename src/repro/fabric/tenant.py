"""``FabricTenant``: one tenant spanning one or more switches.

The fabric-level analogue of :class:`repro.api.Tenant`. A fabric
tenant owns one VID and one P4 program, fabric-wide: 802.1Q carries
the VID end-to-end (*VLAN-based inter-switch forwarding* — the same
tag that names the module inside each pipeline also names the tenant
on the wire between pipelines), so one placement installs the same
program on every switch along the tenant's route, with per-switch
table entries pointing at that switch's next hop.

The per-switch entries come from the tenant's ``installer``, a
callable ``(tenant_handle, egress_port) -> None`` — e.g.
``lambda t, port: calc.install(t, port=port)``. On intermediate
switches the egress port faces the next hop's link; on the final
switch it is the destination host port. Egress-scheduling knobs
(:meth:`set_weight`, :meth:`set_rate_limit`) fan out to every placed
switch and are remembered for switches placed later, mirroring the
single-switch facade's install-before-or-after-engine semantics.

The lifecycle does not end at :meth:`~FabricTenant.place`: the
runtime controller's §4.1 load/update/unload procedures fan out across
the route mid-run — :meth:`~FabricTenant.update` replaces the program
on every placed switch (hitless for neighbors),
:meth:`~FabricTenant.unload` evicts it everywhere and releases the VID
fabric-wide, and :meth:`~FabricTenant.migrate` moves the route to a
new destination, admitting on new switches, re-steering shared ones,
and evicting the abandoned tail. All three compose with the
event-driven timeline's
:class:`~repro.sim.fabric_timeline.FabricReconfigEvent`, so churn can
fire inside a running experiment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.passes import loop_findings
from ..api.switch import Tenant, TenantCounters
from ..errors import PlacementError
from .placement import choose_path, validate_host_port
from .topology import Fabric, Link, PortRef

Installer = Callable[[Tenant, int], None]


class FabricTenant:
    """One VID's program, placed across the fabric."""

    def __init__(self, fabric: Fabric, name: str, source: str, vid: int,
                 installer: Installer):
        self.fabric = fabric
        self.name = name
        self.source = source
        self.vid = vid
        self.installer = installer
        #: switch name -> per-switch tenant handle, in placement order
        self._handles: Dict[str, Tenant] = {}
        #: switch name -> egress port the installer was run with there
        self._egress: Dict[str, int] = {}
        #: every placed route, in placement order
        self.routes: List[List[str]] = []
        self._weight: Optional[float] = None
        self._rate: Optional[Tuple[float, Optional[float]]] = None

    def __repr__(self) -> str:
        return (f"FabricTenant(vid={self.vid}, name={self.name!r}, "
                f"switches={sorted(self._handles)})")

    # -- placement --------------------------------------------------------------

    def place(self, src: Tuple[str, int], dst: Tuple[str, int],
              via: Optional[Sequence[str]] = None) -> List[str]:
        """Place this tenant along one ``src -> dst`` demand.

        ``src``/``dst`` are ``(switch, host_port)`` attachment points.
        Chooses the route (greedy shortest-path, or pinned through
        ``via``), admits the tenant's program on every switch along it
        that doesn't host it yet, and installs entries steering to each
        switch's next hop. Returns the chosen route.

        Placement never half-lands: route viability, next-hop ports,
        and egress conflicts are all checked *before* any admission or
        install. A second placement may share switches with an earlier
        one as long as it steers them the same way (the installer is
        not re-run there); a shared switch that would need a
        *different* egress port raises
        :class:`~repro.errors.PlacementError` — one program instance
        cannot steer the same packets two ways, so such demands need
        an installer that discriminates (or separate tenants).
        """
        src_ref, dst_ref = PortRef(*src), PortRef(*dst)
        validate_host_port(self.fabric, src_ref.switch, src_ref.port,
                           "source")
        validate_host_port(self.fabric, dst_ref.switch, dst_ref.port,
                           "destination")
        path = choose_path(self.fabric, src_ref.switch, dst_ref.switch,
                           self.vid, via=via)
        # Plan every switch's egress first (next_hop_port may raise
        # LinkDownError), then check conflicts — nothing has been
        # admitted or installed yet if any of this fails.
        plan = {
            name: (dst_ref.port if i == len(path) - 1
                   else self.fabric.next_hop_port(name, path[i + 1]))
            for i, name in enumerate(path)}
        for name, egress in plan.items():
            prev = self._egress.get(name)
            if prev is not None and prev != egress:
                raise PlacementError(
                    f"tenant VID {self.vid} already steers {name!r} "
                    f"to port {prev}; route {path} needs port "
                    f"{egress} there — overlapping placements must "
                    f"agree, or use an installer that discriminates")
        self._prove_loop_free({**self._egress, **plan})
        for name in path:
            handle = self._admit_on(name)
            if name not in self._egress:
                self.installer(handle, plan[name])
                self._egress[name] = plan[name]
        self.routes.append(path)
        return path

    def _prove_loop_free(self, steering: Dict[str, int]) -> None:
        """Machine-check that the tenant's fabric-wide steering stays
        loop-free (:func:`repro.analysis.passes.loop_findings`).

        ``steering`` is the switch -> egress-port map as it *would*
        look after the pending change; ports facing hosts are route
        terminals. The egress-agreement check makes loops unreachable
        through this API, but direct callers and future installers get
        the same proof the paper's static checker gives daisy chains.
        """
        next_hop: Dict[str, str] = {}
        for name in sorted(steering):
            link = self.fabric.switch(name).links.get(steering[name])
            if link is not None:
                next_hop[name] = link.other_end(name).switch
        for finding in loop_findings(next_hop, subject=f"vid {self.vid}"):
            raise PlacementError(
                f"tenant VID {self.vid}: {finding.message}")

    def _admit_on(self, name: str) -> Tenant:
        handle = self._handles.get(name)
        if handle is not None:
            return handle
        member = self.fabric.switch(name)
        if member.free_module_slots() <= 0:
            # choose_path should have filtered this; re-check so a
            # direct caller still gets the typed error.
            raise PlacementError(
                f"switch {name!r} has no free module slot for "
                f"tenant VID {self.vid}")
        handle = member.switch.admit(self.name, self.source, vid=self.vid)
        self._handles[name] = handle
        if self._weight is not None:
            handle.set_weight(self._weight)
        if self._rate is not None:
            handle.set_rate_limit(*self._rate)
        return handle

    # -- lifecycle (fabric-wide §4.1 fan-out) ------------------------------------

    def update(self, source: str,
               installer: Optional[Installer] = None) -> "FabricTenant":
        """Replace this tenant's program on every placed switch.

        Runs the controller's §4.1 update procedure per switch (bitmap
        bit set, configuration rewritten through the daisy chain,
        bitmap cleared — other tenants keep forwarding throughout),
        then re-runs the installer with each switch's recorded egress
        port, since an update wipes the module's table entries. Pass
        ``installer=`` when the new program needs different steering
        entries (e.g. a CALC→QoS swap). A failure mid-fan-out is
        rolled back to the old program on every switch before the
        exception propagates — the route never stays mixed.
        """
        if not self._handles:
            raise PlacementError(
                f"tenant VID {self.vid} is not placed anywhere; "
                f"place() it before update()")
        install = installer if installer is not None else self.installer
        # Commit self.source/self.installer only after the fan-out
        # succeeds: a program that fails to compile raises out of the
        # first handle.update (before any teardown), leaving both the
        # switches and this object on the old program. A *mid-route*
        # failure (the source compiles, but one switch's reinstall is
        # rejected — §4.1 update is teardown + install, and the
        # install half can fail on fragmentation) is rolled back:
        # switches already moved to the new program are updated back,
        # and a switch left empty by the failed install re-admits the
        # old program, so the route never stays mixed.
        updated: List[str] = []
        try:
            for name, handle in self._handles.items():
                handle.update(source)
                install(handle, self._egress[name])
                updated.append(name)
        except BaseException:
            for name in list(self._handles):
                member = self.fabric.switch(name)
                if self.vid not in member.switch.controller.modules:
                    del self._handles[name]   # dead handle
                    restored = self._admit_on(name)
                    self.installer(restored, self._egress[name])
                elif name in updated:
                    self._handles[name].update(self.source)
                    self.installer(self._handles[name],
                                   self._egress[name])
            raise
        self.source = source
        self.installer = install
        return self

    def unload(self) -> None:
        """Evict this tenant from every placed switch.

        Per switch: the §4.1 teardown (invalidate and zero everything
        the module owned), an egress-scheduler purge of its queued
        packets and weight/rate state, and the VID slot release. The
        VID is then free fabric-wide — a new tenant may claim it.
        """
        for handle in list(self._handles.values()):
            handle.evict()
        self._handles.clear()
        self._egress.clear()
        self.routes.clear()
        self.fabric._release_tenant(self.vid)

    def migrate(self, dst: Tuple[str, int],
                via: Optional[Sequence[str]] = None) -> List[str]:
        """Move this tenant's route to a new destination, mid-run.

        Requires exactly one placed route (the unambiguous case; a
        multi-demand tenant must be re-placed explicitly). The new
        route keeps the current source switch. Three kinds of switch
        fall out of the diff against the old route, each handled with
        the matching §4.1 procedure:

        * **new** switches — load: admit the program and install
          steering toward the next hop;
        * **shared** switches whose next hop changed — update: rewrite
          the program in place (which clears its entries) and
          re-install steering toward the new next hop;
        * **abandoned** switches — unload: evict, zero partitions,
          purge queued egress.

        Viability (route, next-hop ports, free slots on new switches)
        is checked before anything mutates, and the load phase admits
        all new switches as a group — if one rejects the program
        (fragmented CAM despite a free VID slot), the already-admitted
        ones are evicted again — so a failed migration leaves the old
        placement intact. Returns the new route.
        """
        if len(self.routes) != 1:
            raise PlacementError(
                f"tenant VID {self.vid}: migrate() needs exactly one "
                f"placed route, found {len(self.routes)} — re-place "
                f"multi-demand tenants explicitly")
        old_path = self.routes[0]
        dst_ref = PortRef(*dst)
        validate_host_port(self.fabric, dst_ref.switch, dst_ref.port,
                           "destination")
        path = choose_path(self.fabric, old_path[0], dst_ref.switch,
                           self.vid, via=via)
        # Plan first (next_hop_port may raise LinkDownError), check
        # capacity on the switches to be admitted — nothing has
        # changed yet if any of this fails.
        plan = {
            name: (dst_ref.port if i == len(path) - 1
                   else self.fabric.next_hop_port(name, path[i + 1]))
            for i, name in enumerate(path)}
        for name in path:
            if name not in self._handles and \
                    self.fabric.switch(name).free_module_slots() <= 0:
                raise PlacementError(
                    f"tenant VID {self.vid}: cannot migrate — switch "
                    f"{name!r} has no free module slot")
        # The post-migration steering is exactly the new plan (shared
        # switches are re-steered, the abandoned tail is unloaded).
        self._prove_loop_free(dict(plan))
        # Load phase: admit on every new switch before any steering
        # changes, rolling the admissions back as a group if a later
        # one fails (a free VID slot does not guarantee admission —
        # fragmented CAM can still reject the program), so a failed
        # migration leaves the old placement intact.
        admitted: List[str] = []
        try:
            for name in path:
                if name not in self._handles:
                    self._admit_on(name)
                    admitted.append(name)
        except BaseException:
            for name in admitted:
                self._handles.pop(name).evict()
            raise
        # Steer phase: install on the new switches, re-steer shared
        # ones whose next hop changed.
        for name in path:
            handle = self._handles[name]
            want = plan[name]
            prev = self._egress.get(name)
            if prev is None:
                self.installer(handle, want)
                self._egress[name] = want
            elif prev != want:
                # Re-steer: §4.1 update clears the module's entries,
                # then the installer points them at the new next hop.
                handle.update(self.source)
                self.installer(handle, want)
                self._egress[name] = want
        # Unload phase: evict the abandoned tail of the old route.
        for name in [n for n in old_path if n not in path]:
            handle = self._handles.pop(name)
            handle.evict()
            self._egress.pop(name, None)
        self.routes = [path]
        return path

    def handles(self) -> Dict[str, Tenant]:
        """Per-switch tenant handles, keyed by switch name."""
        return dict(self._handles)

    def handle(self, switch: str) -> Tenant:
        handle = self._handles.get(switch)
        if handle is None:
            raise PlacementError(
                f"tenant VID {self.vid} is not placed on {switch!r} "
                f"(placed on: {sorted(self._handles)})")
        return handle

    def switches(self) -> List[str]:
        """Switches hosting this tenant, in placement order."""
        return list(self._handles)

    def egress_ports(self) -> Dict[str, int]:
        """The egress port this tenant steers to on each placed switch
        — the recovery layer reads it to find the wire a stranded
        route's packets were queued toward."""
        return dict(self._egress)

    # -- fault surface (read by repro.chaos) -------------------------------------

    def route_links(self, route: Optional[Sequence[str]] = None
                    ) -> List[Link]:
        """The fabric links one placed route crosses, in hop order,
        resolved through the recorded egress steering (defaults to the
        only placed route)."""
        if route is None:
            if len(self.routes) != 1:
                raise PlacementError(
                    f"tenant VID {self.vid}: route_links() needs "
                    f"route= when {len(self.routes)} routes are placed")
            route = self.routes[0]
        links: List[Link] = []
        for name in route[:-1]:
            egress = self._egress.get(name)
            if egress is None:
                continue
            link = self.fabric.switch(name).links.get(egress)
            if link is not None:
                links.append(link)
        return links

    def is_stranded(self) -> bool:
        """True when any placed route crosses a down link or a crashed
        switch — the detection predicate
        :class:`repro.chaos.recovery.RecoveryController` sweeps with.
        An unplaced tenant is never stranded."""
        for route in self.routes:
            if any(not self.fabric.switch(name).up for name in route):
                return True
            if any(not link.up for link in self.route_links(route)):
                return True
        return False

    # -- egress scheduling (fabric-wide fan-out) ---------------------------------

    @property
    def weight(self) -> Optional[float]:
        """The fabric-wide fair-share weight, if one was ever set."""
        return self._weight

    @property
    def rate_limit(self) -> Optional[Tuple[float, Optional[float]]]:
        """The fabric-wide ``(rate, burst)`` cap, if one was ever set."""
        return self._rate

    def set_weight(self, weight: float) -> "FabricTenant":
        """Weighted-fair share on every port of every placed switch."""
        if weight <= 0:
            raise ValueError(
                f"tenant {self.vid}: weight must be positive, "
                f"got {weight}")
        self._weight = float(weight)
        for handle in self._handles.values():
            handle.set_weight(weight)
        return self

    def set_rate_limit(self, rate_bytes_per_s: float,
                       burst_bytes: Optional[float] = None
                       ) -> "FabricTenant":
        """Token-bucket egress cap, applied on every placed switch."""
        if rate_bytes_per_s <= 0:
            raise ValueError(
                f"tenant {self.vid}: rate must be positive, "
                f"got {rate_bytes_per_s}")
        self._rate = (float(rate_bytes_per_s), burst_bytes)
        for handle in self._handles.values():
            handle.set_rate_limit(rate_bytes_per_s, burst_bytes)
        return self

    # -- statistics ---------------------------------------------------------------

    def counters(self) -> TenantCounters:
        """Fabric-wide counters (summed over placed switches)."""
        return self.fabric.tenant_counters(self.vid)

    def link_bytes(self) -> Dict[str, int]:
        """Bytes this tenant has carried on each fabric link."""
        return {link.name: link.bytes_by_tenant[self.vid]
                for link in self.fabric.links()
                if self.vid in link.bytes_by_tenant}
