"""Batched multi-hop forwarding: waves of engine batches across links.

One fabric batch is processed as repeated *waves*. A wave pushes each
switch's pending packets through its :class:`~repro.engine.BatchEngine`
(the real batched serving path — flow cache, sharded dispatch, egress
scheduler), then drains every output port in the scheduler's
weighted-fair service order:

* a packet leaving a **host port** exits the fabric — a
  :class:`Delivery` in fabric-wide service order;
* a packet leaving a **fabric port** crosses that port's link (bytes
  accounted per tenant) and becomes the next wave's arrival at the
  neighbor switch, ingress-port rewritten to the remote end — exactly
  what you get by manually chaining two switches' engines, which is
  what ``tests/test_fabric_differential.py`` asserts.

This path is untimed (service order, not timestamps): the timed
variant with per-link propagation delays and per-port transmission
clocks is :mod:`repro.sim.fabric_timeline`.

A packet scheduled onto a **downed link** is lost — as on real
hardware — but never silently: it is recorded in
:attr:`FabricResult.lost` with the link it died on, and the wave
continues, so one tenant's failed path cannot discard other tenants'
healthy in-flight traffic or poison later batches. (The *typed*
link-down failures, :class:`~repro.errors.LinkDownError`, are raised
where a caller can act on them: route computation and placement —
see :meth:`repro.fabric.topology.Fabric.shortest_paths` and
:meth:`repro.fabric.tenant.FabricTenant.place`.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import FabricError
from ..net.packet import Packet
from ..rmt.parser import extract_module_id
from ..rmt.pipeline import PipelineResult
from .topology import Fabric


@dataclass(frozen=True)
class Delivery:
    """One packet that exited the fabric on a host port."""

    switch: str
    port: int
    vid: int
    packet: Packet


@dataclass(frozen=True)
class LostPacket:
    """One packet blackholed by a downed link."""

    link: str
    switch: str
    port: int
    vid: int
    packet: Packet


@dataclass
class FabricResult:
    """Outcome of one fabric batch."""

    #: host-port exits, in fabric-wide service order
    delivered: List[Delivery] = field(default_factory=list)
    #: per-switch pipeline results, in processing order
    results: Dict[str, List[PipelineResult]] = field(default_factory=dict)
    #: packets dropped inside some pipeline, per tenant
    dropped: Dict[int, int] = field(default_factory=dict)
    #: packets blackholed by downed links, in service order
    lost: List[LostPacket] = field(default_factory=list)
    #: number of forwarding waves the batch needed
    waves: int = 0

    def delivered_for(self, vid: int) -> List[Packet]:
        """One tenant's exits, in service order."""
        return [d.packet for d in self.delivered if d.vid == vid]

    def delivered_bytes(self, vid: int) -> int:
        return sum(len(d.packet) for d in self.delivered
                   if d.vid == vid)

    def lost_for(self, vid: int) -> List[LostPacket]:
        """One tenant's link-down losses."""
        return [l for l in self.lost if l.vid == vid]


def _vid_of(packet: Packet) -> int:
    """Owner VID from the 802.1Q tag (0 for odd untagged strays)."""
    try:
        return extract_module_id(packet)
    except Exception:
        return 0


def process_batch(fabric: Fabric,
                  arrivals: Sequence[Tuple[str, Packet]],
                  max_hops: Optional[int] = None) -> FabricResult:
    """Drive one batch of ``(switch_name, packet)`` arrivals to exit.

    ``max_hops`` bounds the wave count (default: number of switches,
    the longest loop-free route); exceeding it raises
    :class:`~repro.errors.FabricError` instead of looping forever on a
    misconfigured forwarding cycle.
    """
    if max_hops is None:
        max_hops = max(1, len(fabric.switches()))
    result = FabricResult()
    wave: List[Tuple[str, Packet]] = [(name, pkt)
                                      for name, pkt in arrivals]
    for _ in range(max_hops + 1):
        if not wave:
            break
        result.waves += 1
        # Group by switch, preserving arrival order within each.
        by_switch: Dict[str, List[Packet]] = {}
        for name, pkt in wave:
            fabric.switch(name)  # typed error for unknown names
            by_switch.setdefault(name, []).append(pkt)
        next_wave: List[Tuple[str, Packet]] = []
        # Wave order = fabric insertion order, deterministic.
        for member in fabric.switches():
            pkts = by_switch.get(member.name)
            if not pkts:
                continue
            outcomes = member.engine.process_batch(pkts)
            result.results.setdefault(member.name, []).extend(outcomes)
            for outcome in outcomes:
                if outcome.dropped:
                    result.dropped[outcome.module_id] = \
                        result.dropped.get(outcome.module_id, 0) + 1
            # Drain every port in weighted-fair service order.
            tm = member.switch.pipeline.traffic_manager
            for port in range(member.num_ports):
                link = member.links.get(port)
                for pkt in tm.drain(port):
                    vid = _vid_of(pkt)
                    if link is None:
                        result.delivered.append(Delivery(
                            switch=member.name, port=port, vid=vid,
                            packet=pkt))
                    elif not link.up:
                        # A failed link loses its in-flight traffic —
                        # recorded loudly, but the wave continues so
                        # other tenants' healthy packets still forward.
                        result.lost.append(LostPacket(
                            link=link.name, switch=member.name,
                            port=port, vid=vid, packet=pkt))
                    else:
                        link.record(vid, len(pkt))
                        remote = link.other_end(member.name)
                        pkt.ingress_port = remote.port
                        next_wave.append((remote.switch, pkt))
        wave = next_wave
    else:
        raise FabricError(
            f"batch still in flight after {max_hops} hops — "
            f"forwarding loop? in-flight: "
            f"{[(name, _vid_of(p)) for name, p in wave[:8]]}")
    return result
