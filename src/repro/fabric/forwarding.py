"""Batched multi-hop forwarding: waves of engine batches across links.

One fabric batch is processed as repeated *waves* by the unified
execution core (:class:`repro.exec.ExecutionCore` under its untimed
policy). A wave pushes each switch's pending packets through its
:class:`~repro.engine.BatchEngine` (the real batched serving path —
flow cache, sharded dispatch, egress scheduler), then drains every
output port in the scheduler's weighted-fair service order:

* a packet leaving a **host port** exits the fabric — a
  :class:`Delivery` in fabric-wide service order;
* a packet leaving a **fabric port** crosses that port's link (bytes
  accounted per tenant) and becomes the next wave's arrival at the
  neighbor switch, ingress-port rewritten to the remote end — exactly
  what you get by manually chaining two switches' engines, which is
  what ``tests/test_fabric_differential.py`` asserts.

This path is untimed (service order, not timestamps): the timed
variant with per-link propagation delays and per-port transmission
clocks is :mod:`repro.sim.fabric_timeline` — a different timing policy
over the *same* core, which is why the two report the same lost
traffic (:meth:`FabricResult.lost_records`).

A packet scheduled onto a **downed link** is lost — as on real
hardware — but never silently: it is recorded in
:attr:`FabricResult.lost` with the link it died on, and the wave
continues, so one tenant's failed path cannot discard other tenants'
healthy in-flight traffic or poison later batches. (The *typed*
link-down failures, :class:`~repro.errors.LinkDownError`, are raised
where a caller can act on them: route computation and placement —
see :meth:`repro.fabric.topology.Fabric.shortest_paths` and
:meth:`repro.fabric.tenant.FabricTenant.place`.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exec import ExecutionCore, ExecutionSink, LostRecord, summarize_lost
from ..exec import vid_of as _vid_of  # noqa: F401  (compat re-export)
from ..net.packet import Packet
from ..rmt.pipeline import PipelineResult
from .topology import Fabric


@dataclass(frozen=True)
class Delivery:
    """One packet that exited the fabric on a host port."""

    switch: str
    port: int
    vid: int
    packet: Packet


@dataclass(frozen=True)
class LostPacket:
    """One packet blackholed by a downed link."""

    link: str
    switch: str
    port: int
    vid: int
    packet: Packet


@dataclass
class FabricResult:
    """Outcome of one fabric batch."""

    #: host-port exits, in fabric-wide service order
    delivered: List[Delivery] = field(default_factory=list)
    #: per-switch pipeline results, in processing order
    results: Dict[str, List[PipelineResult]] = field(default_factory=dict)
    #: packets dropped inside some pipeline, per tenant
    dropped: Dict[int, int] = field(default_factory=dict)
    #: packets blackholed by downed links, in service order
    lost: List[LostPacket] = field(default_factory=list)
    #: number of forwarding waves the batch needed
    waves: int = 0

    def delivered_for(self, vid: int) -> List[Packet]:
        """One tenant's exits, in service order."""
        return [d.packet for d in self.delivered if d.vid == vid]

    def delivered_bytes(self, vid: int) -> int:
        return sum(len(d.packet) for d in self.delivered
                   if d.vid == vid)

    def lost_for(self, vid: int) -> List[LostPacket]:
        """One tenant's link-down losses."""
        return [l for l in self.lost if l.vid == vid]

    def lost_records(self) -> List[LostRecord]:
        """Link-down losses in the shared typed shape (vid, link,
        count) — directly comparable with
        :meth:`repro.sim.fabric_timeline.FabricTimelineResult.
        lost_records`."""
        return summarize_lost((l.vid, l.link) for l in self.lost)


class _ResultSink(ExecutionSink):
    """Shapes the core's event stream into a :class:`FabricResult`."""

    def __init__(self, result: FabricResult):
        self.result = result

    def on_result(self, member: str, outcome) -> None:
        self.result.results.setdefault(member, []).append(outcome)

    def on_drop(self, vid: int) -> None:
        self.result.dropped[vid] = self.result.dropped.get(vid, 0) + 1

    def on_deliver(self, member: str, port: int, vid: int,
                   packet: Packet, time: float) -> None:
        self.result.delivered.append(Delivery(
            switch=member, port=port, vid=vid, packet=packet))

    def on_lost(self, member: str, port: int, vid: int, packet: Packet,
                link: str, time: float) -> None:
        # A failed link loses its in-flight traffic — recorded loudly,
        # but the wave continues so other tenants' healthy packets
        # still forward.
        self.result.lost.append(LostPacket(
            link=link, switch=member, port=port, vid=vid, packet=packet))


def process_batch(fabric: Fabric,
                  arrivals: Sequence[Tuple[str, Packet]],
                  max_hops: Optional[int] = None,
                  backend: Optional[str] = None,
                  workers: Optional[int] = None) -> FabricResult:
    """Drive one batch of ``(switch_name, packet)`` arrivals to exit.

    ``max_hops`` bounds the wave count (default: number of switches,
    the longest loop-free route); exceeding it raises
    :class:`~repro.errors.FabricError` instead of looping forever on a
    misconfigured forwarding cycle.

    ``backend`` selects the execution backend (default: the
    ``REPRO_EXEC_BACKEND`` environment variable, else ``"serial"``):
    ``"serial"`` is the in-process oracle; ``"process"`` shards the
    fabric across worker processes (``workers``, default one per
    switch) via :func:`repro.exec.parallel.run_fabric_batch` with a
    bit-identical result. The serial path mutates the arrival packets
    in place (ingress rewrites); the process path leaves them
    untouched and returns pickled copies.
    """
    from ..exec.parallel import resolve_backend, run_fabric_batch

    if resolve_backend(backend) == "process":
        return run_fabric_batch(fabric, arrivals, max_hops=max_hops,
                                workers=workers)
    result = FabricResult()
    core = ExecutionCore.for_fabric(fabric, sink=_ResultSink(result))
    result.waves = core.run_waves(arrivals, max_hops=max_hops)
    return result
