"""Tenant placement over a fabric: greedy capacity-aware, user-pinnable.

A fabric tenant's program must run on *every* switch its packets
traverse — each hop is a full Menshen pipeline, and an unplaced VID is
dropped by the packet filter as ``unknown_module`` (behavior isolation
does not stop at the first switch). Placement therefore reduces to
route selection plus admission along the route:

* **Greedy:** among hop-count-shortest paths, prefer the one whose
  switches have the most free module slots (ignoring switches that
  already host this VID — re-using an existing instance is free). This
  is the CODA-style co-location argument turned into a default: spread
  tenants across spines instead of piling them onto one.
* **Pinned:** ``via=("spine1",)`` forces the route through the named
  switches, in order — the operator override for deliberate
  co-location or avoidance experiments.
* **Rejecting:** a path is only viable if every switch on it either
  already hosts the tenant or has a free VID slot. When no viable path
  exists (or a pin names a full switch), :class:`PlacementError` is
  raised *before* anything is admitted — placement never half-lands.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import PlacementError
from .topology import Fabric


def _viable(fabric: Fabric, path: Sequence[str], vid: int) -> bool:
    """Every switch on ``path`` can host (or already hosts) ``vid``."""
    return all(_slot_cost(fabric, name, vid) == 0
               or fabric.switch(name).free_module_slots() > 0
               for name in path)


def _slot_cost(fabric: Fabric, name: str, vid: int) -> int:
    """1 if placing ``vid`` on ``name`` consumes a fresh slot, else 0."""
    return 0 if vid in fabric.switch(name).switch.controller.modules \
        else 1


def _score(fabric: Fabric, path: Sequence[str], vid: int
           ) -> Tuple[int, int, Tuple[str, ...]]:
    """Sort key: fewest hops, then greedily most free capacity.

    ``-sum(frees)`` prefers the path whose switches keep the most
    total headroom after this placement (shared endpoints contribute
    equally to every candidate, so the comparison is effectively over
    the switches that differ — the spines); the name tuple makes ties
    deterministic.
    """
    frees = [fabric.switch(name).free_module_slots()
             - _slot_cost(fabric, name, vid) for name in path]
    return (len(path), -sum(frees), tuple(path))


def choose_path(fabric: Fabric, src: str, dst: str, vid: int,
                via: Optional[Sequence[str]] = None) -> List[str]:
    """The route a tenant's packets will take from ``src`` to ``dst``.

    ``via`` pins intermediate switches in order; segments between pins
    are still shortest-path. Raises :class:`PlacementError` when no
    viable path exists, :class:`LinkDownError` when the graph itself is
    disconnected.
    """
    waypoints = [src, *(via or ()), dst]
    path: List[str] = [src]
    for leg_src, leg_dst in zip(waypoints, waypoints[1:]):
        candidates = fabric.shortest_paths(leg_src, leg_dst)
        viable = [p for p in candidates if _viable(fabric, p, vid)]
        if not viable:
            full = sorted({name for p in candidates for name in p
                           if _slot_cost(fabric, name, vid)
                           and fabric.switch(name).free_module_slots()
                           <= 0})
            raise PlacementError(
                f"tenant VID {vid}: no viable path {leg_src!r} -> "
                f"{leg_dst!r}; over-capacity switches: {full}")
        best = min(viable, key=lambda p: _score(fabric, p, vid))
        path.extend(best[1:])
    if len(set(path)) != len(path):
        raise PlacementError(
            f"tenant VID {vid}: pinned route revisits a switch: {path}")
    return path


def validate_host_port(fabric: Fabric, switch: str, port: int,
                       role: str) -> None:
    """A demand endpoint must be a host-facing port, not a fabric port."""
    member = fabric.switch(switch)
    if not 0 <= port < member.num_ports:
        raise PlacementError(
            f"{role} port {switch}:{port} out of range "
            f"[0, {member.num_ports})")
    if port in member.links:
        raise PlacementError(
            f"{role} port {switch}:{port} is a fabric port "
            f"(link {member.links[port].name}); attach hosts to "
            f"unlinked ports {member.host_ports()}")
