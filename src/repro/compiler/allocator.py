"""PHV container allocation and table-to-stage placement.

**Containers.** Each used field gets one PHV container of the matching
size class (16 b -> 2 B, 32 b -> 4 B, 48 b -> 6 B). Fields shared with the
system module (same absolute byte offset and width) reuse the system's
container, so the sandwich of Fig. 6 works without copies. Distinct user
modules may receive the *same* containers — a PHV belongs to exactly one
packet of one module, so this is free (and is why overlays beat
space-partitioning PHVs, §3).

**Stages.** Tables take stages from the target's ``stage_map`` in apply
order: one table per module per stage, because a stage holds exactly one
key-extractor configuration per module. The pass also derives the
match-after-write dependency graph (Jose et al.-style) and verifies the
apply order respects it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import AllocationError
from ..rmt.phv import ContainerRef, ContainerType
from .ir import METADATA_OPS, ModuleIR
from .target import TargetDescription
from .typecheck import FieldInfo

_WIDTH_TO_CLASS = {16: ContainerType.B2, 32: ContainerType.B4,
                   48: ContainerType.B6}


@dataclass
class Allocation:
    """Result of the allocation pass."""

    field_to_container: Dict[str, ContainerRef] = field(default_factory=dict)
    table_to_stage: Dict[str, int] = field(default_factory=dict)
    #: match-after-write dependencies: table -> tables it must follow
    dependencies: Dict[str, Set[str]] = field(default_factory=dict)

    def container_of(self, dotted: str) -> ContainerRef:
        try:
            return self.field_to_container[dotted]
        except KeyError as exc:
            raise AllocationError(f"field {dotted!r} has no container") from exc

    def containers_used(self) -> List[ContainerRef]:
        return list(self.field_to_container.values())


def _class_of(info: FieldInfo) -> ContainerType:
    if not info.container_mappable:
        raise AllocationError(
            f"field {info.dotted!r} ({info.width_bits} bits at bit offset "
            f"{info.bit_offset}) cannot map to a container: fields used in "
            f"keys or actions must be byte-aligned and 16/32/48 bits wide")
    return _WIDTH_TO_CLASS[info.width_bits]


def allocate_containers(ir: ModuleIR,
                        target: TargetDescription) -> Allocation:
    """Assign every used field a container; honor shared-field bindings."""
    alloc = Allocation()
    taken: Set[Tuple[int, int]] = set()
    for ref in target.unavailable_containers():
        taken.add((int(ref.ctype), ref.index))

    free: Dict[ContainerType, List[int]] = {}
    for ctype in (ContainerType.B2, ContainerType.B4, ContainerType.B6):
        free[ctype] = [i for i in range(target.params.containers_per_type)
                       if (int(ctype), i) not in taken]

    for dotted in sorted(ir.fields_used):
        info = ir.field_info(dotted)
        shared_key = (info.byte_offset, info.width_bits)
        if shared_key in target.shared_fields:
            alloc.field_to_container[dotted] = target.shared_fields[shared_key]
            continue
        ctype = _class_of(info)
        if not free[ctype]:
            raise AllocationError(
                f"out of {ctype.name} containers while allocating "
                f"{dotted!r}: the module uses too many "
                f"{ctype.size_bytes}-byte fields")
        index = free[ctype].pop(0)
        alloc.field_to_container[dotted] = ContainerRef(ctype, index)
    return alloc


def _written_by(ir: ModuleIR, table_name: str) -> Set[str]:
    """Fields written by any action of the given table."""
    written: Set[str] = set()
    for table in ir.tables:
        if table.name != table_name:
            continue
        for action_name in table.action_names:
            for op in ir.actions[action_name].ops:
                if op.dest and op.kind not in METADATA_OPS \
                        and op.kind != "store":
                    written.add(op.dest)
    return written


def _read_by(table) -> Set[str]:
    """Fields a table's match depends on (key + predicate operands)."""
    fields = {info.dotted for info in table.key_fields}
    if table.predicate is not None:
        for side in (table.predicate.left, table.predicate.right):
            if isinstance(side, FieldInfo):
                fields.add(side.dotted)
    return fields


def place_stages(ir: ModuleIR, target: TargetDescription,
                 alloc: Allocation) -> None:
    """Assign tables to stages in apply order and verify dependencies."""
    if len(ir.tables) > len(target.stage_map):
        raise AllocationError(
            f"module has {len(ir.tables)} tables but the target offers "
            f"only {len(target.stage_map)} stages "
            f"({target.stage_map})")
    names = [t.name for t in ir.tables]
    if len(set(names)) != len(names):
        raise AllocationError(
            "a table may be applied only once (one key-extractor "
            "configuration per module per stage)")

    for position, table in enumerate(ir.tables):
        alloc.table_to_stage[table.name] = target.stage_map[position]

    # Match-after-write dependency graph + verification. With one table
    # per stage in apply order the placement is correct by construction;
    # the graph is still derived so callers can inspect and report it
    # (and so a future multi-table-per-stage placer can reuse it).
    for i, later in enumerate(ir.tables):
        deps: Set[str] = set()
        reads = _read_by(later)
        for earlier in ir.tables[:i]:
            if reads & _written_by(ir, earlier.name):
                deps.add(earlier.name)
        alloc.dependencies[later.name] = deps
        for dep in sorted(deps):
            if alloc.table_to_stage[dep] >= alloc.table_to_stage[later.name]:
                raise AllocationError(
                    f"table {later.name!r} matches fields written by "
                    f"{dep!r} but is not placed in a later stage")


def allocate(ir: ModuleIR, target: TargetDescription) -> Allocation:
    """Run both allocation passes."""
    alloc = allocate_containers(ir, target)
    place_stages(ir, target, alloc)
    return alloc
