"""AST node definitions for the P4-16 subset.

Plain dataclasses, one per syntactic construct. Every node carries a
source line for error reporting. The tree is deliberately close to the
surface syntax; lowering happens in :mod:`repro.compiler.ir`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Types and declarations
# ---------------------------------------------------------------------------

@dataclass
class FieldDecl:
    """``bit<width> name;`` inside a header."""

    name: str
    width_bits: int
    line: int = 0


@dataclass
class HeaderDecl:
    """``header name { fields }``"""

    name: str
    fields: List[FieldDecl]
    line: int = 0

    @property
    def width_bits(self) -> int:
        return sum(f.width_bits for f in self.fields)

    @property
    def width_bytes(self) -> int:
        return self.width_bits // 8


@dataclass
class StructMember:
    """``type_name member_name;`` inside a struct."""

    type_name: str
    name: str
    line: int = 0


@dataclass
class StructDecl:
    """``struct name { members }`` — usually the headers bundle."""

    name: str
    members: List[StructMember]
    line: int = 0


@dataclass
class ConstDecl:
    """``const bit<W> NAME = value;``"""

    name: str
    width_bits: int
    value: int
    line: int = 0


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class FieldRef:
    """``hdr.ipv4.dstAddr`` or ``standard_metadata.egress_spec`` or a
    bare action-parameter name."""

    parts: Tuple[str, ...]
    line: int = 0

    @property
    def dotted(self) -> str:
        return ".".join(self.parts)

    def __hash__(self) -> int:
        return hash(self.parts)


@dataclass
class Const:
    value: int
    line: int = 0


@dataclass
class BinOp:
    """``left op right`` with op in {+, -, ==, !=, <, >, <=, >=}."""

    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


Expr = Union[FieldRef, Const, BinOp]


# ---------------------------------------------------------------------------
# Parser section
# ---------------------------------------------------------------------------

@dataclass
class ExtractStmt:
    """``packet.extract(hdr.x);``"""

    header_ref: FieldRef
    line: int = 0


@dataclass
class SelectCase:
    value: Optional[int]   #: None = default
    next_state: str
    line: int = 0


@dataclass
class Transition:
    """``transition next;`` or ``transition select(expr) { cases }``.

    The Menshen hardware parser is branch-free per module; selects are
    accepted syntactically and resolved statically (see ir.py).
    """

    next_state: Optional[str] = None
    select_expr: Optional[Expr] = None
    cases: List[SelectCase] = field(default_factory=list)
    line: int = 0


@dataclass
class ParserState:
    name: str
    extracts: List[ExtractStmt]
    transition: Transition
    line: int = 0


@dataclass
class ParserDecl:
    name: str
    params: List["Param"]
    states: List[ParserState]
    line: int = 0


# ---------------------------------------------------------------------------
# Control section
# ---------------------------------------------------------------------------

@dataclass
class Param:
    direction: str      #: "", "in", "out", "inout"
    type_name: str
    name: str
    line: int = 0


@dataclass
class RegisterDecl:
    """``register<bit<W>>(size) name;``"""

    name: str
    width_bits: int
    size: int
    line: int = 0


@dataclass
class AssignStmt:
    """``target = expr;``"""

    target: FieldRef
    expr: Expr
    line: int = 0


@dataclass
class PrimitiveCall:
    """``mark_to_drop();``, ``reg.read(dst, addr);`` etc."""

    target: FieldRef          #: e.g. ("mark_to_drop",) or ("reg", "read")
    args: List[Expr]
    line: int = 0


ActionStmt = Union[AssignStmt, PrimitiveCall]


@dataclass
class ActionDecl:
    name: str
    params: List[Param]
    body: List[ActionStmt]
    line: int = 0


@dataclass
class KeyElement:
    field: FieldRef
    match_kind: str           #: "exact" (the prototype's only kind)
    line: int = 0


@dataclass
class TableDecl:
    name: str
    keys: List[KeyElement]
    action_names: List[str]
    size: int
    default_action: Optional[str] = None
    line: int = 0


@dataclass
class TableApply:
    table_name: str
    line: int = 0


@dataclass
class IfStmt:
    condition: BinOp
    then_body: List["ApplyStmt"]
    else_body: List["ApplyStmt"] = field(default_factory=list)
    line: int = 0


ApplyStmt = Union[TableApply, IfStmt]


@dataclass
class ControlDecl:
    name: str
    params: List[Param]
    registers: List[RegisterDecl]
    actions: List[ActionDecl]
    tables: List[TableDecl]
    apply_body: List[ApplyStmt]
    line: int = 0


# ---------------------------------------------------------------------------
# Program
# ---------------------------------------------------------------------------

@dataclass
class Program:
    headers: Dict[str, HeaderDecl]
    structs: Dict[str, StructDecl]
    consts: Dict[str, ConstDecl]
    parser: Optional[ParserDecl]
    control: Optional[ControlDecl]
    source_name: str = "<module>"
