"""Recursive-descent parser for the P4-16 subset.

The accepted grammar covers what the eight evaluated modules and the
system-level module need: header/struct/const declarations, a parser
with extract/transition(select) states, and a control with registers,
actions, exact-match tables, and an apply block with table applies and
if/else on simple comparisons.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from .ast_nodes import (
    ActionDecl,
    ActionStmt,
    ApplyStmt,
    AssignStmt,
    BinOp,
    Const,
    ConstDecl,
    ControlDecl,
    Expr,
    ExtractStmt,
    FieldDecl,
    FieldRef,
    HeaderDecl,
    IfStmt,
    KeyElement,
    Param,
    ParserDecl,
    ParserState,
    PrimitiveCall,
    Program,
    RegisterDecl,
    SelectCase,
    StructDecl,
    StructMember,
    TableApply,
    TableDecl,
    Transition,
)
from .lexer import Token, TokenKind, parse_number, tokenize

_RELOPS = {"==", "!=", "<", ">", "<=", ">="}
_ADDOPS = {"+", "-"}


class Parser:
    """One-token-lookahead recursive descent over the token stream."""

    def __init__(self, tokens: List[Token], source_name: str = "<module>"):
        self.tokens = tokens
        self.pos = 0
        self.source_name = source_name

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _error(self, message: str) -> ParseError:
        tok = self.current
        shown = tok.value or "<eof>"
        return ParseError(f"{message}, found {shown!r}", tok.line, tok.column)

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def check(self, value: str) -> bool:
        return self.current.value == value and self.current.kind in (
            TokenKind.PUNCT, TokenKind.KEYWORD)

    def accept(self, value: str) -> bool:
        if self.check(value):
            self.advance()
            return True
        return False

    def expect(self, value: str) -> Token:
        if not self.check(value):
            raise self._error(f"expected {value!r}")
        return self.advance()

    def expect_name(self) -> Token:
        """An identifier (keywords allowed as member names after dots)."""
        if self.current.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            return self.advance()
        raise self._error("expected identifier")

    def expect_ident(self) -> Token:
        if self.current.kind == TokenKind.IDENT:
            return self.advance()
        raise self._error("expected identifier")

    def expect_number(self) -> int:
        if self.current.kind != TokenKind.NUMBER:
            raise self._error("expected number")
        return parse_number(self.advance())

    # -- program ------------------------------------------------------------------

    def parse_program(self) -> Program:
        headers = {}
        structs = {}
        consts = {}
        parser_decl: Optional[ParserDecl] = None
        control_decl: Optional[ControlDecl] = None

        while self.current.kind != TokenKind.EOF:
            if self.check("header"):
                decl = self.parse_header()
                if decl.name in headers:
                    raise ParseError(f"duplicate header {decl.name!r}",
                                     decl.line)
                headers[decl.name] = decl
            elif self.check("struct"):
                decl = self.parse_struct()
                if decl.name in structs:
                    raise ParseError(f"duplicate struct {decl.name!r}",
                                     decl.line)
                structs[decl.name] = decl
            elif self.check("const"):
                decl = self.parse_const()
                if decl.name in consts:
                    raise ParseError(f"duplicate const {decl.name!r}",
                                     decl.line)
                consts[decl.name] = decl
            elif self.check("parser"):
                if parser_decl is not None:
                    raise self._error("multiple parser declarations")
                parser_decl = self.parse_parser()
            elif self.check("control"):
                if control_decl is not None:
                    raise self._error("multiple control declarations")
                control_decl = self.parse_control()
            else:
                raise self._error(
                    "expected header/struct/const/parser/control")

        return Program(headers=headers, structs=structs, consts=consts,
                       parser=parser_decl, control=control_decl,
                       source_name=self.source_name)

    # -- declarations ----------------------------------------------------------

    def parse_bit_width(self) -> int:
        self.expect("bit")
        self.expect("<")
        width = self.expect_number()
        self.expect(">")
        if width <= 0 or width > 64:
            raise self._error(f"unsupported bit width {width}")
        return width

    def parse_header(self) -> HeaderDecl:
        line = self.expect("header").line
        name = self.expect_ident().value
        self.expect("{")
        fields = []
        while not self.accept("}"):
            fline = self.current.line
            width = self.parse_bit_width()
            fname = self.expect_ident().value
            self.expect(";")
            fields.append(FieldDecl(fname, width, fline))
        return HeaderDecl(name, fields, line)

    def parse_struct(self) -> StructDecl:
        line = self.expect("struct").line
        name = self.expect_ident().value
        self.expect("{")
        members = []
        while not self.accept("}"):
            mline = self.current.line
            type_name = self.expect_ident().value
            member_name = self.expect_ident().value
            self.expect(";")
            members.append(StructMember(type_name, member_name, mline))
        return StructDecl(name, members, line)

    def parse_const(self) -> ConstDecl:
        line = self.expect("const").line
        width = self.parse_bit_width()
        name = self.expect_ident().value
        self.expect("=")
        value = self.expect_number()
        self.expect(";")
        return ConstDecl(name, width, value, line)

    def parse_params(self) -> List[Param]:
        self.expect("(")
        params: List[Param] = []
        if self.accept(")"):
            return params
        while True:
            pline = self.current.line
            direction = ""
            if self.current.value in ("in", "out", "inout"):
                direction = self.advance().value
            if self.check("bit"):
                width = self.parse_bit_width()
                type_name = f"bit<{width}>"
            else:
                type_name = self.expect_name().value
            pname = self.expect_ident().value
            params.append(Param(direction, type_name, pname, pline))
            if self.accept(")"):
                return params
            self.expect(",")

    # -- parser section ------------------------------------------------------------

    def parse_parser(self) -> ParserDecl:
        line = self.expect("parser").line
        name = self.expect_ident().value
        params = self.parse_params()
        self.expect("{")
        states = []
        while not self.accept("}"):
            states.append(self.parse_state())
        return ParserDecl(name, params, states, line)

    def parse_state(self) -> ParserState:
        line = self.expect("state").line
        name = self.expect_name().value
        self.expect("{")
        extracts = []
        transition = None
        while not self.accept("}"):
            if self.check("transition"):
                transition = self.parse_transition()
            else:
                extracts.append(self.parse_extract())
        if transition is None:
            raise ParseError(f"state {name!r} has no transition", line)
        return ParserState(name, extracts, transition, line)

    def parse_extract(self) -> ExtractStmt:
        line = self.current.line
        ref = self.parse_field_ref()
        if len(ref.parts) < 2 or ref.parts[-1] != "extract":
            raise ParseError("expected packet.extract(...)", line)
        self.expect("(")
        header_ref = self.parse_field_ref()
        self.expect(")")
        self.expect(";")
        return ExtractStmt(header_ref, line)

    def parse_transition(self) -> Transition:
        line = self.expect("transition").line
        if self.accept("select"):
            self.expect("(")
            expr = self.parse_expr()
            self.expect(")")
            self.expect("{")
            cases = []
            while not self.accept("}"):
                cline = self.current.line
                if self.accept("default"):
                    value = None
                else:
                    value = self.expect_number()
                self.expect(":")
                next_state = self.expect_name().value
                self.expect(";")
                cases.append(SelectCase(value, next_state, cline))
            return Transition(select_expr=expr, cases=cases, line=line)
        next_state = self.expect_name().value
        self.expect(";")
        return Transition(next_state=next_state, line=line)

    # -- control section -------------------------------------------------------------

    def parse_control(self) -> ControlDecl:
        line = self.expect("control").line
        name = self.expect_ident().value
        params = self.parse_params()
        self.expect("{")
        registers: List[RegisterDecl] = []
        actions: List[ActionDecl] = []
        tables: List[TableDecl] = []
        apply_body: Optional[List[ApplyStmt]] = None
        while not self.accept("}"):
            if self.check("register"):
                registers.append(self.parse_register())
            elif self.check("action"):
                actions.append(self.parse_action())
            elif self.check("table"):
                tables.append(self.parse_table())
            elif self.check("apply"):
                if apply_body is not None:
                    raise self._error("multiple apply blocks")
                self.advance()
                apply_body = self.parse_apply_block()
            else:
                raise self._error(
                    "expected register/action/table/apply in control")
        if apply_body is None:
            raise ParseError(f"control {name!r} has no apply block", line)
        return ControlDecl(name, params, registers, actions, tables,
                           apply_body, line)

    def parse_register(self) -> RegisterDecl:
        line = self.expect("register").line
        self.expect("<")
        width = self.parse_bit_width()
        self.expect(">")
        self.expect("(")
        size = self.expect_number()
        self.expect(")")
        name = self.expect_ident().value
        self.expect(";")
        return RegisterDecl(name, width, size, line)

    def parse_action(self) -> ActionDecl:
        line = self.expect("action").line
        name = self.expect_ident().value
        params = self.parse_params()
        self.expect("{")
        body: List[ActionStmt] = []
        while not self.accept("}"):
            body.append(self.parse_action_stmt())
        return ActionDecl(name, params, body, line)

    def parse_action_stmt(self) -> ActionStmt:
        line = self.current.line
        ref = self.parse_field_ref()
        if self.accept("("):
            args: List[Expr] = []
            if not self.accept(")"):
                while True:
                    args.append(self.parse_expr())
                    if self.accept(")"):
                        break
                    self.expect(",")
            self.expect(";")
            return PrimitiveCall(ref, args, line)
        self.expect("=")
        expr = self.parse_expr()
        self.expect(";")
        return AssignStmt(ref, expr, line)

    def parse_table(self) -> TableDecl:
        line = self.expect("table").line
        name = self.expect_ident().value
        self.expect("{")
        keys: List[KeyElement] = []
        action_names: List[str] = []
        size = 0
        default_action: Optional[str] = None
        while not self.accept("}"):
            if self.accept("key"):
                self.expect("=")
                self.expect("{")
                while not self.accept("}"):
                    kline = self.current.line
                    ref = self.parse_field_ref()
                    self.expect(":")
                    if self.check("exact") or self.check("ternary"):
                        kind = self.advance().value
                    else:
                        raise self._error("expected match kind exact/ternary")
                    self.expect(";")
                    keys.append(KeyElement(ref, kind, kline))
            elif self.accept("actions"):
                self.expect("=")
                self.expect("{")
                while not self.accept("}"):
                    action_names.append(self.expect_ident().value)
                    self.expect(";")
            elif self.accept("size"):
                self.expect("=")
                size = self.expect_number()
                self.expect(";")
            elif self.accept("default_action"):
                self.expect("=")
                default_action = self.expect_ident().value
                if self.accept("("):
                    self.expect(")")
                self.expect(";")
            else:
                raise self._error(
                    "expected key/actions/size/default_action in table")
        return TableDecl(name, keys, action_names, size, default_action, line)

    def parse_apply_block(self) -> List[ApplyStmt]:
        self.expect("{")
        body: List[ApplyStmt] = []
        while not self.accept("}"):
            body.append(self.parse_apply_stmt())
        return body

    def parse_apply_stmt(self) -> ApplyStmt:
        line = self.current.line
        if self.accept("if"):
            self.expect("(")
            condition = self.parse_condition()
            self.expect(")")
            then_body = self.parse_apply_block()
            else_body: List[ApplyStmt] = []
            if self.accept("else"):
                else_body = self.parse_apply_block()
            return IfStmt(condition, then_body, else_body, line)
        ref = self.parse_field_ref()
        if len(ref.parts) != 2 or ref.parts[1] != "apply":
            raise ParseError("expected table.apply() or if", line)
        self.expect("(")
        self.expect(")")
        self.expect(";")
        return TableApply(ref.parts[0], line)

    # -- expressions --------------------------------------------------------------

    def parse_field_ref(self) -> FieldRef:
        line = self.current.line
        parts = [self.expect_name().value]
        while self.accept("."):
            parts.append(self.expect_name().value)
        return FieldRef(tuple(parts), line)

    def parse_primary(self) -> Expr:
        line = self.current.line
        if self.current.kind == TokenKind.NUMBER:
            return Const(self.expect_number(), line)
        if self.accept("true"):
            return Const(1, line)
        if self.accept("false"):
            return Const(0, line)
        return self.parse_field_ref()

    def parse_expr(self) -> Expr:
        """``primary (('+'|'-') primary)*`` — left-associative."""
        line = self.current.line
        expr = self.parse_primary()
        while self.current.value in _ADDOPS and \
                self.current.kind == TokenKind.PUNCT:
            op = self.advance().value
            right = self.parse_primary()
            expr = BinOp(op, expr, right, line)
        return expr

    def parse_condition(self) -> BinOp:
        line = self.current.line
        left = self.parse_expr()
        if self.current.value not in _RELOPS:
            raise self._error("expected comparison operator")
        op = self.advance().value
        right = self.parse_expr()
        return BinOp(op, left, right, line)


def parse_source(source: str, source_name: str = "<module>") -> Program:
    """Tokenize and parse P4 source into a :class:`Program`."""
    return Parser(tokenize(source), source_name).parse_program()
