"""Name resolution, offset computation, and width checking.

Builds the typed environment (:class:`Env`) later passes work from:

* header instances (``hdr.ipv4``) resolved through the headers struct,
* the parser linearized into an extraction order (the Menshen hardware
  parser is branch-free per module; ``select`` transitions are accepted
  but must resolve to a single static path),
* absolute byte offsets for every extracted header and field,
* registers, actions, and tables indexed by name, with their references
  validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import TypeCheckError
from .ast_nodes import (
    ActionDecl,
    BinOp,
    Const,
    ControlDecl,
    Expr,
    FieldRef,
    HeaderDecl,
    Program,
    RegisterDecl,
    TableDecl,
)

#: standard_metadata fields: name -> (width_bits, writable)
STANDARD_METADATA_FIELDS: Dict[str, Tuple[int, bool]] = {
    "egress_spec": (16, True),
    "mcast_grp": (16, True),
    "ingress_port": (16, False),
    "packet_length": (16, False),
    "enq_timestamp": (32, False),
    "deq_timedelta": (32, False),
    "link_utilization": (32, False),
    "queue_length": (32, False),
}

#: Parameter names conventionally bound to the headers struct and the
#: standard metadata in control/parser signatures.
METADATA_PARAM_TYPE = "standard_metadata_t"


@dataclass(frozen=True)
class FieldInfo:
    """A resolved header field with absolute packet placement."""

    dotted: str          #: e.g. "hdr.ipv4.dstAddr"
    instance: str        #: e.g. "hdr.ipv4"
    name: str            #: e.g. "dstAddr"
    bit_offset: int      #: absolute offset from packet byte 0, in bits
    width_bits: int

    @property
    def byte_aligned(self) -> bool:
        return self.bit_offset % 8 == 0

    @property
    def byte_offset(self) -> int:
        return self.bit_offset // 8

    @property
    def width_bytes(self) -> int:
        return (self.width_bits + 7) // 8

    @property
    def container_mappable(self) -> bool:
        """Whether the target can carry this field in a PHV container."""
        return self.byte_aligned and self.width_bits in (16, 32, 48)


@dataclass
class Env:
    """Typed environment of one module."""

    program: Program
    headers_param: str                      #: e.g. "hdr"
    extract_order: List[str] = field(default_factory=list)
    header_offsets: Dict[str, int] = field(default_factory=dict)  # bytes
    fields: Dict[str, FieldInfo] = field(default_factory=dict)
    registers: Dict[str, RegisterDecl] = field(default_factory=dict)
    actions: Dict[str, ActionDecl] = field(default_factory=dict)
    tables: Dict[str, TableDecl] = field(default_factory=dict)
    consts: Dict[str, int] = field(default_factory=dict)

    def resolve_field(self, ref: FieldRef) -> FieldInfo:
        info = self.fields.get(ref.dotted)
        if info is None:
            raise TypeCheckError(f"unknown field {ref.dotted!r}", ref.line)
        return info

    def is_metadata_ref(self, ref: FieldRef) -> bool:
        return len(ref.parts) == 2 and ref.parts[0] == "standard_metadata"

    def metadata_field(self, ref: FieldRef) -> Tuple[str, int, bool]:
        """Return (name, width, writable) of a standard_metadata field."""
        name = ref.parts[1]
        if name not in STANDARD_METADATA_FIELDS:
            raise TypeCheckError(
                f"unknown standard_metadata field {name!r}", ref.line)
        width, writable = STANDARD_METADATA_FIELDS[name]
        return name, width, writable


def _linearize_parser(program: Program, env: Env) -> List[str]:
    """Resolve the parser's states into a single static extract path.

    Returns the ordered list of extracted header instance names. A
    ``select`` is allowed only when all its non-default cases agree on
    one next state (we follow it and treat the select as an assertion),
    or when it only has a default case.
    """
    parser = program.parser
    if parser is None:
        raise TypeCheckError("module has no parser declaration")
    states = {s.name: s for s in parser.states}
    if "start" not in states:
        raise TypeCheckError("parser has no 'start' state", parser.line)

    order: List[str] = []
    visited: Set[str] = set()
    current = "start"
    while current not in ("accept", "reject"):
        if current in visited:
            raise TypeCheckError(f"parser state loop through {current!r}",
                                 parser.line)
        visited.add(current)
        state = states.get(current)
        if state is None:
            raise TypeCheckError(f"undefined parser state {current!r}",
                                 parser.line)
        for extract in state.extracts:
            ref = extract.header_ref
            if ref.parts[0] != env.headers_param:
                raise TypeCheckError(
                    f"extract target {ref.dotted!r} is not a member of the "
                    f"headers struct {env.headers_param!r}", extract.line)
            order.append(ref.dotted)
        tr = state.transition
        if tr.next_state is not None:
            current = tr.next_state
            continue
        nexts = {c.next_state for c in tr.cases if c.value is not None}
        if len(nexts) == 1:
            current = next(iter(nexts))
        elif not nexts and tr.cases:
            current = tr.cases[-1].next_state
        else:
            raise TypeCheckError(
                "branching parser selects are not supported by the Menshen "
                "hardware parser; all cases must lead to one state",
                tr.line)
    return order


def _index_fields(program: Program, env: Env) -> None:
    """Compute absolute bit offsets for every field of extracted headers."""
    # Find the headers struct type to map instance -> header type.
    instance_types: Dict[str, str] = {}
    for struct in program.structs.values():
        for member in struct.members:
            if member.type_name in program.headers:
                instance_types[f"{env.headers_param}.{member.name}"] = \
                    member.type_name

    offset_bytes = 0
    for instance in env.extract_order:
        type_name = instance_types.get(instance)
        if type_name is None:
            raise TypeCheckError(
                f"extracted instance {instance!r} is not declared in the "
                f"headers struct")
        header = program.headers[type_name]
        if header.width_bits % 8:
            raise TypeCheckError(
                f"header {type_name!r} is {header.width_bits} bits; headers "
                f"must be whole bytes", header.line)
        env.header_offsets[instance] = offset_bytes
        bit_cursor = offset_bytes * 8
        for fdecl in header.fields:
            dotted = f"{instance}.{fdecl.name}"
            env.fields[dotted] = FieldInfo(
                dotted=dotted, instance=instance, name=fdecl.name,
                bit_offset=bit_cursor, width_bits=fdecl.width_bits)
            bit_cursor += fdecl.width_bits
        offset_bytes += header.width_bytes


def _check_expr(env: Env, expr: Expr, params: Dict[str, int]) -> None:
    """Validate an expression's references (fields, params, consts)."""
    if isinstance(expr, Const):
        return
    if isinstance(expr, FieldRef):
        if len(expr.parts) == 1:
            name = expr.parts[0]
            if name in params or name in env.consts:
                return
            raise TypeCheckError(f"unknown name {name!r}", expr.line)
        if env.is_metadata_ref(expr):
            env.metadata_field(expr)
            return
        env.resolve_field(expr)
        return
    if isinstance(expr, BinOp):
        _check_expr(env, expr.left, params)
        _check_expr(env, expr.right, params)
        return
    raise TypeCheckError(f"unsupported expression {expr!r}")


def _check_control(program: Program, env: Env) -> None:
    control = program.control
    if control is None:
        raise TypeCheckError("module has no control declaration")

    for reg in control.registers:
        if reg.name in env.registers:
            raise TypeCheckError(f"duplicate register {reg.name!r}", reg.line)
        if reg.size <= 0:
            raise TypeCheckError(f"register {reg.name!r} has size {reg.size}",
                                 reg.line)
        env.registers[reg.name] = reg

    for action in control.actions:
        if action.name in env.actions:
            raise TypeCheckError(f"duplicate action {action.name!r}",
                                 action.line)
        params = {p.name: _param_width(p) for p in action.params}
        from .ast_nodes import AssignStmt, PrimitiveCall
        for stmt in action.body:
            if isinstance(stmt, AssignStmt):
                if env.is_metadata_ref(stmt.target):
                    env.metadata_field(stmt.target)
                elif len(stmt.target.parts) == 1:
                    raise TypeCheckError(
                        f"cannot assign to parameter "
                        f"{stmt.target.dotted!r}", stmt.line)
                else:
                    env.resolve_field(stmt.target)
                _check_expr(env, stmt.expr, params)
            elif isinstance(stmt, PrimitiveCall):
                _check_primitive(env, stmt, params)
        env.actions[action.name] = action

    for table in control.tables:
        if table.name in env.tables:
            raise TypeCheckError(f"duplicate table {table.name!r}",
                                 table.line)
        if not table.keys:
            raise TypeCheckError(f"table {table.name!r} has no key",
                                 table.line)
        for key in table.keys:
            if env.is_metadata_ref(key.field):
                raise TypeCheckError(
                    "standard_metadata fields cannot be match keys on this "
                    "target (keys are built from PHV data containers)",
                    key.line)
            info = env.resolve_field(key.field)
            if not info.container_mappable:
                raise TypeCheckError(
                    f"key field {info.dotted!r} ({info.width_bits} bits at "
                    f"bit {info.bit_offset}) cannot map to a 2/4/6-byte "
                    f"container", key.line)
        for name in table.action_names:
            if name not in env.actions:
                raise TypeCheckError(
                    f"table {table.name!r} references unknown action "
                    f"{name!r}", table.line)
        if table.default_action and table.default_action not in env.actions:
            raise TypeCheckError(
                f"table {table.name!r} default_action "
                f"{table.default_action!r} is unknown", table.line)
        if table.size <= 0:
            raise TypeCheckError(
                f"table {table.name!r} must declare a positive size",
                table.line)
        env.tables[table.name] = table

    _check_apply(env, control.apply_body)


def _check_apply(env: Env, body) -> None:
    from .ast_nodes import IfStmt, TableApply
    for stmt in body:
        if isinstance(stmt, TableApply):
            if stmt.table_name not in env.tables:
                raise TypeCheckError(
                    f"apply of unknown table {stmt.table_name!r}", stmt.line)
        elif isinstance(stmt, IfStmt):
            _check_expr(env, stmt.condition, {})
            _check_apply(env, stmt.then_body)
            _check_apply(env, stmt.else_body)


_KNOWN_PRIMITIVES = {"mark_to_drop", "read", "write", "loadd",
                     "recirculate", "resubmit", "clone"}


def _check_primitive(env: Env, call, params: Dict[str, int]) -> None:
    name = call.target.parts[-1]
    if name not in _KNOWN_PRIMITIVES:
        raise TypeCheckError(f"unknown primitive {name!r}", call.line)
    if name == "mark_to_drop":
        return  # optional standard_metadata arg is ignored
    if name in ("recirculate", "resubmit", "clone"):
        # Recognized so the static checker can reject them with a clear
        # message (§3.4 forbids recirculation).
        return
    # register ops: reg.read(dst, addr) / reg.write(addr, src) / reg.loadd(dst, addr)
    if len(call.target.parts) != 2:
        raise TypeCheckError(
            f"register primitive needs the form reg.{name}(...)", call.line)
    reg_name = call.target.parts[0]
    if reg_name not in env.registers:
        raise TypeCheckError(f"unknown register {reg_name!r}", call.line)
    if len(call.args) != 2:
        raise TypeCheckError(
            f"{reg_name}.{name}(...) needs exactly 2 arguments", call.line)
    for arg in call.args:
        _check_expr(env, arg, params)


def _param_width(param) -> int:
    type_name = param.type_name
    if type_name.startswith("bit<") and type_name.endswith(">"):
        return int(type_name[4:-1])
    raise TypeCheckError(
        f"action parameter {param.name!r} must have a bit<N> type",
        param.line)


def typecheck(program: Program) -> Env:
    """Run all checks; returns the typed environment."""
    # Identify the headers parameter name from the parser signature
    # (conventionally "hdr": the out-parameter with a struct type).
    headers_param = "hdr"
    if program.parser is not None:
        for p in program.parser.params:
            if p.type_name in program.structs:
                headers_param = p.name
                break

    env = Env(program=program, headers_param=headers_param)
    env.consts = {c.name: c.value for c in program.consts.values()}
    env.extract_order = _linearize_parser(program, env)
    if not env.extract_order:
        raise TypeCheckError("parser extracts no headers")
    _index_fields(program, env)
    _check_control(program, env)
    return env
