"""P4-16-subset compiler targeting the Menshen pipeline (§3.4, §4.2).

The paper's compiler reuses the open-source p4c frontend/midend and adds
a Menshen backend. This package is a self-contained equivalent:

* :mod:`~repro.compiler.lexer` / :mod:`~repro.compiler.parser` — tokenize
  and parse the supported P4-16 subset into an AST,
* :mod:`~repro.compiler.typecheck` — resolve names, compute header/field
  byte offsets, check widths,
* :mod:`~repro.compiler.ir` — the lowered module IR,
* :mod:`~repro.compiler.static_checker` — the §3.4 safety rules (no VID
  writes, no stats writes, no recirculation, loop-free routes),
* :mod:`~repro.compiler.allocator` — PHV container allocation and table →
  stage placement with dependency checking,
* :mod:`~repro.compiler.backend` — emission of parse actions, key
  extractor entries, masks, and VLIW action templates,
* :mod:`~repro.compiler.resource_checker` — usage vs. an operator
  resource allocation,
* :mod:`~repro.compiler.compile` — the `compile_module` driver.

The output, :class:`~repro.compiler.backend.CompiledModule`, is
position-independent: module ID, absolute stages, CAM rows, and stateful
bases are bound at load time by :mod:`repro.runtime.controller`.
"""

from .compile import compile_module, CompilerOptions
from .compose import compile_module_group
from .backend import CompiledModule, CompiledTable, CompiledAction
from .target import TargetDescription, DEFAULT_TARGET

__all__ = [
    "compile_module",
    "compile_module_group",
    "CompilerOptions",
    "CompiledModule",
    "CompiledTable",
    "CompiledAction",
    "TargetDescription",
    "DEFAULT_TARGET",
]
