"""Compiler driver: source text -> loadable CompiledModule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .allocator import allocate
from .backend import CompiledModule, emit
from .ir import lower
from .parser import parse_source
from .resource_checker import check_against_hardware
from .static_checker import check_module
from .target import DEFAULT_TARGET, TargetDescription
from .typecheck import typecheck


@dataclass
class CompilerOptions:
    """Knobs for a compilation run.

    ``target=None`` means "compile for the default whole-pipeline
    target"; the field is left as given (no ``__post_init__`` mutation),
    and consumers resolve it through :meth:`resolved_target`.
    """

    target: Optional[TargetDescription] = None
    run_static_checks: bool = True

    def resolved_target(self) -> TargetDescription:
        """The target to compile against (default when unset)."""
        return self.target if self.target is not None else DEFAULT_TARGET


def compile_module(source: str, name: str = "<module>",
                   options: Optional[CompilerOptions] = None
                   ) -> CompiledModule:
    """Compile one P4-16 module for the Menshen pipeline.

    Pipeline: lex/parse -> typecheck -> static checks (§3.4) -> lower to
    IR -> allocate PHV containers and stages -> emit configurations ->
    re-validate against hardware dimensions.
    """
    if options is None:
        options = CompilerOptions()
    target = options.resolved_target()
    program = parse_source(source, name)
    env = typecheck(program)
    if options.run_static_checks:
        check_module(env)
    ir = lower(env)
    ir.name = name
    alloc = allocate(ir, target)
    module = emit(ir, target, alloc)
    check_against_hardware(module, target.params)
    return module
