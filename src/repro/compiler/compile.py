"""Compiler driver: source text -> loadable CompiledModule."""

from __future__ import annotations

from dataclasses import dataclass

from .allocator import allocate
from .backend import CompiledModule, emit
from .ir import lower
from .parser import parse_source
from .resource_checker import check_against_hardware
from .static_checker import check_module
from .target import DEFAULT_TARGET, TargetDescription
from .typecheck import typecheck


@dataclass
class CompilerOptions:
    """Knobs for a compilation run."""

    target: TargetDescription = None
    run_static_checks: bool = True

    def __post_init__(self) -> None:
        if self.target is None:
            self.target = DEFAULT_TARGET


def compile_module(source: str, name: str = "<module>",
                   options: CompilerOptions = None) -> CompiledModule:
    """Compile one P4-16 module for the Menshen pipeline.

    Pipeline: lex/parse -> typecheck -> static checks (§3.4) -> lower to
    IR -> allocate PHV containers and stages -> emit configurations ->
    re-validate against hardware dimensions.
    """
    if options is None:
        options = CompilerOptions()
    program = parse_source(source, name)
    env = typecheck(program)
    if options.run_static_checks:
        check_module(env)
    ir = lower(env)
    ir.name = name
    alloc = allocate(ir, options.target)
    module = emit(ir, options.target, alloc)
    check_against_hardware(module, options.target.params)
    return module
