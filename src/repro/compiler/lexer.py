"""Tokenizer for the P4-16 subset.

Recognizes identifiers, decimal and hexadecimal integers (including P4
width-prefixed literals like ``8w42`` and ``0x1F``), punctuation,
operators, and keywords; skips ``//`` and ``/* */`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List

from ..errors import LexerError


class TokenKind(Enum):
    IDENT = auto()
    NUMBER = auto()
    KEYWORD = auto()
    PUNCT = auto()
    EOF = auto()


KEYWORDS = {
    "header", "struct", "parser", "control", "state", "transition",
    "select", "default", "table", "key", "actions", "action", "size",
    "apply", "if", "else", "exact", "ternary", "register", "bit",
    "in", "out", "inout", "const", "typedef", "accept", "reject",
    "default_action", "true", "false", "packet_in", "return", "exit",
}

#: Multi-character punctuation, longest first.
PUNCT2 = ["==", "!=", ">=", "<=", "&&", "||"]
PUNCT1 = list("{}()[]<>;:,.=+-*/!&|")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r}, L{self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize P4 source; raises :class:`LexerError` on bad input."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]

        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue

        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexerError("unterminated block comment", line, col)
            advance(end + 2 - i)
            continue

        start_line, start_col = line, col

        # numbers: hex, width-prefixed (8w255, 4w0x3), decimal
        if ch.isdigit():
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            tokens.append(Token(TokenKind.NUMBER, text, start_line, start_col))
            advance(j - i)
            continue

        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            advance(j - i)
            continue

        # punctuation
        matched = False
        for p in PUNCT2:
            if source.startswith(p, i):
                tokens.append(Token(TokenKind.PUNCT, p, start_line, start_col))
                advance(len(p))
                matched = True
                break
        if matched:
            continue
        if ch in PUNCT1:
            tokens.append(Token(TokenKind.PUNCT, ch, start_line, start_col))
            advance(1)
            continue

        raise LexerError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens


def parse_number(token: Token) -> int:
    """Evaluate a NUMBER token: ``42``, ``0x2A``, ``8w42``, ``16w0xF1F2``."""
    text = token.value
    if "w" in text:
        # width-prefixed literal: the width part is validated elsewhere
        _width, _, rest = text.partition("w")
        text = rest
    try:
        if text.lower().startswith("0x"):
            return int(text, 16)
        if text.lower().startswith("0b"):
            return int(text, 2)
        return int(text, 10)
    except ValueError as exc:
        raise LexerError(f"bad number literal {token.value!r}",
                         token.line, token.column) from exc
