"""Multi-module tenants (§3.4's compiler extension).

    "The Menshen compiler can be extended to support the same packet
    flowing through different P4 modules belonging to one tenant. The
    compiler can take multiple P4 modules as input, assign them the same
    module ID, and allocate them to non-overlapping pipeline stages."

:func:`compile_module_group` does exactly that: each member module is
compiled against a slice of the tenant's stage budget, PHV containers
are shared across members for fields at the same packet offset (it is
the same packet!) and otherwise kept disjoint, and the artifacts merge
into one :class:`~repro.compiler.backend.CompiledModule` the controller
can load under a single VID.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import AllocationError, CompilerError
from .allocator import allocate
from .backend import CompiledModule, emit
from .compile import CompilerOptions
from .ir import lower
from .parser import parse_source
from .static_checker import check_module
from .resource_checker import check_against_hardware
from .target import TargetDescription
from .typecheck import typecheck


def compile_module_group(sources: List[Tuple[str, str]],
                         options: Optional[CompilerOptions] = None
                         ) -> CompiledModule:
    """Compile several P4 modules as one tenant.

    ``sources`` is a list of ``(name, p4_source)`` pairs in apply order:
    the packet flows through the first member's tables, then the
    second's, and so on. Returns a merged artifact; table and register
    names must be unique across members.
    """
    if options is None:
        options = CompilerOptions()
    if not sources:
        raise CompilerError("module group needs at least one module")
    base_target = options.resolved_target()

    # Frontend every member first so stage budgeting knows table counts.
    irs = []
    for name, source in sources:
        program = parse_source(source, name)
        env = typecheck(program)
        if options.run_static_checks:
            check_module(env)
        ir = lower(env)
        ir.name = name
        irs.append(ir)

    total_tables = sum(len(ir.tables) for ir in irs)
    if total_tables > len(base_target.stage_map):
        raise AllocationError(
            f"tenant group needs {total_tables} stages but the target "
            f"offers {len(base_target.stage_map)}")

    compiled: List[CompiledModule] = []
    shared_fields = dict(base_target.shared_fields)
    reserved = list(base_target.reserved_containers)
    stage_cursor = 0
    for ir in irs:
        n = len(ir.tables)
        member_target = TargetDescription(
            params=base_target.params,
            stage_map=base_target.stage_map[stage_cursor:stage_cursor + n],
            shared_fields=dict(shared_fields),
            reserved_containers=list(reserved),
            zero_container=base_target.zero_container,
            shared_parse_fields=list(base_target.shared_parse_fields),
            shared_deparse_fields=list(base_target.shared_deparse_fields),
        )
        stage_cursor += n
        alloc = allocate(ir, member_target)
        module = emit(ir, member_target, alloc)
        compiled.append(module)
        # Later members reuse containers for same-offset fields and must
        # avoid this member's other containers.
        for dotted, ref in module.field_alloc.items():
            info = ir.env.fields.get(dotted)
            if info is not None:
                shared_fields.setdefault(
                    (info.byte_offset, info.width_bits), ref)
            if ref not in reserved:
                reserved.append(ref)

    merged = _merge(compiled, base_target)
    check_against_hardware(merged, base_target.params)
    return merged


def _merge(members: List[CompiledModule],
           target: TargetDescription) -> CompiledModule:
    parse_set = {}
    deparse_set = {}
    tables = {}
    order: List[str] = []
    registers = {}
    field_alloc: Dict[str, object] = {}
    dependencies = {}

    for member in members:
        for action in member.parse_actions:
            parse_set[(action.bytes_from_head,
                       action.container.encode5())] = action
        for action in member.deparse_actions:
            deparse_set[(action.bytes_from_head,
                         action.container.encode5())] = action
        for name, table in member.tables.items():
            if name in tables:
                raise CompilerError(
                    f"table name {name!r} appears in more than one group "
                    f"member; rename one of them")
            tables[name] = table
            order.append(name)
        for name, spec in member.registers.items():
            if name in registers:
                raise CompilerError(
                    f"register name {name!r} appears in more than one "
                    f"group member; rename one of them")
            registers[name] = spec
        field_alloc.update(member.field_alloc)
        dependencies.update(member.dependencies)

    parse_actions = [parse_set[k] for k in sorted(parse_set)]
    deparse_actions = [deparse_set[k] for k in sorted(deparse_set)]
    limit = target.params.parse_actions_per_entry
    if len(parse_actions) > limit:
        raise AllocationError(
            f"tenant group needs {len(parse_actions)} parse actions; the "
            f"parser supports {limit}")
    if len(deparse_actions) > limit:
        raise AllocationError(
            f"tenant group needs {len(deparse_actions)} deparse actions; "
            f"the deparser supports {limit}")

    return CompiledModule(
        name="+".join(m.name for m in members),
        target=target,
        parse_actions=parse_actions,
        deparse_actions=deparse_actions,
        field_alloc=field_alloc,
        tables=tables,
        table_order=order,
        registers=registers,
        dependencies=dependencies,
    )
