"""Menshen's static safety checks (§3.4).

Three properties are analyzed on the typed AST before lowering:

1. **No stats writes** — modules must not modify the hardware statistics
   the system-level module exposes (read-only ``standard_metadata``
   fields).
2. **No VID writes** — a module may not modify its VLAN ID: the written
   byte range of every assigned field must not overlap the TCI bytes
   [14, 16). (Changing the VID could redirect packets into another
   module's identity on a downstream device.)
3. **No recirculation** — ``recirculate()``/``resubmit()``/``clone()``
   are rejected; recirculating steals shared ingress bandwidth from
   other modules.

Loop freedom of routing tables is a control-plane check
(:func:`check_loop_free`), run by the runtime against the actual route
entries a module installs.
"""

from __future__ import annotations

from typing import Dict, Hashable

from ..errors import StaticCheckError
from .ast_nodes import AssignStmt, PrimitiveCall
from .typecheck import Env

#: Byte range of the VLAN TCI (the VID lives in its low 12 bits).
VID_BYTE_RANGE = (14, 16)

_FORBIDDEN_PRIMITIVES = {"recirculate", "resubmit", "clone"}


def check_module(env: Env) -> None:
    """Run all static checks; raises :class:`StaticCheckError`."""
    control = env.program.control
    for action in control.actions:
        for stmt in action.body:
            if isinstance(stmt, PrimitiveCall):
                name = stmt.target.parts[-1]
                if name in _FORBIDDEN_PRIMITIVES:
                    raise StaticCheckError(
                        f"action {action.name!r} calls {name}(): modules "
                        f"must not recirculate packets (they share ingress "
                        f"bandwidth with other modules)", stmt.line)
                continue
            if not isinstance(stmt, AssignStmt):
                continue
            target = stmt.target
            if env.is_metadata_ref(target):
                name, _width, writable = env.metadata_field(target)
                if not writable:
                    raise StaticCheckError(
                        f"action {action.name!r} writes "
                        f"standard_metadata.{name}: hardware statistics "
                        f"are read-only for modules", stmt.line)
                continue
            if len(target.parts) == 1:
                continue  # parameter writes are rejected by typecheck
            info = env.resolve_field(target)
            lo, hi = info.byte_offset, info.byte_offset + info.width_bytes
            if lo < VID_BYTE_RANGE[1] and VID_BYTE_RANGE[0] < hi:
                raise StaticCheckError(
                    f"action {action.name!r} writes {info.dotted!r} "
                    f"(bytes [{lo}, {hi})), overlapping the VLAN TCI "
                    f"bytes {VID_BYTE_RANGE}: modules may not modify "
                    f"their VID", stmt.line)


def check_loop_free(next_hop: Dict[Hashable, Hashable]) -> None:
    """Control-plane routing-loop check: ``next_hop`` maps node -> node.

    Raises :class:`StaticCheckError` if following the mapping from any
    node revisits a node (a forwarding loop). Terminal nodes simply do
    not appear as keys.
    """
    # Shim over the analysis pass (imported lazily: repro.analysis
    # depends on the compiler package, not the other way around).
    from ..analysis.passes import find_loop
    walk = find_loop(next_hop)
    if walk is not None:
        path = " -> ".join(str(node) for node in walk)
        raise StaticCheckError(f"routing loop detected: {path}")
