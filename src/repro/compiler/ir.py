"""Module IR: the typed AST lowered to ALU-shaped operations.

The IR is the compiler's midend product: tables in apply order with
their stage predicates, and actions lowered to per-op records that map
1:1 onto the hardware's ALU opcodes. Immediates are *symbolic*
(:class:`IRImmediate`): a constant part plus optional action-parameter
and register-base terms, resolved when entries are installed at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..errors import CompilerError, TypeCheckError
from .ast_nodes import (
    AssignStmt,
    BinOp,
    Const,
    ControlDecl,
    FieldRef,
    IfStmt,
    PrimitiveCall,
    Program,
    RegisterDecl,
    TableApply,
)
from .typecheck import Env, FieldInfo


@dataclass(frozen=True)
class IRImmediate:
    """Symbolic immediate: ``const + param + register base``."""

    const: int = 0
    param: Optional[str] = None      #: action parameter name
    register: Optional[str] = None   #: register whose base is added

    def resolve(self, param_values: Dict[str, int],
                register_bases: Dict[str, int]) -> int:
        value = self.const
        if self.param is not None:
            if self.param not in param_values:
                raise CompilerError(
                    f"missing value for action parameter {self.param!r}")
            value += param_values[self.param]
        if self.register is not None:
            if self.register not in register_bases:
                raise CompilerError(
                    f"unresolved register base {self.register!r}")
            value += register_bases[self.register]
        return value

    @property
    def is_static(self) -> bool:
        return self.param is None and self.register is None


#: IR op kinds map 1:1 to AluOp names (lowercase).
IR_OP_KINDS = {"add", "sub", "addi", "subi", "set", "load", "store",
               "loadd", "port", "mcast", "discard"}

#: Ops whose destination is the metadata ALU (slot 24).
METADATA_OPS = {"port", "mcast", "discard"}


@dataclass
class IROp:
    """One lowered ALU operation."""

    kind: str
    dest: Optional[str] = None    #: dotted field owning the output slot
    src1: Optional[str] = None    #: dotted field (operand c1)
    src2: Optional[str] = None    #: dotted field (operand c2)
    imm: IRImmediate = field(default_factory=IRImmediate)
    register: Optional[str] = None  #: register name for stateful ops
    line: int = 0

    def __post_init__(self) -> None:
        if self.kind not in IR_OP_KINDS:
            raise CompilerError(f"unknown IR op kind {self.kind!r}",
                                self.line)


@dataclass
class IRAction:
    name: str
    params: List[Tuple[str, int]]     #: (name, width_bits)
    ops: List[IROp]
    line: int = 0


#: A condition operand: a resolved field or a small constant.
CondOperand = Union[FieldInfo, int]


@dataclass
class IRCondition:
    """``left OP right`` evaluated by a stage's key-extractor comparator."""

    op: str
    left: CondOperand
    right: CondOperand
    line: int = 0


@dataclass
class IRTable:
    name: str
    key_fields: List[FieldInfo]
    action_names: List[str]
    size: int
    match_kind: str = "exact"
    #: Predicate guarding this table (from an enclosing if) and the flag
    #: value its entries must match (True for then-branch, False for else).
    predicate: Optional[IRCondition] = None
    predicate_value: bool = True
    #: P4 default_action (parameterless), executed on miss when the
    #: pipeline enables default actions.
    default_action: Optional[str] = None
    line: int = 0


@dataclass
class ModuleIR:
    """Everything later passes need, in hardware-shaped form."""

    name: str
    env: Env
    tables: List[IRTable]                 #: in apply (stage) order
    actions: Dict[str, IRAction]
    registers: Dict[str, RegisterDecl]
    fields_used: Set[str] = field(default_factory=set)
    fields_written: Set[str] = field(default_factory=set)

    def field_info(self, dotted: str) -> FieldInfo:
        return self.env.fields[dotted]


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

def _expr_parts(expr) -> Tuple[Optional[FieldRef], Optional[FieldRef],
                               Optional[str], int]:
    """Destructure an action RHS into (field1, field2, op, const).

    Supported shapes: ``const``, ``field``, ``param``, ``field +- field``,
    ``field +- const``, ``field +- param``.
    """
    if isinstance(expr, Const):
        return None, None, None, expr.value
    if isinstance(expr, FieldRef):
        return expr, None, None, 0
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        if not isinstance(expr.left, FieldRef):
            raise CompilerError(
                "arithmetic left operand must be a field or parameter",
                expr.line)
        if isinstance(expr.right, Const):
            return expr.left, None, expr.op, expr.right.value
        if isinstance(expr.right, FieldRef):
            return expr.left, expr.right, expr.op, 0
    raise CompilerError(f"unsupported action expression", getattr(expr, "line", 0))


class _ActionLowering:
    """Lowers one action's statements to IR ops."""

    def __init__(self, env: Env, params: Dict[str, int]):
        self.env = env
        self.params = params
        self.ops: List[IROp] = []

    def _ref_kind(self, ref: FieldRef) -> str:
        if len(ref.parts) == 1:
            if ref.parts[0] in self.params:
                return "param"
            if ref.parts[0] in self.env.consts:
                return "const"
            raise CompilerError(f"unknown name {ref.dotted!r}", ref.line)
        if self.env.is_metadata_ref(ref):
            return "metadata"
        return "field"

    def lower_assign(self, stmt: AssignStmt) -> None:
        target_kind = self._ref_kind(stmt.target)
        f1, f2, op, const = _expr_parts(stmt.expr)

        # Normalize param/const FieldRefs on the RHS.
        imm = IRImmediate(const=const)
        src1: Optional[str] = None
        src2: Optional[str] = None
        if f1 is not None:
            kind1 = self._ref_kind(f1)
            if kind1 == "param":
                if f2 is not None or op == "-":
                    raise CompilerError(
                        "parameters may only appear alone or as '+ param'",
                        stmt.line)
                imm = IRImmediate(param=f1.parts[0])
                f1 = None
            elif kind1 == "const":
                imm = IRImmediate(const=self.env.consts[f1.parts[0]])
                f1 = None
            elif kind1 == "metadata":
                raise CompilerError(
                    "standard_metadata fields are not readable by ALUs on "
                    "this target", stmt.line)
            else:
                src1 = f1.dotted
        if f2 is not None:
            kind2 = self._ref_kind(f2)
            if kind2 == "param":
                if op == "-":
                    raise CompilerError("cannot subtract a parameter",
                                        stmt.line)
                imm = IRImmediate(param=f2.parts[0])
                f2 = None
            elif kind2 == "const":
                value = self.env.consts[f2.parts[0]]
                imm = IRImmediate(const=value)
                f2 = None
            elif kind2 == "metadata":
                raise CompilerError(
                    "standard_metadata fields are not readable by ALUs on "
                    "this target", stmt.line)
            else:
                src2 = f2.dotted

        if target_kind == "metadata":
            name, _width, writable = self.env.metadata_field(stmt.target)
            if not writable:
                raise CompilerError(
                    f"standard_metadata.{name} is read-only", stmt.line)
            kind = {"egress_spec": "port", "mcast_grp": "mcast"}[name]
            self.ops.append(IROp(kind=kind, src1=src1, imm=imm,
                                 line=stmt.line))
            return
        if target_kind != "field":
            raise CompilerError(
                f"cannot assign to {stmt.target.dotted!r}", stmt.line)

        dest = stmt.target.dotted
        self.env.resolve_field(stmt.target)

        if src1 is None and src2 is None:
            # pure immediate / parameter
            self.ops.append(IROp(kind="set", dest=dest, imm=imm,
                                 line=stmt.line))
        elif src2 is None:
            if op == "-":
                if not imm.is_static:
                    raise CompilerError("cannot subtract a parameter",
                                        stmt.line)
                self.ops.append(IROp(kind="subi", dest=dest, src1=src1,
                                     imm=imm, line=stmt.line))
            else:
                # covers plain copy (imm 0), field+const, field+param
                self.ops.append(IROp(kind="addi", dest=dest, src1=src1,
                                     imm=imm, line=stmt.line))
        else:
            kind = "add" if op == "+" else "sub"
            self.ops.append(IROp(kind=kind, dest=dest, src1=src1, src2=src2,
                                 line=stmt.line))

    def lower_primitive(self, call: PrimitiveCall) -> None:
        name = call.target.parts[-1]
        if name == "mark_to_drop":
            self.ops.append(IROp(kind="discard", line=call.line))
            return
        if name in ("recirculate", "resubmit", "clone"):
            # kept in IR so the static checker rejects with the §3.4 rule
            raise CompilerError(
                f"{name}() is forbidden: modules must not recirculate "
                f"packets (static check, §3.4)", call.line)

        reg_name = call.target.parts[0]
        reg = self.env.registers[reg_name]

        def addr_parts(expr) -> Tuple[Optional[str], IRImmediate]:
            if isinstance(expr, Const):
                if not 0 <= expr.value < reg.size:
                    raise CompilerError(
                        f"address {expr.value} out of register "
                        f"{reg_name!r} size {reg.size}", call.line)
                return None, IRImmediate(const=expr.value, register=reg_name)
            if isinstance(expr, FieldRef):
                kind = self._ref_kind(expr)
                if kind == "param":
                    return None, IRImmediate(param=expr.parts[0],
                                             register=reg_name)
                if kind == "field":
                    return expr.dotted, IRImmediate(register=reg_name)
            raise CompilerError(
                "register address must be a constant, parameter, or field",
                call.line)

        if name == "read":
            dst, addr = call.args[0], call.args[1]
            if not isinstance(dst, FieldRef) or self._ref_kind(dst) != "field":
                raise CompilerError("read destination must be a header field",
                                    call.line)
            src1, imm = addr_parts(addr)
            self.ops.append(IROp(kind="load", dest=dst.dotted, src1=src1,
                                 imm=imm, register=reg_name, line=call.line))
        elif name == "write":
            addr, src = call.args[0], call.args[1]
            if not isinstance(src, FieldRef) or self._ref_kind(src) != "field":
                raise CompilerError("write source must be a header field",
                                    call.line)
            src1, imm = addr_parts(addr)
            # STORE stores the ALU's own container, so the op is placed on
            # the source field's slot: dest carries the placement.
            self.ops.append(IROp(kind="store", dest=src.dotted, src1=src1,
                                 imm=imm, register=reg_name, line=call.line))
        elif name == "loadd":
            dst, addr = call.args[0], call.args[1]
            if not isinstance(dst, FieldRef) or self._ref_kind(dst) != "field":
                raise CompilerError(
                    "loadd destination must be a header field", call.line)
            src1, imm = addr_parts(addr)
            self.ops.append(IROp(kind="loadd", dest=dst.dotted, src1=src1,
                                 imm=imm, register=reg_name, line=call.line))
        else:  # pragma: no cover — typecheck already filtered
            raise CompilerError(f"unknown primitive {name!r}", call.line)


def _lower_condition(env: Env, cond: BinOp) -> IRCondition:
    def operand(expr) -> CondOperand:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, FieldRef):
            if len(expr.parts) == 1 and expr.parts[0] in env.consts:
                return env.consts[expr.parts[0]]
            if env.is_metadata_ref(expr):
                raise CompilerError(
                    "standard_metadata fields cannot appear in conditions "
                    "on this target", expr.line)
            return env.resolve_field(expr)
        raise CompilerError("conditions must compare fields/constants",
                            getattr(expr, "line", 0))

    return IRCondition(op=cond.op, left=operand(cond.left),
                       right=operand(cond.right), line=cond.line)


def _lower_apply(env: Env, body, tables_out: List[IRTable],
                 predicate: Optional[IRCondition],
                 predicate_value: bool, depth: int) -> None:
    for stmt in body:
        if isinstance(stmt, TableApply):
            decl = env.tables[stmt.table_name]
            key_fields = [env.resolve_field(k.field) for k in decl.keys]
            match_kind = decl.keys[0].match_kind
            tables_out.append(IRTable(
                name=decl.name, key_fields=key_fields,
                action_names=list(decl.action_names), size=decl.size,
                match_kind=match_kind, predicate=predicate,
                predicate_value=predicate_value,
                default_action=decl.default_action, line=decl.line))
        elif isinstance(stmt, IfStmt):
            if depth >= 1:
                raise CompilerError(
                    "nested if is not supported: each stage evaluates one "
                    "predicate", stmt.line)
            cond = _lower_condition(env, stmt.condition)
            _lower_apply(env, stmt.then_body, tables_out, cond, True,
                         depth + 1)
            _lower_apply(env, stmt.else_body, tables_out, cond, False,
                         depth + 1)


def lower(env: Env) -> ModuleIR:
    """Lower a typed module to IR."""
    program = env.program
    control: ControlDecl = program.control

    actions: Dict[str, IRAction] = {}
    for decl in control.actions:
        params = {}
        for p in decl.params:
            width = int(p.type_name[4:-1])
            if width > 16:
                raise CompilerError(
                    f"action parameter {p.name!r} is {width} bits; VLIW "
                    f"immediates are 16 bits", p.line)
            params[p.name] = width
        lowering = _ActionLowering(env, params)
        for stmt in decl.body:
            if isinstance(stmt, AssignStmt):
                lowering.lower_assign(stmt)
            else:
                lowering.lower_primitive(stmt)
        actions[decl.name] = IRAction(
            name=decl.name, params=list(params.items()), ops=lowering.ops,
            line=decl.line)

    tables: List[IRTable] = []
    _lower_apply(env, control.apply_body, tables, None, True, 0)

    ir = ModuleIR(name=program.source_name, env=env, tables=tables,
                  actions=actions,
                  registers=dict(env.registers))

    # Collect field usage for PHV allocation and deparsing.
    for table in tables:
        for info in table.key_fields:
            ir.fields_used.add(info.dotted)
        if table.predicate is not None:
            for side in (table.predicate.left, table.predicate.right):
                if isinstance(side, FieldInfo):
                    ir.fields_used.add(side.dotted)
    for action in actions.values():
        for op in action.ops:
            for dotted in (op.dest, op.src1, op.src2):
                if dotted is not None:
                    ir.fields_used.add(dotted)
            if op.dest is not None and op.kind not in ("store",):
                if op.kind not in METADATA_OPS:
                    ir.fields_written.add(op.dest)
    return ir
