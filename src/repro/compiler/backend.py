"""Backend: emit hardware configurations from the allocated IR.

Produces a :class:`CompiledModule`, which contains everything the
runtime needs to install the module:

* the parse/deparse programs (lists of
  :class:`~repro.rmt.parser.ParseAction`, shared system fields merged in),
* per-table stage bindings, key-extractor entries, key masks, and
  key-building helpers,
* per-action VLIW *templates* whose immediates stay symbolic until entry
  insertion (action parameters) or module load (register bases),
* register specifications (which stage's stateful memory, how many words).

The compiled artifact is bound to absolute stages (all user modules
share the user stages — isolation comes from module IDs, not placement)
but NOT to a module ID, CAM rows, or stateful bases; those are assigned
at load time by the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import AllocationError, CompilerError
from ..rmt.action import AluAction, AluOp, VliwInstruction
from ..rmt.key_extractor import CmpOp, KeyExtractEntry
from ..rmt.parser import ParseAction
from ..rmt.phv import ContainerRef, ContainerType
from .allocator import Allocation, allocate
from .ir import IRImmediate, METADATA_OPS, ModuleIR
from .target import TargetDescription
from .typecheck import FieldInfo

#: LSB offset of each key slot within the 193-bit key (see encodings).
KEY_SLOT_OFFSETS = {
    "6b_1": 145, "6b_2": 97, "4b_1": 65, "4b_2": 33,
    "2b_1": 17, "2b_2": 1,
}
KEY_SLOT_WIDTHS = {
    "6b_1": 48, "6b_2": 48, "4b_1": 32, "4b_2": 32, "2b_1": 16, "2b_2": 16,
}
_SLOTS_BY_CLASS = {
    ContainerType.B6: ("6b_1", "6b_2"),
    ContainerType.B4: ("4b_1", "4b_2"),
    ContainerType.B2: ("2b_1", "2b_2"),
}
_CMP_FROM_STR = {
    "==": CmpOp.EQ, "!=": CmpOp.NE, ">": CmpOp.GT, "<": CmpOp.LT,
    ">=": CmpOp.GE, "<=": CmpOp.LE,
}
_OP_FROM_KIND = {
    "add": AluOp.ADD, "sub": AluOp.SUB, "addi": AluOp.ADDI,
    "subi": AluOp.SUBI, "set": AluOp.SET, "load": AluOp.LOAD,
    "store": AluOp.STORE, "loadd": AluOp.LOADD, "port": AluOp.PORT,
    "mcast": AluOp.MCAST, "discard": AluOp.DISCARD,
}


@dataclass(frozen=True)
class SlotTemplate:
    """One ALU slot of an action template."""

    slot: int
    opcode: AluOp
    c1: Optional[ContainerRef]
    c2: Optional[ContainerRef]
    imm: IRImmediate


@dataclass
class CompiledAction:
    """An action lowered to a VLIW template."""

    name: str
    params: List[Tuple[str, int]]       #: (name, width_bits)
    slots: List[SlotTemplate]
    registers: Set[str] = field(default_factory=set)

    def make_vliw(self, param_values: Optional[Dict[str, int]] = None,
                  register_bases: Optional[Dict[str, int]] = None
                  ) -> VliwInstruction:
        """Instantiate the template into a concrete VLIW instruction."""
        param_values = param_values or {}
        register_bases = register_bases or {}
        expected = {n for n, _ in self.params}
        missing = expected - set(param_values)
        if missing:
            raise CompilerError(
                f"action {self.name!r} needs parameter values for "
                f"{sorted(missing)}")
        for pname, width in self.params:
            value = param_values[pname]
            if not 0 <= value < (1 << width):
                raise CompilerError(
                    f"action {self.name!r} parameter {pname}={value} does "
                    f"not fit bit<{width}>")
        sparse = {}
        for tpl in self.slots:
            imm = tpl.imm.resolve(param_values, register_bases)
            if not 0 <= imm < (1 << 16):
                raise CompilerError(
                    f"action {self.name!r}: resolved immediate {imm} does "
                    f"not fit 16 bits")
            action = AluAction(
                opcode=tpl.opcode, c1=tpl.c1, c2=tpl.c2,
                immediate=imm if tpl.opcode.uses_immediate else 0)
            sparse[tpl.slot] = action
        return VliwInstruction.from_sparse(sparse)


@dataclass
class CompiledTable:
    """A table bound to a stage with its key plumbing."""

    name: str
    stage: int
    size: int
    match_kind: str
    #: (slot name, dotted field, container) per key field.
    key_layout: List[Tuple[str, str, ContainerRef]]
    key_entry: KeyExtractEntry
    key_mask: int
    #: None when unconditioned; True/False = flag value entries must carry.
    predicate_value: Optional[bool]
    actions: Dict[str, CompiledAction]
    #: Parameterless action executed on miss (P4 default_action), if any.
    default_action: Optional[str] = None

    def make_key(self, values: Dict[str, int]) -> int:
        """Build the 193-bit lookup key from per-field values.

        ``values`` maps dotted field names to integers; every key field
        must be present. The predicate flag bit is set per the table's
        branch (then=1, else=0).
        """
        expected = {dotted for _slot, dotted, _ref in self.key_layout}
        missing = expected - set(values)
        if missing:
            raise CompilerError(
                f"table {self.name!r} key needs values for {sorted(missing)}")
        extra = set(values) - expected
        if extra:
            raise CompilerError(
                f"table {self.name!r} got values for non-key fields "
                f"{sorted(extra)}")
        key = 0
        for slot, dotted, ref in self.key_layout:
            value = values[dotted]
            width = KEY_SLOT_WIDTHS[slot]
            if not 0 <= value < (1 << width):
                raise CompilerError(
                    f"key field {dotted}={value:#x} exceeds {width} bits")
            key |= value << KEY_SLOT_OFFSETS[slot]
        if self.predicate_value:
            key |= 1
        return key

    def make_entry_mask(self, field_masks: Optional[Dict[str, int]] = None
                        ) -> int:
        """Build a per-entry ternary mask (Appendix B).

        ``field_masks`` maps dotted key fields to bit masks; omitted
        fields match exactly (all-ones). The predicate flag bit always
        participates when the table has a predicate.
        """
        field_masks = field_masks or {}
        extra = set(field_masks) - {d for _s, d, _r in self.key_layout}
        if extra:
            raise CompilerError(
                f"table {self.name!r}: masks given for non-key fields "
                f"{sorted(extra)}")
        mask = 0
        for slot, dotted, _ref in self.key_layout:
            width = KEY_SLOT_WIDTHS[slot]
            field_mask = field_masks.get(dotted, (1 << width) - 1)
            if not 0 <= field_mask < (1 << width):
                raise CompilerError(
                    f"mask for {dotted} exceeds {width} bits")
            mask |= field_mask << KEY_SLOT_OFFSETS[slot]
        if self.predicate_value is not None:
            mask |= 1
        return mask


@dataclass(frozen=True)
class RegisterSpec:
    """A register bound to one stage's stateful memory."""

    name: str
    width_bits: int
    size: int
    stage: int


@dataclass
class CompiledModule:
    """The complete loadable artifact."""

    name: str
    target: TargetDescription
    parse_actions: List[ParseAction]
    deparse_actions: List[ParseAction]
    field_alloc: Dict[str, ContainerRef]
    tables: Dict[str, CompiledTable]
    table_order: List[str]
    registers: Dict[str, RegisterSpec]
    dependencies: Dict[str, Set[str]]

    # -- derived views -------------------------------------------------------

    def stages_used(self) -> List[int]:
        return sorted({t.stage for t in self.tables.values()})

    def tables_by_stage(self) -> Dict[int, CompiledTable]:
        return {t.stage: t for t in self.tables.values()}

    def match_entries_by_stage(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for t in self.tables.values():
            out[t.stage] = out.get(t.stage, 0) + t.size
        return out

    def stateful_words_by_stage(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for reg in self.registers.values():
            out[reg.stage] = out.get(reg.stage, 0) + reg.size
        return out

    def resource_usage(self) -> Dict[str, object]:
        """Summary consumed by the resource checker and policies."""
        containers: Dict[str, int] = {"B2": 0, "B4": 0, "B6": 0}
        shared_refs = set(
            (int(r.ctype), r.index)
            for r in self.target.shared_fields.values())
        for ref in sorted(set((int(r.ctype), r.index)
                              for r in self.field_alloc.values())):
            if ref in shared_refs:
                continue
            containers[ContainerType(ref[0]).name] += 1
        return {
            "parse_actions": len(self.parse_actions),
            "containers": containers,
            "num_tables": len(self.tables),
            "stages": self.stages_used(),
            "match_entries_by_stage": self.match_entries_by_stage(),
            "stateful_words_by_stage": self.stateful_words_by_stage(),
        }


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------

def _is_scratch(info: FieldInfo) -> bool:
    """Scratch headers (instance named ``scratch``) are PHV temporaries:
    their fields get containers but are never parsed from or deparsed to
    the wire — the §3.1 "temporary packet headers" space."""
    return info.instance.split(".")[-1] == "scratch"


def _emit_parse_programs(ir: ModuleIR, target: TargetDescription,
                         alloc: Allocation
                         ) -> Tuple[List[ParseAction], List[ParseAction]]:
    """Build the module's parse and deparse action lists."""
    parse_set: Dict[Tuple[int, int, int], ParseAction] = {}

    def add(offset: int, ref: ContainerRef, into: dict) -> None:
        key = (offset, int(ref.ctype), ref.index)
        into[key] = ParseAction(offset, ref)

    for offset, ref in target.shared_parse_fields:
        add(offset, ref, parse_set)
    for dotted in sorted(ir.fields_used):
        info = ir.field_info(dotted)
        if _is_scratch(info):
            continue
        add(info.byte_offset, alloc.container_of(dotted), parse_set)

    deparse_set: Dict[Tuple[int, int, int], ParseAction] = {}
    for offset, ref in target.shared_deparse_fields:
        add(offset, ref, deparse_set)
    for dotted in sorted(ir.fields_written):
        info = ir.field_info(dotted)
        if _is_scratch(info):
            continue
        add(info.byte_offset, alloc.container_of(dotted), deparse_set)

    parse_actions = [parse_set[k] for k in sorted(parse_set)]
    deparse_actions = [deparse_set[k] for k in sorted(deparse_set)]
    limit = target.params.parse_actions_per_entry
    if len(parse_actions) > limit:
        raise AllocationError(
            f"module needs {len(parse_actions)} parse actions (including "
            f"system-shared fields) but the parser supports {limit}")
    if len(deparse_actions) > limit:
        raise AllocationError(
            f"module needs {len(deparse_actions)} deparse actions but the "
            f"deparser supports {limit}")
    return parse_actions, deparse_actions


def _cmp_operand(side, alloc: Allocation):
    """Predicate operand -> KeyExtractEntry operand (container or imm)."""
    if isinstance(side, FieldInfo):
        return alloc.container_of(side.dotted)
    if not 0 <= side < 128:
        raise CompilerError(
            f"predicate immediate {side} does not fit the 7-bit comparator "
            f"operand")
    return side


def _emit_table(ir: ModuleIR, table, target: TargetDescription,
                alloc: Allocation,
                actions: Dict[str, CompiledAction]) -> CompiledTable:
    # Key slots: up to 2 fields per container class.
    used_slots: Dict[str, Tuple[str, ContainerRef]] = {}
    per_class_count = {ContainerType.B2: 0, ContainerType.B4: 0,
                       ContainerType.B6: 0}
    for info in table.key_fields:
        ref = alloc.container_of(info.dotted)
        cls = ref.ctype
        idx = per_class_count[cls]
        if idx >= 2:
            raise AllocationError(
                f"table {table.name!r}: more than 2 key fields of the "
                f"{cls.size_bytes}-byte class")
        slot = _SLOTS_BY_CLASS[cls][idx]
        used_slots[slot] = (info.dotted, ref)
        per_class_count[cls] += 1

    entry_kwargs: Dict[str, int] = {}
    mask = 0
    key_layout: List[Tuple[str, str, ContainerRef]] = []
    for slot, (dotted, ref) in used_slots.items():
        entry_kwargs[f"idx_{slot}"] = ref.index
        mask |= ((1 << KEY_SLOT_WIDTHS[slot]) - 1) << KEY_SLOT_OFFSETS[slot]
        key_layout.append((slot, dotted, ref))
    key_layout.sort(key=lambda item: -KEY_SLOT_OFFSETS[item[0]])

    predicate_value: Optional[bool] = None
    cmp_op = CmpOp.DISABLED
    cmp_a: object = 0
    cmp_b: object = 0
    if table.predicate is not None:
        predicate_value = table.predicate_value
        cmp_op = _CMP_FROM_STR[table.predicate.op]
        cmp_a = _cmp_operand(table.predicate.left, alloc)
        cmp_b = _cmp_operand(table.predicate.right, alloc)
        mask |= 1  # the flag bit participates in matching

    default_action = table.default_action
    if default_action is not None:
        if default_action not in table.action_names:
            raise CompilerError(
                f"table {table.name!r}: default_action "
                f"{default_action!r} is not in its actions list")
        if actions[default_action].params:
            raise CompilerError(
                f"table {table.name!r}: default_action "
                f"{default_action!r} must be parameterless (miss entries "
                f"carry no action data)")

    key_entry = KeyExtractEntry(cmp_op=cmp_op, cmp_a=cmp_a, cmp_b=cmp_b,
                                **entry_kwargs)
    return CompiledTable(
        name=table.name,
        stage=alloc.table_to_stage[table.name],
        size=table.size,
        match_kind=table.match_kind,
        key_layout=key_layout,
        key_entry=key_entry,
        key_mask=mask,
        predicate_value=predicate_value,
        actions={name: actions[name] for name in table.action_names},
        default_action=default_action,
    )


def _emit_action(ir: ModuleIR, name: str, target: TargetDescription,
                 alloc: Allocation) -> CompiledAction:
    ir_action = ir.actions[name]
    slots: Dict[int, SlotTemplate] = {}
    registers: Set[str] = set()
    for op in ir_action.ops:
        opcode = _OP_FROM_KIND[op.kind]
        if op.kind in METADATA_OPS:
            slot = 24
        else:
            slot = alloc.container_of(op.dest).flat_index
        if slot in slots:
            raise CompilerError(
                f"action {name!r}: two operations target ALU slot {slot} "
                f"(one ALU per container)", ir_action.line)
        c1: Optional[ContainerRef] = None
        c2: Optional[ContainerRef] = None
        if op.src1 is not None:
            c1 = alloc.container_of(op.src1)
        elif opcode.needs_c1:
            c1 = target.zero_container
        if op.src2 is not None:
            c2 = alloc.container_of(op.src2)
        if op.register is not None:
            registers.add(op.register)
        slots[slot] = SlotTemplate(slot=slot, opcode=opcode, c1=c1, c2=c2,
                                   imm=op.imm)
    return CompiledAction(name=name, params=list(ir_action.params),
                          slots=list(slots.values()), registers=registers)


def _emit_registers(ir: ModuleIR, compiled_tables: Dict[str, CompiledTable],
                    target: TargetDescription) -> Dict[str, RegisterSpec]:
    """Bind registers to the stage of the table using them."""
    placements: Dict[str, int] = {}
    for table in compiled_tables.values():
        for action in table.actions.values():
            for reg_name in action.registers:
                if reg_name in placements \
                        and placements[reg_name] != table.stage:
                    raise AllocationError(
                        f"register {reg_name!r} is used by tables in "
                        f"different stages; a register lives in exactly "
                        f"one stage's memory")
                placements[reg_name] = table.stage
    specs: Dict[str, RegisterSpec] = {}
    for reg_name, stage in placements.items():
        decl = ir.registers[reg_name]
        if decl.width_bits > target.params.stateful_word_bits:
            raise AllocationError(
                f"register {reg_name!r} is {decl.width_bits} bits wide; "
                f"stateful words are {target.params.stateful_word_bits} bits")
        specs[reg_name] = RegisterSpec(name=reg_name,
                                       width_bits=decl.width_bits,
                                       size=decl.size, stage=stage)
    # Registers declared but never used get no stateful allocation.
    return specs


def emit(ir: ModuleIR, target: TargetDescription,
         alloc: Optional[Allocation] = None) -> CompiledModule:
    """Run the backend; returns the loadable module."""
    if alloc is None:
        alloc = allocate(ir, target)
    parse_actions, deparse_actions = _emit_parse_programs(ir, target, alloc)

    actions: Dict[str, CompiledAction] = {}
    needed = {name for t in ir.tables for name in t.action_names}
    for name in sorted(needed):
        actions[name] = _emit_action(ir, name, target, alloc)

    tables: Dict[str, CompiledTable] = {}
    order: List[str] = []
    for table in ir.tables:
        tables[table.name] = _emit_table(ir, table, target, alloc, actions)
        order.append(table.name)

    registers = _emit_registers(ir, tables, target)

    return CompiledModule(
        name=ir.name,
        target=target,
        parse_actions=parse_actions,
        deparse_actions=deparse_actions,
        field_alloc=dict(alloc.field_to_container),
        tables=tables,
        table_order=order,
        registers=registers,
        dependencies=dict(alloc.dependencies),
    )
