"""Compilation target description.

A :class:`TargetDescription` tells the compiler which absolute pipeline
stages a module may occupy and which PHV containers are already spoken
for. Two standard targets exist:

* the **system target**: first and last stage (§3.3's sandwich), all
  containers free — the system module allocates first;
* the **user target**: the middle stages, with the system module's
  containers reserved so shared fields (e.g. ``hdr.ipv4.dstAddr``) land
  in the *same* container for every module.

One 2-byte container (B2[7] by default) is reserved as the **zero
container**: it is never parsed or written, so it always reads 0 — the
operand used for pure-immediate addressing (see ``repro.rmt.action``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rmt.params import DEFAULT_PARAMS, HardwareParams
from ..rmt.phv import ContainerRef, ContainerType

#: Shared-field identity: (absolute byte offset, width bits).
SharedFieldKey = Tuple[int, int]


@dataclass
class TargetDescription:
    """What the compiler may use for one module."""

    params: HardwareParams = DEFAULT_PARAMS
    #: Absolute stages available, in apply order (one table per stage).
    stage_map: List[int] = field(default_factory=lambda: [0, 1, 2, 3, 4])
    #: Containers pre-bound to shared fields: (offset, width) -> ref.
    shared_fields: Dict[SharedFieldKey, ContainerRef] = field(
        default_factory=dict)
    #: Containers a module may not allocate (beyond shared ones).
    reserved_containers: List[ContainerRef] = field(default_factory=list)
    #: The always-zero operand container.
    zero_container: ContainerRef = field(
        default_factory=lambda: ContainerRef(ContainerType.B2, 7))
    #: Parse actions of shared fields, merged into every module's parse
    #: program: (byte offset, container).
    shared_parse_fields: List[Tuple[int, ContainerRef]] = field(
        default_factory=list)
    #: Fields the system module *writes* (e.g. vIP -> pIP rewrites); every
    #: module's deparse program must write these back: (offset, container).
    shared_deparse_fields: List[Tuple[int, ContainerRef]] = field(
        default_factory=list)

    def unavailable_containers(self) -> List[ContainerRef]:
        """Containers the allocator must skip."""
        taken = list(self.shared_fields.values())
        taken.extend(self.reserved_containers)
        taken.append(self.zero_container)
        return taken

    def with_system_reservations(
            self, system_alloc: Dict[str, ContainerRef],
            system_fields: Dict[str, "object"],
            system_written: Optional[List[str]] = None,
    ) -> "TargetDescription":
        """Derive the user target from a compiled system module.

        ``system_alloc`` maps the system module's dotted field names to
        containers; ``system_fields`` maps them to their
        :class:`~repro.compiler.typecheck.FieldInfo` so shared identity
        (offset, width) can be computed; ``system_written`` lists the
        dotted fields the system module writes (their containers must be
        deparsed by every module).
        """
        shared: Dict[SharedFieldKey, ContainerRef] = {}
        parse_fields: List[Tuple[int, ContainerRef]] = []
        deparse_fields: List[Tuple[int, ContainerRef]] = []
        for dotted, ref in system_alloc.items():
            info = system_fields[dotted]
            shared[(info.byte_offset, info.width_bits)] = ref
            parse_fields.append((info.byte_offset, ref))
            if system_written and dotted in system_written:
                deparse_fields.append((info.byte_offset, ref))
        stages = list(range(1, self.params.num_stages - 1))
        return TargetDescription(
            params=self.params,
            stage_map=stages,
            shared_fields=shared,
            reserved_containers=list(self.reserved_containers),
            zero_container=self.zero_container,
            shared_parse_fields=sorted(parse_fields),
            shared_deparse_fields=sorted(deparse_fields),
        )


#: Whole-pipeline target (single module, no system module).
DEFAULT_TARGET = TargetDescription()


def system_target(params: HardwareParams = DEFAULT_PARAMS) -> TargetDescription:
    """Target for the system-level module: first and last stage."""
    return TargetDescription(params=params,
                             stage_map=[0, params.num_stages - 1])


def user_target(params: HardwareParams = DEFAULT_PARAMS) -> TargetDescription:
    """Target for user modules when no system module is loaded: all but
    first/last stage are NOT reserved — user gets every stage."""
    return TargetDescription(params=params,
                             stage_map=list(range(params.num_stages)))
