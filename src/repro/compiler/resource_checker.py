"""Resource usage checking (§3.4).

Menshen checks allocations *statically*: reassigning a resource from one
module to another would disrupt both, so a module whose requirements
cannot be met is simply not admitted (admission control). This module
computes a compiled module's resource demand and validates it against
either the raw hardware limits or an operator-granted allowance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ResourceError
from ..rmt.params import HardwareParams
from .backend import CompiledModule


@dataclass(frozen=True)
class ResourceRequest:
    """A module's demand, in the units policies reason about."""

    match_entries: int        #: total CAM rows across stages
    stateful_words: int       #: total stateful words across stages
    num_tables: int
    parse_actions: int
    containers: int           #: PHV containers beyond shared ones

    @classmethod
    def of(cls, module: CompiledModule) -> "ResourceRequest":
        usage = module.resource_usage()
        return cls(
            match_entries=sum(usage["match_entries_by_stage"].values()),
            stateful_words=sum(usage["stateful_words_by_stage"].values()),
            num_tables=usage["num_tables"],
            parse_actions=usage["parse_actions"],
            containers=sum(usage["containers"].values()),
        )


def _raise_quota_findings(module: CompiledModule, params: HardwareParams,
                          codes: frozenset,
                          granted_match_entries: Optional[int] = None,
                          granted_stateful_words: Optional[int] = None
                          ) -> None:
    """Run the quota pass and convert its findings back to the legacy
    exception. Imported lazily: :mod:`repro.analysis` depends on the
    compiler package, not the other way around."""
    from ..analysis.passes import ModuleContext, ResourceQuotaPass

    ctx = ModuleContext(
        name=module.name, params=params, module=module,
        granted_match_entries=granted_match_entries,
        granted_stateful_words=granted_stateful_words)
    for finding in ResourceQuotaPass().run(ctx):
        if finding.code in codes:
            where = (f"stage {finding.stage}: "
                     if finding.stage is not None else "")
            raise ResourceError(f"{where}{finding.message}")


#: Findings enforced as raw hardware limits (per-module dimensions).
_HARDWARE_CODES = frozenset({
    "quota-parse-actions", "quota-containers", "quota-match-entries",
    "quota-stateful-words", "quota-stage", "quota-key-width"})

#: Findings enforced as operator-granted allowances.
_GRANT_CODES = frozenset({"quota-grant-match", "quota-grant-stateful"})


def check_against_hardware(module: CompiledModule,
                           params: HardwareParams) -> None:
    """Validate the module fits the raw hardware dimensions.

    (The allocator already guarantees most of these; this re-validation
    is the backstop the paper's resource checker provides, and it also
    covers artifacts constructed without the allocator.) Since PR 6 this
    is a shim over :class:`repro.analysis.passes.ResourceQuotaPass`.
    """
    _raise_quota_findings(module, params, _HARDWARE_CODES)


def check_against_grant(module: CompiledModule,
                        granted_match_entries: Optional[int] = None,
                        granted_stateful_words: Optional[int] = None) -> None:
    """Validate the module stays within an operator-granted allowance.

    A shim over :class:`repro.analysis.passes.ResourceQuotaPass`, kept
    for callers that want the legacy :class:`ResourceError` contract.
    """
    _raise_quota_findings(
        module, module.target.params, _GRANT_CODES,
        granted_match_entries=granted_match_entries,
        granted_stateful_words=granted_stateful_words)
