"""Resource usage checking (§3.4).

Menshen checks allocations *statically*: reassigning a resource from one
module to another would disrupt both, so a module whose requirements
cannot be met is simply not admitted (admission control). This module
computes a compiled module's resource demand and validates it against
either the raw hardware limits or an operator-granted allowance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ResourceError
from ..rmt.params import HardwareParams
from .backend import CompiledModule


@dataclass(frozen=True)
class ResourceRequest:
    """A module's demand, in the units policies reason about."""

    match_entries: int        #: total CAM rows across stages
    stateful_words: int       #: total stateful words across stages
    num_tables: int
    parse_actions: int
    containers: int           #: PHV containers beyond shared ones

    @classmethod
    def of(cls, module: CompiledModule) -> "ResourceRequest":
        usage = module.resource_usage()
        return cls(
            match_entries=sum(usage["match_entries_by_stage"].values()),
            stateful_words=sum(usage["stateful_words_by_stage"].values()),
            num_tables=usage["num_tables"],
            parse_actions=usage["parse_actions"],
            containers=sum(usage["containers"].values()),
        )


def check_against_hardware(module: CompiledModule,
                           params: HardwareParams) -> None:
    """Validate the module fits the raw hardware dimensions.

    (The allocator already guarantees most of these; this re-validation
    is the backstop the paper's resource checker provides, and it also
    covers artifacts constructed without the allocator.)
    """
    usage = module.resource_usage()
    if usage["parse_actions"] > params.parse_actions_per_entry:
        raise ResourceError(
            f"{usage['parse_actions']} parse actions exceed the parser's "
            f"{params.parse_actions_per_entry}")
    for cls_name, count in usage["containers"].items():
        if count > params.containers_per_type:
            raise ResourceError(
                f"{count} {cls_name} containers exceed the PHV's "
                f"{params.containers_per_type}")
    for stage, entries in usage["match_entries_by_stage"].items():
        if entries > params.match_entries_per_stage:
            raise ResourceError(
                f"stage {stage}: {entries} match entries exceed the CAM "
                f"depth {params.match_entries_per_stage}")
    for stage, words in usage["stateful_words_by_stage"].items():
        if words > params.stateful_words_per_stage:
            raise ResourceError(
                f"stage {stage}: {words} stateful words exceed the "
                f"memory's {params.stateful_words_per_stage}")
    for stage in usage["stages"]:
        if not 0 <= stage < params.num_stages:
            raise ResourceError(f"stage {stage} does not exist")


def check_against_grant(module: CompiledModule,
                        granted_match_entries: Optional[int] = None,
                        granted_stateful_words: Optional[int] = None) -> None:
    """Validate the module stays within an operator-granted allowance."""
    request = ResourceRequest.of(module)
    if (granted_match_entries is not None
            and request.match_entries > granted_match_entries):
        raise ResourceError(
            f"module needs {request.match_entries} match entries but was "
            f"granted {granted_match_entries}")
    if (granted_stateful_words is not None
            and request.stateful_words > granted_stateful_words):
        raise ResourceError(
            f"module needs {request.stateful_words} stateful words but was "
            f"granted {granted_stateful_words}")
