"""The unified execution core: one engine-drain / departure-routing loop.

Three serving frontends used to re-implement the same inner loop —
push packets through a switch's :class:`~repro.engine.batch.BatchEngine`,
drain its egress in the scheduler's service order, and route each
departed packet (host-port exit, downed-link loss, or cross-link hop to
the neighbor's ingress):

* :func:`repro.fabric.forwarding.process_batch` — untimed waves;
* :class:`repro.sim.fabric_timeline.FabricTimelineExperiment` — exact
  event-driven service on :class:`repro.sim.kernel.Simulator`;
* :class:`repro.sim.timeline.ReconfigTimelineExperiment` — the timed
  single-switch Fig. 10 harness (a degenerate topology: every port is
  a host port).

:class:`ExecutionCore` centralizes that loop, classic discrete-event-
harness style: it is parameterized by **topology** (an ordered set of
members — a whole :class:`~repro.fabric.topology.Fabric`, or one
switch wrapped in :class:`SwitchMember`) and by **timing policy**
(``sim=None`` runs untimed waves in service order; passing a
:class:`~repro.sim.kernel.Simulator` runs exact event-driven service
from :meth:`~repro.engine.scheduler.EgressScheduler.next_departure_at`).
Frontends shrink to result shaping: they feed arrivals in and observe
outcomes through an :class:`ExecutionSink`.

A *member* is anything with the fabric-switch surface: ``name``,
``engine`` (``process_batch``), ``scheduler`` (drain / ``advance_to`` /
``next_departure_at``), ``links`` (port -> link; absent ports face
hosts), ``num_ports``. A *link* needs ``up``, ``name``, ``delay_s``,
``record(vid, nbytes)``, and ``other_end(name)``.

The equivalence contract is strict: the refactored frontends are
packet-for-packet identical to their pre-core behavior —
``tests/test_fabric_differential.py`` and
``tests/test_engine_differential.py`` pass unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import FabricError
from ..net.packet import Packet
from ..rmt.parser import extract_module_id


def vid_of(packet: Packet) -> int:
    """Owner VID from the 802.1Q tag (0 for odd untagged strays)."""
    try:
        return extract_module_id(packet)
    except Exception:
        return 0


class ExecutionSink:
    """Result-shaping hooks; the default implementation observes nothing.

    Frontends subclass this to build their result objects
    (:class:`~repro.fabric.forwarding.FabricResult`,
    :class:`~repro.sim.fabric_timeline.FabricTimelineResult`, the
    timeline's latency dict) out of the core's uniform event stream.
    ``time`` is the virtual departure/delivery instant under a timed
    policy and ``0.0`` under waves.
    """

    def on_result(self, member: str, result) -> None:
        """One pipeline result from a member's engine, in serving order."""

    def on_drop(self, vid: int) -> None:
        """One packet dropped inside a member's pipeline."""

    def on_deliver(self, member: str, port: int, vid: int,
                   packet: Packet, time: float) -> None:
        """One packet exited the topology on a host port."""

    def on_lost(self, member: str, port: int, vid: int, packet: Packet,
                link: str, time: float) -> None:
        """One packet blackholed by a downed link."""


class SwitchMember:
    """Adapter: one switch's serving path as a (degenerate) topology.

    Wraps a data path (anything with ``process_batch`` — a
    :class:`~repro.engine.batch.BatchEngine` or a bare pipeline) and
    its egress scheduler as a member with no fabric links, so the
    single-switch timeline runs on the same core as the fabric: every
    departure is a host-port delivery.
    """

    def __init__(self, name: str, engine, scheduler,
                 links: Optional[Dict[int, object]] = None):
        self.name = name
        self.engine = engine
        self.scheduler = scheduler
        self.links: Dict[int, object] = dict(links or {})

    @property
    def num_ports(self) -> int:
        return self.scheduler.num_ports

    def __repr__(self) -> str:
        return f"SwitchMember({self.name!r}, {self.num_ports} host ports)"


class ExecutionCore:
    """One run's engine-drain / departure-routing state machine.

    Construct per run (:meth:`for_fabric` / :meth:`for_switch`), then
    drive it with exactly one timing policy:

    * **untimed** — :meth:`run_waves` pushes arrival waves to exit in
      the schedulers' service order (``sim`` must be ``None``);
    * **event-driven** — construct with a
      :class:`~repro.sim.kernel.Simulator`, schedule
      :meth:`inject` calls (and let :meth:`route_departures` /
      :meth:`schedule_services` cascade), then ``sim.run()``;
    * **clock-driven single switch** — :meth:`advance_member` /
      :meth:`drain_member_backlog` advance one member's egress clock
      explicitly (the Fig. 10 timeline's policy).
    """

    def __init__(self, members: Sequence, sink: Optional[ExecutionSink] = None,
                 sim=None, member_lookup=None, remote_handler=None):
        self._members = list(members)
        self._by_name = {member.name: member for member in self._members}
        #: optional typed-error lookup (``Fabric.switch`` raises
        #: TopologyError for unknown names; the default raises
        #: FabricError).
        self._lookup = member_lookup
        self.sink = sink if sink is not None else ExecutionSink()
        self.sim = sim
        #: Shard hook for the parallel backend
        #: (:mod:`repro.exec.parallel`): a core holding only part of a
        #: fabric hands departures toward non-local members to
        #: ``remote_handler(member_name, packet, arrive_at)`` instead
        #: of scheduling a local inject.
        self._remote = remote_handler
        #: earliest pending service event per (member, port) — dedupe
        #: so the event queue stays linear in departures, not scans.
        self._pending: Dict[Tuple[str, int], float] = {}

    # -- construction -----------------------------------------------------------

    @classmethod
    def for_fabric(cls, fabric, sink: Optional[ExecutionSink] = None,
                   sim=None) -> "ExecutionCore":
        """A core over every member of a :class:`~repro.fabric.
        topology.Fabric` (or anything with ``switches()``/``switch()``),
        in the fabric's insertion order (the wave order)."""
        return cls(fabric.switches(), sink=sink, sim=sim,
                   member_lookup=fabric.switch)

    @classmethod
    def for_switch(cls, engine, scheduler, name: str = "switch",
                   sink: Optional[ExecutionSink] = None,
                   sim=None) -> "ExecutionCore":
        """A core over one switch's serving path (no fabric links)."""
        return cls([SwitchMember(name, engine, scheduler)],
                   sink=sink, sim=sim)

    # -- topology ---------------------------------------------------------------

    def members(self) -> List:
        return list(self._members)

    def member(self, name: str):
        if self._lookup is not None:
            return self._lookup(name)
        member = self._by_name.get(name)
        if member is None:
            raise FabricError(
                f"no member {name!r} in execution core "
                f"(have: {sorted(self._by_name)})")
        return member

    def total_backlog(self) -> int:
        """Packets still queued across every member's scheduler."""
        return sum(member.scheduler.total_queued()
                   for member in self._members)

    @staticmethod
    def member_up(member) -> bool:
        """Whether a member is serving (members without an ``up`` flag
        — e.g. :class:`SwitchMember` — always are)."""
        return bool(getattr(member, "up", True))

    # -- fault accounting ---------------------------------------------------------

    def report_fault_losses(self, member, dropped,
                            time: float = 0.0) -> int:
        """Report queue contents scrubbed by a fault through the sink's
        lost path.

        ``dropped`` is the ``(port, vid, packet)`` shape returned by
        :meth:`repro.fabric.topology.Fabric.crash_switch` /
        :meth:`~repro.engine.scheduler.EgressScheduler.drop_queued`.
        Each packet is charged to the link its port faces — the wire it
        was queued toward when the switch died — or to the pseudo-link
        ``switch:<name>`` for host-port queues, so crash losses land on
        the same typed :class:`~repro.exec.records.LostRecord` path as
        downed-link losses and every post-mortem reconciles against the
        same counters. Returns the number of packets reported.
        """
        for port, vid, packet in dropped:
            link = member.links.get(port)
            name = link.name if link is not None \
                else f"switch:{member.name}"
            self.sink.on_lost(member.name, port, vid, packet, name, time)
        return len(dropped)

    # -- departure routing (shared by every policy) ------------------------------

    def route(self, member, port: int, packet: Packet, vid: int,
              time: float = 0.0) -> Optional[Tuple[str, Packet, float]]:
        """Route one departed packet; the one decision every path shares.

        * no link on ``port`` → host exit: ``sink.on_deliver``, returns
          ``None``;
        * downed link → the packet is lost as on real hardware, but
          never silently: ``sink.on_lost`` (with the link name, so both
          serving paths report the same typed
          :class:`~repro.exec.records.LostRecord`), returns ``None``;
        * up link → per-tenant link bytes are recorded, the packet's
          ingress port is rewritten to the remote end, and
          ``(next member name, packet, arrival time)`` is returned for
          the caller's policy to enact (next wave, or a scheduled
          inject after the propagation delay).
        """
        link = member.links.get(port)
        if link is None:
            self.sink.on_deliver(member.name, port, vid, packet, time)
            return None
        if not link.up:
            self.sink.on_lost(member.name, port, vid, packet, link.name,
                              time)
            return None
        link.record(vid, len(packet))
        remote = link.other_end(member.name)
        packet.ingress_port = remote.port
        return (remote.switch, packet, time + link.delay_s)

    def _serve_batch(self, member, packets: Sequence[Packet]) -> List:
        """One member's engine pass, reported through the sink."""
        outcomes = member.engine.process_batch(packets)
        for outcome in outcomes:
            self.sink.on_result(member.name, outcome)
            if outcome.dropped:
                self.sink.on_drop(outcome.module_id)
        return outcomes

    # -- untimed policy: waves in service order ----------------------------------

    def run_waves(self, arrivals: Sequence[Tuple[str, Packet]],
                  max_hops: Optional[int] = None) -> int:
        """Drive ``(member name, packet)`` arrivals to exit; returns the
        number of forwarding waves the batch needed.

        ``max_hops`` bounds the wave count (default: number of members,
        the longest loop-free route); exceeding it raises
        :class:`~repro.errors.FabricError` instead of looping forever
        on a misconfigured forwarding cycle.
        """
        if max_hops is None:
            max_hops = max(1, len(self._members))
        waves = 0
        wave: List[Tuple[str, Packet]] = [(name, pkt)
                                          for name, pkt in arrivals]
        for _ in range(max_hops + 1):
            if not wave:
                break
            waves += 1
            # Group by member, preserving arrival order within each.
            by_member: Dict[str, List[Packet]] = {}
            for name, pkt in wave:
                self.member(name)  # typed error for unknown names
                by_member.setdefault(name, []).append(pkt)
            next_wave: List[Tuple[str, Packet]] = []
            # Wave order = member insertion order, deterministic.
            for member in self._members:
                pkts = by_member.get(member.name)
                if not pkts:
                    continue
                if not self.member_up(member):
                    # A crashed member serves nothing: arrivals die at
                    # its pseudo-link, never silently.
                    for pkt in pkts:
                        self.sink.on_lost(
                            member.name, pkt.ingress_port or 0,
                            vid_of(pkt), pkt,
                            f"switch:{member.name}", 0.0)
                    continue
                self._serve_batch(member, pkts)
                # Drain every port in weighted-fair service order.
                for port in range(member.num_ports):
                    for pkt in member.scheduler.drain(port):
                        target = self.route(member, port, pkt, vid_of(pkt))
                        if target is not None:
                            next_wave.append((target[0], target[1]))
            wave = next_wave
        else:
            raise FabricError(
                f"batch still in flight after {max_hops} hops — "
                f"forwarding loop? in-flight: "
                f"{[(name, vid_of(p)) for name, p in wave[:8]]}")
        return waves

    # -- event-driven policy: exact service on the simulation kernel -------------

    def schedule_services(self, member) -> None:
        """Schedule each port's next service event exactly, from
        :meth:`~repro.engine.scheduler.EgressScheduler.
        next_departure_at` — transmission finish times are the event
        times, never a polling tick."""
        scheduler = member.scheduler
        for port in range(member.num_ports):
            at = scheduler.next_departure_at(port)
            if at is None:
                continue
            key = (member.name, port)
            if key in self._pending and self._pending[key] <= at + 1e-15:
                continue
            self._pending[key] = at
            self.sim.schedule(max(0.0, at - self.sim.now),
                              lambda m=member, p=port, t=at:
                              self._service(m, p, t))

    def _service(self, member, port: int, t: float) -> None:
        if self._pending.get((member.name, port), None) == t:
            del self._pending[(member.name, port)]
        self.route_departures(member, member.scheduler.advance_to(t))
        self.schedule_services(member)

    def route_departures(self, member, departures) -> None:
        """Route :class:`~repro.engine.scheduler.Departure` records —
        host exits deliver, downed links lose, up links schedule the
        arrival at the neighbor after the propagation delay."""
        for dep in departures:
            target = self.route(member, dep.port, dep.packet,
                                dep.module_id, dep.time)
            if target is None:
                continue
            name, packet, arrive_at = target
            if self._remote is not None and name not in self._by_name:
                self._remote(name, packet, arrive_at)
                continue
            if self.sim is None:
                raise FabricError(
                    f"packet crossed a link toward {name!r} but this "
                    f"core has no simulator; timed multi-hop routing "
                    f"needs ExecutionCore(..., sim=Simulator())")
            self.sim.schedule(
                max(0.0, arrive_at - self.sim.now),
                lambda p=packet, n=name, t=arrive_at:
                self.inject(self.member(n), p, t))

    def inject(self, member, packet: Packet, t: float) -> None:
        """One packet arrives at a member at virtual time ``t``: serve
        transmissions that complete before the arrival, run the batched
        engine, then (re)schedule the member's service events.

        An arrival at a crashed member (the packet was in flight on the
        wire when the far end died) is lost at the member's
        ``switch:<name>`` pseudo-link — counted, never silently."""
        if not self.member_up(member):
            self.sink.on_lost(member.name, packet.ingress_port or 0,
                              vid_of(packet), packet,
                              f"switch:{member.name}", t)
            return
        self.route_departures(member, member.scheduler.advance_to(t))
        self._serve_batch(member, [packet])
        self.schedule_services(member)

    # -- clock-driven policy: explicit advance (single-switch timeline) ----------

    def advance_member(self, member, t: float) -> None:
        """Advance one member's egress clock to ``t``, routing every
        departure that completes by then."""
        self.route_departures(member, member.scheduler.advance_to(t))

    def drain_member_backlog(self, member, step_s: float) -> None:
        """Let a member's egress backlog finish transmitting.

        A fixed clock+``step_s`` step is not enough to guarantee
        progress (a transmission longer than one step — low line rate,
        big packet — completes past the horizon and the clock holds at
        its committed start), so each round advances at least to the
        earliest next departure; the loop cannot spin.
        """
        scheduler = member.scheduler
        while scheduler.total_queued():
            horizon = scheduler.clock + step_s
            nexts = [scheduler.next_departure_at(port)
                     for port in range(scheduler.num_ports)]
            nexts = [t for t in nexts if t is not None]
            if nexts:
                horizon = max(horizon, min(nexts))
            self.advance_member(member, horizon)
