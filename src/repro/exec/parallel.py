"""Sharded parallel execution backend: one worker process per switch.

A fabric is embarrassingly parallel across switches — the only
coupling is the packets crossing inter-switch links. This module
shards the fabric over ``multiprocessing`` workers (one per switch by
default; fewer workers own contiguous shards of the fabric's switch
order), each worker rebuilding its member switches **in-process from a
pickled switch spec** — per-worker :class:`~repro.engine.batch.
BatchEngine`, :class:`~repro.engine.scheduler.EgressScheduler`, and
:class:`~repro.core.stats.PipelineStats`, so flow caches and compiled
classifiers warm locally — and ships results home as typed per-switch
frames (counter *deltas* via the introspected algebra in
:mod:`repro.core.stats`, plus the sink's event records), which the
parent merges so ``FabricResult`` / ``FabricTimelineResult`` match the
serial oracle.

Two timing policies, mirroring :class:`~repro.exec.core.ExecutionCore`:

* **Untimed waves** (:func:`run_fabric_batch`) — the wave barrier *is*
  the synchronization: the parent partitions each wave's arrivals by
  owning worker, collects every worker's emissions tagged (global
  switch index, port, drain order), and re-sorts them into the serial
  forwarder's exact order before feeding the next wave.
* **Event-driven timeline** (:func:`run_fabric_timeline`) —
  conservative discrete-event synchronization in the
  Chandy-Misra-Bryant style, paced by parent-coordinated rounds. Each
  round a worker consumes one message per in-peer (cross-link packets
  plus the sender's **promise**: its processed-through horizon),
  services local events up to the safe bound — ``min`` over in-edges
  of (promise + that edge's lookahead, the minimum link propagation
  delay) — and sends its own packets + promise to every out-peer. An
  idle edge still carries its promise every round: the **null
  message** that keeps bounds advancing and the worker graph
  deadlock-free. The parent collects one status line per worker per
  round and stops the fleet on the first globally quiescent round
  (zero pending events and zero emitted packets everywhere — with the
  barrier, nothing can be in flight). Zero-delay cross-worker links
  are rejected (:class:`~repro.errors.ParallelExecError`): without
  positive lookahead the bound cannot advance.

Reconfiguration inside a parallel timeline cannot ride an opaque
callable (it would have to execute in another process), so the process
backend accepts **declarative lifecycle ops** (:class:`TenantUpdateOp`,
:class:`LinkStateOp`) that know how to apply themselves both serially
(``apply_serial``, the oracle path) and inside a worker shard
(``apply_worker``, using only worker-local state — a §4.1 window is
worker-local by construction: each worker raises the bit on *its*
switches hosting the tenant). After a parallel run the parent replays
the durable ops against its own fabric (with counters snapshot /
restored around the replay, since the workers' deltas already carry
the ops' counter effects), so the parent's control-plane state
converges to what a serial run would have left behind.

Parity contract: per-tenant counters, ``lost_records()``, deliveries,
and latencies are identical to serial. Exact same-instant ties
*across worker boundaries* (two packets arriving at one switch at the
same virtual time from different workers) may interleave differently
than the serial event seq — counters and per-link loss records are
unaffected; the differential tests use tie-free schedules.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import FabricError, ParallelExecError
from ..net.packet import Packet
from .core import ExecutionCore, ExecutionSink, vid_of

#: The execution backends every fabric serving frontend accepts.
EXEC_BACKENDS = ("serial", "process")

#: Machine-readable backend description (surfaced by
#: ``repro-info --json`` under the ``"exec"`` section).
PARALLEL_INFO = {
    "backends": list(EXEC_BACKENDS),
    "env": {"backend": "REPRO_EXEC_BACKEND",
            "workers": "REPRO_EXEC_WORKERS"},
    "worker_policy": ("one worker per switch by default; fewer workers "
                      "own contiguous shards of the fabric's switch "
                      "order"),
    "sync_algorithm": ("conservative lockstep (Chandy-Misra-Bryant "
                       "null messages): each round a worker services "
                       "events up to min over in-edges of "
                       "(peer promise + lookahead), then promises its "
                       "own horizon to every out-peer; the parent "
                       "stops the fleet on the first globally "
                       "quiescent round"),
    "lookahead_source": ("link propagation delay (Link.delay_s) of "
                         "the cross-worker links"),
}

_GET_TIMEOUT_S = 600.0


def default_backend() -> str:
    """Backend selected by ``REPRO_EXEC_BACKEND`` (default ``serial``)."""
    value = os.environ.get("REPRO_EXEC_BACKEND")
    if value is None or not value.strip():
        return "serial"
    normalized = value.strip().lower()
    if normalized not in EXEC_BACKENDS:
        raise ValueError(
            f"REPRO_EXEC_BACKEND={value!r} is not one of {EXEC_BACKENDS}")
    return normalized


def default_workers() -> Optional[int]:
    """Worker count from ``REPRO_EXEC_WORKERS`` (``None`` = one per
    switch)."""
    value = os.environ.get("REPRO_EXEC_WORKERS")
    if value is None or not value.strip():
        return None
    count = int(value)
    if count < 1:
        raise ValueError(
            f"REPRO_EXEC_WORKERS={value!r} must be a positive integer")
    return count


def resolve_backend(backend: Optional[str]) -> str:
    """An explicit ``backend=`` argument, else the environment default."""
    if backend is None:
        return default_backend()
    if backend not in EXEC_BACKENDS:
        raise ValueError(
            f"backend={backend!r} is not one of {EXEC_BACKENDS}")
    return backend


# -- declarative lifecycle ops ------------------------------------------------


class FabricOp:
    """A lifecycle action that can cross a process boundary.

    Opaque ``apply`` callables cannot run inside a worker, so the
    process backend's reconfiguration events carry these instead: a
    picklable value object that applies itself either against the
    whole fabric (:meth:`apply_serial` — the serial oracle path and
    the parent's post-run state replay) or against one worker's shard
    (:meth:`apply_worker`, using only worker-local state).
    """

    #: Whether the parent replays the op after a parallel run to
    #: converge its own control-plane state.
    durable = True

    def apply_serial(self, fabric) -> None:
        raise NotImplementedError

    def apply_worker(self, shard: "WorkerShard") -> None:
        raise NotImplementedError


@dataclass
class TenantUpdateOp(FabricOp):
    """Live §4.1 program update of one tenant across its route.

    Per hosting switch: ``handle.update(source)`` then the installer
    re-runs with that switch's recorded egress port — exactly what
    :meth:`repro.fabric.tenant.FabricTenant.update` does per switch,
    so a boundary-crossing update applies identically whether the
    route's switches live in one process or three. The installer must
    be picklable (a module-level function). A mid-route failure inside
    a worker aborts the parallel run (cross-process rollback is not
    attempted); the serial backend keeps ``FabricTenant.update``'s
    rollback semantics."""

    vid: int
    source: str
    installer: Callable
    #: switch name -> egress port the installer steers toward there
    egress: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def for_tenant(cls, tenant, source: str,
                   installer: Optional[Callable] = None
                   ) -> "TenantUpdateOp":
        """Build the op from a placed
        :class:`~repro.fabric.tenant.FabricTenant`."""
        return cls(vid=tenant.vid, source=source,
                   installer=installer if installer is not None
                   else tenant.installer,
                   egress=dict(tenant._egress))

    def apply_serial(self, fabric) -> None:
        fabric.tenant_by_vid(self.vid).update(self.source, self.installer)

    def apply_worker(self, shard: "WorkerShard") -> None:
        for member in shard.members:
            if self.vid in member.switch.controller.modules:
                handle = member.switch.tenant(self.vid)
                handle.update(self.source)
                self.installer(handle, self.egress[member.name])


@dataclass
class LinkStateOp(FabricOp):
    """Administratively raise or lower the link between two switches.

    Worker-local application: every worker owning an endpoint flips
    its own copy of the link; a cross-worker link exists on both sides
    and both flip, so each side's routing sees the change at the same
    virtual time."""

    a: str
    b: str
    up: bool

    def apply_serial(self, fabric) -> None:
        fabric.set_link_state(self.a, self.b, self.up)

    def apply_worker(self, shard: "WorkerShard") -> None:
        ends = {self.a, self.b}
        for member in shard.members:
            for port in sorted(member.links):
                link = member.links[port]
                if {link.a.switch, link.b.switch} == ends:
                    link.up = self.up


# -- sharding -----------------------------------------------------------------


class WorkerShard:
    """One worker's unpickled slice of the fabric."""

    def __init__(self, members: Sequence):
        self.members = list(members)
        self.by_name = {member.name: member for member in self.members}


def partition_names(names: Sequence[str], workers: int) -> List[List[str]]:
    """Contiguous blocks of the fabric's switch order, one per worker."""
    count = len(names)
    w = max(1, min(workers, count))
    base, extra = divmod(count, w)
    blocks: List[List[str]] = []
    start = 0
    for i in range(w):
        size = base + (1 if i < extra else 0)
        blocks.append(list(names[start:start + size]))
        start += size
    return blocks


def _resolve_worker_count(fabric, workers: Optional[int]) -> int:
    if workers is None:
        workers = default_workers()
    members = fabric.switches()
    if workers is None:
        workers = len(members)
    if workers < 1:
        raise ParallelExecError(f"need at least one worker, got {workers}")
    return max(1, min(workers, len(members)))


def _shard_blobs(fabric, blocks: List[List[str]]) -> List[bytes]:
    """One pickled spec per worker: the worker's switches as a single
    object graph, so shared references (a scheduler's stats *is* its
    pipeline's stats; an in-shard link is one object) survive."""
    blobs = []
    for block in blocks:
        members = [fabric.switch(name) for name in block]
        try:
            blobs.append(pickle.dumps(members,
                                      protocol=pickle.HIGHEST_PROTOCOL))
        except Exception as exc:
            raise ParallelExecError(
                f"switch spec for worker shard {block} is not "
                f"picklable: {exc}") from exc
    return blobs


def _baseline(members) -> Dict:
    """Start-of-run counter/link baselines, for delta frames."""
    links = {}
    seen = set()
    for member in members:
        for port in sorted(member.links):
            link = member.links[port]
            if id(link) in seen:
                continue
            seen.add(id(link))
            links[link.name] = (link.bytes_carried,
                                dict(link.bytes_by_tenant))
    return {
        "stats": {member.name: member.switch.pipeline.stats.snapshot()
                  for member in members},
        "engine": {member.name: member.engine.counters.snapshot()
                   for member in members},
        "links": links,
    }


@dataclass
class SwitchFrame:
    """One switch's typed result frame: counter deltas for the run."""

    name: str
    stats_delta: object
    engine_delta: object


def _switch_frames(members, baseline) -> List[SwitchFrame]:
    return [SwitchFrame(
        name=member.name,
        stats_delta=member.switch.pipeline.stats.delta_since(
            baseline["stats"][member.name]),
        engine_delta=member.engine.counters.delta_since(
            baseline["engine"][member.name]))
        for member in members]


def _link_deltas(members, baseline) -> Dict[str, Tuple[int, Dict[int, int]]]:
    deltas = {}
    seen = set()
    for member in members:
        for port in sorted(member.links):
            link = member.links[port]
            if id(link) in seen:
                continue
            seen.add(id(link))
            base_bytes, base_by_vid = baseline["links"][link.name]
            by_vid = {vid: count - base_by_vid.get(vid, 0)
                      for vid, count in link.bytes_by_tenant.items()}
            deltas[link.name] = (link.bytes_carried - base_bytes, by_vid)
    return deltas


def _merge_frames(fabric, frames: Sequence) -> None:
    """Fold worker frames back into the parent's live objects.

    A cross-worker link was pickled into both endpoint shards; each
    side recorded only the bytes of packets *it* sent across, so
    summing both sides' deltas reproduces the serial totals."""
    link_by_name = {}
    for link in fabric.links():
        link_by_name.setdefault(link.name, link)
    for frame in frames:
        for sf in frame.switches:
            member = fabric.switch(sf.name)
            member.switch.pipeline.stats.merge_from(sf.stats_delta)
            member.engine.counters.merge_from(sf.engine_delta)
        for name, (nbytes, by_vid) in frame.link_deltas.items():
            link = link_by_name[name]
            link.bytes_carried += nbytes
            for vid, count in by_vid.items():
                link.bytes_by_tenant[vid] = \
                    link.bytes_by_tenant.get(vid, 0) + count


# -- worker pool --------------------------------------------------------------


class _WorkerPool:
    """Spawns workers, owns the queues, guarantees teardown.

    Every worker target has the signature ``(worker_id, plan_blob,
    inboxes, to_parent)`` — the full inbox list, so timeline workers
    can push edge messages straight into a peer's inbox without
    round-tripping packets through the parent."""

    def __init__(self, target, plans: Sequence):
        ctx = multiprocessing.get_context()
        count = len(plans)
        self.to_parent = ctx.Queue()
        self.inboxes = [ctx.Queue(maxsize=2 * count + 16)
                        for _ in range(count)]
        self.procs = []
        for i, plan in enumerate(plans):
            blob = pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL)
            proc = ctx.Process(
                target=target,
                args=(i, blob, self.inboxes, self.to_parent),
                daemon=True, name=f"repro-exec-{i}")
            self.procs.append(proc)
        for proc in self.procs:
            proc.start()

    def get(self):
        msg = self.to_parent.get(timeout=_GET_TIMEOUT_S)
        if msg[0] == "error":
            raise ParallelExecError(f"worker {msg[1]} died:\n{msg[2]}")
        return msg

    def broadcast(self, msg) -> None:
        for inbox in self.inboxes:
            inbox.put(msg)

    def send(self, worker_id: int, msg) -> None:
        self.inboxes[worker_id].put(msg)

    def collect_frames(self, count: int) -> List:
        frames: Dict[int, object] = {}
        while len(frames) < count:
            msg = self.get()
            if msg[0] == "frame":
                frames[msg[1]] = pickle.loads(msg[2])
        return [frames[i] for i in sorted(frames)]

    def shutdown(self) -> None:
        for inbox in self.inboxes:
            try:
                inbox.put_nowait(("stop",))
            except Exception:
                pass
        for proc in self.procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10.0)
        for queue in [self.to_parent, *self.inboxes]:
            queue.cancel_join_thread()
            queue.close()


# ====================== untimed waves (process backend) ======================


class _WavesWorkerSink(ExecutionSink):
    """Tags every delivery/loss with (wave, global switch index, seq)
    so the parent can re-create the serial forwarder's fabric-wide
    service order exactly."""

    def __init__(self, member_index: Dict[str, int]):
        self.member_index = member_index
        self.wave = 0
        self.seq = 0
        self.results: Dict[str, List] = {}
        self.delivered: List[Tuple] = []
        self.lost: List[Tuple] = []
        self.dropped: Dict[int, int] = {}

    def begin(self, wave: int) -> None:
        self.wave = wave
        self.seq = 0

    def _tag(self, member: str) -> Tuple[int, int, int]:
        tag = (self.wave, self.member_index[member], self.seq)
        self.seq += 1
        return tag

    def on_result(self, member: str, result) -> None:
        self.results.setdefault(member, []).append(result)

    def on_drop(self, vid: int) -> None:
        self.dropped[vid] = self.dropped.get(vid, 0) + 1

    def on_deliver(self, member: str, port: int, vid: int,
                   packet: Packet, time: float) -> None:
        self.delivered.append((*self._tag(member), member, port, vid,
                               packet))

    def on_lost(self, member: str, port: int, vid: int, packet: Packet,
                link: str, time: float) -> None:
        self.lost.append((*self._tag(member), member, port, vid, packet,
                          link))


@dataclass
class _WavesPlan:
    worker_id: int
    spec: bytes
    #: switch name -> global index in the fabric's switch order
    member_index: Dict[str, int]


@dataclass
class _WavesFrame:
    switches: List[SwitchFrame]
    link_deltas: Dict[str, Tuple[int, Dict[int, int]]]
    results: Dict[str, List]
    delivered: List[Tuple]
    lost: List[Tuple]
    dropped: Dict[int, int]


def run_waves_shard(plan: _WavesPlan, shard: WorkerShard, recv, send) -> None:
    """One waves worker's message loop (drivable in-process for tests:
    ``recv`` is a zero-arg message source, ``send`` a one-arg sink).

    Per ``("wave", n, arrivals)`` message the shard's members serve
    their arrivals in global switch order and drain every port in
    weighted-fair service order — the serial wave body, scoped to the
    shard. Cross-link targets (local *or* remote: waves are globally
    barriered, so even an in-shard hop belongs to the next wave) go
    back to the parent tagged (global switch index, port, seq)."""
    baseline = _baseline(shard.members)
    sink = _WavesWorkerSink(plan.member_index)
    core = ExecutionCore(shard.members, sink=sink)
    while True:
        msg = recv()
        if msg[0] != "wave":
            break
        _, wave_no, items = msg
        sink.begin(wave_no)
        by_member: Dict[str, List[Packet]] = {}
        for name, packet in items:
            by_member.setdefault(name, []).append(packet)
        emissions: List[Tuple] = []
        for member in shard.members:
            pkts = by_member.get(member.name)
            if not pkts:
                continue
            if not core.member_up(member):
                for packet in pkts:
                    sink.on_lost(member.name, packet.ingress_port or 0,
                                 vid_of(packet), packet,
                                 f"switch:{member.name}", 0.0)
                continue
            core._serve_batch(member, pkts)
            seq = 0
            for port in range(member.num_ports):
                for packet in member.scheduler.drain(port):
                    target = core.route(member, port, packet,
                                        vid_of(packet))
                    if target is None:
                        continue
                    emissions.append((plan.member_index[member.name],
                                      port, seq, target[0], target[1]))
                    seq += 1
        send(("wave_done", plan.worker_id, emissions))
    if msg[0] == "finish":
        frame = _WavesFrame(
            switches=_switch_frames(shard.members, baseline),
            link_deltas=_link_deltas(shard.members, baseline),
            results=sink.results, delivered=sink.delivered,
            lost=sink.lost, dropped=sink.dropped)
        send(("frame", plan.worker_id,
              pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)))


def _waves_worker_entry(worker_id: int, plan_blob: bytes, inboxes,
                        to_parent) -> None:  # pragma: no cover — subprocess
    try:
        plan = pickle.loads(plan_blob)
        shard = WorkerShard(pickle.loads(plan.spec))
        run_waves_shard(plan, shard, inboxes[worker_id].get, to_parent.put)
    except BaseException:
        to_parent.put(("error", worker_id, traceback.format_exc()))


def run_fabric_batch(fabric, arrivals, max_hops: Optional[int] = None,
                     workers: Optional[int] = None):
    """The process backend behind
    :func:`repro.fabric.forwarding.process_batch`.

    The parent is the wave barrier: it partitions each wave's arrivals
    by owning worker, collects every worker's tagged emissions, sorts
    them into the serial forwarder's order (global switch index, port,
    drain order), and feeds them back as the next wave. Bit-identical
    to the serial result, including delivery order; the caller's
    arrival packets are not mutated (workers operate on pickled
    copies)."""
    from ..fabric.forwarding import Delivery, FabricResult, LostPacket

    members = fabric.switches()
    names = [member.name for member in members]
    member_index = {name: i for i, name in enumerate(names)}
    count = _resolve_worker_count(fabric, workers)
    blocks = partition_names(names, count)
    owner: Dict[str, int] = {}
    for wid, block in enumerate(blocks):
        for name in block:
            owner[name] = wid
    if max_hops is None:
        max_hops = max(1, len(members))
    blobs = _shard_blobs(fabric, blocks)
    plans = [_WavesPlan(worker_id=i, spec=blobs[i],
                        member_index=member_index)
             for i in range(count)]
    pool = _WorkerPool(_waves_worker_entry, plans)
    try:
        waves = 0
        wave: List[Tuple[str, Packet]] = [(name, packet)
                                          for name, packet in arrivals]
        overflowed = True
        for _ in range(max_hops + 1):
            if not wave:
                overflowed = False
                break
            waves += 1
            per_worker: Dict[int, List] = {i: [] for i in range(count)}
            for name, packet in wave:
                fabric.switch(name)  # typed error for unknown names
                per_worker[owner[name]].append((name, packet))
            for wid in range(count):
                pool.send(wid, ("wave", waves, per_worker[wid]))
            emissions: List[Tuple] = []
            done = 0
            while done < count:
                msg = pool.get()
                if msg[0] == "wave_done":
                    done += 1
                    emissions.extend(msg[2])
            emissions.sort(key=lambda e: (e[0], e[1], e[2]))
            wave = [(dst, packet) for _, _, _, dst, packet in emissions]
        if overflowed:
            raise FabricError(
                f"batch still in flight after {max_hops} hops — "
                f"forwarding loop? in-flight: "
                f"{[(name, vid_of(p)) for name, p in wave[:8]]}")
        pool.broadcast(("finish",))
        frames = pool.collect_frames(count)
    finally:
        pool.shutdown()

    _merge_frames(fabric, frames)
    result = FabricResult(waves=waves)
    for frame in frames:
        for name, outcomes in frame.results.items():
            result.results[name] = outcomes
        for vid, n in frame.dropped.items():
            result.dropped[vid] = result.dropped.get(vid, 0) + n
    delivered = sorted((entry for frame in frames
                        for entry in frame.delivered),
                       key=lambda e: (e[0], e[1], e[2]))
    result.delivered = [Delivery(switch=member, port=port, vid=vid,
                                 packet=packet)
                        for _, _, _, member, port, vid, packet in delivered]
    lost = sorted((entry for frame in frames for entry in frame.lost),
                  key=lambda e: (e[0], e[1], e[2]))
    result.lost = [LostPacket(link=link, switch=member, port=port,
                              vid=vid, packet=packet)
                   for _, _, _, member, port, vid, packet, link in lost]
    return result


# =================== event-driven timeline (process backend) =================


class _TimelineWorkerSink(ExecutionSink):
    """Collects the worker's share of the timeline accounting, with a
    local-virtual-time watermark (``lvt``) so the parent can
    reconstruct the serial run's final clock exactly."""

    def __init__(self, scale: float, sim):
        self.scale = scale
        self.sim = sim
        self.lvt = 0.0
        #: (vid, delivery time, bits, end-to-end latency)
        self.deliveries: List[Tuple[int, float, float, float]] = []
        self.drops: Dict[int, int] = {}
        self.lost: Dict[int, int] = {}
        self.lost_by_link: Dict[Tuple[int, str], int] = {}
        self.loss_log: List[Tuple[float, int, str]] = []

    def touch(self, time: Optional[float] = None) -> None:
        at = self.sim.now if time is None else time
        if at > self.lvt:
            self.lvt = at

    def on_result(self, member: str, result) -> None:
        self.touch()

    def on_deliver(self, member: str, port: int, vid: int,
                   packet: Packet, time: float) -> None:
        self.touch(time)
        self.deliveries.append((vid, time, len(packet) * 8 * self.scale,
                                time - packet.arrival_time))

    def on_drop(self, vid: int) -> None:
        self.touch()
        self.drops[vid] = self.drops.get(vid, 0) + 1

    def on_lost(self, member: str, port: int, vid: int, packet: Packet,
                link: str, time: float) -> None:
        self.touch(time)
        self.lost[vid] = self.lost.get(vid, 0) + 1
        self.lost_by_link[(vid, link)] = \
            self.lost_by_link.get((vid, link), 0) + 1
        self.loss_log.append((time, vid, link))


@dataclass
class _TimelinePlan:
    worker_id: int
    spec: bytes
    #: switch name -> owning worker (for routing emissions)
    owner: Dict[str, int]
    #: in-peer worker -> lookahead (min delay of its links toward me)
    in_peers: Dict[int, float]
    out_peers: Tuple[int, ...]
    #: (virtual time, Demand) arrivals at this shard's switches
    arrivals: List[Tuple[float, object]]
    #: (vid, start_s, duration_s, FabricOp-or-None) — the shard
    #: applies the op locally and holds the §4.1 window on its own
    #: hosting switches
    events: List[Tuple[int, float, float, Optional[FabricOp]]]
    #: every scheduled window (vid, start_s, duration_s) — for the
    #: overlapping-window close check
    windows: List[Tuple[int, float, float]]
    duration_s: float
    scale: float


@dataclass
class _TimelineFrame:
    switches: List[SwitchFrame]
    link_deltas: Dict[str, Tuple[int, Dict[int, int]]]
    deliveries: List[Tuple[int, float, float, float]]
    drops: Dict[int, int]
    lost: Dict[int, int]
    lost_by_link: Dict[Tuple[int, str], int]
    loss_log: List[Tuple[float, int, str]]
    lvt: float
    backlog: int


def run_timeline_shard(plan: _TimelinePlan, shard: WorkerShard,
                       recv, send_edge, send_parent) -> None:
    """One timeline worker's conservative-sync loop (drivable
    in-process for tests: ``recv`` is a zero-arg message source,
    ``send_edge(peer, msg)`` / ``send_parent(msg)`` the outputs).

    Round structure: consume one ``("edge", src, promise, entries)``
    message per in-peer (round 0 starts from the implicit promise 0 —
    nothing departs before the epoch, so each channel clock begins at
    its lookahead), advance each channel clock to ``promise +
    lookahead``, service local events up to the minimum channel clock,
    then send this round's cross-shard packets *and* the new promise
    (the null message) to every out-peer plus a status line to the
    parent, and wait for the parent's ``("go",)`` barrier or
    ``("stop",)`` verdict. A worker with no in-peers runs unbounded in
    round 0 and promises infinity, which releases its downstream peers
    from ever being bounded by that channel again."""
    from ..sim.kernel import Simulator

    baseline = _baseline(shard.members)
    sim = Simulator()
    sink = _TimelineWorkerSink(plan.scale, sim)
    out_buf: Dict[int, List[Tuple[str, Packet, float]]] = \
        {peer: [] for peer in plan.out_peers}

    def remote(name: str, packet: Packet, arrive_at: float) -> None:
        out_buf[plan.owner[name]].append((name, packet, arrive_at))

    core = ExecutionCore(shard.members, sink=sink, sim=sim,
                         remote_handler=remote)

    def arrival(demand, t: float) -> None:
        sink.touch(t)
        packet = demand.make_packet()
        packet.arrival_time = t
        packet.ingress_port = demand.src.port
        core.inject(shard.by_name[demand.src.switch], packet, t)

    def receive(name: str, packet: Packet, t: float) -> None:
        sink.touch(t)
        core.inject(shard.by_name[name], packet, t)

    def open_window(vid: int, duration: float,
                    op: Optional[FabricOp]) -> None:
        sink.touch()
        if op is not None:
            op.apply_worker(shard)
        if duration <= 0:
            return
        for member in shard.members:
            if vid in member.switch.controller.modules:
                member.switch.pipeline.packet_filter \
                    .set_module_updating(vid)

    def close_window(vid: int, at: float) -> None:
        # Mirrors the serial overlap rule: keep the bit while any
        # *other* window for the VID still covers instant ``at`` (an
        # event's own window spans [start, start+duration) and never
        # covers its own close time, so a value check suffices).
        sink.touch(at)
        for ovid, ostart, odur in plan.windows:
            if ovid == vid and odur > 0 and ostart <= at < ostart + odur:
                return
        for member in shard.members:
            filter_ = member.switch.pipeline.packet_filter
            if filter_.is_module_updating(vid):
                filter_.clear_module_updating(vid)

    # Scheduling order mirrors the serial run exactly — arrivals
    # first, then reconfiguration events — so same-instant ties
    # resolve by event seq the same way.
    for t, demand in plan.arrivals:
        sim.schedule_at(t, lambda d=demand, at=t: arrival(d, at))
    for vid, start, duration, op in plan.events:
        sim.schedule_at(start, lambda v=vid, d=duration, o=op:
                        open_window(v, d, o))
        if duration > 0:
            sim.schedule_at(start + duration,
                            lambda v=vid, at=start + duration:
                            close_window(v, at))

    #: per in-peer channel clock: no arrival from that worker can
    #: carry a timestamp at or below it.
    chan: Dict[int, float] = dict(plan.in_peers)
    stash: List[Tuple] = []
    round_no = 0
    stopped = False
    while not stopped:
        if round_no > 0 and plan.in_peers:
            needed = set(plan.in_peers)
            batch: List[Tuple[int, List]] = []
            kept: List[Tuple] = []
            for msg in stash:
                if msg[1] in needed:
                    needed.discard(msg[1])
                    batch.append((msg[1], msg[3]))
                    chan[msg[1]] = msg[2] + plan.in_peers[msg[1]]
                else:
                    kept.append(msg)
            stash = kept
            while needed and not stopped:
                msg = recv()
                if msg[0] == "stop":
                    stopped = True
                elif msg[0] == "edge":
                    _, src, promise, entries = msg
                    if src in needed:
                        needed.discard(src)
                        batch.append((src, entries))
                        chan[src] = promise + plan.in_peers[src]
                    else:
                        stash.append(msg)
            if stopped:
                break
            batch.sort(key=lambda item: item[0])
            for src, entries in batch:
                for name, packet, arrive_at in entries:
                    sim.schedule(max(0.0, arrive_at - sim.now),
                                 lambda n=name, p=packet, t=arrive_at:
                                 receive(n, p, t))
        bound = min(chan.values()) if chan else math.inf
        if math.isinf(bound):
            sim.run()
        else:
            sim.run(until=bound)
        emitted = 0
        for peer in plan.out_peers:
            entries = out_buf[peer]
            emitted += len(entries)
            send_edge(peer, ("edge", plan.worker_id, bound, entries))
            out_buf[peer] = []
        send_parent(("status", plan.worker_id, round_no, emitted,
                     sim.pending()))
        while True:
            msg = recv()
            if msg[0] == "go":
                break
            if msg[0] == "stop":
                stopped = True
                break
            stash.append(msg)
        round_no += 1

    frame = _TimelineFrame(
        switches=_switch_frames(shard.members, baseline),
        link_deltas=_link_deltas(shard.members, baseline),
        deliveries=sink.deliveries, drops=sink.drops, lost=sink.lost,
        lost_by_link=sink.lost_by_link, loss_log=sink.loss_log,
        lvt=sink.lvt, backlog=core.total_backlog())
    send_parent(("frame", plan.worker_id,
                 pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)))


def _timeline_worker_entry(worker_id: int, plan_blob: bytes, inboxes,
                           to_parent) -> None:  # pragma: no cover
    """Subprocess entry: edge messages go straight into the peer
    worker's inbox; statuses and frames go to the parent."""
    try:
        plan = pickle.loads(plan_blob)
        shard = WorkerShard(pickle.loads(plan.spec))
        run_timeline_shard(
            plan, shard, inboxes[worker_id].get,
            lambda peer, msg: inboxes[peer].put(msg), to_parent.put)
    except BaseException:
        to_parent.put(("error", worker_id, traceback.format_exc()))


def build_timeline_plans(experiment, count: int) -> List[_TimelinePlan]:
    """Shard an experiment: partition switches, derive the cross-worker
    channel lookaheads, translate reconfig events to declarative ops,
    and split the arrival schedule by owning worker."""
    fabric = experiment.fabric
    names = [member.name for member in fabric.switches()]
    blocks = partition_names(names, count)
    owner: Dict[str, int] = {}
    for wid, block in enumerate(blocks):
        for name in block:
            owner[name] = wid

    lookahead: Dict[Tuple[int, int], float] = {}
    for link in fabric.links():
        wa, wb = owner[link.a.switch], owner[link.b.switch]
        if wa == wb:
            continue
        if link.delay_s <= 0:
            raise ParallelExecError(
                f"link {link.name} crosses a worker boundary with zero "
                f"propagation delay; conservative time-sync needs "
                f"positive lookahead (set delay_s > 0 or use "
                f"backend='serial')")
        for src, dst in ((wa, wb), (wb, wa)):
            prev = lookahead.get((src, dst))
            if prev is None or link.delay_s < prev:
                lookahead[(src, dst)] = link.delay_s

    events: List[Tuple[int, float, float, Optional[FabricOp]]] = []
    windows: List[Tuple[int, float, float]] = []
    for event in experiment.reconfigs:
        op = getattr(event, "op", None)
        if event.apply is not None and op is None:
            raise ParallelExecError(
                f"reconfig event for VID {event.vid} at "
                f"t={event.start_s} carries an opaque apply callable; "
                f"the process backend needs a declarative op "
                f"(repro.exec.parallel.TenantUpdateOp / LinkStateOp) "
                f"or backend='serial'")
        events.append((event.vid, event.start_s, event.duration_s, op))
        windows.append((event.vid, event.start_s, event.duration_s))

    per_worker_arrivals: Dict[int, List] = {i: [] for i in range(count)}
    for t, demand in experiment.matrix.arrivals(experiment.duration_s,
                                                scale=experiment.scale):
        wid = owner.get(demand.src.switch)
        if wid is None:
            fabric.switch(demand.src.switch)  # typed error
        per_worker_arrivals[wid].append((t, demand))

    blobs = _shard_blobs(fabric, blocks)
    plans = []
    for i in range(count):
        plans.append(_TimelinePlan(
            worker_id=i, spec=blobs[i], owner=owner,
            in_peers={src: la for (src, dst), la in lookahead.items()
                      if dst == i},
            out_peers=tuple(sorted(dst for (src, dst) in lookahead
                                   if src == i)),
            arrivals=per_worker_arrivals[i], events=events,
            windows=windows, duration_s=experiment.duration_s,
            scale=experiment.scale))
    try:
        pickle.dumps(plans, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ParallelExecError(
            f"timeline plan is not picklable (arrival make_packet "
            f"callables and op installers must be module-level "
            f"functions, not lambdas or closures): {exc}") from exc
    return plans


def run_fabric_timeline(experiment, workers: Optional[int] = None):
    """The process backend behind
    :class:`repro.sim.fabric_timeline.FabricTimelineExperiment`.

    Shards the fabric, runs the conservative-sync rounds to global
    quiescence, then merges frames: counter deltas into the parent's
    switches and links, deliveries/losses into one
    ``FabricTimelineResult`` binned exactly like the serial path.
    Durable declarative ops are replayed against the parent fabric
    (counters snapshot/restored around the replay — the worker deltas
    already carry the ops' counter effects) so parent control-plane
    state matches a serial run's."""
    from ..sim.fabric_timeline import FabricTimelineResult

    fabric = experiment.fabric
    members = fabric.switches()
    count = _resolve_worker_count(fabric, workers)
    plans = build_timeline_plans(experiment, count)
    pool = _WorkerPool(_timeline_worker_entry, plans)
    try:
        while True:
            pending_total = 0
            emitted_total = 0
            for _ in range(count):
                msg = pool.get()
                emitted_total += msg[3]
                pending_total += msg[4]
            if pending_total == 0 and emitted_total == 0:
                pool.broadcast(("stop",))
                break
            pool.broadcast(("go",))
        frames = pool.collect_frames(count)
    finally:
        pool.shutdown()

    backlog = sum(frame.backlog for frame in frames)
    if backlog:
        raise RuntimeError(f"{backlog} packets never departed")

    ordered_ops = [
        op for _, op in sorted(
            ((event.start_s, getattr(event, "op", None))
             for event in experiment.reconfigs),
            key=lambda item: item[0])
        if op is not None and op.durable]
    if ordered_ops:
        snaps = [(member.switch.pipeline.stats,
                  member.switch.pipeline.stats.snapshot(),
                  member.engine.counters,
                  member.engine.counters.snapshot())
                 for member in members]
        for op in ordered_ops:
            op.apply_serial(fabric)
        for stats, stats_snap, counters, counters_snap in snaps:
            stats.assign_from(stats_snap)
            counters.assign_from(counters_snap)

    _merge_frames(fabric, frames)

    # -- assemble the result exactly like the serial path -----------------
    elapsed = max(experiment.duration_s,
                  max((frame.lvt for frame in frames), default=0.0))
    bin_s = experiment.bin_s
    num_bins = max(1, -int(-elapsed // bin_s))  # ceil
    bins = [i * bin_s for i in range(num_bins)]
    bits: Dict[int, List[float]] = {
        demand.vid: [0.0] * num_bins
        for demand in experiment.matrix.demands}
    merged = sorted(((time, widx, i, vid, nbits, latency)
                     for widx, frame in enumerate(frames)
                     for i, (vid, time, nbits, latency)
                     in enumerate(frame.deliveries)),
                    key=lambda e: (e[0], e[1], e[2]))
    latencies: Dict[int, List[float]] = {}
    delivered: Dict[int, int] = {}
    for time, _, _, vid, nbits, latency in merged:
        latencies.setdefault(vid, []).append(latency)
        delivered[vid] = delivered.get(vid, 0) + 1
        bin_idx = min(int(time / bin_s), num_bins - 1)
        bits.setdefault(vid, [0.0] * num_bins)[bin_idx] += nbits
    drops: Dict[int, int] = {}
    lost: Dict[int, int] = {}
    lost_by_link: Dict[Tuple[int, str], int] = {}
    loss_entries: List[Tuple] = []
    for widx, frame in enumerate(frames):
        for vid, n in frame.drops.items():
            drops[vid] = drops.get(vid, 0) + n
        for vid, n in frame.lost.items():
            lost[vid] = lost.get(vid, 0) + n
        for key, n in frame.lost_by_link.items():
            lost_by_link[key] = lost_by_link.get(key, 0) + n
        for i, (time, vid, link) in enumerate(frame.loss_log):
            loss_entries.append((time, widx, i, vid, link))
    loss_entries.sort(key=lambda e: (e[0], e[1], e[2]))
    return FabricTimelineResult(
        bin_s=bin_s, elapsed_s=elapsed, bins=bins,
        throughput_gbps={vid: [b / bin_s / 1e9 for b in series]
                         for vid, series in bits.items()},
        offered_gbps={vid: bps / 1e9 for vid, bps
                      in experiment.matrix.offered_bps_by_vid().items()},
        latencies_s=latencies, delivered=delivered, drops=drops,
        lost=lost, lost_by_link=lost_by_link,
        loss_log=[(time, vid, link)
                  for time, _, _, vid, link in loss_entries],
        link_utilization={link.name: (link.bytes_carried,
                                      link.utilization(elapsed))
                          for link in fabric.links()})
