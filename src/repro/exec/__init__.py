"""``repro.exec`` — the unified execution core.

One :class:`ExecutionCore` owns the engine-drain / departure-routing
loop every serving frontend used to re-implement: untimed multi-hop
waves (:func:`repro.fabric.forwarding.process_batch`), exact
event-driven fabric service
(:class:`repro.sim.fabric_timeline.FabricTimelineExperiment`), and the
clock-driven single-switch Fig. 10 timeline
(:class:`repro.sim.timeline.ReconfigTimelineExperiment`). The core is
parameterized by topology (a fabric's members, or one switch wrapped
in :class:`SwitchMember`) and timing policy (waves, a
:class:`repro.sim.kernel.Simulator`, or explicit clock advances);
frontends are result shaping over an :class:`ExecutionSink`.

:class:`~repro.exec.records.LostRecord` is the shared typed currency
for link-down losses, so the untimed and timed paths report dropped
traffic in one comparable shape.

:mod:`repro.exec.parallel` shards either policy across worker
processes — one worker per switch, conservative time-sync on the
timeline path — selected per call (``backend="process"``) or via
``REPRO_EXEC_BACKEND``.
"""

from .core import ExecutionCore, ExecutionSink, SwitchMember, vid_of
from .parallel import (
    EXEC_BACKENDS,
    FabricOp,
    LinkStateOp,
    TenantUpdateOp,
    default_backend,
    default_workers,
    resolve_backend,
)
from .records import LostRecord, summarize_lost

__all__ = [
    "ExecutionCore",
    "ExecutionSink",
    "SwitchMember",
    "vid_of",
    "LostRecord",
    "summarize_lost",
    "EXEC_BACKENDS",
    "FabricOp",
    "TenantUpdateOp",
    "LinkStateOp",
    "default_backend",
    "default_workers",
    "resolve_backend",
]
