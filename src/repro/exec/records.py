"""Typed records shared by every serving frontend.

The two fabric serving paths used to report link-down losses in
different shapes — :class:`repro.fabric.forwarding.FabricResult` kept a
list of ``(packet, link)`` pairs, the event-driven
:class:`repro.sim.fabric_timeline.FabricTimelineResult` a bare
``module_id -> count`` dict with the link identity thrown away. One
experiment could not be checked against the other. :class:`LostRecord`
is the common currency: *which tenant* lost *how many* packets on
*which link*, aggregated and deterministically ordered, so the untimed
and the timed path can be asserted to agree on the same dropped
traffic (``tests/test_exec_core.py`` does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True, order=True)
class LostRecord:
    """Link-down losses of one tenant on one link."""

    vid: int
    link: str
    count: int


def summarize_lost(pairs: Iterable[Tuple[int, str]]) -> List[LostRecord]:
    """Aggregate ``(vid, link name)`` loss events into sorted records."""
    counts: Dict[Tuple[int, str], int] = {}
    for vid, link in pairs:
        counts[(vid, link)] = counts.get((vid, link), 0) + 1
    return [LostRecord(vid=vid, link=link, count=count)
            for (vid, link), count in sorted(counts.items())]
