"""Reconfiguration packets (Fig. 7): the only way to write pipeline config.

A reconfiguration packet is a normal UDP packet (destination port
0xf1f2) whose payload addresses one configuration row:

====================  ======  =============================================
field                 size    meaning
====================  ======  =============================================
common header         46 B    Ethernet + VLAN + IPv4 + UDP
resource ID           12 b    which resource in which stage (see below)
reserved              4 b     —
index                 1 B     row within the resource's table
padding               15 B    —
payload               varies  the entry bytes (width per resource)
====================  ======  =============================================

The 12-bit resource ID encodes ``type(4b) | stage(8b)``; stage is 0 for
the stage-less parser/deparser tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..errors import ReconfigurationError
from ..net.builder import PacketBuilder
from ..net.packet import Packet
from ..net.udp_ import MENSHEN_RECONFIG_DPORT
from ..rmt.params import DEFAULT_PARAMS, HardwareParams

#: Offset of the reconfiguration payload within the packet (after the
#: 46-byte common header).
_PAYLOAD_OFFSET = 46
_HEADER_LEN = 2 + 1 + 15  # resource-id word + index + padding


class ResourceType(IntEnum):
    """4-bit resource-type codes for the reconfiguration resource ID."""

    PARSER_TABLE = 1
    DEPARSER_TABLE = 2
    KEY_EXTRACTOR = 3
    KEY_MASK = 4
    CAM = 5
    VLIW = 6
    SEGMENT = 7
    CAM_INVALIDATE = 8   #: clears a CAM row (empty payload)
    STATEFUL_WORD = 9    #: initializes one stateful-memory word
    TCAM = 10            #: ternary entry: key | mask | module ID (App. B)
    DEFAULT_VLIW = 11    #: per-module miss action (extension)


def entry_payload_bytes(rtype: ResourceType,
                        params: HardwareParams = DEFAULT_PARAMS) -> int:
    """Payload width in bytes for each resource type."""
    widths_bits = {
        ResourceType.PARSER_TABLE: params.parser_entry_bits,
        ResourceType.DEPARSER_TABLE: params.parser_entry_bits,
        ResourceType.KEY_EXTRACTOR: params.key_extractor_entry_bits,
        ResourceType.KEY_MASK: params.key_bits,
        ResourceType.CAM: params.cam_entry_bits,
        ResourceType.VLIW: params.vliw_entry_bits,
        ResourceType.SEGMENT: params.segment_entry_bits,
        ResourceType.CAM_INVALIDATE: 0,
        ResourceType.STATEFUL_WORD: params.stateful_word_bits,
        ResourceType.TCAM: 2 * params.key_bits + params.module_id_bits,
        ResourceType.DEFAULT_VLIW: params.vliw_entry_bits,
    }
    return (widths_bits[rtype] + 7) // 8


@dataclass(frozen=True)
class ConfigWrite:
    """One configuration write: a row value bound to a resource + index.

    The typed form of what used to travel as ``(resource, index, entry)``
    tuples between the controller and the interface; iterable so that
    existing tuple-unpacking call sites keep working.
    """

    resource: "ResourceId"
    index: int
    entry: int

    def __iter__(self):
        return iter((self.resource, self.index, self.entry))


@dataclass(frozen=True)
class ResourceId:
    """Decoded 12-bit resource ID: resource type + stage number."""

    rtype: ResourceType
    stage: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.stage < 256:
            raise ReconfigurationError(f"stage {self.stage} exceeds 8 bits")

    def encode(self) -> int:
        return (int(self.rtype) << 8) | self.stage

    @classmethod
    def decode(cls, value: int) -> "ResourceId":
        if not 0 <= value < (1 << 12):
            raise ReconfigurationError(
                f"resource id {value:#x} exceeds 12 bits")
        try:
            rtype = ResourceType(value >> 8)
        except ValueError as exc:
            raise ReconfigurationError(
                f"unknown resource type {value >> 8}") from exc
        return cls(rtype=rtype, stage=value & 0xFF)


@dataclass(frozen=True)
class ReconfigPayload:
    """Decoded reconfiguration request."""

    resource: ResourceId
    index: int
    entry: int  #: the configuration word (width per resource type)


def build_reconfig_packet(resource: ResourceId, index: int, entry: int,
                          params: HardwareParams = DEFAULT_PARAMS,
                          vid: int = 0) -> Packet:
    """Serialize a configuration write into a reconfiguration packet."""
    if not 0 <= index < 256:
        raise ReconfigurationError(f"index {index} exceeds 1 byte")
    nbytes = entry_payload_bytes(resource.rtype, params)
    if entry < 0 or (nbytes and entry >= (1 << (8 * nbytes))):
        raise ReconfigurationError(
            f"entry {entry:#x} does not fit {nbytes} payload bytes for "
            f"{resource.rtype.name}")
    if nbytes == 0 and entry:
        raise ReconfigurationError(
            f"{resource.rtype.name} carries no payload, got entry {entry:#x}")

    rid = resource.encode()
    payload = bytearray()
    payload += ((rid << 4).to_bytes(2, "big"))  # 12b id | 4b reserved
    payload.append(index)
    payload += b"\x00" * 15
    if nbytes:
        payload += entry.to_bytes(nbytes, "big")

    return (PacketBuilder()
            .ethernet(src="02:00:00:00:00:10", dst="02:00:00:00:00:11")
            .vlan(vid=vid)
            .ipv4(src="10.255.0.1", dst="10.255.0.2")
            .udp(sport=0xF1F1, dport=MENSHEN_RECONFIG_DPORT)
            .payload(bytes(payload))
            .build())


def parse_reconfig_packet(packet: Packet,
                          params: HardwareParams = DEFAULT_PARAMS
                          ) -> ReconfigPayload:
    """Decode a reconfiguration packet back into a config write."""
    if len(packet) < _PAYLOAD_OFFSET + _HEADER_LEN:
        raise ReconfigurationError("reconfiguration packet too short")
    dport = packet.read_int(_PAYLOAD_OFFSET - 6, 2)
    if dport != MENSHEN_RECONFIG_DPORT:
        raise ReconfigurationError(
            f"not a reconfiguration packet (dport {dport:#x})")
    word = packet.read_int(_PAYLOAD_OFFSET, 2)
    resource = ResourceId.decode(word >> 4)
    index = packet.read_int(_PAYLOAD_OFFSET + 2, 1)
    nbytes = entry_payload_bytes(resource.rtype, params)
    entry = 0
    if nbytes:
        start = _PAYLOAD_OFFSET + _HEADER_LEN
        if len(packet) < start + nbytes:
            raise ReconfigurationError(
                f"payload truncated: need {nbytes} entry bytes")
        entry = packet.read_int(start, nbytes)
    return ReconfigPayload(resource=resource, index=index, entry=entry)
