"""Partition ledger: who owns which slice of each space-partitioned
resource (§3, Table 1).

Overlay resources are isolated by construction (one row per module).
Space-partitioned resources — match-action entries, VLIW actions, and
stateful memory — need explicit bookkeeping: this ledger records each
module's allocation and refuses overlapping or out-of-bounds grants, and
the runtime consults it so a control-plane write for module *M* can only
land inside *M*'s slice (resource-isolation requirement 2 of §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AdmissionError, IsolationViolationError
from ..rmt.params import DEFAULT_PARAMS, HardwareParams


@dataclass(frozen=True)
class StageAllocation:
    """A module's slice of one stage."""

    match_start: int = 0
    match_count: int = 0       #: CAM/VLIW rows [start, start+count)
    stateful_base: int = 0
    stateful_words: int = 0    #: stateful words [base, base+words)

    @property
    def match_end(self) -> int:
        return self.match_start + self.match_count

    @property
    def stateful_end(self) -> int:
        return self.stateful_base + self.stateful_words


@dataclass
class ModuleAllocation:
    """A module's complete allocation across the pipeline.

    ``stages`` maps stage index -> :class:`StageAllocation`. Stages not
    present get nothing in that stage.
    """

    module_id: int
    stages: Dict[int, StageAllocation] = field(default_factory=dict)

    def stage(self, index: int) -> StageAllocation:
        return self.stages.get(index, StageAllocation())

    def total_match_entries(self) -> int:
        return sum(s.match_count for s in self.stages.values())

    def total_stateful_words(self) -> int:
        return sum(s.stateful_words for s in self.stages.values())


class PartitionLedger:
    """Validates and records per-module partitions; answers ownership."""

    def __init__(self, params: HardwareParams = DEFAULT_PARAMS):
        self.params = params
        self._allocations: Dict[int, ModuleAllocation] = {}

    # -- admission ----------------------------------------------------------------

    def _check_overlap(self, alloc: ModuleAllocation) -> None:
        for stage_idx, new in alloc.stages.items():
            if not 0 <= stage_idx < self.params.num_stages:
                raise AdmissionError(
                    f"module {alloc.module_id}: stage {stage_idx} does not "
                    f"exist (pipeline has {self.params.num_stages})")
            if new.match_end > self.params.match_entries_per_stage:
                raise AdmissionError(
                    f"module {alloc.module_id}: match rows "
                    f"[{new.match_start}, {new.match_end}) exceed stage "
                    f"depth {self.params.match_entries_per_stage}")
            if new.stateful_end > self.params.stateful_words_per_stage:
                raise AdmissionError(
                    f"module {alloc.module_id}: stateful words "
                    f"[{new.stateful_base}, {new.stateful_end}) exceed "
                    f"stage memory {self.params.stateful_words_per_stage}")
            for other in self._allocations.values():
                if other.module_id == alloc.module_id:
                    continue
                o = other.stage(stage_idx)
                if (new.match_count and o.match_count
                        and new.match_start < o.match_end
                        and o.match_start < new.match_end):
                    raise AdmissionError(
                        f"match rows of module {alloc.module_id} overlap "
                        f"module {other.module_id} in stage {stage_idx}")
                if (new.stateful_words and o.stateful_words
                        and new.stateful_base < o.stateful_end
                        and o.stateful_base < new.stateful_end):
                    raise AdmissionError(
                        f"stateful words of module {alloc.module_id} overlap "
                        f"module {other.module_id} in stage {stage_idx}")

    def grant(self, alloc: ModuleAllocation) -> None:
        """Record an allocation after validating bounds and overlaps."""
        if alloc.module_id in self._allocations:
            raise AdmissionError(
                f"module {alloc.module_id} already has an allocation; "
                f"revoke first")
        if not 0 <= alloc.module_id < self.params.max_modules:
            raise AdmissionError(
                f"module id {alloc.module_id} exceeds the overlay depth "
                f"{self.params.max_modules}")
        self._check_overlap(alloc)
        self._allocations[alloc.module_id] = alloc

    def revoke(self, module_id: int) -> ModuleAllocation:
        if module_id not in self._allocations:
            raise AdmissionError(f"module {module_id} has no allocation")
        return self._allocations.pop(module_id)

    def allocation_of(self, module_id: int) -> Optional[ModuleAllocation]:
        return self._allocations.get(module_id)

    def loaded_modules(self) -> List[int]:
        return sorted(self._allocations)

    # -- ownership checks (write-path guards) ------------------------------------

    def check_match_write(self, module_id: int, stage: int,
                          index: int) -> None:
        """Guard: may ``module_id`` write CAM/VLIW row ``index``?"""
        alloc = self._allocations.get(module_id)
        if alloc is None:
            raise IsolationViolationError(
                f"module {module_id} is not loaded")
        s = alloc.stage(stage)
        if not s.match_start <= index < s.match_end:
            raise IsolationViolationError(
                f"module {module_id} may not write match row {index} of "
                f"stage {stage} (owns [{s.match_start}, {s.match_end}))")

    def check_stateful_write(self, module_id: int, stage: int,
                             addr: int) -> None:
        """Guard: may ``module_id`` initialize stateful word ``addr``?"""
        alloc = self._allocations.get(module_id)
        if alloc is None:
            raise IsolationViolationError(
                f"module {module_id} is not loaded")
        s = alloc.stage(stage)
        if not s.stateful_base <= addr < s.stateful_end:
            raise IsolationViolationError(
                f"module {module_id} may not touch stateful word {addr} of "
                f"stage {stage} (owns [{s.stateful_base}, {s.stateful_end}))")

    # -- capacity queries -----------------------------------------------------------

    def free_match_rows(self, stage: int) -> int:
        used = sum(a.stage(stage).match_count
                   for a in self._allocations.values())
        return self.params.match_entries_per_stage - used

    def free_stateful_words(self, stage: int) -> int:
        used = sum(a.stage(stage).stateful_words
                   for a in self._allocations.values())
        return self.params.stateful_words_per_stage - used

    def first_free_match_block(self, stage: int,
                               count: int) -> Optional[int]:
        """Lowest contiguous free CAM block of ``count`` rows, or None."""
        occupied = []
        for a in self._allocations.values():
            s = a.stage(stage)
            if s.match_count:
                occupied.append((s.match_start, s.match_end))
        occupied.sort()
        cursor = 0
        for start, end in occupied:
            if start - cursor >= count:
                return cursor
            cursor = max(cursor, end)
        if self.params.match_entries_per_stage - cursor >= count:
            return cursor
        return None

    def first_free_stateful_block(self, stage: int,
                                  words: int) -> Optional[int]:
        """Lowest contiguous free stateful block of ``words``, or None."""
        occupied = []
        for a in self._allocations.values():
            s = a.stage(stage)
            if s.stateful_words:
                occupied.append((s.stateful_base, s.stateful_end))
        occupied.sort()
        cursor = 0
        for start, end in occupied:
            if start - cursor >= words:
                return cursor
            cursor = max(cursor, end)
        if self.params.stateful_words_per_stage - cursor >= words:
            return cursor
        return None
