"""Per-module overlay configuration tables (§3, Table 1).

An overlay table is Menshen's central primitive for sharing a scarce
hardware unit (parser, key extractor, key mask, segment table) across
modules: instead of one configuration for the whole unit, the table holds
one configuration *per module*, indexed by the packet's module ID at
runtime — the embedded-systems "overlay" idea applied to a pipeline.

:class:`OverlayTable` extends the plain config array with:

* a module-indexed read path (``lookup``),
* a write log proving the *no-disruption* property — every
  reconfiguration touches exactly one module's row, and tests can assert
  that rows of other modules were never written.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigError
from ..rmt.config_table import ConfigTable


class OverlayTable(ConfigTable):
    """A config table whose index *is* the module ID."""

    def __init__(self, name: str, width_bits: int, depth: int):
        super().__init__(name, width_bits, depth)
        #: (module_id, value) tuples, in write order.
        self.write_log: List[Tuple[int, int]] = []

    def lookup(self, module_id: int) -> int:
        """Data-plane read of the module's configuration row.

        Raises :class:`~repro.errors.ConfigError` when the module ID
        exceeds the table depth — the hardware analogue is that such a
        module simply cannot exist on this pipeline.
        """
        if not 0 <= module_id < self.depth:
            raise ConfigError(
                f"{self.name}: module id {module_id} exceeds overlay depth "
                f"{self.depth}")
        return self.read(module_id)

    def write(self, index: int, value: int) -> None:
        super().write(index, value)
        self.write_log.append((index, value))

    def modules_written_since(self, mark: int) -> set:
        """Module rows written at or after write-log position ``mark``.

        Used by tests to assert the no-disruption invariant: during a
        reconfiguration of module *M*, this set must equal ``{M}``.
        """
        return {module_id for module_id, _ in self.write_log[mark:]}

    @property
    def log_position(self) -> int:
        return len(self.write_log)


def overlay_factory(name: str, width_bits: int, depth: int) -> OverlayTable:
    """Table factory handed to :class:`repro.rmt.stage.Stage` by Menshen."""
    return OverlayTable(name, width_bits, depth)
