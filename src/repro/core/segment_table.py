"""Segment table: space partitioning of stateful memory (§3.1).

Each stage's stateful memory is shared by all modules. A module accesses
it with *per-module* addresses which the segment table translates to
physical addresses using the module's ``(offset, range)`` entry —
exactly like classic segmentation. An access at or beyond ``range``
raises :class:`~repro.errors.SegmentFaultError` instead of touching
another module's words; that fault is the isolation guarantee.

The paper contrasts this hardware segment table with NetVRM's page table
programmed in P4: Menshen keeps stage-1 stateful memory usable and
spends no match-action resources on translation.
"""

from __future__ import annotations

from ..errors import SegmentFaultError
from ..rmt.action_engine import StatefulAccess
from ..rmt.encodings import decode_segment_entry, encode_segment_entry
from ..rmt.stateful import StatefulMemory
from .overlay import OverlayTable


class SegmentTable:
    """Per-module (offset, range) entries over one stage's memory."""

    def __init__(self, name: str, depth: int = 32):
        self.table = OverlayTable(name, 16, depth)

    def set_segment(self, module_id: int, offset: int, range_: int) -> None:
        """Install a module's segment (control-plane path)."""
        self.table.write(module_id, encode_segment_entry(offset, range_))

    def write_word(self, module_id: int, word: int) -> None:
        """Raw 16-bit write (reconfiguration-packet path)."""
        self.table.write(module_id, word)

    def segment_of(self, module_id: int) -> tuple:
        """Return the module's ``(offset, range)``."""
        return decode_segment_entry(self.table.lookup(module_id))

    def translate(self, module_id: int, addr: int) -> int:
        """Per-module address -> physical address, or fault.

        A module with range 0 has no stateful memory at all; any access
        faults.
        """
        offset, range_ = self.segment_of(module_id)
        if not 0 <= addr < range_:
            raise SegmentFaultError(
                f"{self.table.name}: module {module_id} address {addr} "
                f"outside its range {range_}")
        return offset + addr


class SegmentedAccess(StatefulAccess):
    """Stateful-memory adapter that routes through a segment table."""

    def __init__(self, memory: StatefulMemory, segment_table: SegmentTable):
        super().__init__(memory)
        self.segment_table = segment_table

    def translate(self, module_id: int, addr: int) -> int:
        return self.segment_table.translate(module_id, addr)
