"""Pipeline statistics: per-module counters and system-level telemetry.

The system-level module (§3.3) exposes "common and useful real-time
statistics (e.g., link utilization, queue length)" to tenant modules;
this class is where those numbers live in the simulation. The static
checker forbids modules from *writing* them (§3.4) — in the model they
are simply not reachable from the data path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable


class PipelineStats:
    """Counters for a Menshen pipeline."""

    def __init__(self) -> None:
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0
        self.reconfig_packets = 0
        self.per_module_in: Dict[int, int] = defaultdict(int)
        self.per_module_out: Dict[int, int] = defaultdict(int)
        self.per_module_dropped: Dict[int, int] = defaultdict(int)
        self.per_module_bytes_out: Dict[int, int] = defaultdict(int)
        self.drop_reasons: Dict[str, int] = defaultdict(int)
        #: Egress-scheduler telemetry (fed by
        #: :class:`repro.engine.scheduler.EgressScheduler` when one is
        #: installed): per-tenant bytes actually transmitted on the
        #: output links, and a live queue-depth gauge — the §3.3
        #: "queue length" statistic, now per tenant.
        self.egress_bytes_tx: Dict[int, int] = defaultdict(int)
        self.egress_queue_depth: Dict[int, int] = defaultdict(int)

    def record_in(self, module_id: int) -> None:
        self.packets_in += 1
        self.per_module_in[module_id] += 1

    def record_out(self, module_id: int, nbytes: int) -> None:
        self.packets_out += 1
        self.per_module_out[module_id] += 1
        self.per_module_bytes_out[module_id] += nbytes

    def record_drop(self, module_id: int, reason: str) -> None:
        self.packets_dropped += 1
        self.per_module_dropped[module_id] += 1
        self.drop_reasons[reason] += 1

    def record_reconfig(self) -> None:
        self.reconfig_packets += 1

    def record_egress_tx(self, module_id: int, nbytes: int) -> None:
        """One packet of ``module_id`` left an output link."""
        self.egress_bytes_tx[module_id] += nbytes

    def set_egress_depth(self, module_id: int, depth: int) -> None:
        """Update the per-tenant egress queue-depth gauge."""
        self.egress_queue_depth[module_id] = depth

    def link_utilization(self, module_id: int, elapsed_s: float,
                         link_bps: float) -> float:
        """Fraction of ``link_bps`` used by the module's output bytes."""
        if elapsed_s <= 0 or link_bps <= 0:
            return 0.0
        return (self.per_module_bytes_out[module_id] * 8
                / elapsed_s / link_bps)

    def summary(self) -> Dict[str, int]:
        return {
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "packets_dropped": self.packets_dropped,
            "reconfig_packets": self.reconfig_packets,
        }

    def merge_from(self, other: "PipelineStats") -> None:
        """Accumulate another pipeline's counters into this one.

        Used by the fabric layer to present fabric-wide per-tenant
        counters: each member switch keeps its own ``PipelineStats``,
        and a fabric-level view is the sum. Counters add; the
        queue-depth gauge also adds (total packets of the tenant queued
        anywhere in the fabric)."""
        self.packets_in += other.packets_in
        self.packets_out += other.packets_out
        self.packets_dropped += other.packets_dropped
        self.reconfig_packets += other.reconfig_packets
        for src, dst in (
                (other.per_module_in, self.per_module_in),
                (other.per_module_out, self.per_module_out),
                (other.per_module_dropped, self.per_module_dropped),
                (other.per_module_bytes_out, self.per_module_bytes_out),
                (other.drop_reasons, self.drop_reasons),
                (other.egress_bytes_tx, self.egress_bytes_tx),
                (other.egress_queue_depth, self.egress_queue_depth)):
            for key, value in src.items():
                dst[key] += value

    @classmethod
    def aggregate(cls, many: Iterable["PipelineStats"]) -> "PipelineStats":
        """A fresh ``PipelineStats`` holding the sum of ``many``.

        The fabric-wide statistics surface: aggregating every member
        switch's stats yields per-tenant counters for the whole fabric
        (a packet that crosses three switches counts three times in
        ``packets_in`` — per-hop semantics, like SNMP interface
        counters)."""
        total = cls()
        for stats in many:
            total.merge_from(stats)
        return total
