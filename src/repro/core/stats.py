"""Pipeline statistics: per-module counters and system-level telemetry.

The system-level module (§3.3) exposes "common and useful real-time
statistics (e.g., link utilization, queue length)" to tenant modules;
this class is where those numbers live in the simulation. The static
checker forbids modules from *writing* them (§3.4) — in the model they
are simply not reachable from the data path.

``PipelineStats`` is a dataclass on purpose: every aggregation the
multi-switch layers need — fabric-wide sums (:meth:`merge_from`),
parallel-worker result frames (:meth:`delta_since` /
:meth:`assign_from`) — is **introspected from the dataclass fields**
by the generic helpers below, so adding a counter can never silently
drop it from a merge. A field whose type the helpers cannot merge
raises ``TypeError`` at merge time instead of being skipped
(``tests/test_parallel.py`` locks this in).
"""

from __future__ import annotations

import copy
import dataclasses
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable


def _int_dict() -> Dict:
    return defaultdict(int)


# -- generic, introspected counter algebra -----------------------------------
#
# Shared by ``PipelineStats`` and ``repro.engine.batch.EngineCounters``:
# any counter dataclass whose fields are numbers, dicts of numbers, or
# dicts of further counter dataclasses can be merged (add), diffed
# (worker delta frames), and overwritten in place (snapshot restore)
# without enumerating a single field by hand.


def _unmergeable(obj, name: str) -> TypeError:
    return TypeError(
        f"counter field {type(obj).__name__}.{name} holds "
        f"{type(getattr(obj, name)).__name__}, which the introspected "
        f"counter algebra cannot merge — extend repro.core.stats or "
        f"use a number / dict-of-numbers / dict-of-counter-dataclass")


def merge_counters(dst, src) -> None:
    """Add ``src``'s counters into ``dst``, field by introspected field.

    Numbers add; dict values add per key (nested counter dataclasses
    recurse, created on first sight). Unknown field types raise —
    never skip — so a newly added counter cannot be dropped silently.
    """
    for f in dataclasses.fields(src):
        value = getattr(src, f.name)
        if isinstance(value, bool) or not isinstance(
                value, (int, float, dict)):
            raise _unmergeable(src, f.name)
        if isinstance(value, dict):
            mine = getattr(dst, f.name)
            for key, item in value.items():
                if dataclasses.is_dataclass(item):
                    into = mine.get(key)
                    if into is None:
                        into = mine[key] = type(item)()
                    merge_counters(into, item)
                elif isinstance(item, bool) or not isinstance(
                        item, (int, float)):
                    raise _unmergeable(src, f.name)
                else:
                    mine[key] = mine.get(key, 0) + item
        else:
            setattr(dst, f.name, getattr(dst, f.name) + value)


def diff_counters(current, baseline):
    """A fresh instance holding ``current - baseline`` per field.

    The worker-frame primitive of the parallel backend: a worker
    snapshots its counters at start, runs, and ships the delta; the
    parent then :func:`merge_counters` the delta into its own objects.
    Keys present in ``current`` stay present (even at delta 0) so the
    merged parent ends with exactly the key set a serial run creates.
    """
    out = type(current)()
    for f in dataclasses.fields(current):
        value = getattr(current, f.name)
        if isinstance(value, bool) or not isinstance(
                value, (int, float, dict)):
            raise _unmergeable(current, f.name)
        if isinstance(value, dict):
            base = getattr(baseline, f.name)
            mine = getattr(out, f.name)
            for key, item in value.items():
                if dataclasses.is_dataclass(item):
                    mine[key] = diff_counters(
                        item, base.get(key, type(item)()))
                elif isinstance(item, bool) or not isinstance(
                        item, (int, float)):
                    raise _unmergeable(current, f.name)
                else:
                    mine[key] = item - base.get(key, 0)
        else:
            setattr(out, f.name, value - getattr(baseline, f.name))
    return out


def assign_counters(dst, src) -> None:
    """Overwrite ``dst``'s fields with deep copies of ``src``'s.

    In place — object identity is preserved, which matters because
    live references exist (an ``EgressScheduler`` holds the very
    ``PipelineStats`` it feeds). Used to restore a snapshot after the
    parent replays declarative lifecycle ops post-run.
    """
    for f in dataclasses.fields(src):
        value = getattr(src, f.name)
        if isinstance(value, dict):
            mine = getattr(dst, f.name)
            mine.clear()
            mine.update(copy.deepcopy(value))
        else:
            setattr(dst, f.name, value)


@dataclass
class PipelineStats:
    """Counters for a Menshen pipeline."""

    packets_in: int = 0
    packets_out: int = 0
    packets_dropped: int = 0
    reconfig_packets: int = 0
    per_module_in: Dict[int, int] = field(default_factory=_int_dict)
    per_module_out: Dict[int, int] = field(default_factory=_int_dict)
    per_module_dropped: Dict[int, int] = field(default_factory=_int_dict)
    per_module_bytes_out: Dict[int, int] = field(default_factory=_int_dict)
    drop_reasons: Dict[str, int] = field(default_factory=_int_dict)
    #: Egress-scheduler telemetry (fed by
    #: :class:`repro.engine.scheduler.EgressScheduler` when one is
    #: installed): per-tenant bytes actually transmitted on the
    #: output links, and a live queue-depth gauge — the §3.3
    #: "queue length" statistic, now per tenant.
    egress_bytes_tx: Dict[int, int] = field(default_factory=_int_dict)
    egress_queue_depth: Dict[int, int] = field(default_factory=_int_dict)

    def record_in(self, module_id: int) -> None:
        self.packets_in += 1
        self.per_module_in[module_id] += 1

    def record_out(self, module_id: int, nbytes: int) -> None:
        self.packets_out += 1
        self.per_module_out[module_id] += 1
        self.per_module_bytes_out[module_id] += nbytes

    def record_drop(self, module_id: int, reason: str) -> None:
        self.packets_dropped += 1
        self.per_module_dropped[module_id] += 1
        self.drop_reasons[reason] += 1

    def record_reconfig(self) -> None:
        self.reconfig_packets += 1

    def record_egress_tx(self, module_id: int, nbytes: int) -> None:
        """One packet of ``module_id`` left an output link."""
        self.egress_bytes_tx[module_id] += nbytes

    def set_egress_depth(self, module_id: int, depth: int) -> None:
        """Update the per-tenant egress queue-depth gauge."""
        self.egress_queue_depth[module_id] = depth

    def link_utilization(self, module_id: int, elapsed_s: float,
                         link_bps: float) -> float:
        """Fraction of ``link_bps`` used by the module's output bytes."""
        if elapsed_s <= 0 or link_bps <= 0:
            return 0.0
        return (self.per_module_bytes_out[module_id] * 8
                / elapsed_s / link_bps)

    def summary(self) -> Dict[str, int]:
        return {
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "packets_dropped": self.packets_dropped,
            "reconfig_packets": self.reconfig_packets,
        }

    def merge_from(self, other: "PipelineStats") -> None:
        """Accumulate another pipeline's counters into this one.

        Used by the fabric layer to present fabric-wide per-tenant
        counters, and by the parallel backend to fold worker delta
        frames back into the parent's switches. Counters add; the
        queue-depth gauge also adds (total packets of the tenant
        queued anywhere in the fabric). Introspected from the
        dataclass fields — a new counter is merged automatically or
        raises, never skipped."""
        merge_counters(self, other)

    def snapshot(self) -> "PipelineStats":
        """An independent deep copy (a worker's start-of-run baseline)."""
        return copy.deepcopy(self)

    def delta_since(self, baseline: "PipelineStats") -> "PipelineStats":
        """A fresh ``PipelineStats`` holding ``self - baseline`` — the
        typed per-switch result frame a parallel worker ships home."""
        return diff_counters(self, baseline)

    def assign_from(self, other: "PipelineStats") -> None:
        """Overwrite this object's counters in place (snapshot restore)."""
        assign_counters(self, other)

    @classmethod
    def aggregate(cls, many: Iterable["PipelineStats"]) -> "PipelineStats":
        """A fresh ``PipelineStats`` holding the sum of ``many``.

        The fabric-wide statistics surface: aggregating every member
        switch's stats yields per-tenant counters for the whole fabric
        (a packet that crosses three switches counts three times in
        ``packets_in`` — per-hop semantics, like SNMP interface
        counters)."""
        total = cls()
        for stats in many:
            total.merge_from(stats)
        return total
