"""Daisy-chain configuration bus (§3.1 "Secure reconfiguration", App. A).

Commercial programmable switches configure pipeline stages through a
daisy chain reachable only over PCIe — physically separating packet
processing (read-only access to configuration) from reconfiguration
(write access). This class models that chain: an ordered list of hops
(parser, stage 0..N-1, deparser); a reconfiguration packet travels hop
by hop and is picked up by the hop owning its resource ID. One packet
configures one entry, regardless of entry width — the property that
makes the daisy chain beat AXI-Lite for wide entries (Fig. 12).

Fault injection: ``drop_next(n)`` makes the chain silently lose the next
``n`` packets before they reach the pipeline, exercising the software's
counter-based detect-and-retry protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ReconfigurationError
from ..net.packet import Packet
from ..rmt.params import DEFAULT_PARAMS, HardwareParams
from .packet_filter import PacketFilter
from .reconfig import ReconfigPayload, ResourceId, ResourceType, parse_reconfig_packet

#: A config sink applies one decoded write: ``sink(index, entry)``.
ConfigSink = Callable[[int, int], None]


class DaisyChain:
    """Ordered configuration hops with exactly-one-consumer delivery."""

    def __init__(self, packet_filter: Optional[PacketFilter] = None,
                 params: HardwareParams = DEFAULT_PARAMS):
        self.params = params
        self.packet_filter = packet_filter
        # hop order is informational (latency models); delivery is keyed.
        self._sinks: Dict[Tuple[ResourceType, int], ConfigSink] = {}
        self._hop_order: List[Tuple[ResourceType, int]] = []
        self.delivered = 0
        self.lost = 0
        self._drop_budget = 0

    def register(self, rtype: ResourceType, stage: int,
                 sink: ConfigSink) -> None:
        """Attach the sink handling ``(rtype, stage)`` writes."""
        key = (rtype, stage)
        if key in self._sinks:
            raise ReconfigurationError(
                f"duplicate daisy-chain hop for {rtype.name} stage {stage}")
        self._sinks[key] = sink
        self._hop_order.append(key)

    # -- fault injection -------------------------------------------------------

    def drop_next(self, count: int = 1) -> None:
        """Silently lose the next ``count`` packets (reliability tests)."""
        self._drop_budget += count

    # -- delivery -----------------------------------------------------------------

    def deliver(self, packet: Packet) -> Optional[ReconfigPayload]:
        """Push one reconfiguration packet down the chain.

        Returns the decoded payload on success, ``None`` if the packet
        was lost before reaching the pipeline (injected fault). The
        packet filter's counter increments only for packets that actually
        traverse the chain — exactly the signal the software polls to
        detect loss.
        """
        if self._drop_budget > 0:
            self._drop_budget -= 1
            self.lost += 1
            return None
        payload = parse_reconfig_packet(packet, self.params)
        sink = self._sinks.get((payload.resource.rtype,
                                payload.resource.stage))
        if sink is None:
            raise ReconfigurationError(
                f"no hop for {payload.resource.rtype.name} "
                f"stage {payload.resource.stage}")
        sink(payload.index, payload.entry)
        self.delivered += 1
        if self.packet_filter is not None:
            self.packet_filter.count_reconfig_packet()
        return payload

    def hops(self) -> List[Tuple[ResourceType, int]]:
        """Registered hops in registration (chain) order."""
        return list(self._hop_order)

    def hop_position(self, resource: ResourceId) -> int:
        """Index of the hop along the chain (for latency modeling)."""
        key = (resource.rtype, resource.stage)
        try:
            return self._hop_order.index(key)
        except ValueError as exc:
            raise ReconfigurationError(
                f"no hop for {resource.rtype.name} stage "
                f"{resource.stage}") from exc
