"""Shared integer-interval utilities.

Two conventions coexist in the codebase and both live here, explicitly
named so call sites cannot mix them up:

* :func:`overlap` works on **half-open** ``[lo, hi)`` ranges — the
  natural shape for row/byte ranges (CAM partitions, deparse spans);
* :func:`subtract` and :func:`merge` work on **closed** ``[lo, hi]``
  intervals over a discrete domain — the shape the compiled
  classifier's interval arrays use, where ``hi`` is the largest key
  still inside the interval and adjacent intervals (``lo == last_hi +
  1``) coalesce.

Used by :mod:`repro.engine.classifier` (priority resolution by
claimed-interval subtraction), :mod:`repro.analysis.passes`
(partition-disjointness proofs), and :mod:`repro.analysis.equiv`
(independent re-derivation of classifier coverage).
"""

from __future__ import annotations

from typing import List, Tuple

Interval = Tuple[int, int]


def overlap(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> bool:
    """True when half-open ``[a_lo, a_hi)`` and ``[b_lo, b_hi)`` intersect."""
    return a_lo < b_hi and b_lo < a_hi


def subtract(interval: Interval,
             claimed: List[Interval]) -> List[Interval]:
    """Closed ``interval`` minus the union of ``claimed``.

    ``claimed`` must be sorted and disjoint (the invariant
    :func:`merge` maintains). Returns the surviving pieces in
    ascending order; pieces are themselves disjoint and contained in
    ``interval``.
    """
    lo, hi = interval
    pieces: List[Interval] = []
    for c_lo, c_hi in claimed:
        if c_hi < lo or c_lo > hi:
            continue
        if c_lo > lo:
            pieces.append((lo, c_lo - 1))
        lo = max(lo, c_hi + 1)
        if lo > hi:
            break
    if lo <= hi:
        pieces.append((lo, hi))
    return pieces


def merge(claimed: List[Interval], interval: Interval) -> None:
    """Insert closed ``interval`` into the sorted disjoint list, in
    place, coalescing adjacent (``lo == last_hi + 1``) and overlapping
    intervals."""
    claimed.append(interval)
    claimed.sort()
    merged = [claimed[0]]
    for lo, hi in claimed[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + 1:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    claimed[:] = merged


__all__ = ["Interval", "overlap", "subtract", "merge"]
