"""Packet filter: ingress classification and reconfiguration safety (§3.1, §4.1).

The filter sits before the parser and

* discards packets without a VLAN tag (control packets such as BFD can
  instead be diverted to the control plane),
* recognizes reconfiguration packets by their UDP destination port
  (0xf1f2) so data packets can never reach the configuration path,
* holds the two software-visible registers used during reconfiguration:
  a 4-byte **reconfiguration packet counter** (increments when a
  reconfiguration packet passes through the daisy chain) and a 32-bit
  **bitmap** of modules currently being updated — data packets of a
  module whose bit is set are dropped so in-flight packets never meet a
  half-written configuration,
* tags packets round-robin with a packet-buffer number (0-3) and a
  parser number (0-1) for the §3.2 optimized datapath.
"""

from __future__ import annotations

from enum import Enum

from ..errors import ConfigError
from ..net.ethernet import ETHERTYPE_VLAN
from ..net.packet import Packet
from ..net.udp_ import MENSHEN_RECONFIG_DPORT

#: Byte offsets inside an Ethernet+802.1Q+IPv4+UDP frame.
_ETHERTYPE_OFFSET = 12
_VLAN_TCI_OFFSET = 14
_IP_PROTO_OFFSET = 18 + 9
_UDP_DPORT_OFFSET = 18 + 20 + 2

COUNTER_BITS = 32
BITMAP_BITS = 32


class PacketClass(Enum):
    """Filter verdicts."""

    DATA = "data"                  #: VLAN-tagged tenant packet
    RECONFIG = "reconfig"          #: daisy-chain configuration packet
    CONTROL = "control"            #: untagged (e.g. BFD) -> control plane
    DROP_UPDATING = "drop_updating"  #: module bit set in the bitmap


class PacketFilter:
    """Classifies ingress packets and guards reconfiguration."""

    def __init__(self, num_buffers: int = 4, num_parsers: int = 2):
        if num_buffers < 1 or num_buffers > 4:
            raise ConfigError("packet filter supports 1-4 packet buffers")
        self.num_buffers = num_buffers
        self.num_parsers = num_parsers
        self.reconfig_counter = 0     #: 4-byte wrap-around counter
        self.update_bitmap = 0        #: 32-bit module-under-update bitmap
        self._next_buffer = 0
        self._next_parser = 0
        self.data_packets = 0
        self.reconfig_packets = 0
        self.dropped_untagged = 0
        self.dropped_updating = 0

    # -- register file (AXI-Lite accessible, §4.1) --------------------------

    def read_counter(self) -> int:
        return self.reconfig_counter

    def write_bitmap(self, bitmap: int) -> None:
        if not 0 <= bitmap < (1 << BITMAP_BITS):
            raise ConfigError(f"bitmap {bitmap:#x} exceeds 32 bits")
        self.update_bitmap = bitmap

    def read_bitmap(self) -> int:
        return self.update_bitmap

    def set_module_updating(self, module_id: int) -> None:
        if not 0 <= module_id < BITMAP_BITS:
            raise ConfigError(f"module id {module_id} exceeds bitmap width")
        self.update_bitmap |= (1 << module_id)

    def clear_module_updating(self, module_id: int) -> None:
        if not 0 <= module_id < BITMAP_BITS:
            raise ConfigError(f"module id {module_id} exceeds bitmap width")
        self.update_bitmap &= ~(1 << module_id)

    def is_module_updating(self, module_id: int) -> bool:
        return bool(self.update_bitmap >> module_id & 1)

    def count_reconfig_packet(self) -> None:
        """Called by the daisy chain when a packet passes through."""
        self.reconfig_counter = (self.reconfig_counter + 1) % (1 << COUNTER_BITS)

    # -- classification ----------------------------------------------------------

    @staticmethod
    def is_reconfig_packet(packet: Packet) -> bool:
        """UDP destination port == 0xf1f2 (a simple combinational check)."""
        if len(packet) < _UDP_DPORT_OFFSET + 2:
            return False
        if packet.read_int(_ETHERTYPE_OFFSET, 2) != ETHERTYPE_VLAN:
            return False
        if packet.read_int(_IP_PROTO_OFFSET, 1) != 17:
            return False
        return packet.read_int(_UDP_DPORT_OFFSET, 2) == MENSHEN_RECONFIG_DPORT

    def classify(self, packet: Packet) -> PacketClass:
        """Classify one ingress packet, updating filter statistics."""
        if self.is_reconfig_packet(packet):
            self.reconfig_packets += 1
            return PacketClass.RECONFIG
        if (len(packet) < _VLAN_TCI_OFFSET + 2
                or packet.read_int(_ETHERTYPE_OFFSET, 2) != ETHERTYPE_VLAN):
            self.dropped_untagged += 1
            return PacketClass.CONTROL
        vid = packet.read_int(_VLAN_TCI_OFFSET, 2) & 0xFFF
        if vid < BITMAP_BITS and self.is_module_updating(vid):
            self.dropped_updating += 1
            return PacketClass.DROP_UPDATING
        self.data_packets += 1
        return PacketClass.DATA

    # -- §3.2 optimization tags ----------------------------------------------

    def assign_buffer(self) -> int:
        """Round-robin packet-buffer tag (one-hot encoded in metadata)."""
        tag = self._next_buffer
        self._next_buffer = (self._next_buffer + 1) % self.num_buffers
        return tag

    def assign_parser(self) -> int:
        """Round-robin parser assignment (0 or 1)."""
        parser = self._next_parser
        self._next_parser = (self._next_parser + 1) % self.num_parsers
        return parser
