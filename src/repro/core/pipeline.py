"""The Menshen pipeline: RMT + isolation primitives (§3.1, Fig. 2).

``MenshenPipeline`` assembles:

* a packet filter (VLAN check, reconfiguration-port check, update bitmap),
* a programmable parser/deparser with depth-32 **overlay** tables,
* ``num_stages`` match-action stages whose key-extractor/key-mask tables
  are overlays, whose CAM entries carry the module ID, and whose stateful
  memory sits behind a **segment table**,
* a **daisy chain** wired to every configuration table — the only write
  path into the pipeline,
* a partition ledger and statistics.

Two platform modes mirror the two prototypes (§3.1):

* ``reconfig_from_dataplane=False`` (NetFPGA switch): the daisy chain is
  reachable only through :meth:`inject_reconfig` (the PCIe path);
  reconfiguration-port packets on the data path are dropped.
* ``reconfig_from_dataplane=True`` (Corundum NIC): the packet filter
  admits reconfiguration packets from the shared ingress into the chain.

When a system-level module is installed (§3.3), the first and last
stages process *every* packet under the system module's ID; tenant
modules own the stages in between.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..errors import ReconfigurationError
from ..net.packet import Packet
from ..rmt.deparser import Deparser
from ..rmt.params import DEFAULT_PARAMS, HardwareParams
from ..rmt.parser import ProgrammableParser, extract_module_id
from ..rmt.pipeline import PipelineResult
from ..rmt.stage import Stage
from ..rmt.traffic_manager import TrafficManager
from .daisy_chain import DaisyChain
from .overlay import OverlayTable, overlay_factory
from .packet_filter import PacketClass, PacketFilter
from .reconfig import ReconfigPayload, ResourceType
from .resources import PartitionLedger
from .segment_table import SegmentTable, SegmentedAccess
from .stats import PipelineStats

#: Module ID reserved for the system-level module (§3.3). VID 0 is
#: reserved by 802.1Q anyway, so no tenant can carry it.
SYSTEM_MODULE_ID = 0


class _CamInvalidateHop:
    """Daisy-chain handler invalidating one stage's CAM row.

    A named callable (not a lambda) so a configured pipeline stays
    picklable — the parallel execution backend ships whole switches to
    worker processes as pickled specs.
    """

    __slots__ = ("stage",)

    def __init__(self, stage: Stage):
        self.stage = stage

    def __call__(self, index: int, _entry) -> None:
        self.stage.match_table.invalidate(index)


class MenshenPipeline:
    """A multi-module RMT pipeline with Menshen's isolation mechanisms."""

    def __init__(self, params: HardwareParams = DEFAULT_PARAMS,
                 num_ports: int = 8,
                 reconfig_from_dataplane: bool = False,
                 match_mode: str = "exact",
                 enable_default_actions: bool = False):
        self.params = params
        self.match_mode = match_mode
        self.enable_default_actions = enable_default_actions
        depth = params.max_modules

        self.parser_table = OverlayTable("parser_table",
                                         params.parser_entry_bits, depth)
        self.deparser_table = OverlayTable("deparser_table",
                                           params.parser_entry_bits, depth)
        self.parser = ProgrammableParser(self.parser_table, params)
        self.deparser = Deparser(self.deparser_table, params)

        self.stages: List[Stage] = []
        self.segment_tables: List[SegmentTable] = []
        for i in range(params.num_stages):
            stage = Stage(i, params, table_factory=overlay_factory,
                          config_depth=depth, match_mode=match_mode,
                          enable_default_actions=enable_default_actions)
            segment = SegmentTable(f"stage{i}.segment", depth)
            stage.set_stateful_access(
                SegmentedAccess(stage.stateful_memory, segment))
            self.stages.append(stage)
            self.segment_tables.append(segment)

        self.packet_filter = PacketFilter()
        self.daisy_chain = DaisyChain(self.packet_filter, params)
        self._register_hops()

        self.ledger = PartitionLedger(params)
        self.stats = PipelineStats()
        self.traffic_manager = TrafficManager(num_ports=num_ports)
        self.reconfig_from_dataplane = reconfig_from_dataplane

        #: Modules with installed programs; packets of others are dropped.
        self.loaded_modules: Set[int] = set()
        #: Stages owned by the system-level module (empty until one loads).
        self.system_stages: Set[int] = set()
        #: Monotonic configuration version. Every write that lands through
        #: the daisy chain — and every module load/unload — bumps it, so
        #: result caches (``repro.engine``) can validate memoized results
        #: against the configuration they were learned under.
        self.config_epoch = 0

    # -- daisy-chain wiring ----------------------------------------------------

    def _register_hops(self) -> None:
        chain = self.daisy_chain
        chain.register(ResourceType.PARSER_TABLE, 0, self.parser_table.write)
        for i, stage in enumerate(self.stages):
            chain.register(ResourceType.KEY_EXTRACTOR, i,
                           stage.key_extract_table.write)
            chain.register(ResourceType.KEY_MASK, i,
                           stage.key_mask_table.write)
            if self.match_mode == "ternary":
                chain.register(ResourceType.TCAM, i,
                               stage.match_table.write_word)
            else:
                chain.register(ResourceType.CAM, i,
                               stage.match_table.write_word)
            chain.register(ResourceType.CAM_INVALIDATE, i,
                           _CamInvalidateHop(stage))
            chain.register(ResourceType.VLIW, i, stage.write_vliw_word)
            if stage.default_vliw_table is not None:
                chain.register(ResourceType.DEFAULT_VLIW, i,
                               stage.default_vliw_table.write)
            chain.register(ResourceType.SEGMENT, i,
                           self.segment_tables[i].write_word)
            chain.register(ResourceType.STATEFUL_WORD, i,
                           stage.stateful_memory.write)
        chain.register(ResourceType.DEPARSER_TABLE, 0,
                       self.deparser_table.write)

    # -- module lifecycle hooks (used by repro.runtime.controller) -----------

    def mark_loaded(self, module_id: int) -> None:
        self.loaded_modules.add(module_id)
        self.config_epoch += 1

    def mark_unloaded(self, module_id: int) -> None:
        self.loaded_modules.discard(module_id)
        self.config_epoch += 1

    def set_system_stages(self, stages: Set[int]) -> None:
        """Declare which stages the system-level module occupies."""
        for s in stages:
            if not 0 <= s < self.params.num_stages:
                raise ReconfigurationError(f"no such stage: {s}")
        self.system_stages = set(stages)
        self.config_epoch += 1

    # -- reconfiguration paths ------------------------------------------------------

    def inject_reconfig(self, packet: Packet) -> Optional[ReconfigPayload]:
        """The trusted PCIe path into the daisy chain.

        Returns the applied payload, or ``None`` if the chain lost the
        packet (injected fault) — the caller detects this through the
        reconfiguration counter, like the real software does.
        """
        if not self.packet_filter.is_reconfig_packet(packet):
            raise ReconfigurationError(
                "not a reconfiguration packet (wrong UDP port or shape)")
        payload = self.daisy_chain.deliver(packet)
        if payload is not None:
            self.stats.record_reconfig()
            self.config_epoch += 1
        return payload

    # -- data plane ------------------------------------------------------------------
    #
    # ``process`` is split into three phases so a batched executor
    # (:mod:`repro.engine`) can interpose a result cache between them
    # without re-implementing any semantics:
    #
    # * :meth:`admit`   — filter verdict, module dispatch, early drops;
    # * :meth:`execute` — parse -> stages -> deparse (the expensive part);
    # * :meth:`commit`  — traffic-manager enqueue + output statistics.

    def admit(self, packet: Packet) -> Tuple[Optional[PipelineResult], int]:
        """Classify one ingress packet and dispatch it to its module.

        Returns ``(early_result, module_id)``: ``early_result`` is a
        finished :class:`PipelineResult` for packets that never reach the
        parser (reconfiguration, untagged, module-updating, unknown
        module); otherwise it is ``None`` and ``module_id`` names the
        admitted tenant.
        """
        verdict = self.packet_filter.classify(packet)

        if verdict == PacketClass.RECONFIG:
            if self.reconfig_from_dataplane:
                payload = self.daisy_chain.deliver(packet)
                if payload is not None:
                    self.stats.record_reconfig()
                    self.config_epoch += 1
                return (PipelineResult(packet=None, phv=None, dropped=True,
                                       drop_reason="reconfig_consumed"), 0)
            # Switch mode: data ports must never reach the config path.
            self.stats.record_drop(0, "reconfig_on_dataplane")
            return (PipelineResult(packet=None, phv=None, dropped=True,
                                   drop_reason="reconfig_on_dataplane"), 0)

        if verdict == PacketClass.CONTROL:
            self.stats.record_drop(0, "untagged")
            return (PipelineResult(packet=None, phv=None, dropped=True,
                                   drop_reason="untagged"), 0)

        module_id = extract_module_id(packet)

        if verdict == PacketClass.DROP_UPDATING:
            self.stats.record_in(module_id)
            self.stats.record_drop(module_id, "module_updating")
            return (PipelineResult(packet=None, phv=None, dropped=True,
                                   module_id=module_id,
                                   drop_reason="module_updating"), module_id)

        self.stats.record_in(module_id)
        if module_id not in self.loaded_modules:
            self.stats.record_drop(module_id, "unknown_module")
            return (PipelineResult(packet=None, phv=None, dropped=True,
                                   module_id=module_id,
                                   drop_reason="unknown_module"), module_id)
        return (None, module_id)

    def execute(self, packet: Packet, module_id: int,
                buffer_slot: Optional[int] = None
                ) -> Tuple[Optional[Packet], "PHV"]:
        """Run an admitted packet through parser, stages, and deparser.

        ``buffer_slot`` lets a batched executor pre-assign the §3.2
        packet-buffer slot in arrival order (the scalar path draws it
        round-robin here). Returns ``(merged, phv)``; ``merged`` is
        ``None`` when the module discarded the packet.
        """
        buffered = packet.copy()  # the packet buffer's copy
        phv = self.parser.parse(packet, module_id)
        if buffer_slot is None:
            buffer_slot = self.packet_filter.assign_buffer()
        phv.metadata.buffer_tag = 1 << buffer_slot

        for i, stage in enumerate(self.stages):
            stage_module = (SYSTEM_MODULE_ID if i in self.system_stages
                            else module_id)
            phv = stage.process(phv, stage_module)

        merged = self.deparser.deparse(phv, buffered, module_id)
        return merged, phv

    def commit(self, merged: Optional[Packet], phv: "PHV",
               module_id: int, cache_hit: bool = False) -> PipelineResult:
        """Account for an executed packet and enqueue it into the TM."""
        if merged is None:
            self.stats.record_drop(module_id, "discard")
            return PipelineResult(packet=None, phv=phv, dropped=True,
                                  module_id=module_id, drop_reason="discard",
                                  cache_hit=cache_hit)
        egress = phv.metadata.dst_port
        mcast = phv.metadata.mcast_group
        self.traffic_manager.enqueue(merged, egress, mcast,
                                     module_id=module_id)
        self.stats.record_out(module_id, len(merged))
        return PipelineResult(packet=merged, phv=phv, dropped=False,
                              egress_port=egress, mcast_group=mcast,
                              module_id=module_id, cache_hit=cache_hit)

    def process(self, packet: Packet) -> PipelineResult:
        """Push one ingress packet through filter, pipeline, and TM."""
        early, module_id = self.admit(packet)
        if early is not None:
            return early
        merged, phv = self.execute(packet, module_id)
        return self.commit(merged, phv, module_id)

    def process_many(self, packets: List[Packet]) -> List[PipelineResult]:
        return [self.process(p) for p in packets]
