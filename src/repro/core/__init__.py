"""Menshen's isolation layer on top of the RMT substrate.

This package contains the paper's contribution (§3): per-module overlay
configuration tables, the segment table for stateful-memory space
partitioning, the packet filter with its reconfiguration bitmap and
counter, reconfiguration packets, the daisy-chain configuration bus,
the partition ledger that enforces resource isolation, and the
:class:`~repro.core.pipeline.MenshenPipeline` assembling it all.
"""

from .overlay import OverlayTable
from .segment_table import SegmentTable, SegmentedAccess
from .packet_filter import PacketFilter, PacketClass
from .reconfig import (
    ResourceType,
    ResourceId,
    ConfigWrite,
    ReconfigPayload,
    build_reconfig_packet,
    parse_reconfig_packet,
    entry_payload_bytes,
)
from .daisy_chain import DaisyChain
from .resources import ModuleAllocation, PartitionLedger
from .stats import PipelineStats
from .pipeline import MenshenPipeline, SYSTEM_MODULE_ID

__all__ = [
    "OverlayTable",
    "SegmentTable",
    "SegmentedAccess",
    "PacketFilter",
    "PacketClass",
    "ResourceType",
    "ResourceId",
    "ConfigWrite",
    "ReconfigPayload",
    "build_reconfig_packet",
    "parse_reconfig_packet",
    "entry_payload_bytes",
    "DaisyChain",
    "ModuleAllocation",
    "PartitionLedger",
    "PipelineStats",
    "MenshenPipeline",
    "SYSTEM_MODULE_ID",
]
