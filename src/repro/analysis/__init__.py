"""Static analysis: isolation proofs for tenant programs, determinism
lint for the codebase, equivalence certification for compiled artifacts.

Three faces share one diagnostics model (:class:`Finding`,
:class:`Severity`, :class:`AnalysisReport`):

* the **verifier** (:mod:`repro.analysis.passes`,
  :mod:`repro.analysis.verify`, CLI ``repro-verify``) proves, before a
  tenant is admitted, that its program fits its quota, that distinct
  VIDs' write sets are disjoint, that routing stays loop-free, and that
  nothing it installs can rewrite tenant identity;
* the **lint** (:mod:`repro.analysis.lint`, CLI ``repro-lint``) bans
  nondeterminism and fork-hostile state from our own sources;
* the **certifier** (:mod:`repro.analysis.equiv`, CLI
  ``repro-verify --classifier``) statically proves a tenant's compiled
  classifier (flow cache v2) equivalent to its installed tables, and
  synthesizes counterexample packets when it is not.

This package sits *below* :mod:`repro.runtime`, :mod:`repro.api`, and
:mod:`repro.fabric` in the layering — they import it to gate admission.
The verifier and lint only import the compiler, core, and rmt layers;
the :mod:`~repro.analysis.equiv` subpackage additionally imports
:mod:`repro.engine` (its subject is the engine's compiled artifact) and
is therefore *not* re-exported here — import it explicitly, as the
engine does lazily for ``BatchEngine(check_compiled=...)``.
"""

from .findings import AnalysisReport, Finding, Severity
from .lint import RULES as LINT_RULES
from .lint import lint_paths, lint_source
from .passes import (
    CONFIG_PASSES,
    MODULE_PASSES,
    ConfigContext,
    DeadCodePass,
    IdentityWritePass,
    ModuleContext,
    ResourceQuotaPass,
    TenantConfig,
    WriteSetDisjointnessPass,
    find_loop,
    loop_findings,
    run_config_passes,
    run_module_passes,
)
from .verify import (
    VERIFY_MODES,
    AnalysisWarning,
    analyze_compiled,
    analyze_source,
    analyze_switch,
    build_config_context,
    check_mode,
    verify_admission,
)

__all__ = [
    "AnalysisReport",
    "AnalysisWarning",
    "CONFIG_PASSES",
    "ConfigContext",
    "DeadCodePass",
    "Finding",
    "IdentityWritePass",
    "LINT_RULES",
    "MODULE_PASSES",
    "ModuleContext",
    "ResourceQuotaPass",
    "Severity",
    "TenantConfig",
    "VERIFY_MODES",
    "WriteSetDisjointnessPass",
    "analyze_compiled",
    "analyze_source",
    "analyze_switch",
    "build_config_context",
    "check_mode",
    "find_loop",
    "lint_paths",
    "lint_source",
    "loop_findings",
    "run_config_passes",
    "run_module_passes",
    "verify_admission",
]
