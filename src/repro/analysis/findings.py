"""The diagnostics model every analysis face shares.

A :class:`Finding` is one machine-checkable fact about a program, a
switch configuration, or the codebase itself: a severity, a stable
``code`` (the rule that fired), the pass that produced it, and enough
location to act on (subject, stage, file, line). Passes yield findings;
an :class:`AnalysisReport` collects them, renders them for humans,
serializes them for tools, and — on the enforcement paths — converts
them back into a typed exception (:class:`~repro.errors.AnalysisError`)
carrying the full structured list.

The same model serves both faces of :mod:`repro.analysis`: the tenant
program verifier (``repro-verify``) and the codebase determinism lint
(``repro-lint``), so downstream tooling parses one JSON schema.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Type

from ..errors import AnalysisError


class Severity(enum.IntEnum):
    """Ordered severity: comparisons follow enforcement strictness."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}") from None


@dataclass(frozen=True)
class Finding:
    """One analysis result.

    ``code`` is the stable rule identifier (e.g. ``overlap-match``,
    ``set-iteration``) tools and suppressions key on; ``pass_name``
    names the pass that produced it. ``subject`` is what the finding is
    about — a module name, ``"vid 3"``, or a source path for lint
    findings. ``stage``/``line`` locate it when meaningful.
    """

    code: str
    severity: Severity
    message: str
    pass_name: str = ""
    subject: str = ""
    stage: Optional[int] = None
    line: int = 0

    def __str__(self) -> str:
        where = []
        if self.subject:
            where.append(self.subject)
        if self.stage is not None:
            where.append(f"stage {self.stage}")
        if self.line:
            where.append(f"line {self.line}")
        loc = f" [{', '.join(where)}]" if where else ""
        return f"{self.severity}:{self.code}{loc}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (severity as its lowercase name)."""
        data = asdict(self)
        data["severity"] = str(self.severity)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        kwargs = dict(data)
        kwargs["severity"] = Severity.parse(kwargs["severity"])
        return cls(**kwargs)


@dataclass
class AnalysisReport:
    """An ordered collection of findings with enforcement helpers."""

    findings: List[Finding] = field(default_factory=list)

    # -- collection -----------------------------------------------------------

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        self.findings.extend(other.findings)
        return self

    # -- views ----------------------------------------------------------------

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity >= Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings
                if f.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when nothing at ERROR severity was found."""
        return not self.errors

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.code == code]

    def __len__(self) -> int:
        return len(self.findings)

    def __bool__(self) -> bool:
        # A report is always truthy; emptiness is asked via len() and
        # acceptability via .ok, and conflating them invites bugs.
        return True

    # -- output ---------------------------------------------------------------

    def render(self, title: str = "") -> str:
        """Human-readable multi-line summary."""
        lines = []
        if title:
            lines.append(f"{title}: "
                         f"{'ok' if self.ok else 'REJECTED'} "
                         f"({len(self.errors)} errors, "
                         f"{len(self.warnings)} warnings)")
        lines.extend(f"  {f}" for f in self.findings)
        return "\n".join(lines) if lines else "no findings"

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps([f.to_dict() for f in self.findings],
                          indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisReport":
        return cls([Finding.from_dict(d) for d in json.loads(text)])

    # -- enforcement ----------------------------------------------------------

    def raise_if_errors(self, summary: str = "static analysis failed",
                        error_cls: Type[AnalysisError] = AnalysisError
                        ) -> None:
        """Raise ``error_cls`` carrying the findings when any ERROR-level
        finding is present; no-op otherwise."""
        errors = self.errors
        if errors:
            detail = "; ".join(str(f) for f in errors)
            raise error_cls(f"{summary}: {detail}", self.findings)
