"""The codebase determinism lint (``repro-lint``).

An AST-based linter over our *own* sources, flagging the hazards that
make a simulation irreproducible or a future multiprocess scale-out
unsafe to fork:

``mutable-global``
    Module-level mutable state that is mutated at runtime — a name
    bound at module scope to a ``dict``/``list``/``set``/``deque`` (or
    their constructors) that some function in the same module mutates
    (method call, subscript assignment, ``global`` rebinding). Shared
    across every engine in the process; poison for workers.
``unseeded-random``
    ``random.<fn>()`` / ``numpy.random.<fn>()`` calls through the
    module-global generator, or bare ``random.Random()`` /
    ``default_rng()`` with no seed argument. Seeded constructions are
    fine — determinism requires the seed to be explicit.
``wall-clock``
    ``time.time()`` / ``time.time_ns()`` / ``datetime.now()`` /
    ``datetime.utcnow()`` in library code: simulations must run on
    virtual time, and wall-clock reads make replays diverge.
``set-iteration``
    Iterating a value statically known to be a bare ``set`` or
    ``frozenset`` (for-loops, comprehensions) — Python set order is
    salted per process, so any output derived from it is
    nondeterministic. Wrapping in ``sorted(...)`` neutralizes it.
``bare-assert``
    ``assert`` statements in library code. Asserts are compiled away
    under ``python -O``, so an invariant guarded by one silently stops
    being checked in optimized deployments — raise a typed
    :mod:`repro.errors` exception instead. (Tests are not linted;
    pytest asserts are fine where they live.)

Suppression is per-line via a pragma comment::

    for x in pool:  # repro-lint: disable=set-iteration

Findings reuse the verifier's :class:`~repro.analysis.findings.Finding`
model (``subject`` is the file path), so ``repro-lint --json`` and
``repro-verify --json`` emit the same schema. A committed baseline
(findings we have consciously accepted) can be subtracted; this repo's
baseline is empty and CI keeps it that way.
"""

from __future__ import annotations

import ast
import re
import tokenize
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .findings import AnalysisReport, Finding, Severity

RULES = ("mutable-global", "unseeded-random", "wall-clock", "set-iteration",
         "bare-assert")

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=([\w\-, ]+))?")

#: Constructor names whose module-level result counts as mutable.
_MUTABLE_CONSTRUCTORS = {"dict", "list", "set", "deque", "defaultdict",
                         "OrderedDict", "Counter", "bytearray"}

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = {"append", "extend", "insert", "add", "update", "pop",
                    "popitem", "remove", "discard", "clear", "setdefault",
                    "appendleft", "sort", "__setitem__"}

#: ``random.<name>`` calls that draw from the module-global generator.
_GLOBAL_RANDOM_FNS = {"random", "randint", "randrange", "uniform", "choice",
                      "choices", "sample", "shuffle", "gauss", "normalvariate",
                      "expovariate", "betavariate", "getrandbits",
                      "triangular", "vonmisesvariate", "paretovariate",
                      "random_sample", "rand", "randn"}

#: Consumers that make set iteration order-insensitive.
_ORDER_NEUTRALIZERS = {"sorted", "len", "sum", "min", "max", "any", "all",
                       "set", "frozenset"}


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------

def parse_pragmas(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> suppressed rule set (None = all rules) from comments."""
    pragmas: Dict[int, Optional[Set[str]]] = {}
    lines = source.splitlines(keepends=True)
    reader = iter(lines).__next__
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            rules = match.group(1)
            if rules is None:
                pragmas[tok.start[0]] = None
            else:
                names = {r.strip() for r in rules.split(",") if r.strip()}
                existing = pragmas.get(tok.start[0])
                if existing is None and tok.start[0] in pragmas:
                    continue   # blanket pragma already present
                pragmas[tok.start[0]] = (existing or set()) | names
    except tokenize.TokenError:
        pass   # unterminated constructs: lint the lines we could read
    return pragmas


def _suppressed(pragmas: Dict[int, Optional[Set[str]]], line: int,
                code: str) -> bool:
    if line not in pragmas:
        return False
    rules = pragmas[line]
    return rules is None or code in rules


# ---------------------------------------------------------------------------
# Rule helpers
# ---------------------------------------------------------------------------

def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for an attribute/name chain, else ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name.rsplit(".", 1)[-1] in _MUTABLE_CONSTRUCTORS
    return False


def _module_level_assigns(tree: ast.Module) -> Dict[str, ast.stmt]:
    """Names bound to mutable containers at module scope."""
    out: Dict[str, ast.stmt] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_literal(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt
    return out


class _GlobalMutationFinder(ast.NodeVisitor):
    """Find runtime mutations of module-level names, inside functions."""

    def __init__(self, globals_: Dict[str, ast.stmt]):
        self.globals = globals_
        self.mutated: Dict[str, int] = {}   # name -> first mutation line
        self._depth = 0
        self._shadowed: List[Set[str]] = []

    def _local(self, name: str) -> bool:
        return any(name in scope for scope in self._shadowed)

    def _enter_function(self, node: Any) -> None:
        args = node.args
        names = {a.arg for a in args.args + args.kwonlyargs
                 + args.posonlyargs}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        # Locally assigned names shadow the module globals, unless
        # re-exposed with a ``global`` statement.
        hard_globals = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                hard_globals.update(sub.names)
            elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.For,
                                  ast.withitem)):
                for t in ast.walk(sub):
                    if isinstance(t, ast.Name) and isinstance(
                            t.ctx, ast.Store):
                        names.add(t.id)
        names -= hard_globals
        self._shadowed.append(names)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1
        self._shadowed.pop()

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function

    def _mark(self, name: str, line: int) -> None:
        if (name in self.globals and not self._local(name)
                and name not in self.mutated):
            self.mutated[name] = line

    def visit_Call(self, node: ast.Call) -> None:
        if self._depth and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                name = _dotted(node.func.value)
                if name:
                    self._mark(name.split(".")[0], node.lineno)
        self.generic_visit(node)

    def _store_target(self, target: ast.expr, line: int) -> None:
        if isinstance(target, ast.Subscript):
            name = _dotted(target.value)
            if name and "." not in name:
                self._mark(name, line)
        elif isinstance(target, ast.Name):
            self._mark(target.id, line)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._depth:
            for target in node.targets:
                self._store_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._depth:
            self._store_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self._depth:
            for target in node.targets:
                self._store_target(target, node.lineno)
        self.generic_visit(node)


def _check_mutable_globals(tree: ast.Module, path: str
                           ) -> Iterator[Finding]:
    globals_ = _module_level_assigns(tree)
    if not globals_:
        return
    finder = _GlobalMutationFinder(globals_)
    finder.visit(tree)
    for name in sorted(finder.mutated):
        decl = globals_[name]
        yield Finding(
            code="mutable-global", severity=Severity.ERROR,
            message=(f"module-level {name!r} is mutated at runtime "
                     f"(line {finder.mutated[name]}); shared mutable "
                     f"state breaks process forking"),
            pass_name="lint", subject=path, line=decl.lineno)


def _check_random_and_clock(tree: ast.Module, path: str
                            ) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if not dotted:
            continue
        parts = dotted.split(".")
        head, tail = parts[0], parts[-1]
        if (head in ("random", "np", "numpy")
                and tail in _GLOBAL_RANDOM_FNS and len(parts) > 1):
            yield Finding(
                code="unseeded-random", severity=Severity.ERROR,
                message=(f"{dotted}() draws from the process-global "
                         f"generator; pass an explicit random.Random(seed)"),
                pass_name="lint", subject=path, line=node.lineno)
        elif dotted in ("random.Random", "numpy.random.default_rng",
                        "np.random.default_rng") and not (
                node.args or node.keywords):
            yield Finding(
                code="unseeded-random", severity=Severity.ERROR,
                message=f"{dotted}() constructed without a seed",
                pass_name="lint", subject=path, line=node.lineno)
        elif dotted in ("time.time", "time.time_ns", "datetime.now",
                        "datetime.utcnow", "datetime.datetime.now",
                        "datetime.datetime.utcnow"):
            yield Finding(
                code="wall-clock", severity=Severity.ERROR,
                message=(f"{dotted}() reads the wall clock; simulations "
                         f"must use virtual time"),
                pass_name="lint", subject=path, line=node.lineno)


class _SetIterationFinder(ast.NodeVisitor):
    """Scope-local inference of names bound to bare sets, then flag
    iteration over them (and over set literals/calls directly)."""

    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        self._set_names: List[Set[str]] = [set()]

    @staticmethod
    def _is_set_expr(node: Optional[ast.AST]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            # set algebra keeps set-ness if either side is a known set
            return (_SetIterationFinder._is_set_expr(node.left)
                    or _SetIterationFinder._is_set_expr(node.right))
        return False

    def _known_set(self, node: ast.AST) -> bool:
        if self._is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_names)
        return False

    def _enter_scope(self, node: Any) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    visit_FunctionDef = _enter_scope
    visit_AsyncFunctionDef = _enter_scope
    visit_ClassDef = _enter_scope

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self._is_set_expr(node.value):
                    self._set_names[-1].add(target.id)
                else:
                    self._set_names[-1].discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if self._is_set_expr(node.value):
                self._set_names[-1].add(node.target.id)
            else:
                self._set_names[-1].discard(node.target.id)
        self.generic_visit(node)

    def _flag(self, iter_node: ast.AST) -> None:
        if self._known_set(iter_node):
            what = (repr(_dotted(iter_node))
                    if isinstance(iter_node, ast.Name) else "expression")
            self.findings.append(Finding(
                code="set-iteration", severity=Severity.ERROR,
                message=(f"iteration over bare set {what}: Python set "
                         f"order is salted per process; wrap in sorted()"),
                pass_name="lint", subject=self.path,
                line=getattr(iter_node, "lineno", 0)))

    def visit_For(self, node: ast.For) -> None:
        self._flag(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: Any) -> None:
        for gen in node.generators:
            self._flag(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_Call(self, node: ast.Call) -> None:
        # sorted(s) / len(s) / ",".join(sorted(s)) are order-safe; skip
        # flagging their direct arguments by not descending into a
        # neutralizer call's arg when it is a known set name.
        name = _dotted(node.func)
        tail = name.rsplit(".", 1)[-1] if name else ""
        if tail in _ORDER_NEUTRALIZERS:
            for arg in node.args:
                if not (isinstance(arg, ast.Name) or self._is_set_expr(arg)):
                    self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)
            return
        self.generic_visit(node)


def _check_set_iteration(tree: ast.Module, path: str) -> Iterator[Finding]:
    finder = _SetIterationFinder(path)
    finder.visit(tree)
    yield from finder.findings


def _check_bare_assert(tree: ast.Module, path: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            yield Finding(
                code="bare-assert", severity=Severity.ERROR,
                message=("assert statement in library code is stripped "
                         "under python -O; raise a repro.errors "
                         "exception instead"),
                pass_name="lint", subject=path, line=node.lineno)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>",
                rules: Sequence[str] = RULES) -> AnalysisReport:
    """Lint one Python source string; ``path`` labels the findings."""
    for rule in rules:
        if rule not in RULES:
            raise ValueError(f"unknown lint rule {rule!r}; "
                             f"expected one of {RULES}")
    report = AnalysisReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.add(Finding(
            code="syntax-error", severity=Severity.ERROR,
            message=str(exc), pass_name="lint", subject=path,
            line=exc.lineno or 0))
        return report
    pragmas = parse_pragmas(source)
    raw: List[Finding] = []
    if "mutable-global" in rules:
        raw.extend(_check_mutable_globals(tree, path))
    if "unseeded-random" in rules or "wall-clock" in rules:
        raw.extend(f for f in _check_random_and_clock(tree, path)
                   if f.code in rules)
    if "set-iteration" in rules:
        raw.extend(_check_set_iteration(tree, path))
    if "bare-assert" in rules:
        raw.extend(_check_bare_assert(tree, path))
    raw.sort(key=lambda f: (f.line, f.code))
    for finding in raw:
        if not _suppressed(pragmas, finding.line, finding.code):
            report.add(finding)
    return report


def lint_file(path: Path, root: Optional[Path] = None,
              rules: Sequence[str] = RULES) -> AnalysisReport:
    label = str(path.relative_to(root)) if root else str(path)
    return lint_source(path.read_text(encoding="utf-8"), label, rules)


def iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def lint_paths(paths: Iterable[Path],
               rules: Sequence[str] = RULES) -> AnalysisReport:
    """Lint every ``*.py`` under each path; subjects are relative when a
    directory root is given."""
    report = AnalysisReport()
    for root in paths:
        root = Path(root)
        base = root if root.is_dir() else root.parent
        for file in iter_python_files(root):
            report.merge(lint_file(file, root=base, rules=rules))
    return report


def apply_baseline(report: AnalysisReport,
                   baseline: AnalysisReport
                   ) -> Tuple[AnalysisReport, List[Finding]]:
    """Subtract accepted findings; also report baseline entries that no
    longer fire (stale — the baseline should shrink with them)."""
    accepted = {(f.subject, f.code, f.line) for f in baseline.findings}
    fresh = AnalysisReport(
        [f for f in report.findings
         if (f.subject, f.code, f.line) not in accepted])
    current = {(f.subject, f.code, f.line) for f in report.findings}
    stale = [f for f in baseline.findings
             if (f.subject, f.code, f.line) not in current]
    return fresh, stale


__all__ = [
    "RULES",
    "apply_baseline",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_pragmas",
]
